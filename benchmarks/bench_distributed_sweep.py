"""Benchmark: the distributed ``workdir`` backend -- N workers vs. one.

Times the same scenario sweep through the spool-directory backend twice --
once with a single worker process, once with ``WORKERS`` -- and records the
wall-clock ratio ``speedup_workers_over_single`` (gated in
``check_regression.py``).  Both legs run cache-less so every scenario is
actually executed; payloads from both legs must be bit-identical to a
fault-free serial reference.

The committed baseline for this ratio comes from a single-core box, where
extra workers only add coordination overhead (ratio ~1x or below).  CI
multi-core runners clear that floor easily; the regression gate therefore
fires only when the coordination machinery itself (claim/lease/envelope
round trips, reaper polling) regresses.

A second leg replays the ROADMAP-required chaos run: a seeded
:class:`~repro.resilience.FaultPlan` kills workers mid-sweep (``worker_die``)
and corrupts an envelope in transit (``envelope_corrupt``); the sweep must
still complete bit-identical to the fault-free reference with non-empty
reassignment/quarantine counters.  The counters land in the committed record
under ``"chaos"``.

Run it as::

    REPRO_BENCH_RECORD=1 PYTHONPATH=src python -m pytest \
        benchmarks/bench_distributed_sweep.py --benchmark-only -q
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from common_bench import QUICK, print_section, run_once

from repro.analysis import format_table
from repro.experiments import ExperimentRunner, GraphSpec, Scenario
from repro.resilience import FaultPlan

#: (n, degree, num_scenarios) per table row.
SIZES = [(32, 4, 8)] if QUICK else [(48, 4, 16)]
#: Worker count for the multi-worker leg.
WORKERS = 2 if QUICK else 4
#: Timing legs per size; the row keeps the best (highest) speedup, which
#: filters scheduler noise the same way the engine benchmarks do.
REPEATS = 2
#: Seed for the chaos leg; chosen so the plan covers >= 2 ``worker_die``
#: kills and >= 1 ``envelope_corrupt`` at both the quick and full scenario
#: counts (asserted in :func:`build_chaos_plan`).
CHAOS_SEED = 1
#: Fast lease turnover for the chaos leg so reaping dead workers does not
#: dominate the wall time.
CHAOS_OPTIONS = {"lease_ttl": 1.5, "heartbeat_interval": 0.3}

RESULTS_FILE = "distributed_sweep_quick.json" if QUICK else "distributed_sweep.json"


def build_scenarios(n: int, degree: int, count: int) -> list:
    return [
        Scenario.make(
            name=f"dist-{i}",
            graph=GraphSpec("random_regular", n=n, degree=degree, seed=i),
            algorithm="legal_coloring",
            params={"c": 2, "quality": "linear"},
        )
        for i in range(count)
    ]


def build_chaos_plan(count: int) -> FaultPlan:
    plan = FaultPlan.seeded(
        CHAOS_SEED,
        num_scenarios=count,
        worker_die_rate=0.3,
        envelope_corrupt_rate=0.15,
    )
    kinds = [spec.kind for spec in plan.specs]
    assert kinds.count("worker_die") >= 2, f"seed lost its worker kills: {kinds}"
    assert kinds.count("envelope_corrupt") >= 1, f"seed lost its corruption: {kinds}"
    return plan


def stable(payload: dict) -> dict:
    return {k: v for k, v in payload.items() if k != "wall_time"}


def run_workdir_sweep(scenarios, workers, fault_plan=None, backend_options=None):
    """One cache-less sweep through the workdir backend; (seconds, payloads, stats)."""
    runner = ExperimentRunner(
        cache_dir=None,
        max_workers=workers,
        retries=3,
        timeout=60.0,
        fault_plan=fault_plan,
        backend="workdir",
        backend_options=backend_options or {},
    )
    start = time.perf_counter()
    results = runner.run(scenarios)
    seconds = time.perf_counter() - start
    statuses = [r.status for r in results]
    assert statuses == ["ok"] * len(scenarios), f"sweep failed: {statuses}"
    return seconds, [stable(r.payload) for r in results], runner.last_stats


def _measure(n: int, degree: int, count: int) -> dict:
    scenarios = build_scenarios(n, degree, count)
    reference = [
        stable(r.payload)
        for r in ExperimentRunner(cache_dir=None, max_workers=0).run(scenarios)
    ]
    seconds_single, single_payloads, _ = run_workdir_sweep(scenarios, workers=1)
    seconds_multi, multi_payloads, _ = run_workdir_sweep(scenarios, workers=WORKERS)
    return {
        "n": n,
        "degree": degree,
        "scenarios": count,
        "workers": WORKERS,
        "seconds_single_worker": seconds_single,
        "seconds_multi_worker": seconds_multi,
        "speedup_workers_over_single": seconds_single / seconds_multi,
        "identical_outputs": (
            single_payloads == reference and multi_payloads == reference
        ),
    }


def _run_size(n: int, degree: int, count: int) -> dict:
    best = None
    key = "speedup_workers_over_single"
    for _ in range(REPEATS):
        row = _measure(n, degree, count)
        if best is None or row[key] > best[key]:
            best = row
    return best


def _run_chaos(n: int, degree: int, count: int) -> dict:
    scenarios = build_scenarios(n, degree, count)
    plan = build_chaos_plan(count)
    reference = [
        stable(r.payload)
        for r in ExperimentRunner(cache_dir=None, max_workers=0).run(scenarios)
    ]
    workers = max(3, WORKERS)
    seconds, payloads, stats = run_workdir_sweep(
        scenarios, workers=workers, fault_plan=plan, backend_options=CHAOS_OPTIONS
    )
    kinds = [spec.kind for spec in plan.specs]
    return {
        "seed": CHAOS_SEED,
        "workers": workers,
        "faults": sorted(kinds),
        "workers_killed": kinds.count("worker_die"),
        "seconds": seconds,
        "bit_identical": payloads == reference,
        "reassignments": stats.reassignments,
        "envelopes_rejected": stats.envelopes_rejected,
        "worker_replacements": stats.worker_replacements,
        "duplicate_completions": stats.duplicate_completions,
        "retries": stats.retries,
    }


def test_distributed_sweep(benchmark):
    rows = [_run_size(*size) for size in SIZES]
    print_section(
        f"Distributed sweep: {WORKERS} workdir workers vs. 1 "
        f"(cache-less, best of {REPEATS})"
    )
    print(
        format_table(
            ["n", "deg", "scen", "1-worker s", f"{WORKERS}-worker s", "speedup"],
            [
                (
                    row["n"],
                    row["degree"],
                    row["scenarios"],
                    row["seconds_single_worker"],
                    row["seconds_multi_worker"],
                    row["speedup_workers_over_single"],
                )
                for row in rows
            ],
        )
    )
    for row in rows:
        assert row["identical_outputs"], "workdir payloads diverged from serial run"
        # No absolute floor on a shared box: on a single core the extra
        # workers can only add overhead.  Guard against pathological
        # coordination cost instead; the committed record is the real gate.
        assert row["speedup_workers_over_single"] > 0.1

    chaos = _run_chaos(*SIZES[0])
    print_section(
        f"Chaos replay: seed {chaos['seed']}, {chaos['workers_killed']} worker "
        f"kills + envelope corruption across {chaos['workers']} workers"
    )
    print(
        f"bit_identical={chaos['bit_identical']} "
        f"reassignments={chaos['reassignments']} "
        f"envelopes_rejected={chaos['envelopes_rejected']} "
        f"worker_replacements={chaos['worker_replacements']} "
        f"duplicate_completions={chaos['duplicate_completions']} "
        f"retries={chaos['retries']} seconds={chaos['seconds']:.2f}"
    )
    assert chaos["bit_identical"], "chaos run diverged from fault-free reference"
    assert chaos["reassignments"] > 0, "worker kills produced no reassignments"
    assert chaos["envelopes_rejected"] > 0, "corrupted envelope was not quarantined"
    assert chaos["worker_replacements"] > 0, "dead workers were never replaced"

    if os.environ.get("REPRO_BENCH_RECORD"):
        record = {
            "workload": {
                "graph": "random_regular",
                "algorithm": "legal_coloring",
                "params": {"c": 2, "quality": "linear"},
                "backend": "workdir",
                "workers": WORKERS,
                "repeats": REPEATS,
            },
            "quick": QUICK,
            "sizes": rows,
            "chaos": chaos,
            "python": platform.python_version(),
            "platform": platform.platform(),
        }
        results_path = Path(__file__).parent / "results" / RESULTS_FILE
        results_path.parent.mkdir(exist_ok=True)
        results_path.write_text(json.dumps(record, indent=2) + "\n")
        print(f"\nrecorded -> {results_path}")

    n, degree, count = SIZES[0]
    run_once(
        benchmark,
        lambda: run_workdir_sweep(build_scenarios(n, degree, count), workers=WORKERS),
    )
