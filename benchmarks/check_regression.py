#!/usr/bin/env python3
"""Compare a fresh engine-speedup record against the committed baseline.

The CI perf-regression gate runs the quick-mode benchmarks
(``REPRO_BENCH_QUICK=1 REPRO_BENCH_RECORD=1``), which write fresh results
JSONs, and then calls this script once per record to compare it against the
committed baseline (``benchmarks/results/engine_speedup_quick.json`` and
``benchmarks/results/dynamic_churn_quick.json``).  The build fails when any
*speedup ratio* regressed by more than the tolerance (default 30%).

Why ratios and not wall times: CI machines differ wildly in absolute speed,
so comparing seconds across runners would flake constantly.  The speedup of
one engine over another on the *same* machine in the *same* run cancels the
machine out -- a >30% drop in ``vectorized/batched`` or
``batched/reference`` means the faster engine genuinely lost ground relative
to the slower one, i.e. a real performance regression in the engine the
ratio's numerator-side measures.

Usage::

    python benchmarks/check_regression.py \
        --baseline benchmarks/results/engine_speedup_quick.json \
        --fresh /tmp/fresh.json [--tolerance 0.30]

Exit status 0 when every ratio is within tolerance, 1 on regression or on a
structurally incomparable pair of records (no common sizes, missing ratios).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: The engine-relative ratios the gate watches (higher is better).  The
#: first two are the per-engine kernel ratios; the third is the *end-to-end*
#: wall-clock ratio of the fully vectorized Legal-Color pipeline over the
#: reference scheduler, which additionally covers the driver-level costs
#: (state marshalling, path bookkeeping, sub-network derivation) that the
#: pairwise ratios can miss.
SPEEDUP_KEYS = (
    "speedup_batched_over_reference",
    "speedup_vectorized_over_batched",
    "speedup_vectorized_over_reference",
    "speedup_fast_setup_over_legacy",
    "speedup_fast_line_setup_over_legacy",
    "speedup_incremental_over_recompute",
    # PR 7: the vectorized baseline kernels behind the portfolio facade.
    "speedup_luby_vectorized_over_legacy",
    "speedup_pr_vectorized_over_batched",
    "speedup_luby_edge_vectorized_over_batched",
    # PR 8: the compiled kernel backend over the numpy kernels.  Present in
    # a record only when a kernel backend resolved at record time; a fresh
    # CI record that *lost* the ratio (backend stopped resolving) fails the
    # gate, which is the point.
    "speedup_compiled_over_vectorized",
    # PR 10: the distributed ("workdir") backend's N-worker sweep over the
    # single-worker baseline (see bench_distributed_sweep.py).  The
    # committed baseline comes from a single-core box, so multi-core CI
    # runners clear the floor easily; the gate fires only when the
    # coordination overhead itself regresses.
    "speedup_workers_over_single",
)

#: Row sections of the results record the gate compares.  "sizes" is the
#: Legal-Color column (or, for ``dynamic_churn`` records, the churn column);
#: "edge_sizes" is the end-to-end edge-coloring column (CSR line-graph
#: builder + Corollary 5.4 kernel); "setup_sizes" is the workload-setup
#: column (array-built generators + CSR verification oracles vs. the legacy
#: networkx -> Network -> Python-loop path).  All but "sizes" are optional
#: so records from before those pipelines stay comparable.
SECTIONS = ("sizes", "edge_sizes", "setup_sizes")


def load_sizes(path: Path) -> dict:
    """Map ``(section, n, degree) -> size row`` from a results record."""
    record = json.loads(path.read_text())
    if not isinstance(record.get("sizes"), list) or not record["sizes"]:
        raise SystemExit(f"{path}: no 'sizes' rows -- not an engine-speedup record")
    return {
        (section, row["n"], row["degree"]): row
        for section in SECTIONS
        for row in record.get(section) or []
    }


def compare(baseline_path: Path, fresh_path: Path, tolerance: float) -> int:
    baseline = load_sizes(baseline_path)
    fresh = load_sizes(fresh_path)
    common = sorted(set(baseline) & set(fresh))
    if not common:
        print(
            f"ERROR: no common (n, degree) sizes between {baseline_path} "
            f"({sorted(baseline)}) and {fresh_path} ({sorted(fresh)})"
        )
        return 1

    failures = 0
    checks = 0
    for size in common:
        section, n, _degree = size
        label = f"{section}:n={n}"
        base_row, fresh_row = baseline[size], fresh[size]
        for key in SPEEDUP_KEYS:
            if key not in base_row:
                continue
            if key not in fresh_row:
                print(f"ERROR: {label}: fresh record lacks {key}")
                failures += 1
                continue
            base_value = float(base_row[key])
            fresh_value = float(fresh_row[key])
            floor = base_value * (1.0 - tolerance)
            verdict = "ok" if fresh_value >= floor else "REGRESSION"
            checks += 1
            print(
                f"{label:>20} {key:<34} baseline={base_value:8.2f}x "
                f"fresh={fresh_value:8.2f}x floor={floor:8.2f}x  {verdict}"
            )
            if fresh_value < floor:
                failures += 1
        if not fresh_row.get("identical_outputs", False):
            print(f"ERROR: {label}: engines no longer produce identical outputs")
            failures += 1

    if checks == 0:
        print("ERROR: no comparable speedup ratios found")
        return 1
    if failures:
        print(
            f"\n{failures} regression(s) beyond the {tolerance:.0%} tolerance; "
            "if the slowdown is intentional, re-record the baseline with "
            "REPRO_BENCH_QUICK=1 REPRO_BENCH_RECORD=1 and commit the diff."
        )
        return 1
    print(f"\nAll {checks} speedup ratios within {tolerance:.0%} of the baseline.")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--fresh", type=Path, required=True)
    parser.add_argument("--tolerance", type=float, default=0.30)
    args = parser.parse_args()
    return compare(args.baseline, args.fresh, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
