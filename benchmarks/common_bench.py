"""Shared helpers for the benchmark harnesses.

Each ``bench_*.py`` file regenerates one evaluation artifact of the paper
(a table, a figure, or a theorem's quantitative claim): it sweeps the relevant
parameter, prints the reproduced rows with :func:`repro.analysis.format_table`,
and wraps one representative instance in ``pytest-benchmark`` so that
``pytest benchmarks/ --benchmark-only`` both times the implementation and
leaves the reproduced artifact in the captured output.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro import graphs
from repro.local_model import Network

#: The Delta sweep used by the Table 1 / Table 2 reproductions.  The paper's
#: ranges are expressed relative to n (log* n, log n, polylog n); at the
#: laptop scales below they translate into small-to-moderate degrees.
TABLE_DEGREES: Sequence[int] = (4, 6, 8, 12, 16, 22)

#: Number of vertices of the Table 1 / Table 2 workload graphs.
TABLE_NUM_NODES: int = 48


def regular_workload(degree: int, n: int = TABLE_NUM_NODES, seed: int = 0) -> Network:
    """The Table 1 / Table 2 workload: a random ``degree``-regular graph."""
    if (n * degree) % 2 != 0:
        n += 1
    return graphs.random_regular(n, degree, seed=seed + degree)


def run_once(benchmark, func: Callable[[], object]):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


def print_section(title: str) -> None:
    """Print a visually separated section header into the captured output."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
