"""Shared helpers for the benchmark harnesses.

Each ``bench_*.py`` file regenerates one evaluation artifact of the paper
(a table, a figure, or a theorem's quantitative claim): it sweeps the relevant
parameter, prints the reproduced rows with :func:`repro.analysis.format_table`,
and wraps one representative instance in ``pytest-benchmark`` so that
``pytest benchmarks/bench_*.py --benchmark-only`` both times the implementation and
leaves the reproduced artifact in the captured output.

The sweeps themselves run through :class:`repro.experiments.ExperimentRunner`:
scenarios are sharded across worker processes and their results memoized in an
on-disk cache (location: ``$REPRO_EXPERIMENT_CACHE``, default under the system
temp directory -- shared with ``examples/scaling_study.py``), so re-running a
benchmark after an unrelated change is nearly free.  Set
``REPRO_BENCH_QUICK=1`` for the CI smoke configuration (smaller graphs,
shorter sweeps) and ``REPRO_BENCH_WORKERS`` to pin the worker count (``0``
forces serial in-process execution).
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Sequence

from repro.experiments import (
    ExperimentRunner,
    GraphSpec,
    Scenario,
    default_cache_dir,
    progress_ticker,
)
from repro.local_model import Network

#: Quick mode: used by CI to smoke-test the harnesses in seconds.
QUICK: bool = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: The Delta sweep used by the Table 1 / Table 2 reproductions.  The paper's
#: ranges are expressed relative to n (log* n, log n, polylog n); at the
#: laptop scales below they translate into small-to-moderate degrees.
TABLE_DEGREES: Sequence[int] = (4, 6) if QUICK else (4, 6, 8, 12, 16, 22)

#: Number of vertices of the Table 1 / Table 2 workload graphs.
TABLE_NUM_NODES: int = 32 if QUICK else 48


def bench_runner(max_workers: Optional[int] = None) -> ExperimentRunner:
    """The shared :class:`ExperimentRunner` used by the benchmark sweeps.

    Set ``REPRO_BENCH_PROGRESS=1`` to get a per-scenario stderr ticker fed
    from the worker-pool futures (off by default).
    """
    configured = os.environ.get("REPRO_BENCH_WORKERS")
    if max_workers is None and configured is not None:
        max_workers = int(configured)
    on_progress = None
    if os.environ.get("REPRO_BENCH_PROGRESS", "") not in ("", "0"):
        on_progress = progress_ticker()
    return ExperimentRunner(
        cache_dir=default_cache_dir(),
        max_workers=max_workers,
        on_progress=on_progress,
    )


def regular_workload_spec(
    degree: int, n: int = TABLE_NUM_NODES, seed: int = 0
) -> GraphSpec:
    """The Table 1 / Table 2 workload: a random ``degree``-regular graph."""
    if (n * degree) % 2 != 0:
        n += 1
    return GraphSpec("random_regular", n=n, degree=degree, seed=seed + degree)


def regular_workload(degree: int, n: int = TABLE_NUM_NODES, seed: int = 0) -> Network:
    """The built network for :func:`regular_workload_spec` (same graph)."""
    return regular_workload_spec(degree, n=n, seed=seed).build()


def table_edge_scenarios(
    algorithms: Sequence[tuple],
    degrees: Sequence[int] = TABLE_DEGREES,
    n: int = TABLE_NUM_NODES,
    seed: int = 0,
    engine: str = "vectorized",
) -> list:
    """Scenarios for a Table 1 / Table 2 style sweep.

    ``algorithms`` is a sequence of ``(label, algorithm_name, params)``
    triples; one scenario is produced per (degree, algorithm) pair, named
    ``"{label}-d{degree}"``.  Since the baselines grew array-native kernels
    the sweeps default to the vectorized engine; rounds, colors, and message
    counts are engine-invariant (locked by the equivalence suite), so
    records stay comparable across engines.
    """
    scenarios = []
    for degree in degrees:
        spec = regular_workload_spec(degree, n=n, seed=seed)
        for label, algorithm, params in algorithms:
            scenarios.append(
                Scenario.make(
                    name=f"{label}-d{degree}",
                    graph=spec,
                    algorithm=algorithm,
                    params=params,
                    engine=engine,
                )
            )
    return scenarios


def run_once(benchmark, func: Callable[[], object]):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


def print_section(title: str) -> None:
    """Print a visually separated section header into the captured output."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
