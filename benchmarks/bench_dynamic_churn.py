"""Amortized cost of incremental recoloring vs. full recompute under churn.

The serving-layer claim behind :mod:`repro.dynamic` (committed numbers in
``benchmarks/results/dynamic_churn.json`` / ``engine_speedup.md``): on a
random regular graph at ``n = 50,000`` with 1% of the edges churning per
batch (half removals of existing edges, half random insertions), a
``strategy="incremental"`` :class:`~repro.dynamic.DynamicColoring` session
processes an update batch **>= 10x cheaper** than the ``strategy="recompute"``
reference session fed the identical batches -- while

* both sessions hold the *identical* patched CSR after every batch (the
  delta-merge patch is strategy-independent),
* the incremental coloring is verified legal after every batch (untimed,
  via the vectorized oracle),
* the incremental session's palette bound never exceeds the recompute
  session's, and
* the vectorized repair pipeline reports **zero batched fallbacks**.

Run with::

    REPRO_BENCH_RECORD=1 PYTHONPATH=src python -m pytest \
        benchmarks/bench_dynamic_churn.py --benchmark-only -s

``REPRO_BENCH_RECORD=1`` rewrites ``benchmarks/results/dynamic_churn.json``
(or ``dynamic_churn_quick.json`` under ``REPRO_BENCH_QUICK=1`` -- the
committed quick record is the baseline of the CI perf-regression gate, see
``benchmarks/check_regression.py``, which compares the
``speedup_incremental_over_recompute`` ratio at the standard 30% tolerance).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from common_bench import QUICK, print_section, run_once

from repro import graphs
from repro.analysis import format_table
from repro.dynamic import DynamicColoring

#: Neighborhood-independence bound handed to the underlying Legal-Color runs.
CHURN_C = 8
CHURN_SEED = 5
CHURN_STEPS = 4 if QUICK else 10
#: Fraction of the initial edge count churned per batch (removals and
#: insertions each churn this many edges).
CHURN_FRACTION = 0.01

#: (n, degree) instances; the full-mode size carries the committed >= 10x
#: amortized-cost claim.
SIZES = ((2000, 8),) if QUICK else ((50_000, 8),)

#: The whole session pair is repeated and the best ratio kept (the same
#: best-of discipline as ``bench_engine_speedup._timed``): millisecond
#: batches are allocation-noise-prone, and one GC hiccup inside a timed
#: region would understate the steady-state ratio.
REPEATS = 3 if QUICK else 2

RESULTS_FILE = "dynamic_churn_quick.json" if QUICK else "dynamic_churn.json"


def _measure(n: int, degree: int) -> dict:
    """Drive one churn schedule through both strategies, timed per batch."""
    base = graphs.random_regular(n, degree, seed=CHURN_SEED, backend="fast")
    incremental = DynamicColoring(base, c=CHURN_C, engine="vectorized")
    recompute = DynamicColoring(
        base, c=CHURN_C, strategy="recompute", engine="vectorized"
    )
    rng = np.random.default_rng(CHURN_SEED)
    batch = max(1, int(base.num_edges * CHURN_FRACTION))
    inc_seconds = 0.0
    rec_seconds = 0.0
    conflicts = 0
    repaired = 0
    for _ in range(CHURN_STEPS):
        # The schedule depends only on the seed and the evolving edge set
        # (identical for both sessions), never on the coloring.
        fast = incremental.network
        forward = fast.rows_np < fast.indices_np
        edge_u, edge_v = fast.rows_np[forward], fast.indices_np[forward]
        pick = rng.integers(0, len(edge_u), size=batch)
        removed = (edge_u[pick].copy(), edge_v[pick].copy())
        add_u = rng.integers(0, n, size=batch)
        add_v = rng.integers(0, n, size=batch)
        loopless = add_u != add_v
        added = (add_u[loopless], add_v[loopless])

        started = time.perf_counter()
        report = incremental.apply_updates(added=added, removed=removed)
        inc_seconds += time.perf_counter() - started

        started = time.perf_counter()
        recompute.apply_updates(added=added, removed=removed)
        rec_seconds += time.perf_counter() - started

        # Untimed invariants, checked on *every* step of the recorded run.
        incremental.verify()
        recompute.verify()
        assert (
            incremental.network.indptr_np == recompute.network.indptr_np
        ).all() and (
            incremental.network.indices_np == recompute.network.indices_np
        ).all(), f"patched CSRs diverged at n={n}"
        conflicts += report.conflicts
        repaired += report.repaired_nodes

    fallbacks = incremental.fallback_phase_names
    assert not fallbacks, f"incremental repair fell back at n={n}: {fallbacks}"
    assert incremental.palette_bound <= recompute.palette_bound
    return {
        "n": n,
        "degree": degree,
        "initial_edges": int(base.num_edges),
        "batch_edges": batch,
        "steps": CHURN_STEPS,
        "conflicts": int(conflicts),
        "repaired_nodes": int(repaired),
        "seconds": {
            "incremental_total": round(inc_seconds, 4),
            "recompute_total": round(rec_seconds, 4),
            "incremental_per_batch": round(inc_seconds / CHURN_STEPS, 5),
            "recompute_per_batch": round(rec_seconds / CHURN_STEPS, 5),
        },
        "palette_bound": {
            "incremental": int(incremental.palette_bound),
            "recompute": int(recompute.palette_bound),
        },
        "speedup_incremental_over_recompute": round(
            rec_seconds / max(inc_seconds, 1e-9), 2
        ),
        "verified_every_step": True,
        "identical_outputs": True,
    }


def _run_size(n: int, degree: int) -> dict:
    best = None
    for _ in range(REPEATS):
        row = _measure(n, degree)
        if (
            best is None
            or row["speedup_incremental_over_recompute"]
            > best["speedup_incremental_over_recompute"]
        ):
            best = row
    return best


def test_dynamic_churn(benchmark):
    print_section(
        "Dynamic recoloring under churn -- incremental repair vs. full "
        f"recompute ({CHURN_FRACTION:.0%} of edges per batch, c = {CHURN_C})"
    )
    rows = [_run_size(n, degree) for n, degree in SIZES]
    print(
        format_table(
            [
                "n",
                "Delta",
                "|E|",
                "batch",
                "steps",
                "incremental/batch (s)",
                "recompute/batch (s)",
                "inc. speedup",
                "conflicts",
            ],
            [
                [
                    row["n"],
                    row["degree"],
                    row["initial_edges"],
                    row["batch_edges"],
                    row["steps"],
                    row["seconds"]["incremental_per_batch"],
                    row["seconds"]["recompute_per_batch"],
                    row["speedup_incremental_over_recompute"],
                    row["conflicts"],
                ]
                for row in rows
            ],
        )
    )
    print(
        "\nIdentical patched CSRs on every step; incremental coloring "
        "verified legal after every batch; zero batched fallbacks."
    )

    # The committed record claims >= 10x amortized at n = 50,000 under 1%
    # churn; keep the in-test bound looser so a loaded box does not flake.
    if not QUICK:
        for row in rows:
            speedup = row["speedup_incremental_over_recompute"]
            assert speedup >= 10.0, (
                f"incremental repair only {speedup:.2f}x cheaper than "
                f"recompute at n={row['n']}"
            )

    if os.environ.get("REPRO_BENCH_RECORD"):
        record = {
            "workload": {
                "summary": (
                    "DynamicColoring incremental repair vs. "
                    "strategy='recompute' on identical churn batches"
                ),
                "graph": f"random_regular(n, degree, seed={CHURN_SEED}, "
                "backend='fast')",
                "c": CHURN_C,
                "churn_fraction": CHURN_FRACTION,
                "steps": CHURN_STEPS,
                "engine": "vectorized",
            },
            "quick": QUICK,
            "sizes": rows,
            "python": platform.python_version(),
            "platform": platform.platform(),
        }
        out = Path(__file__).parent / "results" / RESULTS_FILE
        out.parent.mkdir(exist_ok=True)
        out.write_text(json.dumps(record, indent=2) + "\n")
        print(f"\nRecorded results to {out}")

    # Time one quick-sized session pair under pytest-benchmark.
    run_once(benchmark, lambda: _measure(*SIZES[0]))
