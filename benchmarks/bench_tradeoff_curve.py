"""Corollary 6.3 reproduction: the O(Delta^2 / g(Delta))-colors tradeoff curve.

For any monotone non-decreasing g, the paper gets an O(Delta^2 / g(Delta))-
coloring of bounded-independence graphs in roughly O(log g(Delta)) + log* n
rounds: a Lemma 2.1(3) defective split into O((Delta/q)^2) classes of degree
q = g^{1/(1-eta)}, followed by the Theorem 4.8(2) algorithm inside every class.

The harness sweeps g over {constant, Delta^{1/2}, Delta} on a line-graph
workload and prints the colors-vs-rounds curve: larger g means fewer colors
and (moderately) more rounds.
"""

from __future__ import annotations

from common_bench import QUICK, bench_runner, print_section, run_once

from repro import graphs
from repro.analysis import format_table
from repro.core import tradeoff_color_vertices
from repro.experiments import G_FUNCTIONS as G_REGISTRY
from repro.experiments import GraphSpec, Scenario
from repro.graphs.line_graph import line_graph_network

#: (display label, name in the experiments g-function registry).
G_FUNCTIONS = [
    ("g = 2 (constant)", "constant2"),
    ("g = Delta^0.5", "sqrt"),
    ("g = Delta", "linear"),
]

BASE_N, BASE_DEGREE, BASE_SEED = (24, 8, 61) if QUICK else (40, 12, 61)


def _sweep():
    # The workload is the line graph of a random regular graph; the runner
    # builds it inside each worker from the picklable spec.
    spec = GraphSpec(
        "random_regular", n=BASE_N, degree=BASE_DEGREE, seed=BASE_SEED, line_graph=True
    )
    scenarios = [
        Scenario.make(
            name=f"tradeoff-{g_name}",
            graph=spec,
            algorithm="tradeoff",
            params={"c": 2, "g": g_name},
        )
        for _, g_name in G_FUNCTIONS
    ]
    results = {result.name: result for result in bench_runner().run(scenarios)}

    delta = next(iter(results.values())).max_degree
    rows = []
    for label, g_name in G_FUNCTIONS:
        result = results[f"tradeoff-{g_name}"]
        assert result.verified
        g_value = G_REGISTRY[g_name](delta)
        rows.append(
            [
                label,
                round(delta * delta / g_value, 1),
                result.split_palette,
                result.palette,
                result.colors_used,
                result.rounds,
            ]
        )
    return delta, rows


def test_tradeoff_curve(benchmark):
    delta, rows = _sweep()
    print_section(f"Corollary 6.3 -- colors vs. rounds tradeoff (Delta(L(G)) = {delta})")
    print(
        format_table(
            [
                "g(Delta)",
                "Delta^2/g (analytic)",
                "split classes",
                "palette bound",
                "colors used",
                "rounds",
            ],
            rows,
        )
    )
    print(
        "\nLarger g gives fewer colors at a modest round cost, tracing the"
        " Corollary 6.3 tradeoff curve."
    )

    # Monotonicity along the curve: palettes shrink as g grows.
    palettes = [row[3] for row in rows]
    assert palettes[0] >= palettes[-1]

    base = graphs.random_regular(BASE_N, BASE_DEGREE, seed=BASE_SEED)
    line = line_graph_network(base)
    run_once(
        benchmark,
        lambda: tradeoff_color_vertices(line, c=2, g=lambda d: d**0.5, engine="batched"),
    )
