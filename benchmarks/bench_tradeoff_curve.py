"""Corollary 6.3 reproduction: the O(Delta^2 / g(Delta))-colors tradeoff curve.

For any monotone non-decreasing g, the paper gets an O(Delta^2 / g(Delta))-
coloring of bounded-independence graphs in roughly O(log g(Delta)) + log* n
rounds: a Lemma 2.1(3) defective split into O((Delta/q)^2) classes of degree
q = g^{1/(1-eta)}, followed by the Theorem 4.8(2) algorithm inside every class.

The harness sweeps g over {constant, Delta^{1/2}, Delta} on a line-graph
workload and prints the colors-vs-rounds curve: larger g means fewer colors
and (moderately) more rounds.
"""

from __future__ import annotations

from common_bench import print_section, run_once

from repro import graphs
from repro.analysis import format_table
from repro.core import tradeoff_color_vertices
from repro.graphs.line_graph import line_graph_network
from repro.verification import assert_legal_vertex_coloring

G_FUNCTIONS = [
    ("g = 2 (constant)", lambda d: 2.0),
    ("g = Delta^0.5", lambda d: d**0.5),
    ("g = Delta", lambda d: float(d)),
]


def _sweep():
    base = graphs.random_regular(40, 12, seed=61)
    line = line_graph_network(base)
    delta = line.max_degree
    rows = []
    for label, g in G_FUNCTIONS:
        result = tradeoff_color_vertices(line, c=2, g=g)
        assert_legal_vertex_coloring(line, result.colors)
        rows.append(
            [
                label,
                round(delta * delta / g(delta), 1),
                result.split_palette,
                result.palette,
                len(set(result.colors.values())),
                result.metrics.rounds,
            ]
        )
    return delta, rows


def test_tradeoff_curve(benchmark):
    delta, rows = _sweep()
    print_section(f"Corollary 6.3 -- colors vs. rounds tradeoff (Delta(L(G)) = {delta})")
    print(
        format_table(
            [
                "g(Delta)",
                "Delta^2/g (analytic)",
                "split classes",
                "palette bound",
                "colors used",
                "rounds",
            ],
            rows,
        )
    )
    print(
        "\nLarger g gives fewer colors at a modest round cost, tracing the"
        " Corollary 6.3 tradeoff curve."
    )

    # Monotonicity along the curve: palettes shrink as g grows.
    palettes = [row[3] for row in rows]
    assert palettes[0] >= palettes[-1]

    base = graphs.random_regular(40, 12, seed=61)
    line = line_graph_network(base)
    run_once(benchmark, lambda: tradeoff_color_vertices(line, c=2, g=lambda d: d**0.5))
