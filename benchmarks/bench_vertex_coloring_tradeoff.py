"""Theorems 4.5 / 4.6 / 4.8 reproduction: vertex coloring of bounded-independence graphs.

The paper's vertex-coloring results trade palette size against rounds:

* Theorem 4.8(1): O(Delta) colors in O(Delta^eps) + log* n rounds,
* Theorem 4.8(2): O(Delta^{1+eta}) colors in ~O(log Delta) + log* n rounds,
* Theorem 4.8(3): Delta^{1+o(1)} colors in O((log Delta)^{1+eta}) + log* n rounds.

The harness sweeps the degree of a line-graph workload (independence 2),
measures colors and rounds for the three presets and for a hypergraph
line-graph workload (independence 3), and prints colors normalized by Delta so
the palette exponents can be read off directly.
"""

from __future__ import annotations

from common_bench import print_section, run_once

from repro import graphs
from repro.analysis import format_table
from repro.core import color_vertices
from repro.graphs.hypergraphs import hypergraph_line_graph, random_r_hypergraph
from repro.graphs.line_graph import line_graph_network
from repro.verification import assert_legal_vertex_coloring

BASE_DEGREES = (6, 10, 14)


def _sweep_line_graphs():
    rows = []
    for degree in BASE_DEGREES:
        base = graphs.random_regular(40, degree, seed=41 + degree)
        line = line_graph_network(base)
        delta = line.max_degree
        per_quality = {}
        for quality in ("linear", "superlinear", "subpolynomial"):
            result = color_vertices(line, c=2, quality=quality)
            assert_legal_vertex_coloring(line, result.colors)
            per_quality[quality] = result
        rows.append(
            [
                delta,
                per_quality["linear"].colors_used,
                round(per_quality["linear"].colors_used / delta, 2),
                per_quality["linear"].metrics.rounds,
                per_quality["superlinear"].colors_used,
                round(per_quality["superlinear"].colors_used / delta, 2),
                per_quality["superlinear"].metrics.rounds,
                per_quality["subpolynomial"].colors_used,
                per_quality["subpolynomial"].metrics.rounds,
            ]
        )
    return rows


def _hypergraph_row():
    hypergraph = random_r_hypergraph(num_vertices=30, num_edges=70, rank=3, seed=5)
    line = hypergraph_line_graph(hypergraph)
    result = color_vertices(line, c=3, quality="superlinear")
    assert_legal_vertex_coloring(line, result.colors)
    return [line.max_degree, result.colors_used, result.metrics.rounds]


def test_vertex_coloring_tradeoff(benchmark):
    rows = _sweep_line_graphs()
    print_section(
        "Theorem 4.8 -- vertex coloring of bounded-independence graphs (line graphs, c = 2)"
    )
    print(
        format_table(
            [
                "Delta",
                "Thm4.8(1) colors",
                "colors/Delta",
                "rounds",
                "Thm4.8(2) colors",
                "colors/Delta",
                "rounds",
                "Thm4.8(3) colors",
                "rounds",
            ],
            rows,
        )
    )

    hg_row = _hypergraph_row()
    print("\nLine graph of a 3-hypergraph (c = 3):")
    print(format_table(["Delta", "colors used", "rounds"], [hg_row]))
    print(
        "\nThe 'colors/Delta' column of the Theorem 4.8(1) preset stays bounded as"
        " Delta grows (O(Delta) colors); the faster presets trade a larger palette"
        " for fewer rounds, as in the paper's tradeoff."
    )

    # The linear-colors preset keeps colors/Delta bounded by a modest constant.
    for row in rows:
        assert row[2] <= 12.0

    base = graphs.random_regular(40, BASE_DEGREES[-1], seed=41 + BASE_DEGREES[-1])
    line = line_graph_network(base)
    run_once(benchmark, lambda: color_vertices(line, c=2, quality="linear"))
