"""Table 2 reproduction: the new deterministic algorithm vs. randomized baselines.

Table 2 covers the small-Delta regime (omega(log* n) <= Delta <= log^{1-delta} n):
previous work is either Panconesi-Rizzi (deterministic, (2 Delta - 1) colors,
O(Delta) + log* n rounds) or Schneider-Wattenhofer [29] (randomized,
(2 Delta - 1) colors, O(sqrt(log n)) rounds); the new deterministic algorithm
achieves O(Delta^{1+eps}) colors in O(log Delta) + log* n rounds and therefore
outperforms even the randomized algorithms in this range.

The harness measures our implementation of the new algorithm and a Luby-style
randomized baseline, and prints the analytic [29] curve alongside.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from common_bench import QUICK, print_section, regular_workload, run_once

from repro import graphs
from repro.analysis import (
    Series,
    format_table,
    rounds_new_superlinear,
    rounds_panconesi_rizzi,
    rounds_schneider_wattenhofer,
)
from repro.baselines import luby_edge_coloring, panconesi_rizzi_edge_coloring
from repro.core import color_edges
from repro.verification import assert_legal_edge_coloring

#: Small-Delta regime of Table 2.
SMALL_DEGREES = (3, 4, 6, 8)

#: (n, degree) of the engine-ratio gate row committed with the record.  The
#: randomized Luby baseline needs a few thousand line-graph nodes before the
#: vectorized kernel's fixed setup cost amortizes, so the gate row runs at a
#: larger size than the Table 2 sweep itself.
GATE_SIZE = (1024, 8) if QUICK else (2048, 8)

RESULTS_FILE = "table2_quick.json" if QUICK else "table2.json"


def _measure_gate() -> dict:
    """Batched-vs-vectorized ratio for the Luby edge baseline."""
    n, degree = GATE_SIZE
    network = graphs.random_regular(n, degree, seed=5, backend="fast")
    started = time.perf_counter()
    batched = luby_edge_coloring(network, seed=degree, engine="batched")
    batched_seconds = time.perf_counter() - started
    vectorized_seconds = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        vectorized = luby_edge_coloring(network, seed=degree, engine="vectorized")
        vectorized_seconds = min(vectorized_seconds, time.perf_counter() - started)
    assert batched.edge_colors == vectorized.edge_colors
    assert vectorized.metrics.fallback_phase_names == []
    return {
        "n": n,
        "degree": degree,
        "seconds": {
            "luby_edge_batched": round(batched_seconds, 4),
            "luby_edge_vectorized": round(vectorized_seconds, 4),
        },
        "speedup_luby_edge_vectorized_over_batched": round(
            batched_seconds / max(vectorized_seconds, 1e-9), 2
        ),
        "identical_outputs": True,
    }


def _record(rows, gate_row, headers) -> None:
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    record = {
        "workload": {
            "summary": "Table 2: small-Delta regime, randomized baselines vs "
            "the new deterministic algorithm (vectorized engine)",
            "degrees": list(SMALL_DEGREES),
        },
        "quick": QUICK,
        "sizes": [gate_row],
        "table": {
            "headers": headers,
            "rows": rows,
        },
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    out = results_dir / RESULTS_FILE
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nRecorded results to {out}")


def _sweep():
    rows = []
    new_rounds = Series("new deterministic")
    luby_rounds = Series("randomized baseline")
    for degree in SMALL_DEGREES:
        network = regular_workload(degree, seed=100)
        n = network.num_nodes

        fast = color_edges(
            network, quality="superlinear", route="direct", engine="vectorized"
        )
        baseline = panconesi_rizzi_edge_coloring(network, engine="vectorized")
        randomized = luby_edge_coloring(network, seed=degree, engine="vectorized")
        for result in (fast, baseline, randomized):
            assert_legal_edge_coloring(network, result.edge_colors)

        new_rounds.add(degree, fast.metrics.rounds)
        luby_rounds.add(degree, randomized.metrics.rounds)
        rows.append(
            [
                degree,
                baseline.colors_used,
                baseline.metrics.rounds,
                randomized.colors_used,
                randomized.metrics.rounds,
                round(rounds_schneider_wattenhofer(degree, n), 1),
                fast.colors_used,
                fast.metrics.rounds,
                round(rounds_new_superlinear(degree, n), 1),
                round(rounds_panconesi_rizzi(degree, n), 1),
            ]
        )
    return rows, new_rounds, luby_rounds


HEADERS = [
    "Delta",
    "PR colors",
    "PR rounds",
    "rand colors",
    "rand rounds",
    "[29] analytic",
    "new colors",
    "new rounds",
    "new analytic",
    "[24] analytic",
]


def test_table2_randomized_comparison(benchmark):
    rows, new_rounds, luby_rounds = _sweep()

    print_section(
        "Table 2 -- small-Delta regime: randomized baselines vs. the new deterministic algorithm"
    )
    print(format_table(HEADERS, rows))
    print(
        "\nNote: the randomized baseline uses fewer colors (2 Delta - 1) but relies on"
        " randomness; the new algorithm is deterministic and its round count grows only"
        " logarithmically with Delta, which is the Table 2 comparison point."
    )

    # Determinism is the point of the comparison: two runs of the new
    # algorithm produce identical colorings, which no randomized baseline
    # guarantees.
    network = regular_workload(SMALL_DEGREES[-1], seed=100)
    first = color_edges(network, quality="superlinear", route="direct")
    second = color_edges(network, quality="superlinear", route="direct")
    assert first.edge_colors == second.edge_colors

    gate_row = _measure_gate()
    print(
        f"\nEngine gate at n={gate_row['n']}, Delta={gate_row['degree']}: "
        f"vectorized Luby edge baseline is "
        f"{gate_row['speedup_luby_edge_vectorized_over_batched']}x the batched "
        "path (identical colorings)."
    )

    if os.environ.get("REPRO_BENCH_RECORD"):
        _record(rows, gate_row, HEADERS)

    run_once(
        benchmark,
        lambda: color_edges(
            network, quality="superlinear", route="direct", engine="vectorized"
        ),
    )
