"""Table 2 reproduction: the new deterministic algorithm vs. randomized baselines.

Table 2 covers the small-Delta regime (omega(log* n) <= Delta <= log^{1-delta} n):
previous work is either Panconesi-Rizzi (deterministic, (2 Delta - 1) colors,
O(Delta) + log* n rounds) or Schneider-Wattenhofer [29] (randomized,
(2 Delta - 1) colors, O(sqrt(log n)) rounds); the new deterministic algorithm
achieves O(Delta^{1+eps}) colors in O(log Delta) + log* n rounds and therefore
outperforms even the randomized algorithms in this range.

The harness measures our implementation of the new algorithm and a Luby-style
randomized baseline, and prints the analytic [29] curve alongside.
"""

from __future__ import annotations

from common_bench import print_section, regular_workload, run_once

from repro.analysis import (
    Series,
    format_table,
    rounds_new_superlinear,
    rounds_panconesi_rizzi,
    rounds_schneider_wattenhofer,
)
from repro.baselines import luby_edge_coloring, panconesi_rizzi_edge_coloring
from repro.core import color_edges
from repro.verification import assert_legal_edge_coloring

#: Small-Delta regime of Table 2.
SMALL_DEGREES = (3, 4, 6, 8)


def _sweep():
    rows = []
    new_rounds = Series("new deterministic")
    luby_rounds = Series("randomized baseline")
    for degree in SMALL_DEGREES:
        network = regular_workload(degree, seed=100)
        n = network.num_nodes

        fast = color_edges(network, quality="superlinear", route="direct")
        baseline = panconesi_rizzi_edge_coloring(network)
        randomized = luby_edge_coloring(network, seed=degree)
        for result in (fast, baseline, randomized):
            assert_legal_edge_coloring(network, result.edge_colors)

        new_rounds.add(degree, fast.metrics.rounds)
        luby_rounds.add(degree, randomized.metrics.rounds)
        rows.append(
            [
                degree,
                baseline.colors_used,
                baseline.metrics.rounds,
                randomized.colors_used,
                randomized.metrics.rounds,
                round(rounds_schneider_wattenhofer(degree, n), 1),
                fast.colors_used,
                fast.metrics.rounds,
                round(rounds_new_superlinear(degree, n), 1),
                round(rounds_panconesi_rizzi(degree, n), 1),
            ]
        )
    return rows, new_rounds, luby_rounds


def test_table2_randomized_comparison(benchmark):
    rows, new_rounds, luby_rounds = _sweep()

    print_section(
        "Table 2 -- small-Delta regime: randomized baselines vs. the new deterministic algorithm"
    )
    print(
        format_table(
            [
                "Delta",
                "PR colors",
                "PR rounds",
                "rand colors",
                "rand rounds",
                "[29] analytic",
                "new colors",
                "new rounds",
                "new analytic",
                "[24] analytic",
            ],
            rows,
        )
    )
    print(
        "\nNote: the randomized baseline uses fewer colors (2 Delta - 1) but relies on"
        " randomness; the new algorithm is deterministic and its round count grows only"
        " logarithmically with Delta, which is the Table 2 comparison point."
    )

    # Determinism is the point of the comparison: two runs of the new
    # algorithm produce identical colorings, which no randomized baseline
    # guarantees.
    network = regular_workload(SMALL_DEGREES[-1], seed=100)
    first = color_edges(network, quality="superlinear", route="direct")
    second = color_edges(network, quality="superlinear", route="direct")
    assert first.edge_colors == second.edge_colors

    run_once(benchmark, lambda: color_edges(network, quality="superlinear", route="direct"))
