"""Vectorized-baseline speedups + offline calibration of the portfolio cost model.

Two jobs in one harness (committed numbers in
``benchmarks/results/portfolio.json`` / ``portfolio_quick.json`` and
``benchmarks/results/portfolio_model.json``):

1. **Baseline kernel speedup.**  The PR 7 tentpole claim: the vectorized
   Luby kernel (``StringSeededDraws`` + CSR conflict scatter) beats the
   per-node batched path by **>= 10x** at ``n = 50,000`` (headline row at
   ``Delta = 64``), with *bit-identical* colorings — asserted on every
   measured pair.  The ``speedup_luby_vectorized_over_legacy`` ratio is
   gated in CI by ``benchmarks/check_regression.py`` at the standard 30%
   tolerance against the committed quick record.

2. **Cost-model calibration.**  The engine / route / rounds coefficients
   that :func:`repro.portfolio.color_graph` / ``color_edges`` decide with
   are measured here — per-CSR-entry seconds for each engine (two sizes,
   fit slope + intercept), per-line-entry seconds for the direct vs.
   Lemma 5.2 routes, and one fitted multiplier per Theorem 4.8 preset's
   analytic round shape.  A full-mode ``REPRO_BENCH_RECORD=1`` run rewrites
   ``portfolio_model.json`` (the record ``CostModel.default()`` loads), and
   the portfolio decisions taken with the fresh model are recorded and
   sanity-asserted: the large instance class must flip the engine away from
   the ``batched`` default.

Run with::

    REPRO_BENCH_RECORD=1 PYTHONPATH=src python -m pytest \
        benchmarks/bench_portfolio.py --benchmark-only -s
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from common_bench import QUICK, print_section, run_once

from repro import graphs
from repro.analysis import format_table
from repro.baselines import luby_vertex_coloring
from repro.core import color_edges as core_color_edges
from repro.local_model import kernels
from repro.local_model.fast_network import fast_view
from repro.portfolio import CostModel
from repro.portfolio import color_edges as portfolio_color_edges
from repro.portfolio import color_graph as portfolio_color_graph
from repro.portfolio.cost_model import quality_round_shape
from repro.portfolio.facade import _line_csr_entries

#: (n, degree) Luby speedup instances; the first full-mode row carries the
#: committed >= 10x claim.
LUBY_SIZES = ((2048, 8),) if QUICK else ((50_000, 64), (50_000, 16))
LUBY_SEED = 7
#: The vectorized side is best-of to damp allocation noise; the slow batched
#: side is measured once (its seconds dwarf any jitter).
VEC_REPEATS = 3

#: Small anchor for the vectorized overhead intercept (engine fit).
ENGINE_SMALL = (256, 8)
#: Instance for route/rounds calibration (Legal-Color runs on L(G)).
CALIBRATION_EDGE = (96, 6) if QUICK else (600, 8)

RESULTS_FILE = "portfolio_quick.json" if QUICK else "portfolio.json"
MODEL_FILE = "portfolio_model.json"


def _entries(n: int, degree: int) -> int:
    return n * degree + n


def _time_luby(network, engine: str):
    started = time.perf_counter()
    result = luby_vertex_coloring(network, seed=0, engine=engine)
    return time.perf_counter() - started, result


def _measure_luby(n: int, degree: int) -> dict:
    """One legacy-vs-vectorized Luby pair, identical colorings asserted."""
    network = graphs.random_regular(n, degree, seed=LUBY_SEED, backend="fast")
    fast = fast_view(network)
    batched_seconds, batched = _time_luby(fast, "batched")
    vectorized_seconds = float("inf")
    for _ in range(VEC_REPEATS):
        seconds, vectorized = _time_luby(fast, "vectorized")
        vectorized_seconds = min(vectorized_seconds, seconds)
    assert batched.colors == vectorized.colors, (
        f"engines diverged on luby at n={n}, degree={degree}"
    )
    assert np.array_equal(batched.color_column, vectorized.color_column)
    assert vectorized.metrics.fallback_phase_names == []
    return {
        "n": n,
        "degree": degree,
        "csr_entries": _entries(n, degree),
        "rounds": int(vectorized.metrics.rounds),
        "seconds": {
            "luby_batched": round(batched_seconds, 4),
            "luby_vectorized": round(vectorized_seconds, 4),
        },
        "speedup_luby_vectorized_over_legacy": round(
            batched_seconds / max(vectorized_seconds, 1e-9), 2
        ),
        "identical_outputs": True,
    }


def _calibrate(luby_rows: list) -> dict:
    """Measure the CostModel coefficients (see repro.portfolio.cost_model)."""
    # --- engine: per-entry slopes + vectorized intercept ----------------- #
    large_row = luby_rows[-1]  # the least extreme large row (lowest degree)
    large_entries = large_row["csr_entries"]
    small_n, small_degree = ENGINE_SMALL
    small = graphs.random_regular(small_n, small_degree, seed=LUBY_SEED, backend="fast")
    small_fast = fast_view(small)
    small_entries = _entries(small_n, small_degree)
    small_batched, _ = _time_luby(small_fast, "batched")
    small_vectorized = min(_time_luby(small_fast, "vectorized")[0] for _ in range(VEC_REPEATS))

    batched_us = large_row["seconds"]["luby_batched"] / large_entries * 1e6
    slope_us = (
        (large_row["seconds"]["luby_vectorized"] - small_vectorized)
        / (large_entries - small_entries)
        * 1e6
    )
    slope_us = max(slope_us, 1e-3)
    overhead_us = max(small_vectorized * 1e6 - slope_us * small_entries, 1.0)

    # --- compiled engine: same two-point fit, same instances ------------- #
    # Measured whether or not a kernel backend resolved (without one the
    # compiled engine runs its numpy fallback, and the recorded coefficients
    # honestly describe that configuration); `choose_engine` separately
    # refuses to *pick* "compiled" on backend-less machines.
    large_net = graphs.random_regular(
        large_row["n"], large_row["degree"], seed=LUBY_SEED, backend="fast"
    )
    large_fast = fast_view(large_net)
    small_compiled = min(
        _time_luby(small_fast, "compiled")[0] for _ in range(VEC_REPEATS)
    )
    large_compiled_seconds = float("inf")
    for _ in range(VEC_REPEATS):
        seconds, compiled_result = _time_luby(large_fast, "compiled")
        large_compiled_seconds = min(large_compiled_seconds, seconds)
    vectorized_result = _time_luby(large_fast, "vectorized")[1]
    assert compiled_result.colors == vectorized_result.colors, (
        "compiled and vectorized engines diverged on the calibration instance"
    )
    compiled_slope_us = max(
        (large_compiled_seconds - small_compiled)
        / (large_entries - small_entries)
        * 1e6,
        1e-3,
    )
    compiled_overhead_us = max(
        small_compiled * 1e6 - compiled_slope_us * small_entries, 1.0
    )

    # --- route: direct vs Lemma 5.2 simulation seconds per line entry ---- #
    edge_n, edge_degree = CALIBRATION_EDGE
    edge_net = graphs.random_regular(edge_n, edge_degree, seed=LUBY_SEED, backend="fast")
    line_entries = _line_csr_entries(fast_view(edge_net))
    route_us = {}
    for route in ("direct", "simulation"):
        best = float("inf")
        for _ in range(VEC_REPEATS):
            started = time.perf_counter()
            core_color_edges(edge_net, quality="linear", route=route, engine="vectorized")
            best = min(best, time.perf_counter() - started)
        route_us[route] = best / line_entries * 1e6

    # --- rounds: fitted multiplier per Theorem 4.8 preset shape ---------- #
    delta_line = max(2, 2 * edge_degree - 2)
    rounds_fit = {}
    for quality in ("linear", "subpolynomial", "superlinear"):
        result = core_color_edges(
            edge_net, quality=quality, route="direct", engine="vectorized"
        )
        shape = quality_round_shape(quality, delta_line, edge_n)
        rounds_fit[quality] = {
            "coeff": round(result.metrics.rounds / shape, 3),
            "const": 0.0,
        }

    return {
        "engine": {
            "batched_us_per_entry": round(batched_us, 4),
            "vectorized_us_per_entry": round(slope_us, 4),
            "vectorized_overhead_us": round(overhead_us, 1),
            "compiled_us_per_entry": round(compiled_slope_us, 4),
            "compiled_overhead_us": round(compiled_overhead_us, 1),
        },
        "route": {
            "direct_us_per_line_entry": round(route_us["direct"], 4),
            "simulation_us_per_line_entry": round(route_us["simulation"], 4),
        },
        "rounds": rounds_fit,
        "calibration": {
            "engine_small": {"n": small_n, "degree": small_degree,
                             "batched_seconds": round(small_batched, 4),
                             "vectorized_seconds": round(small_vectorized, 4),
                             "compiled_seconds": round(small_compiled, 4)},
            "engine_large": {"n": large_row["n"], "degree": large_row["degree"],
                             "compiled_seconds": round(large_compiled_seconds, 4)},
            "kernel_backend": kernels.backend_name(),
            "kernel_threads": kernels.get_num_threads(),
            "edge_instance": {"n": edge_n, "degree": edge_degree,
                              "line_csr_entries": line_entries},
        },
    }


def _pin_decisions(model: CostModel) -> list:
    """Run the facade on three instance classes and record what it picked."""
    pins = []

    small = graphs.random_regular(32, 4, seed=1, backend="fast")
    result = portfolio_color_edges(small, cost_model=model)
    pins.append({
        "instance": "small-regular(n=32, Delta=4)",
        "entry_point": "color_edges",
        "engine": result.decision.engine,
        "quality": result.decision.quality,
        "route": result.decision.route,
        "is_default": result.decision.is_default(),
    })
    assert result.decision.engine == "batched", (
        "tiny instances should stay on the batched default: "
        f"{result.decision.reasons['engine']}"
    )

    large_n, large_degree = (4096, 8) if QUICK else (20_000, 8)
    large = graphs.random_regular(large_n, large_degree, seed=2, backend="fast")
    result = portfolio_color_graph(large, cost_model=model, seed=1)
    pins.append({
        "instance": f"large-regular(n={large_n}, Delta={large_degree})",
        "entry_point": "color_graph",
        "engine": result.decision.engine,
        "quality": result.decision.quality,
        "route": result.decision.route,
        "is_default": result.decision.is_default(),
    })
    assert (
        result.decision.engine in ("vectorized", "compiled")
        and not result.decision.is_default()
    ), (
        "the large instance class must flip the engine off the default: "
        f"{result.decision.reasons['engine']}"
    )

    dense = graphs.complete_graph(48, backend="fast")
    result = portfolio_color_edges(dense, cost_model=model, budget=40.0)
    pins.append({
        "instance": "dense-complete(n=48, Delta=47)",
        "entry_point": "color_edges",
        "engine": result.decision.engine,
        "quality": result.decision.quality,
        "route": result.decision.route,
        "budget": 40.0,
        "is_default": result.decision.is_default(),
    })
    assert result.decision.quality == "superlinear", (
        "a tight round budget on a dense instance must degrade the preset: "
        f"{result.decision.reasons['quality']}"
    )
    return pins


def test_portfolio(benchmark):
    print_section(
        "Vectorized baseline kernels + portfolio cost-model calibration"
    )
    luby_rows = [_measure_luby(n, degree) for n, degree in LUBY_SIZES]
    print(
        format_table(
            ["n", "Delta", "CSR entries", "rounds", "batched (s)",
             "vectorized (s)", "speedup"],
            [
                [row["n"], row["degree"], row["csr_entries"], row["rounds"],
                 row["seconds"]["luby_batched"],
                 row["seconds"]["luby_vectorized"],
                 row["speedup_luby_vectorized_over_legacy"]]
                for row in luby_rows
            ],
        )
    )
    print("\nBit-identical colorings on every measured pair; zero fallbacks.")

    if not QUICK:
        headline = luby_rows[0]
        assert headline["speedup_luby_vectorized_over_legacy"] >= 10.0, (
            "vectorized Luby fell below the committed 10x at "
            f"n={headline['n']}, Delta={headline['degree']}"
        )

    model_data = _calibrate(luby_rows)
    model = CostModel.from_mapping(model_data, source="fresh-calibration")
    print_section("Calibrated cost model")
    print(json.dumps({k: model_data[k] for k in ("engine", "route", "rounds")},
                     indent=2))

    decisions = _pin_decisions(model)
    print_section("Portfolio decisions with the fresh model")
    for pin in decisions:
        print(
            f"  {pin['instance']:<40} -> engine={pin['engine']}, "
            f"quality={pin['quality']}, route={pin['route']}"
            + ("  [non-default]" if not pin["is_default"] else "")
        )

    if os.environ.get("REPRO_BENCH_RECORD"):
        results_dir = Path(__file__).parent / "results"
        results_dir.mkdir(exist_ok=True)
        record = {
            "workload": {
                "summary": "vectorized vs batched Luby kernel + portfolio "
                "cost-model calibration",
                "graph": f"random_regular(n, degree, seed={LUBY_SEED}, "
                "backend='fast')",
            },
            "quick": QUICK,
            "sizes": luby_rows,
            "decisions": decisions,
            "python": platform.python_version(),
            "platform": platform.platform(),
        }
        out = results_dir / RESULTS_FILE
        out.write_text(json.dumps(record, indent=2) + "\n")
        print(f"\nRecorded results to {out}")
        if not QUICK:
            model_record = dict(model_data)
            model_record["decisions"] = decisions
            model_record["python"] = platform.python_version()
            model_record["platform"] = platform.platform()
            model_out = results_dir / MODEL_FILE
            model_out.write_text(json.dumps(model_record, indent=2) + "\n")
            print(f"Recorded cost model to {model_out}")

    run_once(benchmark, lambda: _measure_luby(*LUBY_SIZES[-1]))
