"""Four execution engines compared, plus setup cost and a cached parallel sweep.

Five claims are demonstrated here (committed numbers in
``benchmarks/results/engine_speedup.md`` / ``engine_speedup.json``):

1. **Speedup.**  On random regular graphs up to ``n = 1,000,000``, Procedure
   Legal-Color (Theorem 4.8(2) parameters) runs substantially faster on the
   batched engine than on the reference scheduler, and another order of
   magnitude faster on the vectorized engine -- >= 5x over batched at
   ``n >= 50,000`` -- while producing the *identical* coloring and identical
   metrics (the equivalence suite locks this down for the whole algorithm
   zoo; this benchmark re-checks it on the timed instances).  The compiled
   engine (fused kernels, ``repro.local_model.kernels``) beats vectorized
   by >= 3x at ``n >= 100,000`` whenever a kernel backend resolves, again
   bit-identically; its column is skipped when no backend resolves.  The
   reference scheduler is only timed at the smallest full-mode size; at
   ``n >= 50,000`` it would take tens of minutes without adding information.
   A thread-scaling row times the compiled engine at one kernel thread vs.
   all available threads on the same instance.
2. **Edge coloring at scale.**  End-to-end ``color_edges`` (Theorem 5.5
   direct route: CSR line-graph builder + the Corollary 5.4 edge kernel)
   up to ``|E| >= 10^6`` (``n = 131,072``, ``Delta = 16``; the line graph
   ``L(G)`` has ``|E|`` nodes and ~3 * 10^7 CSR entries).  The vectorized
   runs are asserted to execute with zero batched fallbacks, and the
   vectorized/batched ratio at ``n = 20,000`` is CI-gated like the
   Legal-Color ratios.
3. **Setup at array speed.**  Everything *around* the engines -- workload
   generation, CSR compilation, verification -- also runs on arrays: the
   ``backend="fast"`` generator seam plus the vectorized verification
   oracles make "build the graph + get it CSR-ready + verify the coloring"
   >= 10x faster than the legacy networkx -> ``Network`` -> Python-loop
   path at ``n = 131,072`` (``Delta = 16``), on both the vertex route and
   the line-graph route (``L(G)`` with ``|V(L)| >= 10^6``).  Both oracle
   paths are asserted to agree (accept the real coloring, reject a planted
   violation), and the ratios are CI-gated like the engine ratios.
4. **Sweep throughput.**  A 36-scenario sweep (degree x algorithm x seed)
   shards across worker processes via ``ExperimentRunner`` and is served
   entirely from the on-disk cache on the second pass.

Run with::

    REPRO_BENCH_RECORD=1 PYTHONPATH=src python -m pytest \
        benchmarks/bench_engine_speedup.py --benchmark-only -s

``REPRO_BENCH_RECORD=1`` additionally rewrites
``benchmarks/results/engine_speedup.json`` (or ``engine_speedup_quick.json``
under ``REPRO_BENCH_QUICK=1`` -- the committed quick record is the baseline
of the CI perf-regression gate, see ``benchmarks/check_regression.py``).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from common_bench import QUICK, bench_runner, print_section, run_once

from repro import graphs
from repro.analysis import format_table
from repro.core import color_edges, color_vertices
from repro.experiments import GraphSpec, Scenario
from repro.graphs.line_graph import build_line_graph_fast, build_line_graph_network
from repro.local_model import kernels
from repro.local_model.fast_network import fast_view
from repro.verification import is_legal_edge_coloring, is_legal_vertex_coloring

SPEEDUP_DEGREE = 32
SPEEDUP_SEED = 3
#: Neighborhood-independence bound passed to Procedure Legal-Color.
SPEEDUP_C = 5

#: Whether a compiled kernel backend resolved on this machine.  Without one
#: the compiled column would just re-time the numpy fallback plus dispatch
#: overhead, so it is skipped (and the record says why).
COMPILED_BACKEND = kernels.backend_name()


def _with_compiled(engines):
    return engines + ("compiled",) if COMPILED_BACKEND else engines


#: (n, engines timed at that size).  The reference scheduler is only timed
#: where it finishes in seconds; batched-vs-vectorized-vs-compiled is the
#: interesting comparison at scale.  The largest full-mode size times only
#: the two array engines -- the batched engine would take minutes there.
#: Quick mode times the compiled ratio on its own n = 20,000 row rather
#: than at n = 400: at tiny sizes the vectorized engine's per-round numpy
#: overhead dominates and the compiled/vectorized ratio is large but noisy,
#: which is exactly what a 30%-tolerance CI gate cannot sit on.
SPEEDUP_SIZES = (
    (
        (400, ("reference", "batched", "vectorized")),
        (20_000, _with_compiled(("vectorized",))),
    )
    if QUICK
    else (
        (2000, _with_compiled(("reference", "batched", "vectorized"))),
        (50_000, _with_compiled(("batched", "vectorized"))),
        (100_000, _with_compiled(("batched", "vectorized"))),
        (1_000_000, _with_compiled(("vectorized",))),
    )
)

#: Instance for the one-thread vs. all-threads compiled timing (full mode
#: reuses the n = 100,000 Legal-Color workload).
THREAD_SCALING_N = 400 if QUICK else 100_000

#: Edge-coloring scale column: (n, degree, engines timed).  Degrees are
#: chosen so Delta(L) = 2 (Delta - 1) exceeds the superlinear preset's
#: recursion threshold -- the Corollary 5.4 edge kernel actually executes.
#: The largest full-mode instance has |E| >= 10^6 (the line graph L(G) the
#: pipeline vertex-colors has |E| nodes); only the vectorized engine is
#: timed there -- the batched engine would take tens of minutes.
#: Quick mode skips the compiled edge column: at |V(L)| = 1200 the runs
#: take ~10 ms and the compiled/vectorized ratio is too noisy to CI-gate
#: (the n = 20,000 Legal-Color row above carries the gated compiled ratio).
EDGE_SIZES = (
    ((200, 12, ("reference", "batched", "vectorized")),)
    if QUICK
    else (
        (20_000, 16, _with_compiled(("batched", "vectorized"))),
        (131_072, 16, _with_compiled(("vectorized",))),
    )
)

#: Setup-cost column: (n, degree).  Chosen to match the largest EDGE_SIZES
#: instance in full mode so the (expensive) vectorized edge coloring of the
#: legacy-built graph is computed once and reused for the verification
#: timings.
SETUP_SIZES = ((2048, 12),) if QUICK else ((131_072, 16),)

SWEEP_DEGREES = (4, 6) if QUICK else (4, 6, 8, 12, 16, 22)
SWEEP_SEEDS = (1, 2, 3)
SWEEP_N = 32 if QUICK else 64

RESULTS_FILE = "engine_speedup_quick.json" if QUICK else "engine_speedup.json"

#: Runs faster than this are repeated (best-of, up to _MAX_REPEATS) so the
#: perf-regression gate never compares single ~10 ms samples across noisy CI
#: machines; runs beyond _SINGLE_SHOT_SECONDS stay single-shot.  In the
#: window between the two, at least two samples are taken: a first run that
#: lands just past the threshold can be all warmup (page cache, allocator
#: growth after a multi-minute neighbor), and a single such sample once
#: recorded a 5x-inflated wall time for a 0.35s workload.
_MIN_RELIABLE_SECONDS = 0.5
_SINGLE_SHOT_SECONDS = 10.0
_MAX_REPEATS = 5


def _timed(make_run):
    """Best-of-``_MAX_REPEATS`` timing of ``make_run`` (deterministic runs)."""
    result = None
    best = None
    for attempt in range(_MAX_REPEATS):
        started = time.perf_counter()
        run = make_run()
        elapsed = time.perf_counter() - started
        if result is None:
            result = run  # Deterministic: every repeat produces the same result.
        if best is None or elapsed < best:
            best = elapsed
        if best >= _SINGLE_SHOT_SECONDS:
            break
        if best >= _MIN_RELIABLE_SECONDS and attempt >= 1:
            break
    return result, best


def _top_phases(metrics, k: int = 4) -> dict:
    """The ``k`` most expensive phases of a run, by measured wall seconds."""
    ranked = sorted(metrics.phase_seconds.items(), key=lambda kv: kv[1], reverse=True)
    return {name: round(seconds, 4) for name, seconds in ranked[:k]}


def _timed_legal_color(network, engine: str):
    return _timed(
        lambda: color_vertices(network, c=SPEEDUP_C, quality="superlinear", engine=engine)
    )


def _timed_edge_color(network, engine: str):
    return _timed(
        lambda: color_edges(
            network, quality="superlinear", route="direct", engine=engine
        )
    )


def _run_edge_size(n: int, degree: int, engines, edge_runs=None) -> dict:
    """Time end-to-end ``color_edges`` per engine; verify identical outputs."""
    network = graphs.random_regular(n, degree, seed=SPEEDUP_SEED)
    results = {}
    seconds = {}
    for engine in engines:
        results[engine], seconds[engine] = _timed_edge_color(network, engine)
    if edge_runs is not None and "vectorized" in results:
        # Reused by the setup-cost section so the expensive edge coloring of
        # this graph is computed exactly once per benchmark run.
        edge_runs[(n, degree)] = (network, results["vectorized"])

    baseline_engine = engines[0]
    baseline = results[baseline_engine]
    for engine in engines[1:]:
        assert results[engine].edge_colors == baseline.edge_colors, (
            f"{engine} diverged from {baseline_engine} at n={n}"
        )
        assert results[engine].metrics.summary() == baseline.metrics.summary()
    if "vectorized" in results:
        # The whole edge-mode pipeline (CSR line-graph builder + Corollary
        # 5.4 kernel + psi-selection + bottom coloring) must stay on the
        # numpy kernels end to end.
        fallbacks = results["vectorized"].metrics.fallback_phase_names
        assert not fallbacks, f"vectorized edge run fell back at n={n}: {fallbacks}"
        assert len(results["vectorized"].levels) >= 1, (
            "edge instance too small: the Corollary 5.4 recursion never ran"
        )
    if "compiled" in results:
        # With a resolved backend, every kernel-covered phase must actually
        # dispatch to it; a numpy fallback would quietly re-time vectorized.
        fallbacks = results["compiled"].metrics.compiled_fallback_phase_names
        assert not fallbacks, f"compiled edge run fell back at n={n}: {fallbacks}"

    row = {
        "n": n,
        "degree": degree,
        "edges": network.num_edges,
        "seconds": {engine: round(seconds[engine], 4) for engine in engines},
        "rounds": baseline.metrics.rounds,
        "palette": baseline.palette,
        "levels": len(baseline.levels),
        "top_phase_seconds": {
            engine: _top_phases(results[engine].metrics) for engine in engines
        },
        "identical_outputs": True,
    }
    if "reference" in seconds and "batched" in seconds:
        row["speedup_batched_over_reference"] = round(
            seconds["reference"] / max(seconds["batched"], 1e-9), 2
        )
    if "batched" in seconds and "vectorized" in seconds:
        row["speedup_vectorized_over_batched"] = round(
            seconds["batched"] / max(seconds["vectorized"], 1e-9), 2
        )
    if "reference" in seconds and "vectorized" in seconds:
        row["speedup_vectorized_over_reference"] = round(
            seconds["reference"] / max(seconds["vectorized"], 1e-9), 2
        )
    if "vectorized" in seconds and "compiled" in seconds:
        row["speedup_compiled_over_vectorized"] = round(
            seconds["vectorized"] / max(seconds["compiled"], 1e-9), 2
        )
    return row


def _run_setup_size(n: int, degree: int, edge_runs) -> dict:
    """Time (graph build + CSR readiness + verification) on both backends.

    Vertex route: legacy = networkx generation -> ``Network`` -> CSR compile
    -> mapping-loop legality check; fast = ``backend="fast"`` generation
    (CSR-native, nothing to compile) -> masked-CSR legality check.  Line
    route: the same with the ``L(G)`` construction (legacy dict-of-sets
    builder vs. the CSR builder) and the edge-coloring oracles.  Each
    pipeline verifies the coloring its own graph received from an untimed
    vectorized run; both oracle paths are additionally asserted to agree on
    a shared input, including a planted violation.
    """
    from repro.local_model.fast_network import FastNetwork

    fast_net, fast_build = _timed(
        lambda: graphs.random_regular(n, degree, seed=SPEEDUP_SEED, backend="fast")
    )
    legacy_net, legacy_build = _timed(
        lambda: graphs.random_regular(n, degree, seed=SPEEDUP_SEED, backend="legacy")
    )
    _, legacy_compile = _timed(lambda: FastNetwork(legacy_net))

    fast_coloring = color_vertices(
        fast_net, c=SPEEDUP_C, quality="superlinear", engine="vectorized"
    )
    legacy_coloring = color_vertices(
        legacy_net, c=SPEEDUP_C, quality="superlinear", engine="vectorized"
    )
    fast_ok, fast_verify = _timed(
        lambda: is_legal_vertex_coloring(fast_net, fast_coloring.color_column)
    )
    legacy_ok, legacy_verify = _timed(
        lambda: is_legal_vertex_coloring(legacy_net, legacy_coloring.colors)
    )
    assert fast_ok and legacy_ok

    # Both oracle paths must agree on a shared input -- including rejection
    # of a planted violation -- before their timings are comparable.
    planted_column = legacy_coloring.color_column.copy()
    victim = int(fast_view(legacy_net).indices_np[0])
    planted_column[victim] = planted_column[0]
    planted_mapping = dict(legacy_coloring.colors)
    first = legacy_net.nodes()[0]
    planted_mapping[legacy_net.neighbors(first)[0]] = planted_mapping[first]
    assert not is_legal_vertex_coloring(legacy_net, planted_column)
    assert not is_legal_vertex_coloring(legacy_net, planted_mapping)
    assert is_legal_vertex_coloring(legacy_net, legacy_coloring.color_column)

    # ------------------------------------------------------------------ #
    # Line-graph route (same base graph for both L(G) constructions).
    # ------------------------------------------------------------------ #
    if (n, degree) in edge_runs:
        edge_net, edge_result = edge_runs[(n, degree)]
    else:
        edge_net = legacy_net
        edge_result = color_edges(
            edge_net, quality="superlinear", route="direct", engine="vectorized"
        )
    line_fast, line_fast_build = _timed(lambda: build_line_graph_fast(edge_net))
    _, line_legacy_build = _timed(lambda: build_line_graph_network(edge_net))
    edge_fast_ok, edge_fast_verify = _timed(
        lambda: is_legal_edge_coloring(edge_net, edge_result.color_column)
    )
    edge_legacy_ok, edge_legacy_verify = _timed(
        lambda: is_legal_edge_coloring(edge_net, edge_result.edge_colors)
    )
    assert edge_fast_ok and edge_legacy_ok

    # Planted edge violation: the first two canonical edges share their
    # lower endpoint on these graphs (degree >= 2), so equal colors clash.
    edges = edge_net.edges()
    assert edges[0][0] == edges[1][0]
    planted_edge_column = edge_result.color_column.copy()
    planted_edge_column[1] = planted_edge_column[0]
    planted_edge_mapping = dict(edge_result.edge_colors)
    planted_edge_mapping[edges[1]] = planted_edge_mapping[edges[0]]
    assert not is_legal_edge_coloring(edge_net, planted_edge_column)
    assert not is_legal_edge_coloring(edge_net, planted_edge_mapping)

    seconds = {
        "legacy_vertex": round(legacy_build + legacy_compile + legacy_verify, 4),
        "fast_vertex": round(fast_build + fast_verify, 4),
        "legacy_line": round(legacy_build + line_legacy_build + edge_legacy_verify, 4),
        "fast_line": round(fast_build + line_fast_build + edge_fast_verify, 4),
    }
    return {
        "n": n,
        "degree": degree,
        "edges": edge_net.num_edges,
        "line_nodes": line_fast.num_nodes,
        "seconds": seconds,
        "components": {
            "legacy_build": round(legacy_build, 4),
            "legacy_csr_compile": round(legacy_compile, 4),
            "legacy_vertex_verify": round(legacy_verify, 4),
            "fast_build": round(fast_build, 4),
            "fast_vertex_verify": round(fast_verify, 4),
            "legacy_line_build": round(line_legacy_build, 4),
            "fast_line_build": round(line_fast_build, 4),
            "legacy_edge_verify": round(edge_legacy_verify, 4),
            "fast_edge_verify": round(edge_fast_verify, 4),
        },
        "speedup_fast_setup_over_legacy": round(
            seconds["legacy_vertex"] / max(seconds["fast_vertex"], 1e-9), 2
        ),
        "speedup_fast_line_setup_over_legacy": round(
            seconds["legacy_line"] / max(seconds["fast_line"], 1e-9), 2
        ),
        "identical_outputs": True,
    }


def _sweep_scenarios():
    scenarios = []
    for degree in SWEEP_DEGREES:
        for seed in SWEEP_SEEDS:
            spec = GraphSpec("random_regular", n=SWEEP_N, degree=degree, seed=seed)
            scenarios.append(
                Scenario.make(
                    name=f"legal-d{degree}-s{seed}",
                    graph=spec,
                    algorithm="legal_coloring",
                    params={"c": degree, "quality": "superlinear"},
                )
            )
            scenarios.append(
                Scenario.make(
                    name=f"edge-d{degree}-s{seed}",
                    graph=spec,
                    algorithm="edge_coloring",
                    params={"quality": "superlinear", "route": "direct"},
                )
            )
    return scenarios


def _run_size(n: int, engines) -> dict:
    """Time every engine on one instance; verify bit-identical outputs."""
    # Legacy (networkx) generation keeps the historical rows comparable; at
    # the million-node size the legacy builder alone takes tens of minutes
    # and ~4 GB, so that row generates through the fast CSR builder --
    # generation is untimed, and the within-row engine ratios are what the
    # record (and the CI gate) compare.
    backend = "fast" if n >= 500_000 else "legacy"
    network = graphs.random_regular(
        n, SPEEDUP_DEGREE, seed=SPEEDUP_SEED, backend=backend
    )
    results = {}
    seconds = {}
    for engine in engines:
        results[engine], seconds[engine] = _timed_legal_color(network, engine)

    baseline_engine = engines[0]
    baseline = results[baseline_engine]
    for engine in engines[1:]:
        assert results[engine].colors == baseline.colors, (
            f"{engine} diverged from {baseline_engine} at n={n}"
        )
        assert results[engine].metrics.summary() == baseline.metrics.summary()
    if "vectorized" in results:
        # The whole Legal-Color pipeline must run on the numpy kernels: a
        # single batched fallback would silently hand the wall-clock back to
        # per-node Python.
        fallbacks = results["vectorized"].metrics.fallback_phase_names
        assert not fallbacks, f"vectorized run fell back at n={n}: {fallbacks}"
    if "compiled" in results:
        # With a resolved backend, every kernel-covered phase must actually
        # dispatch to it; a numpy fallback would quietly re-time vectorized.
        fallbacks = results["compiled"].metrics.compiled_fallback_phase_names
        assert not fallbacks, f"compiled run fell back at n={n}: {fallbacks}"

    row = {
        "n": n,
        "degree": SPEEDUP_DEGREE,
        "generator_backend": backend,
        "seconds": {engine: round(seconds[engine], 4) for engine in engines},
        "rounds": baseline.metrics.rounds,
        "messages": baseline.metrics.messages,
        "palette": baseline.palette,
        "top_phase_seconds": {
            engine: _top_phases(results[engine].metrics) for engine in engines
        },
        "identical_outputs": True,
    }
    if "reference" in seconds and "batched" in seconds:
        row["speedup_batched_over_reference"] = round(
            seconds["reference"] / max(seconds["batched"], 1e-9), 2
        )
    if "batched" in seconds and "vectorized" in seconds:
        row["speedup_vectorized_over_batched"] = round(
            seconds["batched"] / max(seconds["vectorized"], 1e-9), 2
        )
    if "reference" in seconds and "vectorized" in seconds:
        # End-to-end ratio of the fully vectorized pipeline (kernels plus
        # driver-level marshalling) -- the quantity the columnar state store
        # attacks; gated by benchmarks/check_regression.py.
        row["speedup_vectorized_over_reference"] = round(
            seconds["reference"] / max(seconds["vectorized"], 1e-9), 2
        )
    if "vectorized" in seconds and "compiled" in seconds:
        # End-to-end ratio of the fused kernel backend over the numpy
        # kernels -- the quantity the compiled engine attacks; gated by
        # benchmarks/check_regression.py.
        row["speedup_compiled_over_vectorized"] = round(
            seconds["vectorized"] / max(seconds["compiled"], 1e-9), 2
        )
    return row


def _run_thread_scaling() -> dict:
    """Time the compiled engine at one kernel thread vs. all available.

    Same instance, same backend, identical outputs asserted across thread
    counts (the kernels are written so concurrent recolorings never race on
    a decision input).  On a single-core machine both timings use one
    thread and the ratio is ~1.0 -- the record keeps ``available_threads``
    next to the ratio so the reader can tell "no scaling headroom" from
    "scaling regression".
    """
    network = graphs.random_regular(THREAD_SCALING_N, SPEEDUP_DEGREE, seed=SPEEDUP_SEED)
    available = kernels.get_num_threads()
    try:
        kernels.set_num_threads(1)
        single_result, single_seconds = _timed_legal_color(network, "compiled")
        kernels.set_num_threads(available)
        multi_result, multi_seconds = _timed_legal_color(network, "compiled")
    finally:
        kernels.set_num_threads(available)
    assert single_result.colors == multi_result.colors, (
        "compiled engine output depends on the kernel thread count"
    )
    assert single_result.metrics.summary() == multi_result.metrics.summary()
    return {
        "n": THREAD_SCALING_N,
        "degree": SPEEDUP_DEGREE,
        "backend": COMPILED_BACKEND,
        "available_threads": available,
        "seconds": {
            "one_thread": round(single_seconds, 4),
            "all_threads": round(multi_seconds, 4),
        },
        "thread_scaling": round(single_seconds / max(multi_seconds, 1e-9), 2),
        "identical_outputs": True,
    }


def test_engine_speedup(benchmark):
    rows = []
    backend_note = (
        f"kernel backend '{COMPILED_BACKEND}', {kernels.get_num_threads()} thread(s)"
        if COMPILED_BACKEND
        else f"no kernel backend ({kernels.backend_reason()}); compiled column skipped"
    )
    print_section(
        "Four execution engines -- Procedure Legal-Color "
        f"(Delta = {SPEEDUP_DEGREE}, c = {SPEEDUP_C}; {backend_note})"
    )
    for n, engines in SPEEDUP_SIZES:
        row = _run_size(n, engines)
        rows.append(row)

    print(
        format_table(
            [
                "n",
                "reference (s)",
                "batched (s)",
                "vectorized (s)",
                "compiled (s)",
                "batched/ref",
                "vec/batched",
                "comp/vec",
                "rounds",
                "palette",
            ],
            [
                [
                    row["n"],
                    row["seconds"].get("reference", "-"),
                    row["seconds"].get("batched", "-"),
                    row["seconds"].get("vectorized", "-"),
                    row["seconds"].get("compiled", "-"),
                    row.get("speedup_batched_over_reference", "-"),
                    row.get("speedup_vectorized_over_batched", "-"),
                    row.get("speedup_compiled_over_vectorized", "-"),
                    row["rounds"],
                    row["palette"],
                ]
                for row in rows
            ],
        )
    )
    print("\nIdentical colorings and metrics across all timed engines.")

    # Per-phase wall time at the largest size: where the compiled kernels
    # actually win (satellite of the phase_seconds instrumentation).
    largest = rows[-1]
    phase_engines = [e for e in ("vectorized", "compiled") if e in largest["seconds"]]
    phase_names = sorted(
        {name for engine in phase_engines for name in largest["top_phase_seconds"][engine]}
    )
    if phase_names:
        print(f"\nMost expensive phases at n={largest['n']} (wall seconds):")
        print(
            format_table(
                ["phase"] + [f"{engine} (s)" for engine in phase_engines],
                [
                    [name]
                    + [
                        largest["top_phase_seconds"][engine].get(name, "-")
                        for engine in phase_engines
                    ]
                    for name in phase_names
                ],
            )
        )

    # The committed record claims >= 5x vectorized/batched at n >= 50,000
    # and >= 3x compiled/vectorized at n >= 100,000; keep the in-test
    # bounds looser so a loaded box does not flake.
    if not QUICK:
        for row in rows:
            if row["n"] >= 50_000 and "speedup_vectorized_over_batched" in row:
                speedup = row["speedup_vectorized_over_batched"]
                assert speedup >= 3.0, (
                    f"vectorized engine only {speedup:.2f}x faster at n={row['n']}"
                )
            if row["n"] >= 100_000 and "speedup_compiled_over_vectorized" in row:
                speedup = row["speedup_compiled_over_vectorized"]
                assert speedup >= 1.5, (
                    f"compiled engine only {speedup:.2f}x faster at n={row['n']}"
                )

    # ------------------------------------------------------------------ #
    # Thread scaling: compiled engine, one kernel thread vs. all.
    # ------------------------------------------------------------------ #
    thread_row = None
    if COMPILED_BACKEND:
        print_section(
            "Compiled engine thread scaling -- one kernel thread vs. all "
            f"available (backend '{COMPILED_BACKEND}')"
        )
        thread_row = _run_thread_scaling()
        print(
            format_table(
                [
                    "n",
                    "threads avail",
                    "1 thread (s)",
                    "all threads (s)",
                    "scaling",
                ],
                [
                    [
                        thread_row["n"],
                        thread_row["available_threads"],
                        thread_row["seconds"]["one_thread"],
                        thread_row["seconds"]["all_threads"],
                        thread_row["thread_scaling"],
                    ]
                ],
            )
        )
        print(
            "\nIdentical colorings and metrics across thread counts."
            + (
                "  (Single-core machine: no scaling headroom to measure.)"
                if thread_row["available_threads"] == 1
                else ""
            )
        )

    # ------------------------------------------------------------------ #
    # Edge coloring at scale (Theorem 5.5 direct route on L(G)).
    # ------------------------------------------------------------------ #
    print_section(
        "Edge coloring -- color_edges (Theorem 5.5 direct route, "
        "CSR line-graph builder + Corollary 5.4 kernel)"
    )
    edge_rows = []
    edge_runs = {}
    for n, degree, engines in EDGE_SIZES:
        edge_rows.append(_run_edge_size(n, degree, engines, edge_runs))

    print(
        format_table(
            [
                "n",
                "Delta",
                "|E| = |V(L)|",
                "reference (s)",
                "batched (s)",
                "vectorized (s)",
                "compiled (s)",
                "vec/batched",
                "comp/vec",
                "levels",
                "palette",
            ],
            [
                [
                    row["n"],
                    row["degree"],
                    row["edges"],
                    row["seconds"].get("reference", "-"),
                    row["seconds"].get("batched", "-"),
                    row["seconds"].get("vectorized", "-"),
                    row["seconds"].get("compiled", "-"),
                    row.get("speedup_vectorized_over_batched", "-"),
                    row.get("speedup_compiled_over_vectorized", "-"),
                    row["levels"],
                    row["palette"],
                ]
                for row in edge_rows
            ],
        )
    )
    print(
        "\nIdentical edge colorings and metrics across all timed engines; "
        "zero batched fallbacks on every vectorized run"
        + (
            ", zero numpy fallbacks on every compiled run."
            if COMPILED_BACKEND
            else "."
        )
    )

    # The committed record claims >= 10x end-to-end at n = 20,000; keep the
    # in-test bound looser so a loaded box does not flake.
    if not QUICK:
        for row in edge_rows:
            if "speedup_vectorized_over_batched" in row:
                speedup = row["speedup_vectorized_over_batched"]
                assert speedup >= 5.0, (
                    f"vectorized edge coloring only {speedup:.2f}x faster "
                    f"at n={row['n']}"
                )

    # ------------------------------------------------------------------ #
    # Setup cost: generation + CSR readiness + verification, both backends.
    # ------------------------------------------------------------------ #
    print_section(
        "Setup cost -- graph build + CSR compile + verification "
        "(legacy networkx/Network path vs. backend='fast' + array oracles)"
    )
    setup_rows = [_run_setup_size(n, degree, edge_runs) for n, degree in SETUP_SIZES]
    print(
        format_table(
            [
                "n",
                "Delta",
                "legacy vertex (s)",
                "fast vertex (s)",
                "legacy line (s)",
                "fast line (s)",
                "vertex speedup",
                "line speedup",
            ],
            [
                [
                    row["n"],
                    row["degree"],
                    row["seconds"]["legacy_vertex"],
                    row["seconds"]["fast_vertex"],
                    row["seconds"]["legacy_line"],
                    row["seconds"]["fast_line"],
                    row["speedup_fast_setup_over_legacy"],
                    row["speedup_fast_line_setup_over_legacy"],
                ]
                for row in setup_rows
            ],
        )
    )
    print(
        "\nBoth verification paths accept the computed colorings and reject "
        "a planted violation."
    )

    # The committed record claims >= 10x on both routes at n = 131,072; keep
    # the in-test bound looser so a loaded box does not flake.
    if not QUICK:
        for row in setup_rows:
            assert row["speedup_fast_setup_over_legacy"] >= 5.0, row
            assert row["speedup_fast_line_setup_over_legacy"] >= 5.0, row

    # ------------------------------------------------------------------ #
    # Parallel sweep with caching.
    # ------------------------------------------------------------------ #
    scenarios = _sweep_scenarios()
    assert len(scenarios) >= 32 or QUICK

    runner = bench_runner()
    sweep_started = time.perf_counter()
    first_pass = runner.run(scenarios)
    first_seconds = time.perf_counter() - sweep_started

    sweep_started = time.perf_counter()
    second_pass = runner.run(scenarios)
    second_seconds = time.perf_counter() - sweep_started

    assert all(result.verified for result in first_pass)
    assert all(result.cached for result in second_pass)
    assert [r.coloring_digest for r in first_pass] == [
        r.coloring_digest for r in second_pass
    ]

    fresh = sum(1 for result in first_pass if not result.cached)
    print(
        f"\nSweep: {len(scenarios)} scenarios, {fresh} executed fresh "
        f"({first_seconds:.2f}s), second pass fully cached ({second_seconds:.3f}s)."
    )

    if os.environ.get("REPRO_BENCH_RECORD"):
        record = {
            "workload": {
                "algorithm": "legal_coloring (Theorem 4.8(2) parameters)",
                "graph": (
                    f"random_regular(n, degree={SPEEDUP_DEGREE}, "
                    f"seed={SPEEDUP_SEED})"
                ),
                "c": SPEEDUP_C,
            },
            "edge_workload": {
                "algorithm": "color_edges (Theorem 5.5 direct route)",
                "graph": f"random_regular(n, degree, seed={SPEEDUP_SEED})",
                "quality": "superlinear",
            },
            "setup_workload": {
                "summary": (
                    "graph build + CSR readiness + coloring verification; "
                    "legacy = networkx -> Network -> compile -> mapping "
                    "oracles, fast = backend='fast' arrays -> CSR oracles"
                ),
                "graph": f"random_regular(n, degree, seed={SPEEDUP_SEED})",
            },
            "quick": QUICK,
            "kernel_backend": COMPILED_BACKEND,
            "kernel_threads": kernels.get_num_threads() if COMPILED_BACKEND else 0,
            "sizes": rows,
            "edge_sizes": edge_rows,
            "setup_sizes": setup_rows,
            "thread_scaling": thread_row,
            "sweep": {
                "scenarios": len(scenarios),
                "fresh_seconds": round(first_seconds, 3),
                "cached_seconds": round(second_seconds, 4),
            },
            "python": platform.python_version(),
            "platform": platform.platform(),
        }
        out = Path(__file__).parent / "results" / RESULTS_FILE
        out.parent.mkdir(exist_ok=True)
        out.write_text(json.dumps(record, indent=2) + "\n")
        print(f"\nRecorded results to {out}")

    # Time the vectorized run once more under pytest-benchmark.
    timed_n = SPEEDUP_SIZES[0][0]
    timed_network = graphs.random_regular(timed_n, SPEEDUP_DEGREE, seed=SPEEDUP_SEED)
    run_once(benchmark, lambda: _timed_legal_color(timed_network, "vectorized"))
