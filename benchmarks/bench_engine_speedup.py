"""Batched round engine vs. reference scheduler, plus a cached parallel sweep.

Two claims are demonstrated here (committed numbers in
``benchmarks/results/engine_speedup.md``):

1. **Speedup.**  On a 2000-node random regular graph, Procedure Legal-Color
   (Theorem 4.8(2) parameters) runs >= 5x faster on the batched engine than
   on the reference scheduler, while producing the *identical* coloring and
   identical metrics (the equivalence suite locks this down for the whole
   algorithm zoo; this benchmark re-checks it on the timed instance).
2. **Sweep throughput.**  A 36-scenario sweep (degree x algorithm x seed)
   shards across worker processes via ``ExperimentRunner`` and is served
   entirely from the on-disk cache on the second pass.

Run with::

    REPRO_BENCH_RECORD=1 PYTHONPATH=src python -m pytest \
        benchmarks/bench_engine_speedup.py --benchmark-only -s

``REPRO_BENCH_RECORD=1`` additionally rewrites
``benchmarks/results/engine_speedup.json``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from common_bench import QUICK, bench_runner, print_section, run_once

from repro import graphs
from repro.analysis import format_table
from repro.core import color_vertices
from repro.experiments import GraphSpec, Scenario

SPEEDUP_N = 400 if QUICK else 2000
SPEEDUP_DEGREE = 32
SPEEDUP_SEED = 3
#: Neighborhood-independence bound passed to Procedure Legal-Color.
SPEEDUP_C = 5

SWEEP_DEGREES = (4, 6) if QUICK else (4, 6, 8, 12, 16, 22)
SWEEP_SEEDS = (1, 2, 3)
SWEEP_N = 32 if QUICK else 64


def _timed_legal_color(network, engine: str):
    started = time.perf_counter()
    result = color_vertices(
        network, c=SPEEDUP_C, quality="superlinear", engine=engine
    )
    return result, time.perf_counter() - started


def _sweep_scenarios():
    scenarios = []
    for degree in SWEEP_DEGREES:
        for seed in SWEEP_SEEDS:
            spec = GraphSpec("random_regular", n=SWEEP_N, degree=degree, seed=seed)
            scenarios.append(
                Scenario.make(
                    name=f"legal-d{degree}-s{seed}",
                    graph=spec,
                    algorithm="legal_coloring",
                    params={"c": degree, "quality": "superlinear"},
                )
            )
            scenarios.append(
                Scenario.make(
                    name=f"edge-d{degree}-s{seed}",
                    graph=spec,
                    algorithm="edge_coloring",
                    params={"quality": "superlinear", "route": "direct"},
                )
            )
    return scenarios


def test_engine_speedup(benchmark):
    network = graphs.random_regular(SPEEDUP_N, SPEEDUP_DEGREE, seed=SPEEDUP_SEED)

    reference_result, reference_seconds = _timed_legal_color(network, "reference")
    batched_result, batched_seconds = _timed_legal_color(network, "batched")

    # Bit-identical outputs on the timed instance.
    assert batched_result.colors == reference_result.colors
    assert batched_result.metrics.summary() == reference_result.metrics.summary()

    speedup = reference_seconds / max(batched_seconds, 1e-9)

    print_section(
        f"Batched engine vs. reference scheduler -- Procedure Legal-Color "
        f"(n = {SPEEDUP_N}, Delta = {SPEEDUP_DEGREE})"
    )
    print(
        format_table(
            ["engine", "wall time (s)", "rounds", "messages", "palette"],
            [
                [
                    "reference",
                    round(reference_seconds, 3),
                    reference_result.metrics.rounds,
                    reference_result.metrics.messages,
                    reference_result.palette,
                ],
                [
                    "batched",
                    round(batched_seconds, 3),
                    batched_result.metrics.rounds,
                    batched_result.metrics.messages,
                    batched_result.palette,
                ],
            ],
        )
    )
    print(f"\nSpeedup: {speedup:.2f}x (identical colorings and metrics).")

    # The committed result records >= 5x at the full size; keep the in-test
    # bound looser so a loaded CI box does not flake.
    if not QUICK:
        assert speedup >= 3.0, f"batched engine only {speedup:.2f}x faster"

    # ------------------------------------------------------------------ #
    # Parallel sweep with caching.
    # ------------------------------------------------------------------ #
    scenarios = _sweep_scenarios()
    assert len(scenarios) >= 32 or QUICK

    runner = bench_runner()
    sweep_started = time.perf_counter()
    first_pass = runner.run(scenarios)
    first_seconds = time.perf_counter() - sweep_started

    sweep_started = time.perf_counter()
    second_pass = runner.run(scenarios)
    second_seconds = time.perf_counter() - sweep_started

    assert all(result.verified for result in first_pass)
    assert all(result.cached for result in second_pass)
    assert [r.coloring_digest for r in first_pass] == [
        r.coloring_digest for r in second_pass
    ]

    fresh = sum(1 for result in first_pass if not result.cached)
    print(
        f"\nSweep: {len(scenarios)} scenarios, {fresh} executed fresh "
        f"({first_seconds:.2f}s), second pass fully cached ({second_seconds:.3f}s)."
    )

    if os.environ.get("REPRO_BENCH_RECORD"):
        record = {
            "workload": {
                "algorithm": "legal_coloring (Theorem 4.8(2) parameters)",
                "graph": f"random_regular(n={SPEEDUP_N}, degree={SPEEDUP_DEGREE}, seed={SPEEDUP_SEED})",
                "c": SPEEDUP_C,
            },
            "reference_seconds": round(reference_seconds, 4),
            "batched_seconds": round(batched_seconds, 4),
            "speedup": round(speedup, 2),
            "identical_outputs": True,
            "sweep": {
                "scenarios": len(scenarios),
                "fresh_seconds": round(first_seconds, 3),
                "cached_seconds": round(second_seconds, 4),
            },
            "python": platform.python_version(),
            "platform": platform.platform(),
        }
        out = Path(__file__).parent / "results" / "engine_speedup.json"
        out.parent.mkdir(exist_ok=True)
        out.write_text(json.dumps(record, indent=2) + "\n")
        print(f"\nRecorded results to {out}")

    # Time the batched run once more under pytest-benchmark.
    run_once(benchmark, lambda: _timed_legal_color(network, "batched"))
