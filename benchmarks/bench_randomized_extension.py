"""Theorem 6.1 / Corollary 6.2 reproduction: the randomized extension.

For Delta = omega(log n) the paper combines one round of randomness (a random
split into ceil(Delta / log n) classes, each of maximum degree O(log n) with
high probability) with the deterministic Theorem 4.8(2) algorithm inside every
class, to obtain an O(Delta * min{Delta, log n}^eta)-coloring in O(log log n)
rounds.

The harness runs the randomized algorithm on the Figure 1 family (independence
2, degree close to n/2, so Delta >> log n), verifies the Chernoff-controlled
split defect, and compares its round count against the fully deterministic
run on the same graph.
"""

from __future__ import annotations

import math

from common_bench import print_section, run_once

from repro import graphs
from repro.analysis import format_table
from repro.core import color_vertices, randomized_color_vertices
from repro.verification import assert_legal_vertex_coloring

CLIQUE_SIZES = (24, 36, 48)


def _sweep():
    rows = []
    for clique_size in CLIQUE_SIZES:
        network = graphs.clique_with_pendants(clique_size)
        log_n = math.log2(network.num_nodes)
        randomized = randomized_color_vertices(network, c=2, seed=clique_size)
        deterministic = color_vertices(network, c=2, quality="superlinear")
        assert_legal_vertex_coloring(network, randomized.colors)
        assert_legal_vertex_coloring(network, deterministic.colors)
        rows.append(
            [
                network.num_nodes,
                network.max_degree,
                round(log_n, 1),
                randomized.num_classes,
                randomized.split_defect,
                len(set(randomized.colors.values())),
                randomized.metrics.rounds,
                len(set(deterministic.colors.values())),
                deterministic.metrics.rounds,
            ]
        )
        assert randomized.split_defect <= 8 * log_n + 8
    return rows


def test_randomized_extension(benchmark):
    rows = _sweep()
    print_section(
        "Theorem 6.1 / Corollary 6.2 -- randomized split + deterministic per-class coloring"
    )
    print(
        format_table(
            [
                "n",
                "Delta",
                "log2 n",
                "classes",
                "split defect (O(log n) whp)",
                "rand colors",
                "rand rounds",
                "det colors",
                "det rounds",
            ],
            rows,
        )
    )
    print(
        "\nThe measured split defect stays within a small constant times log n"
        " (the Chernoff bound of Theorem 6.1), and the per-class work then depends"
        " only on log n rather than on Delta."
    )

    network = graphs.clique_with_pendants(CLIQUE_SIZES[-1])
    run_once(benchmark, lambda: randomized_color_vertices(network, c=2, seed=1))
