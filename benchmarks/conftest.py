"""Make ``pytest benchmarks/`` collect the ``bench_*.py`` harnesses.

The benchmark files are deliberately named ``bench_*.py`` so the repo-root
test run (``python -m pytest``, the tier-1 gate) never picks them up -- but
that also meant ``pytest benchmarks/`` silently collected *nothing*, a
footgun that made the smoke paths look green without running.  This conftest
collects the ``bench_*.py`` modules exactly when the benchmarks directory
(or something inside it) was named on the command line, so:

* ``pytest benchmarks/`` runs every harness (combine with
  ``REPRO_BENCH_QUICK=1`` for the CI smoke configuration);
* ``pytest`` from the repository root still collects only ``tests/``;
* explicitly named files (``pytest benchmarks/bench_engine_speedup.py``)
  keep working as before -- pytest collects explicit paths itself, and the
  hook skips them to avoid double collection.
"""

from __future__ import annotations

from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).resolve().parent


def _benchmarks_targeted(config) -> bool:
    """Whether the benchmarks directory was targeted by the invocation.

    True when the directory (or something inside it) was named on the
    command line, or when a path-less ``pytest`` was launched from inside
    it (``cd benchmarks && pytest``).
    """
    saw_positional = False
    for raw in config.invocation_params.args:
        arg = str(raw)
        if not arg or arg.startswith("-"):
            continue
        saw_positional = True
        try:
            path = Path(arg.split("::", 1)[0]).resolve()
        except (OSError, ValueError):
            continue
        if path == _BENCH_DIR or _BENCH_DIR in path.parents:
            return True
    if not saw_positional:
        invocation_dir = Path(str(config.invocation_params.dir)).resolve()
        return invocation_dir == _BENCH_DIR or _BENCH_DIR in invocation_dir.parents
    return False


def pytest_collect_file(file_path: Path, parent):
    if (
        file_path.suffix == ".py"
        and file_path.name.startswith("bench_")
        and not parent.session.isinitpath(file_path)
        and _benchmarks_targeted(parent.config)
    ):
        return pytest.Module.from_parent(parent, path=file_path)
    return None
