"""Theorem 5.3 vs. 5.5 reproduction: message sizes of the two edge-coloring routes.

Theorem 5.3's simulation route (Lemma 5.2) needs messages of size
O(Delta log n) because one vertex of G simulates up to Delta vertices of
L(G); Theorem 5.5's direct route keeps the edge state at both endpoints and
needs only O(max(p, 1) * log n)-bit messages -- O(log n) in the
O(Delta^{1+eta})-colors regime where p is a constant.

The harness sweeps Delta and reports the measured maximum message size (in
O(log n)-bit words) of both routes.
"""

from __future__ import annotations

from common_bench import print_section, regular_workload, run_once

from repro.analysis import format_table
from repro.core import color_edges
from repro.verification import assert_legal_edge_coloring

DEGREES = (4, 8, 12, 16)


def _sweep():
    rows = []
    for degree in DEGREES:
        network = regular_workload(degree, seed=51)
        direct = color_edges(network, quality="superlinear", route="direct")
        simulated = color_edges(network, quality="superlinear", route="simulation")
        assert_legal_edge_coloring(network, direct.edge_colors)
        assert_legal_edge_coloring(network, simulated.edge_colors)
        rows.append(
            [
                degree,
                direct.metrics.max_message_words,
                simulated.metrics.max_message_words,
                direct.metrics.rounds,
                simulated.metrics.rounds,
                direct.parameters.p,
            ]
        )
    return rows


def test_message_size_comparison(benchmark):
    rows = _sweep()
    print_section("Theorem 5.3 vs. 5.5 -- message sizes (in O(log n)-bit words)")
    print(
        format_table(
            [
                "Delta",
                "direct route max words",
                "simulation route max words",
                "direct rounds",
                "simulation rounds",
                "p (constant)",
            ],
            rows,
        )
    )
    print(
        "\nThe direct route's message size stays bounded by the constant p while the"
        " simulation route's grows linearly with Delta, matching Theorem 5.5 vs. 5.3."
    )

    # Direct-route words bounded by a constant; simulation-route words grow.
    direct_words = [row[1] for row in rows]
    simulated_words = [row[2] for row in rows]
    assert max(direct_words) <= rows[0][5] + 2
    assert simulated_words[-1] > simulated_words[0]
    assert simulated_words[-1] >= DEGREES[-1]

    network = regular_workload(DEGREES[-1], seed=51)
    run_once(benchmark, lambda: color_edges(network, quality="superlinear", route="simulation"))
