"""Figure 1 reproduction: bounded neighborhood independence without bounded growth.

Figure 1 exhibits a graph with I(G) = 2 (an n/2-vertex clique, each clique
vertex attached to a pendant) in which every clique vertex nevertheless has
Omega(Delta) independent vertices at distance 2 -- so the graph is *not* of
bounded growth, separating the family studied in this paper from the
bounded-growth family of [17, 13, 28].

The harness constructs the graph for growing sizes, verifies both properties,
and shows that the paper's vertex-coloring algorithm still handles the family
(legal O(Delta)-coloring) even though bounded-growth algorithms do not apply.
"""

from __future__ import annotations

from common_bench import print_section, run_once

from repro import graphs
from repro.analysis import format_table
from repro.core import color_vertices
from repro.graphs.properties import growth_function, neighborhood_independence
from repro.verification import assert_legal_vertex_coloring

CLIQUE_SIZES = (6, 10, 16, 24)


def _sweep():
    rows = []
    for clique_size in CLIQUE_SIZES:
        network = graphs.clique_with_pendants(clique_size)
        independence = neighborhood_independence(network)
        radius2_growth = growth_function(network, ("clique", 0), radius=2)
        result = color_vertices(network, c=2, quality="linear")
        assert_legal_vertex_coloring(network, result.colors)
        rows.append(
            [
                network.num_nodes,
                network.max_degree,
                independence,
                radius2_growth,
                result.colors_used,
                result.metrics.rounds,
            ]
        )
        assert independence == 2
        assert radius2_growth >= clique_size - 1  # Omega(Delta) independent vertices at distance 2
    return rows


def test_fig1_bounded_independence_vs_growth(benchmark):
    rows = _sweep()
    print_section("Figure 1 -- I(G) = 2 yet unbounded growth (clique with pendants)")
    print(
        format_table(
            [
                "n",
                "Delta",
                "I(G)",
                "independent vertices in Gamma_2",
                "colors used (Thm 4.8(1))",
                "rounds",
            ],
            rows,
        )
    )
    print(
        "\nThe distance-2 independent-set size grows linearly with Delta while I(G)"
        " stays 2, reproducing the Figure 1 separation."
    )

    run_once(
        benchmark,
        lambda: color_vertices(
            graphs.clique_with_pendants(CLIQUE_SIZES[-1]), c=2, quality="linear"
        ),
    )
