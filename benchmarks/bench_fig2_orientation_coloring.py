"""Figure 2 / Lemma 3.4 reproduction: coloring along an acyclic orientation.

Lemma 3.4 (illustrated by Figure 2) shows that a graph with an acyclic
orientation of out-degree d is (d + 1)-colorable, by letting every vertex wait
for its out-neighbors before picking a free color; the number of rounds this
takes is the length of the longest directed path.  Procedure Defective-Color
relies on exactly this argument (Lemma 3.5) to bound the chromatic number of
every psi-color class.

The harness builds the Lemma 3.5 orientation on each psi-class of a real
Defective-Color run, verifies acyclicity and the out-degree bound, and
reports the implied chromatic bound versus the class's actual maximum degree
(which Theorem 3.7 then bounds via the independence assumption).
"""

from __future__ import annotations

from common_bench import print_section, run_once

from repro import graphs
from repro.analysis import format_table
from repro.core import run_defective_color
from repro.graphs.line_graph import line_graph_network
from repro.graphs.orientation import (
    acyclic_orientation_from_coloring,
    is_acyclic_orientation,
    longest_directed_path_length,
    max_out_degree,
)


def _sweep():
    base = graphs.random_regular(40, 8, seed=21)
    line = line_graph_network(base)
    Lambda = line.max_degree
    p = 4
    b = max(1, Lambda // (3 * p))
    psi, info, _ = run_defective_color(line, b=b, p=p, c=2)

    # The phi-coloring inside the procedure orders the recoloring; for the
    # Figure 2 illustration we orient every psi-class by the identifiers
    # (exactly the Lemma 3.5 tie-breaking rule) and check Lemma 3.4's bound.
    rows = []
    for klass in sorted(set(psi.values())):
        members = [node for node in line.nodes() if psi[node] == klass]
        subgraph = line.induced_subgraph(members)
        ids = {node: subgraph.unique_id(node) for node in subgraph.nodes()}
        orientation = acyclic_orientation_from_coloring(subgraph, ids)
        assert is_acyclic_orientation(subgraph, orientation)
        out_degree = max_out_degree(subgraph, orientation)
        path_length = longest_directed_path_length(subgraph, orientation)
        rows.append(
            [
                klass,
                subgraph.num_nodes,
                subgraph.max_degree,
                out_degree,
                out_degree + 1,
                path_length,
                info.psi_defect_bound,
            ]
        )
        assert subgraph.max_degree <= info.psi_defect_bound
    return line, rows


def test_fig2_orientation_coloring(benchmark):
    line, rows = _sweep()
    print_section("Figure 2 / Lemma 3.4 -- acyclic orientations of the psi-classes")
    print(
        format_table(
            [
                "psi class",
                "vertices",
                "max degree",
                "orientation out-degree",
                "Lemma 3.4 color bound",
                "longest directed path (rounds)",
                "Thm 3.7 degree bound",
            ],
            rows,
        )
    )
    print(
        "\nEvery class admits an acyclic orientation whose out-degree (and hence"
        " chromatic number minus one) is small, which is the mechanism behind"
        " Theorem 3.7's defect bound."
    )

    base = graphs.random_regular(40, 8, seed=21)
    line = line_graph_network(base)
    Lambda = line.max_degree
    run_once(
        benchmark,
        lambda: run_defective_color(line, b=max(1, Lambda // 12), p=4, c=2),
    )
