"""Table 1 reproduction: new deterministic edge coloring vs. previous deterministic work.

The paper's Table 1 compares, over two ranges of the maximum degree Delta,

* previous work: Panconesi-Rizzi [24] -- (2 Delta - 1) colors in
  O(Delta) + log* n rounds -- and Barenboim-Elkin [5] -- O(Delta) colors in
  O(Delta^eps log n) rounds / O(Delta^{1+eps}) colors in O(log Delta log n)
  rounds;
* the new algorithms: O(Delta) colors in O(Delta^eps) + log* n rounds and
  O(Delta^{1+eps}) colors in O(log Delta) + log* n rounds.

This harness sweeps Delta on random regular graphs, measures rounds and colors
for our implementations of the new algorithms and of the Panconesi-Rizzi-style
baseline, prints the reproduced table (measured and analytic columns side by
side), and reports the crossover degree at which the new algorithms start
winning.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from common_bench import (
    QUICK,
    TABLE_DEGREES,
    bench_runner,
    print_section,
    regular_workload,
    run_once,
    table_edge_scenarios,
)

from repro import graphs
from repro.analysis import (
    Series,
    crossover_point,
    format_table,
    rounds_be10_superlinear,
    rounds_new_superlinear,
    rounds_panconesi_rizzi,
)
from repro.baselines import panconesi_rizzi_edge_coloring
from repro.core import color_edges

#: (label, experiment algorithm, params) for the three Table 1 columns.
#: Since PR 7 the whole sweep (new algorithms AND the Panconesi–Rizzi
#: baseline) runs on the vectorized engine.
ALGORITHMS = (
    ("new-fast", "edge_coloring", {"quality": "superlinear", "route": "direct"}),
    ("new-linear", "edge_coloring", {"quality": "linear", "route": "direct"}),
    ("baseline-pr", "panconesi_rizzi", {}),
)

#: (n, degree) of the engine-ratio gate row committed with the record.
GATE_SIZE = (256, 6) if QUICK else (1024, 8)

RESULTS_FILE = "table1_quick.json" if QUICK else "table1.json"


def _measure_gate() -> dict:
    """Batched-vs-vectorized ratio for the PR baseline, identical outputs."""
    n, degree = GATE_SIZE
    network = graphs.random_regular(n, degree, seed=5, backend="fast")
    started = time.perf_counter()
    batched = panconesi_rizzi_edge_coloring(network, engine="batched")
    batched_seconds = time.perf_counter() - started
    vectorized_seconds = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        vectorized = panconesi_rizzi_edge_coloring(network, engine="vectorized")
        vectorized_seconds = min(vectorized_seconds, time.perf_counter() - started)
    assert batched.edge_colors == vectorized.edge_colors
    assert vectorized.metrics.fallback_phase_names == []
    return {
        "n": n,
        "degree": degree,
        "seconds": {
            "pr_batched": round(batched_seconds, 4),
            "pr_vectorized": round(vectorized_seconds, 4),
        },
        "speedup_pr_vectorized_over_batched": round(
            batched_seconds / max(vectorized_seconds, 1e-9), 2
        ),
        "identical_outputs": True,
    }


def _record(rows, gate_row, headers) -> None:
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    record = {
        "workload": {
            "summary": "Table 1: deterministic edge coloring, previous vs new "
            "(vectorized engine)",
            "degrees": list(TABLE_DEGREES),
        },
        "quick": QUICK,
        "sizes": [gate_row],
        "table": {
            "headers": headers,
            "rows": rows,
        },
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    out = results_dir / RESULTS_FILE
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nRecorded results to {out}")


def _sweep():
    # One scenario per (degree, algorithm); the runner shards them across
    # worker processes, verifies every coloring in-worker, and serves repeat
    # invocations from the on-disk cache.
    scenarios = table_edge_scenarios(ALGORITHMS)
    results = {result.name: result for result in bench_runner().run(scenarios)}

    rows = []
    new_superlinear = Series("new O(log Delta)")
    new_linear = Series("new O(Delta^eps)")
    baseline_pr = Series("PR baseline")

    for degree in TABLE_DEGREES:
        fast = results[f"new-fast-d{degree}"]
        linear = results[f"new-linear-d{degree}"]
        baseline = results[f"baseline-pr-d{degree}"]
        n = fast.num_nodes
        assert fast.verified and linear.verified and baseline.verified

        new_superlinear.add(degree, fast.rounds)
        new_linear.add(degree, linear.rounds)
        baseline_pr.add(degree, baseline.rounds)

        rows.append(
            [
                degree,
                baseline.colors_used,
                baseline.rounds,
                round(rounds_panconesi_rizzi(degree, n), 1),
                linear.colors_used,
                linear.rounds,
                fast.colors_used,
                fast.rounds,
                round(rounds_new_superlinear(degree, n), 1),
                round(rounds_be10_superlinear(degree, n), 1),
            ]
        )
    return rows, new_superlinear, new_linear, baseline_pr


HEADERS = [
    "Delta",
    "PR colors",
    "PR rounds",
    "PR analytic",
    "new-lin colors",
    "new-lin rounds",
    "new-fast colors",
    "new-fast rounds",
    "new analytic",
    "[5] analytic",
]


def test_table1_deterministic_comparison(benchmark):
    rows, new_superlinear, new_linear, baseline_pr = _sweep()

    print_section("Table 1 -- deterministic edge coloring: previous vs. new (measured + analytic)")
    print(format_table(HEADERS, rows))
    crossover = crossover_point(new_superlinear, baseline_pr)
    print(
        f"\nCrossover: the new O(Delta^{{1+eps}})-coloring needs fewer rounds than the "
        f"(2Delta-1) baseline from Delta = {crossover} onward."
    )
    ratio = baseline_pr.ys[-1] / max(1.0, new_superlinear.ys[-1])
    print(f"At Delta = {int(baseline_pr.xs[-1])} the round advantage is {ratio:.1f}x.")

    # The paper's qualitative claim: the new algorithm wins on rounds for
    # moderate-to-large Delta (while using more colors than 2 Delta - 1).
    assert new_superlinear.ys[-1] < baseline_pr.ys[-1]

    gate_row = _measure_gate()
    print(
        f"\nEngine gate at n={gate_row['n']}, Delta={gate_row['degree']}: "
        f"vectorized PR baseline is "
        f"{gate_row['speedup_pr_vectorized_over_batched']}x the batched path "
        "(identical colorings)."
    )

    if os.environ.get("REPRO_BENCH_RECORD"):
        _record(rows, gate_row, HEADERS)

    # Time one representative mid-sweep instance (on the vectorized engine).
    network = regular_workload(TABLE_DEGREES[len(TABLE_DEGREES) // 2])
    run_once(
        benchmark,
        lambda: color_edges(
            network, quality="superlinear", route="direct", engine="vectorized"
        ),
    )
