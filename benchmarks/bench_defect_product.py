"""Theorem 3.7 / Corollary 3.8 reproduction: defect x colors linear in Delta.

The paper's central technical point (Section 1.3): for graphs of bounded
neighborhood independence, Procedure Defective-Color produces an
O(Delta/p)-defective p-coloring, so the product (defect x number of colors) is
O(Delta) -- whereas the previously known routines (Lemma 2.1(3), [19]) give an
O(Delta/p)-defective p^2-coloring, a product of O(Delta * p).

The harness sweeps p on a line-graph workload, measures the defect of both
colorings, and prints the two products side by side.
"""

from __future__ import annotations

from common_bench import print_section, run_once

from repro import graphs
from repro.analysis import format_table
from repro.core import run_defective_color
from repro.graphs.line_graph import line_graph_network
from repro.local_model import Scheduler
from repro.primitives.kuhn_defective import defective_coloring_pipeline
from repro.verification import coloring_defect

P_VALUES = (2, 3, 4, 6)


def _sweep():
    base = graphs.random_regular(40, 10, seed=31)
    line = line_graph_network(base)
    Lambda = line.max_degree

    rows = []
    for p in P_VALUES:
        b = max(1, Lambda // (3 * p))
        if b * p > Lambda:
            continue
        # New: Procedure Defective-Color -- p colors.
        psi, info, metrics = run_defective_color(line, b=b, p=p, c=2)
        new_defect = coloring_defect(line, psi)
        new_colors = len(set(psi.values()))

        # Previous: Kuhn-style defective coloring with the same target defect
        # -- O(p^2) colors.
        pipeline, old_palette = defective_coloring_pipeline(
            n=line.num_nodes,
            degree_bound=Lambda,
            target_defect=max(1, Lambda // p),
            output_key="old",
        )
        old_result = Scheduler(line).run(pipeline)
        old_colors_map = old_result.extract("old")
        old_defect = coloring_defect(line, old_colors_map)
        old_colors = len(set(old_colors_map.values()))

        rows.append(
            [
                p,
                new_defect,
                new_colors,
                info.psi_defect_bound * p,
                old_defect,
                old_colors,
                max(1, Lambda // p) * old_palette,
                metrics.rounds,
            ]
        )
    return Lambda, rows


def test_defect_times_colors_product(benchmark):
    Lambda, rows = _sweep()
    print_section(
        "Theorem 3.7 / Corollary 3.8 -- defect x colors: "
        "new procedure vs. previous defective coloring"
        f"  (Delta(L(G)) = {Lambda})"
    )
    print(
        format_table(
            [
                "p",
                "new measured defect",
                "new colors",
                "new product bound (defect x colors)",
                "prev measured defect",
                "prev colors",
                "prev product bound",
                "new rounds",
            ],
            rows,
        )
    )
    print(
        "\nThe new procedure's defect-times-colors bound stays within a constant"
        " factor of Delta across the whole sweep of p (Corollary 3.8), while the"
        " previous routine's bound grows with p because its palette is O(p^2) --"
        " exactly the gap Section 1.3 identifies."
    )

    # Quantitative check: the new product bound is O(Delta) -- within a small
    # constant factor of Delta(L(G)) -- for every p in the sweep.
    for row in rows:
        assert row[3] <= 8 * Lambda + 8 * row[0]

    base = graphs.random_regular(40, 10, seed=31)
    line = line_graph_network(base)
    run_once(benchmark, lambda: run_defective_color(line, b=1, p=4, c=2))
