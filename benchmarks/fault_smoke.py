"""Fault-injection smoke test: a faulted sweep must complete and self-heal.

Runs a small scenario sweep through :class:`repro.experiments.ExperimentRunner`
under a *seeded* :class:`repro.resilience.FaultPlan` and asserts the
resilience contract end to end:

* the sweep completes (no abort) with every scenario ``status="ok"``;
* the recovered payloads are bit-identical to a fault-free serial run
  (modulo wall time, which is run-dependent by construction);
* the retry machinery actually engaged (non-empty retry metrics).

Two backends are exercised (``--backend``):

``process`` (default)
    The process-pool backend under worker crashes, a hang past the soft
    timeout, injected errors, and payload corruption.
``workdir``
    The distributed spool backend under whole-worker chaos: seeded
    ``worker_die`` kills (dead workers are detected by the lease reaper and
    replaced), ``envelope_corrupt`` transport corruption (quarantined and
    reassigned), plus injected errors -- asserting non-empty reassignment
    counters on top of the shared contract.

Exit code 0 on success; an ``AssertionError`` otherwise.  Run it as::

    PYTHONPATH=src python benchmarks/fault_smoke.py [--backend workdir --workers 3]

CI runs both legs (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro.experiments import ExperimentRunner, GraphSpec, Scenario
from repro.resilience import FaultPlan

NUM_SCENARIOS = 8
#: Chosen so the plan covers all four in-sweep fault kinds at these rates:
#: two crashes, one hang, two corruptions, one injected error.
SEED = 69
#: Chosen so the workdir plan covers both worker-chaos kinds at the rates in
#: :func:`build_workdir_plan`: three worker kills, one corrupted envelope,
#: one injected error.
WORKDIR_SEED = 3


def build_scenarios() -> list:
    return [
        Scenario.make(
            name=f"smoke-{i}",
            graph=GraphSpec("random_regular", n=24 + 4 * i, degree=4, seed=i),
            algorithm="legal_coloring",
            params={"c": 2, "quality": "linear"},
        )
        for i in range(NUM_SCENARIOS)
    ]


def build_process_plan() -> FaultPlan:
    return FaultPlan.seeded(
        SEED,
        num_scenarios=NUM_SCENARIOS,
        crash_rate=0.25,
        hang_rate=0.15,
        error_rate=0.25,
        corrupt_rate=0.15,
        hang_seconds=60.0,
    )


def build_workdir_plan() -> FaultPlan:
    plan = FaultPlan.seeded(
        WORKDIR_SEED,
        num_scenarios=NUM_SCENARIOS,
        error_rate=0.15,
        worker_die_rate=0.35,
        envelope_corrupt_rate=0.2,
    )
    kinds = {spec.kind for spec in plan.specs}
    assert {"worker_die", "envelope_corrupt"} <= kinds, (
        f"WORKDIR_SEED no longer covers the worker-chaos kinds: {sorted(kinds)}"
    )
    return plan


def stable(payload: dict) -> dict:
    return {k: v for k, v in payload.items() if k != "wall_time"}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--backend",
        choices=("process", "workdir"),
        default="process",
        help="executor backend to smoke (default: process)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count (default: 2 for process, 3 for workdir)",
    )
    args = parser.parse_args(argv)
    workers = args.workers or (3 if args.backend == "workdir" else 2)

    scenarios = build_scenarios()
    plan = build_process_plan() if args.backend == "process" else build_workdir_plan()
    kinds = sorted(spec.kind for spec in plan.specs)
    assert plan.specs, "seed produced an empty plan; pick a different seed"
    print(
        f"fault plan ({args.backend}, {workers} workers): "
        f"{len(plan)} faults -> {kinds}"
    )

    reference = [
        stable(r.payload)
        for r in ExperimentRunner(cache_dir=None, max_workers=0).run(scenarios)
    ]

    backend_options = {}
    if args.backend == "workdir":
        backend_options = {"lease_ttl": 1.5, "heartbeat_interval": 0.3}
    with tempfile.TemporaryDirectory(prefix="repro-fault-smoke-") as tmp:
        runner = ExperimentRunner(
            cache_dir=tmp,
            max_workers=workers,
            retries=3,
            timeout=10.0,
            fault_plan=plan,
            backend=args.backend,
            backend_options=backend_options,
        )
        results = runner.run(scenarios)

    statuses = [r.status for r in results]
    assert statuses == ["ok"] * NUM_SCENARIOS, f"sweep did not self-heal: {statuses}"
    recovered = [stable(r.payload) for r in results]
    assert recovered == reference, "recovered payloads differ from fault-free run"
    stats = runner.last_stats
    assert stats.retries > 0, f"no retries recorded under a faulted plan: {stats}"
    if args.backend == "workdir":
        assert stats.reassignments > 0, (
            f"worker kills produced no lease reassignments: {stats}"
        )
        assert stats.worker_replacements > 0, (
            f"dead workers were never replaced: {stats}"
        )
        print(
            f"ok: {stats.fresh} scenarios completed, {stats.retries} retries, "
            f"{stats.reassignments} reassignments, "
            f"{stats.envelopes_rejected} envelopes rejected, "
            f"{stats.worker_replacements} workers replaced, "
            f"{stats.duplicate_completions} duplicate completions"
        )
    else:
        print(
            f"ok: {stats.fresh} scenarios completed, {stats.retries} retries, "
            f"{stats.timeouts} timeouts, {stats.pool_rebuilds} pool rebuilds, "
            f"{stats.degraded} degraded"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
