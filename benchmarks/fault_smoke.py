"""Fault-injection smoke test: a faulted sweep must complete and self-heal.

Runs a small scenario sweep through :class:`repro.experiments.ExperimentRunner`
under a *seeded* :class:`repro.resilience.FaultPlan` -- worker crashes, a hang
past the soft timeout, injected errors, and payload corruption -- and asserts
the resilience contract end to end:

* the sweep completes (no abort) with every scenario ``status="ok"``;
* the recovered payloads are bit-identical to a fault-free serial run
  (modulo wall time, which is run-dependent by construction);
* the retry machinery actually engaged (non-empty retry metrics).

Exit code 0 on success; an ``AssertionError`` otherwise.  Run it as::

    PYTHONPATH=src python benchmarks/fault_smoke.py

CI runs this as its fault-injection leg (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import sys
import tempfile

from repro.experiments import ExperimentRunner, GraphSpec, Scenario
from repro.resilience import FaultPlan

NUM_SCENARIOS = 8
#: Chosen so the plan covers all four in-sweep fault kinds at these rates:
#: two crashes, one hang, two corruptions, one injected error.
SEED = 69


def build_scenarios() -> list:
    return [
        Scenario.make(
            name=f"smoke-{i}",
            graph=GraphSpec("random_regular", n=24 + 4 * i, degree=4, seed=i),
            algorithm="legal_coloring",
            params={"c": 2, "quality": "linear"},
        )
        for i in range(NUM_SCENARIOS)
    ]


def stable(payload: dict) -> dict:
    return {k: v for k, v in payload.items() if k != "wall_time"}


def main() -> int:
    scenarios = build_scenarios()
    plan = FaultPlan.seeded(
        SEED,
        num_scenarios=NUM_SCENARIOS,
        crash_rate=0.25,
        hang_rate=0.15,
        error_rate=0.25,
        corrupt_rate=0.15,
        hang_seconds=60.0,
    )
    kinds = sorted(spec.kind for spec in plan.specs)
    assert plan.specs, "seed produced an empty plan; pick a different SEED"
    print(f"fault plan (seed {SEED}): {len(plan)} faults -> {kinds}")

    reference = [
        stable(r.payload)
        for r in ExperimentRunner(cache_dir=None, max_workers=0).run(scenarios)
    ]

    with tempfile.TemporaryDirectory(prefix="repro-fault-smoke-") as tmp:
        runner = ExperimentRunner(
            cache_dir=tmp,
            max_workers=2,
            retries=3,
            timeout=10.0,
            fault_plan=plan,
        )
        results = runner.run(scenarios)

    statuses = [r.status for r in results]
    assert statuses == ["ok"] * NUM_SCENARIOS, f"sweep did not self-heal: {statuses}"
    recovered = [stable(r.payload) for r in results]
    assert recovered == reference, "recovered payloads differ from fault-free run"
    stats = runner.last_stats
    assert stats.retries > 0, f"no retries recorded under a faulted plan: {stats}"
    print(
        f"ok: {stats.fresh} scenarios completed, {stats.retries} retries, "
        f"{stats.timeouts} timeouts, {stats.pool_rebuilds} pool rebuilds, "
        f"{stats.degraded} degraded"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
