"""Figure 3 reproduction: the Legal-Color recursion tree and its color accounting.

Figure 3 depicts the recursion tree of Procedure Legal-Color: every node of
level j is split into p children, all invocations of one level share the same
degree bound Lambda^{(j)}, and the palettes are merged bottom-up via
theta^{(j)} = p * theta^{(j+1)} so that sibling subgraphs use disjoint
palettes.  Lemma 4.4's telescoping of theta^{(0)} = p^r (hat-Lambda + 1) is
what yields the O(Delta) / O(Delta^{1+eps}) color bounds.

The harness runs the procedure with instrumentation enabled, prints one row
per recursion level (the per-level degree bound, the number of non-empty
subgraphs, the measured subgraph degree, and the palette multiplier), and
verifies the Figure 3 invariants.
"""

from __future__ import annotations

from common_bench import print_section, run_once

from repro import graphs
from repro.analysis import format_table
from repro.core.legal_coloring import run_legal_coloring
from repro.core.parameters import params_for_few_rounds
from repro.graphs.line_graph import line_graph_network
from repro.verification import assert_legal_vertex_coloring


def _run():
    base = graphs.random_regular(44, 16, seed=23)
    line = line_graph_network(base)
    params = params_for_few_rounds(line.max_degree, c=2)
    result = run_legal_coloring(line, params, c=2)
    assert_legal_vertex_coloring(line, result.colors)
    return line, params, result


def test_fig3_recursion_tree(benchmark):
    line, params, result = _run()

    theta = result.bottom_degree_bound + 1
    thetas = [theta]
    for _ in range(result.num_levels):
        theta *= params.p
        thetas.append(theta)
    thetas.reverse()  # thetas[j] = palette bound of a level-j invocation

    rows = []
    for trace in result.levels:
        rows.append(
            [
                trace.level,
                trace.degree_bound,
                trace.num_subgraphs,
                trace.max_subgraph_degree,
                trace.next_degree_bound,
                trace.rounds,
                thetas[trace.level],
            ]
        )
    rows.append(
        [
            "bottom",
            result.bottom_degree_bound,
            "-",
            "-",
            "-",
            "-",
            result.bottom_degree_bound + 1,
        ]
    )

    print_section("Figure 3 -- the Legal-Color recursion tree (one row per level)")
    print(
        f"parameters: p={params.p}, b={params.b}, "
        f"lambda={params.threshold}, Delta(L(G))={line.max_degree}"
    )
    print(
        format_table(
            [
                "level",
                "Lambda^(j)",
                "subgraphs",
                "measured max degree",
                "Lambda^(j+1)",
                "rounds",
                "theta^(j)",
            ],
            rows,
        )
    )
    print(
        f"\nFinal palette theta^(0) = p^r * (hat-Lambda + 1) = "
        f"{params.p}^{result.num_levels} * {result.bottom_degree_bound + 1} = {result.palette}; "
        f"colors actually used: {result.colors_used}."
    )

    # Figure 3 invariants.
    assert result.palette == (result.bottom_degree_bound + 1) * params.p ** result.num_levels
    for trace in result.levels:
        assert trace.max_subgraph_degree <= trace.degree_bound
        assert trace.num_subgraphs <= params.p ** (trace.level + 1)

    base = graphs.random_regular(44, 16, seed=23)
    line = line_graph_network(base)
    run_once(benchmark, lambda: run_legal_coloring(line, params, c=2))
