"""Unit tests for the structural property checkers (Definition 3.1, Section 1.2)."""

from __future__ import annotations

import pytest

from repro import graphs
from repro.graphs.hypergraphs import hypergraph_line_graph, random_r_hypergraph
from repro.graphs.properties import (
    degree_statistics,
    growth_function,
    has_neighborhood_independence_at_most,
    is_claw_free,
    neighborhood_independence,
)
from repro.local_model import Network


class TestNeighborhoodIndependence:
    def test_edgeless_graph_has_zero_independence(self):
        network = Network({1: [], 2: [], 3: []})
        assert neighborhood_independence(network) == 0

    def test_single_edge(self):
        network = Network.from_edges([(1, 2)])
        assert neighborhood_independence(network) == 1

    def test_clique_has_independence_one(self):
        assert neighborhood_independence(graphs.complete_graph(6)) == 1

    def test_star_has_independence_equal_to_leaves(self):
        assert neighborhood_independence(graphs.star_graph(7)) == 7

    def test_cycle_has_independence_two(self):
        assert neighborhood_independence(graphs.cycle_graph(8)) == 2

    def test_path_has_independence_two(self):
        assert neighborhood_independence(graphs.path_graph(8)) == 2

    def test_fig1_graph(self, fig1_graph):
        assert neighborhood_independence(fig1_graph) == 2

    def test_bounded_check_agrees_with_exact_value(self):
        for maker in (
            lambda: graphs.cycle_graph(7),
            lambda: graphs.star_graph(4),
            lambda: graphs.clique_with_pendants(5),
            lambda: graphs.grid_graph(3, 4),
        ):
            network = maker()
            exact = neighborhood_independence(network)
            assert has_neighborhood_independence_at_most(network, exact)
            if exact > 0:
                assert not has_neighborhood_independence_at_most(network, exact - 1)

    def test_bounded_check_with_negative_c(self):
        assert has_neighborhood_independence_at_most(Network({1: [], 2: []}), -1)
        assert not has_neighborhood_independence_at_most(Network.from_edges([(1, 2)]), -1)

    def test_grid_independence_is_four(self):
        # An interior vertex of a grid has 4 pairwise non-adjacent neighbors.
        assert neighborhood_independence(graphs.grid_graph(5, 5)) == 4


class TestClawFreeness:
    def test_line_graphs_are_claw_free(self, medium_regular):
        line = graphs.line_graph_network(medium_regular)
        assert is_claw_free(line)

    def test_star_is_not_claw_free(self):
        assert not is_claw_free(graphs.star_graph(3))

    def test_clique_is_claw_free(self):
        assert is_claw_free(graphs.complete_graph(5))

    def test_grid_is_not_claw_free(self):
        assert not is_claw_free(graphs.grid_graph(3, 3))


class TestGrowth:
    def test_fig1_graph_has_unbounded_growth_at_radius_two(self):
        # Independence 2, but a clique vertex sees Omega(Delta) independent
        # vertices (the other pendants) at distance 2 -- the Figure 1 point.
        network = graphs.clique_with_pendants(12)
        clique_vertex = ("clique", 0)
        assert neighborhood_independence(network) == 2
        assert growth_function(network, clique_vertex, radius=2) >= 11

    def test_growth_radius_zero_is_zero(self, fig1_graph):
        assert growth_function(fig1_graph, ("clique", 0), radius=0) == 0

    def test_growth_on_path_is_bounded(self):
        path = graphs.path_graph(20)
        assert growth_function(path, 10, radius=3) <= 4

    def test_growth_monotone_in_radius(self, fig1_graph):
        vertex = ("clique", 1)
        values = [growth_function(fig1_graph, vertex, radius=r) for r in range(4)]
        assert values == sorted(values)


class TestHypergraphIndependence:
    def test_line_graph_of_r_hypergraph_has_independence_at_most_r(self):
        for rank in (2, 3, 4):
            hypergraph = random_r_hypergraph(
                num_vertices=14, num_edges=20, rank=rank, seed=rank
            )
            line = hypergraph_line_graph(hypergraph)
            assert has_neighborhood_independence_at_most(line, rank)


class TestDegreeStatistics:
    def test_regular_graph_statistics(self, small_regular):
        stats = degree_statistics(small_regular)
        assert stats.max_degree == stats.min_degree == 4
        assert stats.average_degree == pytest.approx(4.0)
        assert stats.num_nodes == 24

    def test_empty_graph_statistics(self):
        stats = degree_statistics(Network({}))
        assert stats.num_nodes == 0
        assert stats.average_degree == 0.0
