"""The ``backend="fast"`` generator seam and the array constructors.

Three contracts are locked down here:

1. **Bit-identity of the deterministic families.**  For path / cycle / grid /
   hypercube / complete / star / clique-with-pendants, the fast backend must
   produce the *same* graph as the legacy backend down to the node
   identifiers, the unique ids and the CSR arrays (hypothesis-sampled sizes).
2. **Invariants of the random families.**  The fast samplers follow their own
   documented seed streams, so they cannot be compared edge-for-edge against
   networkx; instead the exact guarantees are asserted: exact degrees for the
   regular families, simplicity and symmetry everywhere (via the validating
   ``to_network()`` round-trip), and seed-reproducibility.
3. **The Network-free entry path.**  A golden scenario enters through
   ``FastNetwork.from_edge_array``, runs the full Legal-Color pipeline on the
   vectorized engine, verifies through the array oracles -- and the legacy
   ``Network`` is provably never materialized (``fast.network`` stays
   ``None``); the colors equal those of the identically-shaped legacy-built
   run.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.core import color_vertices
from repro.exceptions import InvalidParameterError
from repro.local_model.fast_network import FastNetwork, as_network, fast_view
from repro.local_model.network import Network
from repro.verification import assert_legal_vertex_coloring

QUICK_PROPERTY = settings(
    max_examples=20, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


def assert_bit_identical(fast: FastNetwork, legacy: Network) -> None:
    """The fast-built view equals the compiled view of the legacy network."""
    compiled = fast_view(legacy)
    assert isinstance(fast, FastNetwork) and isinstance(legacy, Network)
    assert fast.order == compiled.order
    assert list(fast.unique_ids) == list(compiled.unique_ids)
    assert list(fast.indptr) == list(compiled.indptr)
    assert list(fast.indices) == list(compiled.indices)
    assert fast.max_degree == compiled.max_degree
    assert fast.num_nodes == compiled.num_nodes


DETERMINISTIC_FAMILIES = [
    ("path", lambda size, backend: graphs.path_graph(size, backend=backend)),
    ("cycle", lambda size, backend: graphs.cycle_graph(max(3, size), backend=backend)),
    ("complete", lambda size, backend: graphs.complete_graph(size, backend=backend)),
    ("star", lambda size, backend: graphs.star_graph(size, backend=backend)),
    (
        "grid",
        lambda size, backend: graphs.grid_graph(size, size + 2, backend=backend),
    ),
    (
        "hypercube",
        lambda size, backend: graphs.hypercube_graph(
            1 + size % 6, backend=backend
        ),
    ),
    (
        "clique_with_pendants",
        lambda size, backend: graphs.clique_with_pendants(size, backend=backend),
    ),
]


class TestDeterministicFamiliesBitIdentical:
    @pytest.mark.parametrize("name,maker", DETERMINISTIC_FAMILIES)
    @QUICK_PROPERTY
    @given(size=st.integers(min_value=1, max_value=40))
    def test_fast_equals_legacy(self, name, maker, size):
        assert_bit_identical(maker(size, "fast"), maker(size, "legacy"))

    def test_to_network_materializes_the_identical_network(self):
        fast = graphs.grid_graph(4, 5, backend="fast")
        legacy = graphs.grid_graph(4, 5, backend="legacy")
        materialized = fast.to_network()
        assert materialized.nodes() == legacy.nodes()
        assert materialized.edges() == legacy.edges()
        assert materialized.unique_ids() == legacy.unique_ids()

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidParameterError):
            graphs.path_graph(4, backend="numpy")


class TestRandomFamilyInvariants:
    @QUICK_PROPERTY
    @given(
        n=st.integers(min_value=2, max_value=48),
        degree=st.integers(min_value=0, max_value=47),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_random_regular_exact_degree_and_simple(self, n, degree, seed):
        if degree >= n or (n * degree) % 2 != 0:
            with pytest.raises(InvalidParameterError):
                graphs.random_regular(n, degree, seed=seed, backend="fast")
            return
        network = graphs.random_regular(n, degree, seed=seed, backend="fast")
        degrees = np.asarray(network.degrees_np)
        assert (degrees == degree).all()
        # to_network() re-validates simplicity and symmetry from scratch.
        assert network.to_network().num_edges == n * degree // 2
        again = graphs.random_regular(n, degree, seed=seed, backend="fast")
        assert list(again.indices) == list(network.indices)

    @QUICK_PROPERTY
    @given(
        side=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=2**31),
        data=st.data(),
    )
    def test_bipartite_regular_exact_degree_and_bipartite(self, side, seed, data):
        degree = data.draw(st.integers(min_value=0, max_value=side))
        network = graphs.random_bipartite_regular(
            side, degree, seed=seed, backend="fast"
        )
        degrees = np.asarray(network.degrees_np)
        assert (degrees == degree).all()
        materialized = network.to_network()
        for u, v in materialized.edges():
            assert u[0] != v[0]
        again = graphs.random_bipartite_regular(
            side, degree, seed=seed, backend="fast"
        )
        assert list(again.indices) == list(network.indices)

    @QUICK_PROPERTY
    @given(
        n=st.integers(min_value=1, max_value=40),
        probability=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_erdos_renyi_simple_and_reproducible(self, n, probability, seed):
        network = graphs.erdos_renyi(n, probability, seed=seed, backend="fast")
        assert network.num_nodes == n
        network.to_network()  # validates simplicity and symmetry
        again = graphs.erdos_renyi(n, probability, seed=seed, backend="fast")
        assert list(again.indices) == list(network.indices)
        if probability >= 1.0 and n > 1:
            assert network.num_edges == n * (n - 1) // 2

    def test_fast_seed_stream_is_distinct_but_same_distribution_knobs(self):
        fast = graphs.random_regular(32, 4, seed=9, backend="fast")
        legacy = graphs.random_regular(32, 4, seed=9, backend="legacy")
        # Different documented streams, identical guarantees.
        assert fast.num_edges == legacy.num_edges == 64
        assert fast.max_degree == legacy.max_degree == 4

    def test_power_law_fast_is_the_compiled_legacy_graph(self):
        fast = graphs.power_law_graph(30, 3, seed=4, backend="fast")
        legacy = graphs.power_law_graph(30, 3, seed=4, backend="legacy")
        assert_bit_identical(fast, legacy)


class TestBipartiteExactDegreeRegression:
    """The pre-fix sampler dropped colliding matching edges after 200 tries.

    ``degree == side`` forces every later matching to collide with the
    earlier ones (the only valid result is the complete bipartite graph), so
    these parameters deterministically exercised the dropped-edge path.
    """

    @pytest.mark.parametrize("backend", ["legacy", "fast"])
    @pytest.mark.parametrize("side,degree", [(6, 6), (10, 9), (12, 12), (16, 8)])
    def test_exact_degree_guarantee(self, backend, side, degree):
        for seed in range(3):
            network = graphs.random_bipartite_regular(
                side, degree, seed=seed, backend=backend
            )
            network = as_network(network)
            assert all(
                network.degree(node) == degree for node in network.nodes()
            ), f"degree violated at seed {seed}"

    def test_complete_bipartite_forced(self):
        network = as_network(
            graphs.random_bipartite_regular(5, 5, seed=1, backend="legacy")
        )
        assert network.num_edges == 25

    @pytest.mark.parametrize(
        "side,degree", [(8, 7), (12, 11), (16, 15), (16, 12), (24, 13)]
    )
    def test_dense_regime_fast_repair(self, side, degree):
        """Degree near side: the fast sampler's complement/searchsorted path.

        The pre-PR-6 repair kept a Python set of every accepted ``(i, j)``
        pair; the rewrite detects and probes collisions through sorted
        pair-key ``searchsorted`` passes and diverts ``2 * degree > side`` to
        complement sampling.  Exact biregularity must survive the rewrite.
        """
        for seed in range(3):
            network = graphs.random_bipartite_regular(
                side, degree, seed=seed, backend="fast"
            )
            assert (np.asarray(network.degrees_np) == degree).all()
            materialized = network.to_network()  # validates simple + symmetric
            for u, v in materialized.edges():
                assert u[0] != v[0]
            again = graphs.random_bipartite_regular(
                side, degree, seed=seed, backend="fast"
            )
            assert list(again.indices) == list(network.indices)


class TestHeavyTailedFamilies:
    """The PR 6 workload families: array-native fast samplers, exact invariants."""

    @QUICK_PROPERTY
    @given(
        n=st.integers(min_value=2, max_value=60),
        attachment=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_barabasi_albert_invariants(self, n, attachment, seed):
        if attachment >= n:
            with pytest.raises(InvalidParameterError):
                graphs.barabasi_albert(n, attachment, seed=seed, backend="fast")
            return
        network = graphs.barabasi_albert(n, attachment, seed=seed, backend="fast")
        assert network.network is None
        assert network.num_edges == attachment * (n - attachment)
        degrees = np.asarray(network.degrees_np)
        # Every arriving vertex attaches to `attachment` distinct targets.
        assert (degrees[attachment:] >= attachment).all()
        network.to_network()  # validates simplicity and symmetry
        again = graphs.barabasi_albert(n, attachment, seed=seed, backend="fast")
        assert list(again.indices) == list(network.indices)

    def test_barabasi_albert_legacy_backend_matches_networkx_counts(self):
        legacy = graphs.barabasi_albert(40, 3, seed=1, backend="legacy")
        assert legacy.num_edges == 3 * 37
        assert legacy.num_nodes == 40

    @QUICK_PROPERTY
    @given(
        n=st.integers(min_value=4, max_value=120),
        exponent=st.floats(min_value=1.5, max_value=3.5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_planted_sequence_is_realized_exactly(self, n, exponent, seed):
        degrees = graphs.heavy_tailed_degree_sequence(
            n, exponent=exponent, seed=seed
        )
        assert int(degrees.sum()) % 2 == 0
        network = graphs.planted_degree_sequence(degrees, seed=seed, backend="fast")
        assert network.network is None
        assert (np.asarray(network.degrees_np) == degrees).all()
        network.to_network()  # validates simplicity and symmetry
        again = graphs.planted_degree_sequence(degrees, seed=seed, backend="fast")
        assert list(again.indices) == list(network.indices)

    def test_planted_sequence_legacy_shares_the_fast_stream(self):
        degrees = graphs.heavy_tailed_degree_sequence(50, seed=3)
        fast = graphs.planted_degree_sequence(degrees, seed=1, backend="fast")
        legacy = graphs.planted_degree_sequence(degrees, seed=1, backend="legacy")
        assert_bit_identical(fast, legacy)

    def test_planted_sequence_validation(self):
        with pytest.raises(InvalidParameterError, match="even"):
            graphs.planted_degree_sequence([1, 1, 1], backend="fast")
        with pytest.raises(InvalidParameterError, match="degree"):
            graphs.planted_degree_sequence([5, 1, 1, 1, 0], backend="fast")
        with pytest.raises(InvalidParameterError, match="non-empty"):
            graphs.planted_degree_sequence([], backend="fast")

    @QUICK_PROPERTY
    @given(
        n=st.integers(min_value=1, max_value=50),
        radius=st.floats(min_value=0.01, max_value=1.5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_random_geometric_matches_brute_force(self, n, radius, seed):
        network = graphs.random_geometric(n, radius, seed=seed, backend="fast")
        assert network.network is None
        network.to_network()  # validates simplicity and symmetry
        # The documented point stream: the generator's first draws.
        points = np.random.default_rng(seed).random((n, 2))
        gaps = points[:, None, :] - points[None, :, :]
        within = (gaps**2).sum(axis=-1) <= radius * radius
        expected = int(within.sum() - n) // 2
        assert network.num_edges == expected
        again = graphs.random_geometric(n, radius, seed=seed, backend="fast")
        assert list(again.indices) == list(network.indices)

    def test_random_geometric_legacy_backend(self):
        legacy = graphs.random_geometric(30, 0.3, seed=2, backend="legacy")
        assert legacy.num_nodes == 30
        with pytest.raises(InvalidParameterError, match="radius"):
            graphs.random_geometric(10, 0.0)

    @QUICK_PROPERTY
    @given(
        ports=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=2**31),
        data=st.data(),
    )
    def test_bipartite_switch_biregular(self, ports, seed, data):
        demand = data.draw(st.integers(min_value=0, max_value=ports))
        network = graphs.bipartite_switch(ports, demand, seed=seed, backend="fast")
        assert network.network is None
        assert (np.asarray(network.degrees_np) == demand).all()
        materialized = network.to_network()
        for u, v in materialized.edges():
            assert {u[0], v[0]} == {"in", "out"}
        again = graphs.bipartite_switch(ports, demand, seed=seed, backend="fast")
        assert list(again.indices) == list(network.indices)

    def test_bipartite_switch_legacy_shares_the_fast_stream(self):
        fast = graphs.bipartite_switch(12, 5, seed=7, backend="fast")
        legacy = graphs.bipartite_switch(12, 5, seed=7, backend="legacy")
        assert_bit_identical(fast, legacy)
        assert legacy.nodes()[0] == ("in", 0)


class TestNetworkFreeEntryPath:
    """The golden ``from_edge_array`` scenario: arrays in, arrays verified."""

    def _edge_arrays(self):
        # The 4x5 grid as plain endpoint arrays (same shape the fast grid
        # builder emits, but entering through the public constructor).
        rows, cols = 4, 5
        index = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
        u = np.concatenate([index[:, :-1].ravel(), index[:-1, :].ravel()])
        v = np.concatenate([index[:, 1:].ravel(), index[1:, :].ravel()])
        return u, v, rows * cols

    def test_vectorized_run_never_builds_a_network(self):
        u, v, n = self._edge_arrays()
        fast = FastNetwork.from_edge_array(u, v, num_nodes=n)
        result = color_vertices(fast, c=2, quality="superlinear", engine="vectorized")
        assert result.metrics.fallback_phase_names == []
        assert_legal_vertex_coloring(fast, result.color_column)
        # The whole pipeline -- build, run, verify -- stayed Network-free.
        assert fast.network is None

    def test_colors_match_the_legacy_built_graph(self):
        u, v, n = self._edge_arrays()
        fast = FastNetwork.from_edge_array(u, v, num_nodes=n)
        legacy = Network.from_edges(zip(u.tolist(), v.tolist()))
        assert_bit_identical(fast, legacy)
        fast_run = color_vertices(fast, c=2, quality="superlinear", engine="vectorized")
        for engine in ("reference", "batched", "vectorized"):
            legacy_run = color_vertices(
                legacy, c=2, quality="superlinear", engine=engine
            )
            assert legacy_run.colors == fast_run.colors
            assert (
                legacy_run.metrics.summary() == fast_run.metrics.summary()
            )

    def test_from_edge_array_validation(self):
        with pytest.raises(InvalidParameterError, match="self-loop"):
            FastNetwork.from_edge_array([0, 1], [0, 2], num_nodes=3)
        with pytest.raises(InvalidParameterError, match="dense indices"):
            FastNetwork.from_edge_array([0], [5], num_nodes=3)
        with pytest.raises(InvalidParameterError, match="disagree in length"):
            FastNetwork.from_edge_array([0, 1], [1], num_nodes=2)
        with pytest.raises(InvalidParameterError, match="strictly increasing"):
            FastNetwork.from_edge_array(
                [0], [1], num_nodes=2, unique_ids=[7, 3]
            )

    def test_from_edge_array_deduplicates_like_network(self):
        fast = FastNetwork.from_edge_array(
            [0, 1, 1, 2], [1, 0, 2, 1], num_nodes=4
        )
        legacy = Network({0: [1, 1], 1: [0, 2], 2: [1], 3: []})
        assert_bit_identical(fast, legacy)

    def test_from_csr_roundtrip_and_validation(self):
        base = graphs.grid_graph(3, 4, backend="fast")
        rebuilt = FastNetwork.from_csr(list(base.indptr), list(base.indices))
        assert list(rebuilt.indices) == list(base.indices)
        assert rebuilt.order == base.order
        with pytest.raises(InvalidParameterError, match="symmetric"):
            FastNetwork.from_csr([0, 1, 1], [1])
        with pytest.raises(InvalidParameterError, match="strictly increasing"):
            FastNetwork.from_csr([0, 2, 4], [1, 1, 0, 0])
        with pytest.raises(InvalidParameterError, match="self-loops"):
            FastNetwork.from_csr([0, 1, 2], [0, 1])

    def test_custom_identifiers_and_unique_ids(self):
        names = ("a", "b", "c")
        fast = FastNetwork.from_edge_array(
            [0, 1], [1, 2], num_nodes=3, unique_ids=[2, 5, 9], order=names
        )
        assert fast.nodes() == names
        assert fast.unique_id("b") == 5
        materialized = fast.to_network()
        assert materialized.neighbors("b") == ("a", "c")
