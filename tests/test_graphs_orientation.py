"""Unit tests for acyclic orientations (Lemmas 3.4 / 3.5 machinery, Figure 2)."""

from __future__ import annotations

import pytest

from repro import graphs
from repro.exceptions import InvalidParameterError
from repro.graphs.orientation import (
    acyclic_orientation_from_coloring,
    is_acyclic_orientation,
    longest_directed_path_length,
    max_out_degree,
    out_neighbors,
)
from repro.baselines import greedy_sequential_vertex_coloring


class TestOrientationFromColoring:
    def test_orientation_covers_all_edges(self, small_regular):
        colors = greedy_sequential_vertex_coloring(small_regular)
        orientation = acyclic_orientation_from_coloring(small_regular, colors)
        assert set(orientation.keys()) == set(small_regular.edges())

    def test_orientation_is_acyclic_for_legal_coloring(self, small_regular):
        colors = greedy_sequential_vertex_coloring(small_regular)
        orientation = acyclic_orientation_from_coloring(small_regular, colors)
        assert is_acyclic_orientation(small_regular, orientation)

    def test_orientation_is_acyclic_even_for_constant_coloring(self, small_regular):
        # Ties are broken by unique identifier, which is itself acyclic.
        constant = {node: 1 for node in small_regular.nodes()}
        orientation = acyclic_orientation_from_coloring(small_regular, constant)
        assert is_acyclic_orientation(small_regular, orientation)

    def test_edges_point_towards_smaller_color(self, triangle):
        colors = {node: index + 1 for index, node in enumerate(triangle.nodes())}
        orientation = acyclic_orientation_from_coloring(triangle, colors)
        for (u, v), head in orientation.items():
            tail = v if head == u else u
            assert colors[head] <= colors[tail]

    def test_out_degree_bounded_by_degree(self, small_regular):
        colors = greedy_sequential_vertex_coloring(small_regular)
        orientation = acyclic_orientation_from_coloring(small_regular, colors)
        assert max_out_degree(small_regular, orientation) <= small_regular.max_degree

    def test_out_neighbors_consistent_with_out_degree(self, triangle):
        colors = {node: index + 1 for index, node in enumerate(triangle.nodes())}
        orientation = acyclic_orientation_from_coloring(triangle, colors)
        total_out = sum(
            len(out_neighbors(triangle, orientation, node)) for node in triangle.nodes()
        )
        assert total_out == triangle.num_edges


class TestAcyclicityAndPaths:
    def test_directed_cycle_detected(self, triangle):
        nodes = triangle.nodes()
        # Build a rotating orientation: 0 -> 1 -> 2 -> 0.
        orientation = {}
        for u, v in triangle.edges():
            i, j = nodes.index(u), nodes.index(v)
            head = v if (j - i) % 3 == 1 else u
            orientation[(u, v)] = head
        assert not is_acyclic_orientation(triangle, orientation)

    def test_longest_path_on_oriented_path_graph(self):
        path = graphs.path_graph(6)
        colors = {node: node + 1 for node in path.nodes()}
        orientation = acyclic_orientation_from_coloring(path, colors)
        assert longest_directed_path_length(path, orientation) == 5

    def test_longest_path_rejects_cyclic_orientation(self, triangle):
        nodes = triangle.nodes()
        orientation = {}
        for u, v in triangle.edges():
            i, j = nodes.index(u), nodes.index(v)
            orientation[(u, v)] = v if (j - i) % 3 == 1 else u
        with pytest.raises(InvalidParameterError):
            longest_directed_path_length(triangle, orientation)

    def test_longest_path_bounded_by_number_of_color_classes(self, small_regular):
        colors = greedy_sequential_vertex_coloring(small_regular)
        orientation = acyclic_orientation_from_coloring(small_regular, colors)
        # Along a directed path the (color, id) pair strictly decreases, so the
        # path length is at most n - 1; with a legal coloring the color strictly
        # decreases or stays equal with decreasing id.
        longest = longest_directed_path_length(small_regular, orientation)
        assert longest <= small_regular.num_nodes - 1

    def test_incomplete_orientation_rejected(self, triangle):
        orientation = {triangle.edges()[0]: triangle.edges()[0][0]}
        with pytest.raises(InvalidParameterError):
            is_acyclic_orientation(triangle, orientation)

    def test_orientation_with_foreign_head_rejected(self, triangle):
        orientation = {edge: edge[0] for edge in triangle.edges()}
        orientation[triangle.edges()[0]] = "foreign"
        with pytest.raises(InvalidParameterError):
            is_acyclic_orientation(triangle, orientation)
