"""Unit tests for the Section 6 extensions (randomized split and tradeoff)."""

from __future__ import annotations

import math

import pytest

from repro import graphs
from repro.core.randomized import randomized_color_vertices
from repro.core.tradeoff import tradeoff_color_vertices
from repro.exceptions import InvalidParameterError
from repro.graphs.line_graph import line_graph_network
from repro.verification.coloring import assert_legal_vertex_coloring, max_color


class TestRandomizedColoring:
    def test_legal_coloring_on_high_degree_graph(self):
        # Delta = 29 >> log2(60) ~ 6, so the random split is used.
        network = graphs.clique_with_pendants(30)
        result = randomized_color_vertices(network, c=2, seed=1)
        assert result.used_random_split
        assert result.num_classes >= 2
        assert_legal_vertex_coloring(network, result.colors)
        assert max_color(result.colors) <= result.palette

    def test_split_defect_is_logarithmic_whp(self):
        network = graphs.clique_with_pendants(40)
        result = randomized_color_vertices(network, c=2, seed=2)
        log_n = math.log2(network.num_nodes)
        # Theorem 6.1's Chernoff bound: the intra-class degree is O(log n);
        # allow a generous constant for the small sizes we test at.
        assert result.split_defect <= 8 * log_n + 8

    def test_low_degree_graph_skips_the_split(self):
        network = graphs.cycle_graph(64)
        result = randomized_color_vertices(network, c=2, seed=3)
        assert not result.used_random_split
        assert result.num_classes == 1
        assert_legal_vertex_coloring(network, result.colors)

    def test_reproducible_given_seed(self):
        network = graphs.clique_with_pendants(20)
        first = randomized_color_vertices(network, c=2, seed=7)
        second = randomized_color_vertices(network, c=2, seed=7)
        assert first.colors == second.colors

    def test_different_seeds_usually_differ(self):
        network = graphs.clique_with_pendants(20)
        first = randomized_color_vertices(network, c=2, seed=1)
        second = randomized_color_vertices(network, c=2, seed=2)
        assert first.class_assignment != second.class_assignment

    def test_line_graph_workload(self):
        base = graphs.random_regular(30, 8, seed=4)
        line = line_graph_network(base)
        result = randomized_color_vertices(line, c=2, seed=5)
        assert_legal_vertex_coloring(line, result.colors)

    def test_invalid_c(self, fig1_graph):
        with pytest.raises(InvalidParameterError):
            randomized_color_vertices(fig1_graph, c=0)


class TestTradeoffColoring:
    @pytest.mark.parametrize("exponent", [0.5, 1.0])
    def test_legal_and_within_palette(self, exponent):
        network = graphs.clique_with_pendants(16)
        result = tradeoff_color_vertices(network, c=2, g=lambda d: d**exponent)
        assert_legal_vertex_coloring(network, result.colors)
        assert max_color(result.colors) <= result.palette

    def test_larger_g_means_fewer_colors(self):
        base = graphs.random_regular(40, 10, seed=6)
        line = line_graph_network(base)
        mild = tradeoff_color_vertices(line, c=2, g=lambda d: 2.0)
        aggressive = tradeoff_color_vertices(line, c=2, g=lambda d: float(d))
        assert_legal_vertex_coloring(line, mild.colors)
        assert_legal_vertex_coloring(line, aggressive.colors)
        assert aggressive.palette <= mild.palette

    def test_constant_g_close_to_one_degenerates_to_split_free_run(self):
        network = graphs.clique_with_pendants(10)
        result = tradeoff_color_vertices(network, c=2, g=lambda d: 1.0)
        assert_legal_vertex_coloring(network, result.colors)

    def test_split_defect_bound_respected(self):
        network = graphs.clique_with_pendants(20)
        result = tradeoff_color_vertices(network, c=2, g=lambda d: d**0.5)
        # The per-class subgraph degree is bounded by the split defect bound.
        assert result.split_defect_bound >= 1

    def test_invalid_parameters(self, fig1_graph):
        with pytest.raises(InvalidParameterError):
            tradeoff_color_vertices(fig1_graph, c=0, g=lambda d: 2.0)
        with pytest.raises(InvalidParameterError):
            tradeoff_color_vertices(fig1_graph, c=2, g=lambda d: 2.0, eta=1.5)
        with pytest.raises(InvalidParameterError):
            tradeoff_color_vertices(fig1_graph, c=2, g=lambda d: 0.5)
