"""Unit tests for the defective coloring primitives (Lemma 2.1(3), Cor 5.4)."""

from __future__ import annotations

import pytest

from repro import graphs
from repro.exceptions import InvalidParameterError
from repro.local_model import Scheduler
from repro.graphs.line_graph import build_line_graph_network
from repro.primitives.kuhn_defective import (
    DefectiveStepPhase,
    defective_coloring_pipeline,
    defective_step_parameters,
)
from repro.primitives.kuhn_defective_edge import KuhnDefectiveEdgeColoringPhase
from repro.primitives.numbers import ceil_div
from repro.verification.coloring import coloring_defect, max_color


class TestStepParameters:
    def test_guarantee_of_the_chosen_prime(self):
        for palette in (50, 500, 5000):
            for degree in (4, 16, 64):
                for defect in (1, 2, 8):
                    q, digits = defective_step_parameters(palette, degree, defect)
                    # The best evaluation point has at most floor(degree * t / q)
                    # collisions, which must respect the budget.
                    assert (degree * (digits - 1)) // q <= defect
                    assert q**digits >= palette

    def test_large_budget_allows_tiny_prime(self):
        q, _ = defective_step_parameters(palette=100, degree_bound=4, defect_budget=100)
        assert q <= 3

    def test_invalid_arguments(self):
        with pytest.raises(InvalidParameterError):
            defective_step_parameters(0, 4, 1)
        with pytest.raises(InvalidParameterError):
            defective_step_parameters(10, -1, 1)
        with pytest.raises(InvalidParameterError):
            defective_step_parameters(10, 4, 0)


class TestDefectiveVertexColoring:
    @pytest.mark.parametrize("target_defect", [1, 2, 4])
    def test_defect_and_palette_bounds(self, target_defect):
        network = graphs.random_regular(40, 8, seed=5)
        pipeline, palette = defective_coloring_pipeline(
            n=network.num_nodes,
            degree_bound=network.max_degree,
            target_defect=target_defect,
            output_key="d",
        )
        result = Scheduler(network).run(pipeline)
        colors = result.extract("d")
        assert coloring_defect(network, colors) <= target_defect
        assert max_color(colors) <= palette
        # defect * colors should stay within a constant factor of Delta^2 /
        # defect ... i.e. palette = O((Delta / defect)^2).
        ratio = network.max_degree / target_defect
        assert palette <= 36 * ratio * ratio + 36

    def test_zero_defect_request_returns_legal_coloring(self, small_regular):
        pipeline, palette = defective_coloring_pipeline(
            n=small_regular.num_nodes,
            degree_bound=small_regular.max_degree,
            target_defect=0,
            output_key="d",
        )
        result = Scheduler(small_regular).run(pipeline)
        colors = result.extract("d")
        assert coloring_defect(small_regular, colors) == 0
        assert max_color(colors) <= palette

    def test_rounds_stay_small(self, medium_regular):
        pipeline, _ = defective_coloring_pipeline(
            n=medium_regular.num_nodes,
            degree_bound=medium_regular.max_degree,
            target_defect=2,
            output_key="d",
        )
        result = Scheduler(medium_regular).run(pipeline)
        # Linial's log* n rounds plus at most two defective steps.
        assert result.metrics.rounds <= 12

    def test_auxiliary_input_skips_nothing_but_stays_correct(self, small_regular):
        from repro.primitives.linial import LinialColoringPhase

        aux = LinialColoringPhase(
            degree_bound=small_regular.max_degree,
            initial_palette=small_regular.num_nodes,
            output_key="rho",
        )
        aux_result = Scheduler(small_regular).run(aux)
        pipeline, palette = defective_coloring_pipeline(
            n=small_regular.num_nodes,
            degree_bound=small_regular.max_degree,
            target_defect=2,
            initial_palette=aux.final_palette,
            input_key="rho",
            output_key="d",
        )
        result = Scheduler(small_regular).run(pipeline, initial_states=aux_result.states)
        colors = result.extract("d")
        assert coloring_defect(small_regular, colors) <= 2
        assert max_color(colors) <= palette

    def test_single_step_phase_runs_one_round(self, small_regular):
        step = DefectiveStepPhase(
            palette=small_regular.num_nodes,
            degree_bound=small_regular.max_degree,
            defect_budget=2,
            input_key="seed",
            output_key="out",
        )
        seeds = {node: {"seed": small_regular.unique_id(node)} for node in small_regular.nodes()}
        result = Scheduler(small_regular).run(step, initial_states=seeds)
        assert result.metrics.rounds == 1
        assert max_color(result.extract("out")) <= step.output_palette

    def test_step_rejects_out_of_palette_colors(self, triangle):
        step = DefectiveStepPhase(
            palette=2, degree_bound=2, defect_budget=1, input_key="seed", output_key="out"
        )
        with pytest.raises(InvalidParameterError):
            Scheduler(triangle).run(
                step, initial_states={node: {"seed": 9} for node in triangle.nodes()}
            )


class TestDefectiveEdgeColoring:
    def _line_graph(self, network):
        line, _ = build_line_graph_network(network)
        return line

    @pytest.mark.parametrize("p_prime", [2, 3, 5])
    def test_corollary_5_4_defect_and_palette(self, p_prime):
        network = graphs.random_regular(30, 6, seed=7)
        line = self._line_graph(network)
        phase = KuhnDefectiveEdgeColoringPhase(
            p_prime=p_prime, degree_bound=network.max_degree, output_key="edge_color"
        )
        result = Scheduler(line).run(phase)
        colors = result.extract("edge_color")
        assert max_color(colors) <= p_prime * p_prime
        # The defect (within the line graph) is at most 4 * ceil(Delta / p').
        assert coloring_defect(line, colors) <= 4 * ceil_div(network.max_degree, p_prime)

    def test_single_round_cost(self):
        network = graphs.cycle_graph(10)
        line = self._line_graph(network)
        phase = KuhnDefectiveEdgeColoringPhase(p_prime=2, degree_bound=2)
        result = Scheduler(line).run(phase)
        assert result.metrics.rounds == 1

    def test_class_restriction_limits_counted_neighbors(self):
        network = graphs.random_regular(20, 4, seed=9)
        line = self._line_graph(network)
        # Put every edge in its own class: every label rank becomes 0, so all
        # edges get color (1, 1) -> 1, and the defect bound is vacuous because
        # no two incident edges share a class.
        states = {edge: {"cls": index} for index, edge in enumerate(line.nodes())}
        phase = KuhnDefectiveEdgeColoringPhase(
            p_prime=3, degree_bound=4, output_key="edge_color", class_key="cls"
        )
        result = Scheduler(line).run(phase, initial_states=states)
        assert set(result.extract("edge_color").values()) == {1}

    def test_requires_line_graph_node_ids(self, triangle):
        phase = KuhnDefectiveEdgeColoringPhase(p_prime=2, degree_bound=2)
        with pytest.raises(InvalidParameterError):
            Scheduler(triangle).run(phase)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            KuhnDefectiveEdgeColoringPhase(p_prime=0, degree_bound=3)
        with pytest.raises(InvalidParameterError):
            KuhnDefectiveEdgeColoringPhase(p_prime=2, degree_bound=0)


class TestDefectiveEdgeColoringKernel:
    """The Corollary 5.4 numpy kernel against the per-node callbacks."""

    def _compare(self, line, phase, initial_states=None):
        from repro.local_model import BatchedScheduler, VectorizedScheduler

        reference = Scheduler(line).run(phase, initial_states=initial_states)
        for engine_cls in (BatchedScheduler, VectorizedScheduler):
            candidate = engine_cls(line).run(phase, initial_states=initial_states)
            assert candidate.states == reference.states
            assert candidate.metrics.summary() == reference.metrics.summary()
        return reference

    @pytest.mark.parametrize("p_prime", [2, 3, 5])
    def test_bit_identical_without_classes(self, p_prime):
        network = graphs.random_regular(30, 6, seed=7)
        line, _ = build_line_graph_network(network)
        phase = KuhnDefectiveEdgeColoringPhase(
            p_prime=p_prime, degree_bound=network.max_degree, output_key="edge_color"
        )
        self._compare(line, phase)

    def test_bit_identical_with_class_restriction(self):
        network = graphs.random_regular(20, 4, seed=9)
        line, _ = build_line_graph_network(network)
        states = {edge: {"cls": index % 3} for index, edge in enumerate(line.nodes())}
        phase = KuhnDefectiveEdgeColoringPhase(
            p_prime=3, degree_bound=4, output_key="edge_color", class_key="cls"
        )
        self._compare(line, phase, initial_states=states)

    def test_bit_identical_with_tuple_classes(self):
        # Tuple-valued classes (the Legal-Color recursion paths) change the
        # broadcast payload size; metrics must still match exactly.
        network = graphs.random_regular(18, 4, seed=3)
        line, _ = build_line_graph_network(network)
        states = {
            edge: {"cls": (1, line.unique_id(edge) % 2)} for edge in line.nodes()
        }
        phase = KuhnDefectiveEdgeColoringPhase(
            p_prime=2, degree_bound=4, output_key="edge_color", class_key="cls"
        )
        self._compare(line, phase, initial_states=states)

    def test_bit_identical_with_non_monotone_unique_ids(self):
        # node_sort_key order of the edge tuples disagrees with pair-key
        # order here; the kernel's sort_rank column must follow the former.
        from repro.local_model import Network

        base = Network(
            {10: [20, 30, 40], 20: [30, 40], 30: [40], 40: []},
            unique_ids={10: 4, 20: 3, 30: 2, 40: 1},
        )
        line, _ = build_line_graph_network(base)
        phase = KuhnDefectiveEdgeColoringPhase(
            p_prime=2, degree_bound=3, output_key="edge_color"
        )
        self._compare(line, phase)

    def test_vectorized_requires_line_graph_node_ids(self, triangle):
        from repro.local_model import VectorizedScheduler

        phase = KuhnDefectiveEdgeColoringPhase(p_prime=2, degree_bound=2)
        with pytest.raises(InvalidParameterError):
            VectorizedScheduler(triangle).run(phase)

    def test_kernel_on_the_csr_builder_view(self):
        # The fast-builder view carries the incidence encoding natively; the
        # kernel must agree with the reference run on the materialized twin.
        from repro.graphs.line_graph import build_line_graph_fast
        from repro.local_model import VectorizedScheduler

        network = graphs.random_regular(26, 8, seed=1)
        fast = build_line_graph_fast(network)
        phase = KuhnDefectiveEdgeColoringPhase(
            p_prime=4, degree_bound=network.max_degree, output_key="edge_color"
        )
        reference = Scheduler(fast.to_network()).run(phase)
        candidate = VectorizedScheduler(fast).run(phase)
        assert candidate.states == reference.states
        assert candidate.metrics.summary() == reference.metrics.summary()
