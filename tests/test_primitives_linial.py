"""Unit tests for Linial's O(Delta^2)-coloring (Lemma 2.1(1))."""

from __future__ import annotations

import pytest

from repro import graphs
from repro.exceptions import InvalidParameterError
from repro.local_model import Scheduler
from repro.primitives.linial import LinialColoringPhase, linial_final_palette, linial_schedule
from repro.primitives.numbers import log_star
from repro.verification.coloring import assert_legal_vertex_coloring, max_color


def run_linial(network, degree_bound=None, initial_palette=None):
    degree_bound = degree_bound if degree_bound is not None else network.max_degree
    initial_palette = initial_palette or network.num_nodes
    phase = LinialColoringPhase(degree_bound=degree_bound, initial_palette=initial_palette)
    result = Scheduler(network).run(phase)
    return result.extract(phase.output_key), result.metrics, phase


class TestSchedule:
    def test_zero_degree_graph_needs_no_rounds(self):
        schedule, palette = linial_schedule(100, 0)
        assert schedule == []
        assert palette == 1

    def test_final_palette_quadratic_in_degree(self):
        for delta in (2, 3, 5, 8, 16, 32, 64):
            final = linial_final_palette(10_000, delta)
            assert final <= 9 * (delta + 2) ** 2

    def test_final_palette_never_exceeds_initial(self):
        for n in (10, 100, 1000):
            for delta in (1, 2, 4, 8):
                assert linial_final_palette(n, delta) <= n

    def test_palette_strictly_decreases_along_schedule(self):
        schedule, final = linial_schedule(10**6, 8)
        palettes = [entry[2] for entry in schedule] + [final]
        assert palettes == sorted(palettes, reverse=True)
        assert len(set(palettes)) == len(palettes)

    def test_number_of_rounds_is_log_star_like(self):
        # The number of recoloring rounds grows extremely slowly with n.
        for n, bound in ((10**3, 4), (10**6, 5), (10**9, 6)):
            schedule, _ = linial_schedule(n, 4)
            assert len(schedule) <= bound + log_star(n)

    def test_each_step_uses_prime_exceeding_degree_times_poly_degree(self):
        schedule, _ = linial_schedule(10**5, 6)
        for q, digits, palette in schedule:
            assert q > 6 * (digits - 1)
            assert q**digits >= palette

    def test_invalid_arguments(self):
        with pytest.raises(InvalidParameterError):
            linial_schedule(0, 3)
        with pytest.raises(InvalidParameterError):
            linial_schedule(10, -1)


class TestDistributedExecution:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: graphs.cycle_graph(9),
            lambda: graphs.random_regular(30, 4, seed=2),
            lambda: graphs.clique_with_pendants(7),
            lambda: graphs.complete_graph(8),
            lambda: graphs.grid_graph(5, 4),
        ],
    )
    def test_produces_legal_coloring_within_declared_palette(self, maker):
        network = maker()
        colors, metrics, phase = run_linial(network)
        assert_legal_vertex_coloring(network, colors)
        assert max_color(colors) <= phase.final_palette
        assert metrics.rounds == max(1, len(phase.schedule))

    def test_edgeless_graph_gets_single_color(self):
        from repro.local_model import Network

        network = Network({i: [] for i in range(5)})
        colors, metrics, phase = run_linial(network, degree_bound=0)
        assert set(colors.values()) == {1}

    def test_isolated_vertices_mixed_with_edges(self):
        from repro.local_model import Network

        network = Network.from_edges([(1, 2), (2, 3)], isolated_nodes=[10, 11])
        colors, _, phase = run_linial(network)
        assert_legal_vertex_coloring(network, colors)

    def test_accepts_existing_coloring_as_input(self, small_regular):
        # Feed the auxiliary-coloring path: start from a legal coloring with a
        # small palette and a smaller degree bound.
        base_colors, _, base_phase = run_linial(small_regular)
        initial_states = {
            node: {"rho": color} for node, color in base_colors.items()
        }
        phase = LinialColoringPhase(
            degree_bound=small_regular.max_degree,
            initial_palette=base_phase.final_palette,
            input_key="rho",
            output_key="refined",
        )
        result = Scheduler(small_regular).run(phase, initial_states=initial_states)
        refined = result.extract("refined")
        assert_legal_vertex_coloring(small_regular, refined)
        assert max_color(refined) <= phase.final_palette

    def test_out_of_range_initial_color_rejected(self, triangle):
        phase = LinialColoringPhase(degree_bound=2, initial_palette=2, input_key="c")
        with pytest.raises(InvalidParameterError):
            Scheduler(triangle).run(
                phase, initial_states={node: {"c": 5} for node in triangle.nodes()}
            )

    def test_message_sizes_are_single_words(self):
        # Use a large, sparse graph so the schedule is non-empty and messages
        # actually flow; each message carries exactly one color (one word).
        network = graphs.cycle_graph(200)
        _, metrics, phase = run_linial(network)
        assert len(phase.schedule) >= 1
        assert metrics.max_message_words == 1

    def test_deterministic_across_runs(self, small_regular):
        first, _, _ = run_linial(small_regular)
        second, _, _ = run_linial(small_regular)
        assert first == second
