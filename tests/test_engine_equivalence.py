"""Batched == vectorized == compiled engine == reference scheduler, bit for bit.

The batched round engine (:class:`repro.local_model.BatchedScheduler`), the
vectorized color-phase engine
(:class:`repro.local_model.VectorizedScheduler`) and the compiled
kernel-dispatch engine (:class:`repro.local_model.CompiledScheduler`) are
only trustworthy because these tests pin them to the reference scheduler:
for every core algorithm, over a grid of graphs and seeds, all engines must
produce *identical* final colorings and *identical* metrics (rounds,
messages, total words, maximum message size -- per phase, not just in
aggregate).  Any divergence, however small, is a bug in one of the engines.

The compiled engine is additionally exercised in *both* of its
configurations: with whatever kernel backend the machine resolves (numba or
the C extension), and with dispatch force-disabled so every kernel-eligible
phase takes the numpy fallback (the ``no_kernel_backend`` fixture) -- the
results must be identical either way.
"""

from __future__ import annotations

import pytest

from repro import graphs
from repro.baselines import luby_edge_coloring, panconesi_rizzi_edge_coloring
from repro.core import (
    color_edges,
    color_vertices,
    randomized_color_vertices,
    run_defective_color,
    tradeoff_color_vertices,
)
from repro.core.defective_coloring import defective_color_pipeline
from repro.graphs.line_graph import line_graph_network
from repro.local_model import (
    BatchedScheduler,
    CompiledScheduler,
    Network,
    Scheduler,
    VectorizedScheduler,
    kernels,
    make_scheduler,
    use_engine,
)
from repro.primitives.color_reduction import delta_plus_one_pipeline
from repro.primitives.kuhn_defective import defective_coloring_pipeline

#: The engines whose outputs must be indistinguishable from the reference.
FAST_ENGINES = ("batched", "vectorized", "compiled")

ENGINE_CLASSES = {
    "reference": Scheduler,
    "batched": BatchedScheduler,
    "vectorized": VectorizedScheduler,
    "compiled": CompiledScheduler,
}


@pytest.fixture(name="no_kernel_backend")
def _no_kernel_backend(monkeypatch):
    """Force the compiled engine onto its numpy fallback for one test."""
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "none")
    kernels.reset()
    yield
    kernels.reset()


def metrics_fingerprint(metrics):
    """Aggregate plus full per-phase breakdown -- the strongest comparison."""
    return (
        metrics.summary(),
        [
            (p.name, p.rounds, p.messages, p.total_words, p.max_message_words)
            for p in metrics.phases
        ],
    )


GRAPHS = {
    "triangle": lambda: graphs.cycle_graph(3),
    "path10": lambda: graphs.path_graph(10),
    "cycle9": lambda: graphs.cycle_graph(9),
    "star6": lambda: graphs.star_graph(6),
    "grid5x4": lambda: graphs.grid_graph(5, 4),
    "clique_pendants8": lambda: graphs.clique_with_pendants(8),
    "regular24x4": lambda: graphs.random_regular(24, 4, seed=7),
    "regular30x6": lambda: graphs.random_regular(30, 6, seed=11),
    "regular26x8-s3": lambda: graphs.random_regular(26, 8, seed=3),
}


@pytest.fixture(params=sorted(GRAPHS), name="grid_network")
def _grid_network(request):
    return GRAPHS[request.param]()


class TestSchedulerLevelEquivalence:
    """Raw pipelines compared straight at the scheduler API.

    These comparisons include the *full* final state dictionaries --
    internal scratch keys and all -- which is the strictest possible check
    of the vectorized kernels.
    """

    def _compare(self, network: Network, pipeline, initial_states=None):
        reference = Scheduler(network).run(pipeline, initial_states=initial_states)
        for engine_cls in (BatchedScheduler, VectorizedScheduler, CompiledScheduler):
            candidate = engine_cls(network).run(
                pipeline, initial_states=initial_states
            )
            assert candidate.states == reference.states
            assert metrics_fingerprint(candidate.metrics) == metrics_fingerprint(
                reference.metrics
            )

    def test_delta_plus_one_pipeline(self, grid_network):
        pipeline, _ = delta_plus_one_pipeline(
            n=grid_network.num_nodes,
            degree_bound=max(1, grid_network.max_degree),
            output_key="c",
        )
        self._compare(grid_network, pipeline)

    def test_delta_plus_one_iterative_reduction(self, grid_network):
        pipeline, _ = delta_plus_one_pipeline(
            n=grid_network.num_nodes,
            degree_bound=max(1, grid_network.max_degree),
            output_key="c",
            use_kuhn_wattenhofer=False,
        )
        self._compare(grid_network, pipeline)

    def test_defective_pipeline(self, grid_network):
        pipeline, _ = defective_coloring_pipeline(
            n=grid_network.num_nodes,
            degree_bound=max(1, grid_network.max_degree),
            target_defect=2,
            output_key="d",
        )
        self._compare(grid_network, pipeline)

    def test_defective_color_pipeline_with_psi_selection(self, grid_network):
        pipeline, _ = defective_color_pipeline(
            n=grid_network.num_nodes,
            b=1,
            p=2,
            Lambda=max(2, grid_network.max_degree),
            c=max(1, grid_network.max_degree),
        )
        self._compare(grid_network, pipeline)

    def test_defective_color_pipeline_edge_mode(self, grid_network):
        # The Corollary 5.4 route, full final states included: the line-graph
        # incidence kernel must reproduce the per-node callbacks bit for bit,
        # with and without a class restriction.
        line = line_graph_network(grid_network)
        if line.num_nodes == 0:
            return
        pipeline, _ = defective_color_pipeline(
            n=line.num_nodes,
            b=1,
            p=2,
            Lambda=max(2, grid_network.max_degree),
            c=2,
            mode="edge",
            class_key="cls",
        )
        classes = {
            edge: {"cls": line.unique_id(edge) % 3} for edge in line.nodes()
        }
        self._compare(line, pipeline, initial_states=classes)

    def test_empty_network(self):
        pipeline, _ = delta_plus_one_pipeline(n=1, degree_bound=1, output_key="c")
        self._compare(Network({}), pipeline)

    def test_single_node_network(self):
        pipeline, _ = delta_plus_one_pipeline(n=1, degree_bound=1, output_key="c")
        self._compare(Network({"only": []}), pipeline)


class TestLegalColoringEquivalence:
    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("quality", ["superlinear", "linear"])
    def test_identical_colorings_and_metrics(self, grid_network, quality, engine):
        c = max(1, grid_network.max_degree)
        reference = color_vertices(
            grid_network, c=c, quality=quality, engine="reference"
        )
        candidate = color_vertices(grid_network, c=c, quality=quality, engine=engine)
        assert candidate.colors == reference.colors
        assert candidate.palette == reference.palette
        assert [level.rounds for level in candidate.levels] == [
            level.rounds for level in reference.levels
        ]
        assert metrics_fingerprint(candidate.metrics) == metrics_fingerprint(
            reference.metrics
        )


class TestEdgeColoringEquivalence:
    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("quality", ["superlinear", "linear"])
    @pytest.mark.parametrize("route", ["direct", "simulation"])
    def test_identical_edge_colorings(self, quality, route, engine):
        for seed in (1, 5):
            network = graphs.random_regular(20, 4, seed=seed)
            reference = color_edges(
                network, quality=quality, route=route, engine="reference"
            )
            candidate = color_edges(network, quality=quality, route=route, engine=engine)
            assert candidate.edge_colors == reference.edge_colors
            assert candidate.palette == reference.palette
            assert metrics_fingerprint(candidate.metrics) == metrics_fingerprint(
                reference.metrics
            )

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("route", ["direct", "simulation"])
    def test_identical_edge_colorings_with_recursion_levels(self, route, engine):
        # Delta(L) = 30 exceeds the superlinear threshold, so the direct
        # route actually runs Corollary 5.4 levels (the CSR edge kernel).
        network = graphs.random_regular(40, 16, seed=3)
        reference = color_edges(
            network, quality="superlinear", route=route, engine="reference"
        )
        candidate = color_edges(
            network, quality="superlinear", route=route, engine=engine
        )
        assert candidate.edge_colors == reference.edge_colors
        assert candidate.palette == reference.palette
        assert metrics_fingerprint(candidate.metrics) == metrics_fingerprint(
            reference.metrics
        )


class TestDefectiveColoringEquivalence:
    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("p", [2, 3])
    def test_identical_psi_colorings(self, p, engine):
        for seed in (2, 9):
            line = line_graph_network(graphs.random_regular(18, 4, seed=seed))
            ref_colors, ref_info, ref_metrics = run_defective_color(
                line, b=1, p=p, c=2, engine="reference"
            )
            colors, info, metrics = run_defective_color(
                line, b=1, p=p, c=2, engine=engine
            )
            assert colors == ref_colors
            assert info == ref_info
            assert metrics_fingerprint(metrics) == metrics_fingerprint(ref_metrics)

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_edge_mode(self, engine):
        line = line_graph_network(graphs.random_regular(16, 6, seed=4))
        ref_colors, _, ref_metrics = run_defective_color(
            line, b=2, p=3, c=2, mode="edge", engine="reference"
        )
        colors, _, metrics = run_defective_color(
            line, b=2, p=3, c=2, mode="edge", engine=engine
        )
        assert colors == ref_colors
        assert metrics_fingerprint(metrics) == metrics_fingerprint(ref_metrics)


class TestTradeoffEquivalence:
    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize(
        "g_label,g", [("sqrt", lambda d: d**0.5), ("linear", float)]
    )
    def test_identical_tradeoff_colorings(self, g_label, g, engine):
        line = line_graph_network(graphs.random_regular(20, 6, seed=13))
        reference = tradeoff_color_vertices(line, c=2, g=g, engine="reference")
        candidate = tradeoff_color_vertices(line, c=2, g=g, engine=engine)
        assert candidate.colors == reference.colors
        assert candidate.palette == reference.palette
        assert metrics_fingerprint(candidate.metrics) == metrics_fingerprint(
            reference.metrics
        )


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_identical_randomized_colorings(self, engine):
        # Per-node randomness is keyed by (seed, unique id), so it must be
        # engine-independent.
        network = graphs.random_regular(32, 8, seed=21)
        for seed in (0, 7):
            reference = randomized_color_vertices(
                network, c=8, seed=seed, engine="reference"
            )
            candidate = randomized_color_vertices(
                network, c=8, seed=seed, engine=engine
            )
            assert candidate.colors == reference.colors
            assert candidate.class_assignment == reference.class_assignment
            assert metrics_fingerprint(candidate.metrics) == metrics_fingerprint(
                reference.metrics
            )


class TestBaselineEquivalence:
    """Baselines exercise the generic (non-broadcast) fallback path too."""

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_panconesi_rizzi(self, engine):
        network = graphs.random_regular(18, 4, seed=5)
        reference = panconesi_rizzi_edge_coloring(network, engine="reference")
        candidate = panconesi_rizzi_edge_coloring(network, engine=engine)
        assert candidate.edge_colors == reference.edge_colors
        assert metrics_fingerprint(candidate.metrics) == metrics_fingerprint(
            reference.metrics
        )

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_luby_randomized(self, engine):
        network = graphs.random_regular(18, 4, seed=6)
        reference = luby_edge_coloring(network, seed=3, engine="reference")
        candidate = luby_edge_coloring(network, seed=3, engine=engine)
        assert candidate.edge_colors == reference.edge_colors
        assert metrics_fingerprint(candidate.metrics) == metrics_fingerprint(
            reference.metrics
        )


class TestVectorizedFallbackAccounting:
    """The Legal-Color pipeline runs fully vectorized -- zero batched fallbacks.

    The whole point of the columnar state store is that no phase of the
    Legal-Color pipeline family hands execution back to per-node Python; the
    ``fallback_phases`` counter on :class:`VectorizedScheduler` (and the
    per-run ``RunMetrics.fallback_phase_names`` log) make that a testable
    invariant instead of a performance anecdote.
    """

    def test_legal_color_pipelines_have_zero_fallbacks(self, grid_network):
        from repro.local_model import StateTable, fast_view

        scheduler = VectorizedScheduler(grid_network)
        n = grid_network.num_nodes
        degree = max(2, grid_network.max_degree)
        # The three pipeline families Procedure Legal-Color is built from:
        # the auxiliary/defective pipelines of each level and the bottom
        # (Delta + 1)-coloring, including the zero-round glue phases.
        pipelines = [
            defective_color_pipeline(n=n, b=1, p=2, Lambda=degree, c=degree)[0],
            defective_coloring_pipeline(
                n=n, degree_bound=degree, target_defect=2, output_key="d"
            )[0],
            delta_plus_one_pipeline(n=n, degree_bound=degree, output_key="c")[0],
        ]
        table = StateTable(n)
        for pipeline in pipelines:
            table, metrics = scheduler.run_table(pipeline, table)
            assert metrics.fallback_phase_names == []
        assert scheduler.fallback_phases == 0
        assert scheduler.fallback_phase_names == []
        assert table.to_mapping(fast_view(grid_network).order)  # states produced

    def test_end_to_end_legal_coloring_reports_zero_fallbacks(self, small_regular):
        result = color_vertices(small_regular, c=4, engine="vectorized")
        assert result.metrics.fallback_phase_names == []

    def test_undeclared_phase_is_counted_and_logged(self, triangle):
        from repro.local_model import BroadcastPhase, SILENT

        class OneShot(BroadcastPhase):
            name = "one-shot"

            def broadcast(self, view, state, round_index):
                return SILENT

            def receive(self, view, state, inbox, round_index):
                return True

        scheduler = VectorizedScheduler(triangle)
        result = scheduler.run(OneShot())
        assert scheduler.fallback_phases == 1
        assert scheduler.fallback_phase_names == ["one-shot"]
        assert result.metrics.fallback_phase_names == ["one-shot"]

    def test_edge_mode_runs_vectorized(self):
        # The Corollary 5.4 edge phase has a CSR kernel (over the line-graph
        # incidence encoding): edge-mode Defective-Color must execute with
        # zero batched fallbacks and still match the reference bit for bit.
        line = line_graph_network(graphs.random_regular(16, 6, seed=4))
        reference = run_defective_color(line, b=2, p=3, c=2, mode="edge", engine="reference")
        colors, _, metrics = run_defective_color(
            line, b=2, p=3, c=2, mode="edge", engine="vectorized"
        )
        assert colors == reference[0]
        assert metrics.fallback_phase_names == []

    def test_edge_mode_legal_coloring_reports_zero_fallbacks(self):
        # End-to-end color_edges on the direct (Theorem 5.5) route, sized so
        # the recursion actually executes Corollary 5.4 levels
        # (Delta(L) = 30 > the superlinear preset's threshold of 18).
        network = graphs.random_regular(40, 16, seed=3)
        result = color_edges(
            network, quality="superlinear", route="direct", engine="vectorized"
        )
        assert len(result.levels) >= 1
        assert result.metrics.fallback_phase_names == []

    def test_simulation_route_reports_zero_fallbacks(self):
        network = graphs.random_regular(40, 16, seed=3)
        result = color_edges(
            network, quality="superlinear", route="simulation", engine="vectorized"
        )
        assert result.metrics.fallback_phase_names == []


class TestEngineSelection:
    def test_make_scheduler_types(self, triangle):
        for engine, engine_cls in ENGINE_CLASSES.items():
            assert isinstance(make_scheduler(triangle, engine=engine), engine_cls)

    def test_default_engine_is_batched(self, triangle):
        # The ROADMAP's scheduled flip: the batched engine is the process
        # default, the reference scheduler is the opt-in auditing tool.
        from repro.local_model import default_engine

        assert default_engine() == "batched"
        assert isinstance(make_scheduler(triangle), BatchedScheduler)
        assert not isinstance(make_scheduler(triangle), VectorizedScheduler)

    def test_use_engine_context_switches_default(self, triangle):
        with use_engine("vectorized"):
            assert isinstance(make_scheduler(triangle), VectorizedScheduler)
        assert isinstance(make_scheduler(triangle), BatchedScheduler)
        with use_engine("reference"):
            assert isinstance(make_scheduler(triangle), Scheduler)
        assert isinstance(make_scheduler(triangle), BatchedScheduler)

    def test_unknown_engine_rejected(self, triangle):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            make_scheduler(triangle, engine="warp-drive")

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_default_engine_drives_algorithms(self, small_regular, engine):
        baseline = color_vertices(small_regular, c=4, engine="reference")
        with use_engine(engine):
            switched = color_vertices(small_regular, c=4)
        assert switched.colors == baseline.colors

    @pytest.mark.parametrize(
        "engine_cls", [BatchedScheduler, VectorizedScheduler, CompiledScheduler]
    )
    def test_non_neighbor_message_rejected(self, triangle, engine_cls):
        from repro.exceptions import SimulationError
        from repro.local_model import SynchronousPhase

        class Misbehaving(SynchronousPhase):
            name = "misbehaving"

            def send(self, view, state, round_index):
                return {"not-a-neighbor": 1}

            def receive(self, view, state, inbox, round_index):
                return True

        with pytest.raises(SimulationError):
            engine_cls(triangle).run(Misbehaving())

    @pytest.mark.parametrize(
        "engine_cls", [BatchedScheduler, VectorizedScheduler, CompiledScheduler]
    )
    def test_round_limit_enforced(self, triangle, engine_cls):
        from repro.exceptions import RoundLimitExceeded
        from repro.local_model import SynchronousPhase

        class NeverHalting(SynchronousPhase):
            name = "never-halting"

            def send(self, view, state, round_index):
                return {}

            def receive(self, view, state, inbox, round_index):
                return False

            def max_rounds(self, n, max_degree):
                return 5

        with pytest.raises(RoundLimitExceeded):
            engine_cls(triangle).run(NeverHalting())

    def test_vectorized_falls_back_for_undeclared_phases(self, small_regular):
        """A custom phase without a kernel runs on the batched path, unchanged."""
        from repro.local_model import BroadcastPhase, SILENT

        class MaxNeighborId(BroadcastPhase):
            name = "max-neighbor-id"

            def initialize(self, view, state):
                state["seen"] = view.unique_id

            def broadcast(self, view, state, round_index):
                if round_index == 1:
                    return view.unique_id
                return SILENT

            def receive(self, view, state, inbox, round_index):
                if inbox:
                    state["seen"] = max(state["seen"], *inbox.values())
                return round_index >= 2

            def max_rounds(self, n, max_degree):
                return 4

        reference = Scheduler(small_regular).run(MaxNeighborId())
        vectorized = VectorizedScheduler(small_regular).run(MaxNeighborId())
        assert vectorized.states == reference.states
        assert metrics_fingerprint(vectorized.metrics) == metrics_fingerprint(
            reference.metrics
        )


class TestCompiledEngineDispatch:
    """Compiled-engine specifics: backend resolution and fallback accounting."""

    def test_zero_compiled_fallbacks_with_backend(self, small_regular):
        if kernels.get_backend() is None:
            pytest.skip(f"no kernel backend: {kernels.backend_reason()}")
        scheduler = CompiledScheduler(small_regular)
        assert scheduler.kernel_backend_name in ("numba", "cext")
        result = color_vertices(small_regular, c=4, engine="compiled")
        assert result.metrics.compiled_fallback_phase_names == []
        assert result.metrics.fallback_phase_names == []

    def test_backend_absent_counts_fallbacks_and_matches(
        self, small_regular, no_kernel_backend
    ):
        scheduler = CompiledScheduler(small_regular)
        assert scheduler.kernel_backend_name is None
        baseline = color_vertices(small_regular, c=4, engine="vectorized")
        result = color_vertices(small_regular, c=4, engine="compiled")
        assert result.colors == baseline.colors
        assert metrics_fingerprint(result.metrics) == metrics_fingerprint(
            baseline.metrics
        )
        # Every kernel-eligible phase that executed is accounted for, once.
        assert result.metrics.compiled_fallback_phase_names
        assert result.metrics.fallback_phase_names == []

    def test_backend_absent_end_to_end_reference_identity(
        self, grid_network, no_kernel_backend
    ):
        c = max(1, grid_network.max_degree)
        reference = color_vertices(grid_network, c=c, engine="reference")
        candidate = color_vertices(grid_network, c=c, engine="compiled")
        assert candidate.colors == reference.colors
        assert metrics_fingerprint(candidate.metrics) == metrics_fingerprint(
            reference.metrics
        )

    def test_backend_absent_luby_matches(self, no_kernel_backend):
        network = graphs.random_regular(18, 4, seed=6)
        reference = luby_edge_coloring(network, seed=3, engine="reference")
        candidate = luby_edge_coloring(network, seed=3, engine="compiled")
        assert candidate.edge_colors == reference.edge_colors
        assert metrics_fingerprint(candidate.metrics) == metrics_fingerprint(
            reference.metrics
        )

    def test_unknown_backend_request_degrades_to_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "warp-drive")
        kernels.reset()
        try:
            assert kernels.get_backend() is None
            assert "warp-drive" in kernels.backend_reason()
        finally:
            kernels.reset()

    def test_thread_count_queries(self):
        # With a backend the count is a positive integer; without, exactly 1.
        count = kernels.get_num_threads()
        assert count >= 1
        if kernels.get_backend() is not None:
            kernels.set_num_threads(1)
            assert kernels.get_num_threads() == 1
            kernels.set_num_threads(count)


class TestPhaseSecondsAccounting:
    """Satellite: every engine records wall-clock per phase in RunMetrics."""

    @pytest.mark.parametrize("engine", ("reference",) + FAST_ENGINES)
    def test_phase_seconds_cover_all_phases(self, small_regular, engine):
        result = color_vertices(small_regular, c=4, engine=engine)
        seconds = result.metrics.phase_seconds
        assert seconds  # populated for every engine
        assert all(value >= 0.0 for value in seconds.values())
        # Every phase that contributed metrics contributed wall time too.
        assert {p.name for p in result.metrics.phases} <= set(seconds)

    def test_merge_accumulates_phase_seconds(self):
        from repro.local_model import RunMetrics

        first = RunMetrics()
        first.add_phase_seconds("linial", 0.25)
        second = RunMetrics()
        second.add_phase_seconds("linial", 0.5)
        second.add_phase_seconds("kw", 1.0)
        first.merge(second)
        assert first.phase_seconds == {"linial": 0.75, "kw": 1.0}
