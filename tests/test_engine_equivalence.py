"""Batched engine == reference scheduler, bit for bit.

The batched round engine (:class:`repro.local_model.BatchedScheduler`) is
only trustworthy because these tests pin it to the reference scheduler: for
every core algorithm, over a grid of graphs and seeds, the two engines must
produce *identical* final colorings and *identical* metrics (rounds,
messages, total words, maximum message size -- per phase, not just in
aggregate).  Any divergence, however small, is a bug in one of the engines.
"""

from __future__ import annotations

import pytest

from repro import graphs
from repro.baselines import luby_edge_coloring, panconesi_rizzi_edge_coloring
from repro.core import (
    color_edges,
    color_vertices,
    randomized_color_vertices,
    run_defective_color,
    tradeoff_color_vertices,
)
from repro.graphs.line_graph import line_graph_network
from repro.local_model import (
    BatchedScheduler,
    Network,
    PhasePipeline,
    Scheduler,
    make_scheduler,
    use_engine,
)
from repro.primitives.color_reduction import delta_plus_one_pipeline
from repro.primitives.kuhn_defective import defective_coloring_pipeline


def metrics_fingerprint(metrics):
    """Aggregate plus full per-phase breakdown -- the strongest comparison."""
    return (
        metrics.summary(),
        [
            (p.name, p.rounds, p.messages, p.total_words, p.max_message_words)
            for p in metrics.phases
        ],
    )


GRAPHS = {
    "triangle": lambda: graphs.cycle_graph(3),
    "path10": lambda: graphs.path_graph(10),
    "cycle9": lambda: graphs.cycle_graph(9),
    "star6": lambda: graphs.star_graph(6),
    "grid5x4": lambda: graphs.grid_graph(5, 4),
    "clique_pendants8": lambda: graphs.clique_with_pendants(8),
    "regular24x4": lambda: graphs.random_regular(24, 4, seed=7),
    "regular30x6": lambda: graphs.random_regular(30, 6, seed=11),
    "regular26x8-s3": lambda: graphs.random_regular(26, 8, seed=3),
}


@pytest.fixture(params=sorted(GRAPHS), name="grid_network")
def _grid_network(request):
    return GRAPHS[request.param]()


class TestSchedulerLevelEquivalence:
    """Raw pipelines compared straight at the scheduler API."""

    def _compare(self, network: Network, pipeline, initial_states=None):
        reference = Scheduler(network).run(pipeline, initial_states=initial_states)
        batched = BatchedScheduler(network).run(pipeline, initial_states=initial_states)
        assert batched.states == reference.states
        assert metrics_fingerprint(batched.metrics) == metrics_fingerprint(
            reference.metrics
        )

    def test_delta_plus_one_pipeline(self, grid_network):
        pipeline, _ = delta_plus_one_pipeline(
            n=grid_network.num_nodes,
            degree_bound=max(1, grid_network.max_degree),
            output_key="c",
        )
        self._compare(grid_network, pipeline)

    def test_defective_pipeline(self, grid_network):
        pipeline, _ = defective_coloring_pipeline(
            n=grid_network.num_nodes,
            degree_bound=max(1, grid_network.max_degree),
            target_defect=2,
            output_key="d",
        )
        self._compare(grid_network, pipeline)

    def test_empty_network(self):
        pipeline, _ = delta_plus_one_pipeline(n=1, degree_bound=1, output_key="c")
        self._compare(Network({}), pipeline)


class TestLegalColoringEquivalence:
    @pytest.mark.parametrize("quality", ["superlinear", "linear"])
    def test_identical_colorings_and_metrics(self, grid_network, quality):
        c = max(1, grid_network.max_degree)
        reference = color_vertices(
            grid_network, c=c, quality=quality, engine="reference"
        )
        batched = color_vertices(grid_network, c=c, quality=quality, engine="batched")
        assert batched.colors == reference.colors
        assert batched.palette == reference.palette
        assert [level.rounds for level in batched.levels] == [
            level.rounds for level in reference.levels
        ]
        assert metrics_fingerprint(batched.metrics) == metrics_fingerprint(
            reference.metrics
        )


class TestEdgeColoringEquivalence:
    @pytest.mark.parametrize("quality", ["superlinear", "linear"])
    @pytest.mark.parametrize("route", ["direct", "simulation"])
    def test_identical_edge_colorings(self, quality, route):
        for seed in (1, 5):
            network = graphs.random_regular(20, 4, seed=seed)
            reference = color_edges(
                network, quality=quality, route=route, engine="reference"
            )
            batched = color_edges(
                network, quality=quality, route=route, engine="batched"
            )
            assert batched.edge_colors == reference.edge_colors
            assert batched.palette == reference.palette
            assert metrics_fingerprint(batched.metrics) == metrics_fingerprint(
                reference.metrics
            )


class TestDefectiveColoringEquivalence:
    @pytest.mark.parametrize("p", [2, 3])
    def test_identical_psi_colorings(self, p):
        for seed in (2, 9):
            line = line_graph_network(graphs.random_regular(18, 4, seed=seed))
            ref_colors, ref_info, ref_metrics = run_defective_color(
                line, b=1, p=p, c=2, engine="reference"
            )
            bat_colors, bat_info, bat_metrics = run_defective_color(
                line, b=1, p=p, c=2, engine="batched"
            )
            assert bat_colors == ref_colors
            assert bat_info == ref_info
            assert metrics_fingerprint(bat_metrics) == metrics_fingerprint(ref_metrics)

    def test_edge_mode(self):
        line = line_graph_network(graphs.random_regular(16, 6, seed=4))
        ref_colors, _, ref_metrics = run_defective_color(
            line, b=2, p=3, c=2, mode="edge", engine="reference"
        )
        bat_colors, _, bat_metrics = run_defective_color(
            line, b=2, p=3, c=2, mode="edge", engine="batched"
        )
        assert bat_colors == ref_colors
        assert metrics_fingerprint(bat_metrics) == metrics_fingerprint(ref_metrics)


class TestTradeoffEquivalence:
    @pytest.mark.parametrize("g_label,g", [("sqrt", lambda d: d**0.5), ("linear", float)])
    def test_identical_tradeoff_colorings(self, g_label, g):
        line = line_graph_network(graphs.random_regular(20, 6, seed=13))
        reference = tradeoff_color_vertices(line, c=2, g=g, engine="reference")
        batched = tradeoff_color_vertices(line, c=2, g=g, engine="batched")
        assert batched.colors == reference.colors
        assert batched.palette == reference.palette
        assert metrics_fingerprint(batched.metrics) == metrics_fingerprint(
            reference.metrics
        )


class TestRandomizedEquivalence:
    def test_identical_randomized_colorings(self):
        # Per-node randomness is keyed by (seed, unique id), so it must be
        # engine-independent.
        network = graphs.random_regular(32, 8, seed=21)
        for seed in (0, 7):
            reference = randomized_color_vertices(
                network, c=8, seed=seed, engine="reference"
            )
            batched = randomized_color_vertices(
                network, c=8, seed=seed, engine="batched"
            )
            assert batched.colors == reference.colors
            assert batched.class_assignment == reference.class_assignment
            assert metrics_fingerprint(batched.metrics) == metrics_fingerprint(
                reference.metrics
            )


class TestBaselineEquivalence:
    """Baselines exercise the generic (non-broadcast) fallback path too."""

    def test_panconesi_rizzi(self):
        network = graphs.random_regular(18, 4, seed=5)
        reference = panconesi_rizzi_edge_coloring(network, engine="reference")
        batched = panconesi_rizzi_edge_coloring(network, engine="batched")
        assert batched.edge_colors == reference.edge_colors
        assert metrics_fingerprint(batched.metrics) == metrics_fingerprint(
            reference.metrics
        )

    def test_luby_randomized(self):
        network = graphs.random_regular(18, 4, seed=6)
        reference = luby_edge_coloring(network, seed=3, engine="reference")
        batched = luby_edge_coloring(network, seed=3, engine="batched")
        assert batched.edge_colors == reference.edge_colors
        assert metrics_fingerprint(batched.metrics) == metrics_fingerprint(
            reference.metrics
        )


class TestEngineSelection:
    def test_make_scheduler_types(self, triangle):
        assert isinstance(make_scheduler(triangle, engine="reference"), Scheduler)
        assert isinstance(make_scheduler(triangle, engine="batched"), BatchedScheduler)

    def test_use_engine_context_switches_default(self, triangle):
        with use_engine("batched"):
            assert isinstance(make_scheduler(triangle), BatchedScheduler)
        assert isinstance(make_scheduler(triangle), Scheduler)

    def test_unknown_engine_rejected(self, triangle):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            make_scheduler(triangle, engine="warp-drive")

    def test_default_engine_drives_algorithms(self, small_regular):
        baseline = color_vertices(small_regular, c=4, engine="reference")
        with use_engine("batched"):
            switched = color_vertices(small_regular, c=4)
        assert switched.colors == baseline.colors

    def test_non_neighbor_message_rejected_by_batched(self, triangle):
        from repro.exceptions import SimulationError
        from repro.local_model import SynchronousPhase

        class Misbehaving(SynchronousPhase):
            name = "misbehaving"

            def send(self, view, state, round_index):
                return {"not-a-neighbor": 1}

            def receive(self, view, state, inbox, round_index):
                return True

        with pytest.raises(SimulationError):
            BatchedScheduler(triangle).run(Misbehaving())

    def test_round_limit_enforced_by_batched(self, triangle):
        from repro.exceptions import RoundLimitExceeded
        from repro.local_model import SynchronousPhase

        class NeverHalting(SynchronousPhase):
            name = "never-halting"

            def send(self, view, state, round_index):
                return {}

            def receive(self, view, state, inbox, round_index):
                return False

            def max_rounds(self, n, max_degree):
                return 5

        with pytest.raises(RoundLimitExceeded):
            BatchedScheduler(triangle).run(NeverHalting())
