"""The fused kernel backends against the ``_loops`` reference, adversarially.

Every provider the machine can load (the C extension always on CI, numba on
the legs that install it) is held to the pure-Python reference loops in
:mod:`repro.local_model.kernels._loops` over a battery of adversarial CSR
instances: empty graphs, graphs that are nothing *but* isolated nodes,
empty rows in the middle of the indptr, non-monotone and negative unique
ids, and palettes small enough to force the rarely-taken fallback branches
(the Linial ``uid % q`` escape, the iterative reduction's no-free-color
status).  The resolution machinery itself (env forcing, probe rejection of
a corrupt backend, adapter registry lookups) is covered at the bottom.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.local_model.kernels import _c_backend, _loops, _numba_backend
from repro.local_model import kernels


def _load_backends():
    loaded = []
    for module in (_numba_backend, _c_backend):
        try:
            backend = module.load()
        except Exception:
            backend = None
        if backend is not None:
            loaded.append(backend)
    return loaded


BACKENDS = _load_backends()

if not BACKENDS:  # pragma: no cover - only on machines with no compiler
    pytest.skip(
        "no kernel backend could be loaded on this machine", allow_module_level=True
    )


@pytest.fixture(params=[b.name for b in BACKENDS])
def backend(request):
    for candidate in BACKENDS:
        if candidate.name == request.param:
            return candidate
    raise AssertionError("unreachable")


def csr_from_edges(n, edges):
    """Symmetric CSR from an (u, v) edge list; rows may be empty."""
    neighbors = [[] for _ in range(n)]
    for u, v in edges:
        neighbors[u].append(v)
        neighbors[v].append(u)
    indptr = np.zeros(n + 1, dtype=np.int64)
    flat = []
    for v in range(n):
        row = sorted(neighbors[v])
        indptr[v + 1] = indptr[v] + len(row)
        flat.extend(row)
    return indptr, np.array(flat, dtype=np.int64)


def greedy_colors(n, indptr, indices):
    """A legal 1-based coloring (first-fit) for the stateful kernels."""
    colors = np.zeros(n, dtype=np.int64)
    for v in range(n):
        taken = {colors[u] for u in indices[indptr[v] : indptr[v + 1]]}
        c = 1
        while c in taken:
            c += 1
        colors[v] = c
    return colors


def random_graph(n, p, seed):
    rng = np.random.default_rng(seed)
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < p
    ]
    return csr_from_edges(n, edges)


#: name -> (indptr, indices, uids).  Non-monotone, duplicated-gap, and
#: *negative* unique ids throughout (the Linial fallback must reproduce
#: Python's `%` on negatives).
INSTANCES = {
    "empty": (np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64),
              np.zeros(0, dtype=np.int64)),
    "all_isolated": (np.zeros(6, dtype=np.int64), np.zeros(0, dtype=np.int64),
                     np.array([9, -4, 70, 2, 5], dtype=np.int64)),
    "path_with_holes": (
        *csr_from_edges(7, [(0, 1), (1, 2), (2, 3), (3, 4)]),
        np.array([10, 3, -57, 2, 9, 40, 1], dtype=np.int64),
    ),
    "star_plus_isolated": (
        *csr_from_edges(9, [(4, v) for v in range(4)] + [(4, 5), (4, 6)]),
        np.array([3, 14, 15, -9, 2, 6, 53, 5, 8], dtype=np.int64),
    ),
    "triangle": (
        *csr_from_edges(3, [(0, 1), (1, 2), (0, 2)]),
        np.array([-1, -2, 7], dtype=np.int64),
    ),
    "random40": (
        *random_graph(40, 0.12, seed=5),
        np.random.default_rng(17).permutation(40).astype(np.int64) * 3 - 20,
    ),
}


@pytest.fixture(params=sorted(INSTANCES), name="instance")
def _instance(request):
    return INSTANCES[request.param]


class TestPolynomialKernels:
    @pytest.mark.parametrize("q,digits", [(2, 2), (5, 2), (5, 3), (11, 1)])
    def test_linial_round(self, backend, instance, q, digits):
        indptr, indices, uids = instance
        n = len(indptr) - 1
        rng = np.random.default_rng(q * 100 + digits)
        colors = rng.integers(1, q**digits + 1, size=n).astype(np.int64)
        expected = np.zeros(n, dtype=np.int64)
        actual = np.zeros(n, dtype=np.int64)
        _loops.linial_round(indptr, indices, uids, colors, q, digits, expected)
        backend.linial_round(indptr, indices, uids, colors, q, digits, actual)
        assert np.array_equal(expected, actual)

    def test_linial_fallback_branch_matches_python_modulo(self, backend):
        # q=2 on a triangle with clashing polynomials forces the `uid % q`
        # escape; the negative uids make C's `%` diverge unless folded.
        indptr, indices, uids = INSTANCES["triangle"]
        colors = np.array([1, 2, 3], dtype=np.int64)
        expected = np.zeros(3, dtype=np.int64)
        actual = np.zeros(3, dtype=np.int64)
        _loops.linial_round(indptr, indices, uids, colors, 2, 2, expected)
        backend.linial_round(indptr, indices, uids, colors, 2, 2, actual)
        assert np.array_equal(expected, actual)

    @pytest.mark.parametrize("q,digits", [(2, 2), (5, 2), (7, 3)])
    def test_defective_step(self, backend, instance, q, digits):
        indptr, indices, _ = instance
        n = len(indptr) - 1
        rng = np.random.default_rng(q * 31 + digits)
        colors = rng.integers(1, q**digits + 1, size=n).astype(np.int64)
        expected = np.zeros(n, dtype=np.int64)
        actual = np.zeros(n, dtype=np.int64)
        _loops.defective_step(indptr, indices, colors, q, digits, expected)
        backend.defective_step(indptr, indices, colors, q, digits, actual)
        assert np.array_equal(expected, actual)


class TestReductionKernels:
    def test_iter_reduce(self, backend, instance):
        indptr, indices, _ = instance
        n = len(indptr) - 1
        colors = greedy_colors(n, indptr, indices)
        palette = int(colors.max()) + 3 if n else 3
        degree = int(np.diff(indptr).max()) if n else 0
        target = degree + 1
        rounds = max(palette - target, 1)
        expected, actual = colors.copy(), colors.copy()
        se = np.zeros(1, dtype=np.int64)
        sa = np.zeros(1, dtype=np.int64)
        _loops.iter_reduce(indptr, indices, expected, palette, target, rounds, se)
        backend.iter_reduce(indptr, indices, actual, palette, target, rounds, sa)
        assert np.array_equal(expected, actual)
        assert se[0] == sa[0] == 0

    def test_iter_reduce_no_free_color_status(self, backend):
        # target=1 on a star: the hub has every neighbor on color 1.
        indptr, indices, _ = INSTANCES["star_plus_isolated"]
        n = len(indptr) - 1
        colors = greedy_colors(n, indptr, indices)
        palette = int(colors.max())
        expected, actual = colors.copy(), colors.copy()
        se = np.zeros(1, dtype=np.int64)
        sa = np.zeros(1, dtype=np.int64)
        _loops.iter_reduce(indptr, indices, expected, palette, 1, palette - 1, se)
        backend.iter_reduce(indptr, indices, actual, palette, 1, palette - 1, sa)
        assert se[0] == sa[0] == 1

    @pytest.mark.parametrize("iterations", [1, 2])
    def test_kw_reduce(self, backend, instance, iterations):
        indptr, indices, _ = instance
        n = len(indptr) - 1
        base = greedy_colors(n, indptr, indices)
        degree = int(np.diff(indptr).max()) if n else 0
        k = degree + 1
        # Spread the legal coloring across several 2k-blocks so recoloring
        # *and* compaction rounds both do real work.
        colors = base + (np.arange(n, dtype=np.int64) % 3) * 2 * k
        expected, actual = colors.copy(), colors.copy()
        se = np.zeros(1, dtype=np.int64)
        sa = np.zeros(1, dtype=np.int64)
        rounds = k * iterations
        _loops.kw_reduce(indptr, indices, expected, k, rounds, se)
        backend.kw_reduce(indptr, indices, actual, k, rounds, sa)
        assert np.array_equal(expected, actual)
        assert se[0] == sa[0] == 0


class TestEdgeRankKernel:
    @pytest.mark.parametrize("has_codes", [0, 1])
    def test_edge_rank(self, backend, instance, has_codes):
        indptr, indices, _ = instance
        n = len(indptr) - 1
        rng = np.random.default_rng(n * 7 + has_codes)
        edge_u = rng.integers(0, 10, size=n).astype(np.int64)
        edge_v = rng.integers(0, 10, size=n).astype(np.int64)
        sort_rank = rng.permutation(n).astype(np.int64)
        codes = rng.integers(0, 3, size=n).astype(np.int64)
        expected_u = np.zeros(n, dtype=np.int64)
        expected_v = np.zeros(n, dtype=np.int64)
        actual_u = np.zeros(n, dtype=np.int64)
        actual_v = np.zeros(n, dtype=np.int64)
        _loops.edge_rank(
            indptr, indices, edge_u, edge_v, sort_rank, codes, has_codes,
            expected_u, expected_v,
        )
        backend.edge_rank(
            indptr, indices, edge_u, edge_v, sort_rank, codes, has_codes,
            actual_u, actual_v,
        )
        assert np.array_equal(expected_u, actual_u)
        assert np.array_equal(expected_v, actual_v)


class TestLubyKernels:
    @pytest.fixture
    def luby_state(self, instance):
        indptr, indices, _ = instance
        n = len(indptr) - 1
        palette = 5
        rng = np.random.default_rng(n * 13 + 1)
        taken = (rng.random((n, palette)) < 0.35).astype(np.uint8)
        undecided = np.flatnonzero(rng.random(n) < 0.7).astype(np.int64)
        return indptr, indices, n, palette, taken, undecided

    def test_free_counts(self, backend, luby_state):
        _, _, n, palette, taken, undecided = luby_state
        expected = np.zeros(len(undecided), dtype=np.int64)
        actual = np.zeros(len(undecided), dtype=np.int64)
        _loops.luby_free_counts(undecided, taken, palette, expected)
        backend.luby_free_counts(undecided, taken, palette, actual)
        assert np.array_equal(expected, actual)

    def test_candidates(self, backend, luby_state):
        _, _, n, palette, taken, undecided = luby_state
        free = np.zeros(len(undecided), dtype=np.int64)
        _loops.luby_free_counts(undecided, taken, palette, free)
        drawing = free > 0
        lanes = np.ascontiguousarray(undecided[drawing])
        rng = np.random.default_rng(3)
        picks = (rng.integers(0, 10, size=len(lanes)) % np.maximum(free[drawing], 1))
        picks = np.ascontiguousarray(picks, dtype=np.int64)
        expected = np.zeros(n, dtype=np.int64)
        actual = np.zeros(n, dtype=np.int64)
        _loops.luby_candidates(lanes, picks, taken, palette, expected)
        backend.luby_candidates(lanes, picks, taken, palette, actual)
        assert np.array_equal(expected, actual)

    def test_absorb_and_resolve(self, backend, luby_state):
        indptr, indices, n, palette, taken, undecided = luby_state
        rng = np.random.default_rng(11)
        undecided_mask = np.zeros(n, dtype=np.uint8)
        undecided_mask[undecided] = 1
        decided = np.flatnonzero(undecided_mask == 0).astype(np.int64)
        final = np.zeros(n, dtype=np.int64)
        final[decided] = rng.integers(1, palette + 1, size=len(decided))
        announce = decided
        expected_taken, actual_taken = taken.copy(), taken.copy()
        _loops.luby_absorb(
            announce, indptr, indices, final, undecided_mask, expected_taken
        )
        backend.luby_absorb(
            announce, indptr, indices, final, undecided_mask, actual_taken
        )
        assert np.array_equal(expected_taken, actual_taken)

        candidate = np.zeros(n, dtype=np.int64)
        candidate[undecided] = rng.integers(0, palette + 1, size=len(undecided))
        expected = np.zeros(len(undecided), dtype=np.uint8)
        actual = np.zeros(len(undecided), dtype=np.uint8)
        _loops.luby_resolve(
            undecided, indptr, indices, candidate, expected_taken, expected
        )
        backend.luby_resolve(
            undecided, indptr, indices, candidate, actual_taken, actual
        )
        assert np.array_equal(expected, actual)


class TestResolutionMachinery:
    def test_probe_accepts_loaded_backends(self, backend):
        assert kernels._probe(backend) is True

    def test_probe_rejects_corrupt_backend(self, backend):
        class Corrupt:
            name = "corrupt"

            def __getattr__(self, attr):
                return getattr(backend, attr)

            def defective_step(self, indptr, indices, colors, q, digits, out):
                backend.defective_step(indptr, indices, colors, q, digits, out)
                out += 1  # a miscompiled kernel

        assert kernels._probe(Corrupt()) is False

    def test_env_forced_cext(self, monkeypatch):
        if not any(b.name == "cext" for b in BACKENDS):
            pytest.skip("no C toolchain on this machine")
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "cext")
        kernels.reset()
        try:
            assert kernels.backend_name() == "cext"
        finally:
            kernels.reset()

    def test_env_forced_numba_without_numba_degrades(self, monkeypatch):
        if any(b.name == "numba" for b in BACKENDS):
            pytest.skip("numba is installed here")
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numba")
        kernels.reset()
        try:
            assert kernels.get_backend() is None
            assert kernels.backend_name() is None
        finally:
            kernels.reset()

    def test_c_backend_artifact_cache_reloads(self):
        if not any(b.name == "cext" for b in BACKENDS):
            pytest.skip("no C toolchain on this machine")
        # Second load hits the hash-keyed artifact, no recompilation needed.
        first = _c_backend.load()
        second = _c_backend.load()
        assert first is not None and second is not None

    def test_c_backend_rejects_wrong_dtype(self):
        cext = next((b for b in BACKENDS if b.name == "cext"), None)
        if cext is None:
            pytest.skip("no C toolchain on this machine")
        indptr = np.zeros(2, dtype=np.int32)  # wrong dtype
        indices = np.zeros(0, dtype=np.int64)
        uids = np.zeros(1, dtype=np.int64)
        colors = np.ones(1, dtype=np.int64)
        out = np.zeros(1, dtype=np.int64)
        with pytest.raises(ValueError):
            cext.linial_round(indptr, indices, uids, colors, 3, 1, out)

    def test_runner_registry_covers_subclasses(self):
        from repro.local_model.kernels.adapters import (
            run_kw_reduction,
            runner_for,
        )
        from repro.primitives.color_reduction import (
            KuhnWattenhoferReductionPhase,
        )

        class Custom(KuhnWattenhoferReductionPhase):
            pass

        phase = Custom(palette=12, target=3, input_key="a", output_key="b")
        assert runner_for(phase) is run_kw_reduction

    def test_runner_registry_unknown_phase(self):
        from repro.local_model import SynchronousPhase
        from repro.local_model.kernels.adapters import runner_for

        class Strange(SynchronousPhase):
            name = "strange"

            def send(self, view, state, round_index):
                return {}

            def receive(self, view, state, inbox, round_index):
                return True

        assert runner_for(Strange()) is None
