"""Unit tests for the synchronous scheduler, phases and metrics."""

from __future__ import annotations

import pytest

from repro.exceptions import RoundLimitExceeded, SimulationError
from repro.local_model import (
    Network,
    PhasePipeline,
    RunMetrics,
    Scheduler,
    SynchronousPhase,
)
from repro.local_model.algorithm import LocalComputationPhase
from repro.local_model.messages import Message, payload_size_words
from repro.local_model.metrics import PhaseMetrics


class EchoDegreePhase(SynchronousPhase):
    """Each node learns its degree by counting one round of messages."""

    name = "echo-degree"

    def send(self, view, state, round_index):
        return {neighbor: "ping" for neighbor in view.neighbors}

    def receive(self, view, state, inbox, round_index):
        state["observed_degree"] = len(inbox)
        return True


class GossipMaxIdPhase(SynchronousPhase):
    """Flood the maximum unique id for a fixed number of rounds."""

    name = "gossip-max"

    def __init__(self, rounds: int) -> None:
        self.rounds = rounds

    def initialize(self, view, state):
        state["best"] = view.unique_id

    def send(self, view, state, round_index):
        return {neighbor: state["best"] for neighbor in view.neighbors}

    def receive(self, view, state, inbox, round_index):
        for value in inbox.values():
            state["best"] = max(state["best"], value)
        return round_index >= self.rounds

    def max_rounds(self, n, max_degree):
        return self.rounds + 1


class MisbehavingPhase(SynchronousPhase):
    """Sends a message to a vertex that is not a neighbor."""

    name = "misbehaving"

    def send(self, view, state, round_index):
        return {"not-a-neighbor": 1}

    def receive(self, view, state, inbox, round_index):
        return True


class NeverHaltingPhase(SynchronousPhase):
    name = "never-halting"

    def send(self, view, state, round_index):
        return {}

    def receive(self, view, state, inbox, round_index):
        return False

    def max_rounds(self, n, max_degree):
        return 5


class DoubleStatePhase(LocalComputationPhase):
    name = "double"

    def compute(self, view, state):
        state["value"] = 2 * state.get("value", 1)


class TestPayloadAccounting:
    def test_scalars_cost_one_word(self):
        assert payload_size_words(7) == 1
        assert payload_size_words("color") == 1
        assert payload_size_words(None) == 1
        assert payload_size_words(3.5) == 1

    def test_containers_sum_their_elements(self):
        assert payload_size_words([1, 2, 3]) == 3
        assert payload_size_words((1, (2, 3))) == 3
        assert payload_size_words({"phi": 4, "psi": 5}) == 4
        assert payload_size_words({}) == 1

    def test_message_size_property(self):
        message = Message(sender=1, receiver=2, payload=[1, 2, 3, 4], round_index=1)
        assert message.size_words == 4


class TestScheduler:
    def test_single_phase_runs_and_extracts(self, small_regular):
        result = Scheduler(small_regular).run(EchoDegreePhase())
        degrees = result.extract("observed_degree")
        for node in small_regular.nodes():
            assert degrees[node] == small_regular.degree(node)
        assert result.metrics.rounds == 1

    def test_messages_counted_per_round(self, triangle):
        result = Scheduler(triangle).run(EchoDegreePhase())
        # Every vertex sends to both neighbors exactly once.
        assert result.metrics.messages == 6
        assert result.metrics.max_message_words == 1

    def test_gossip_reaches_global_maximum_within_diameter(self, path10):
        phase = GossipMaxIdPhase(rounds=path10.num_nodes)
        result = Scheduler(path10).run(phase)
        maxima = set(result.extract("best").values())
        assert maxima == {path10.num_nodes}

    def test_gossip_partial_after_few_rounds(self, path10):
        phase = GossipMaxIdPhase(rounds=2)
        result = Scheduler(path10).run(phase)
        assert len(set(result.extract("best").values())) > 1

    def test_pipeline_accumulates_rounds(self, triangle):
        pipeline = PhasePipeline([EchoDegreePhase(), GossipMaxIdPhase(rounds=3)])
        result = Scheduler(triangle).run(pipeline)
        assert result.metrics.rounds == 1 + 3
        assert len(result.metrics.phases) == 2

    def test_initial_states_are_seeded(self, triangle):
        result = Scheduler(triangle).run(
            DoubleStatePhase(), initial_states={node: {"value": 5} for node in triangle.nodes()}
        )
        assert set(result.extract("value").values()) == {10}

    def test_local_computation_phase_costs_zero_rounds(self, triangle):
        result = Scheduler(triangle).run(DoubleStatePhase())
        assert result.metrics.rounds == 0
        assert result.metrics.messages == 0

    def test_message_to_non_neighbor_rejected(self, triangle):
        with pytest.raises(SimulationError):
            Scheduler(triangle).run(MisbehavingPhase())

    def test_round_limit_enforced(self, triangle):
        with pytest.raises(RoundLimitExceeded):
            Scheduler(triangle).run(NeverHaltingPhase())

    def test_round_limit_factor_must_be_positive(self, triangle):
        with pytest.raises(SimulationError):
            Scheduler(triangle, round_limit_factor=0)

    def test_globals_exposed_to_views(self, small_regular):
        class InspectGlobals(LocalComputationPhase):
            name = "inspect"

            def compute(self, view, state):
                state["n"] = view.globals["n"]
                state["max_degree"] = view.globals["max_degree"]
                state["extra"] = view.globals.get("extra")

        scheduler = Scheduler(small_regular, globals_extra={"extra": 42})
        result = scheduler.run(InspectGlobals())
        some_state = next(iter(result.states.values()))
        assert some_state["n"] == small_regular.num_nodes
        assert some_state["max_degree"] == small_regular.max_degree
        assert some_state["extra"] == 42

    def test_empty_network_runs_without_rounds(self):
        empty = Network({})
        result = Scheduler(empty).run(EchoDegreePhase())
        assert result.states == {}
        assert result.metrics.rounds == 0


class TestRunMetrics:
    def test_add_phase_aggregates(self):
        metrics = RunMetrics()
        metrics.add_phase(
            PhaseMetrics(name="a", rounds=3, messages=10, total_words=20, max_message_words=4)
        )
        metrics.add_phase(
            PhaseMetrics(name="b", rounds=2, messages=5, total_words=5, max_message_words=1)
        )
        assert metrics.rounds == 5
        assert metrics.messages == 15
        assert metrics.total_words == 25
        assert metrics.max_message_words == 4

    def test_merge_preserves_phase_breakdown(self):
        first = RunMetrics()
        first.add_phase(PhaseMetrics(name="a", rounds=1))
        second = RunMetrics()
        second.add_phase(PhaseMetrics(name="b", rounds=2))
        first.merge(second)
        assert [phase.name for phase in first.phases] == ["a", "b"]
        assert first.rounds == 3

    def test_merge_aggregate_only_metrics(self):
        first = RunMetrics()
        second = RunMetrics(rounds=4, messages=2, total_words=2, max_message_words=1)
        first.merge(second)
        assert first.rounds == 4

    def test_add_rounds_adjustment(self):
        metrics = RunMetrics()
        metrics.add_rounds(3, name="setup")
        assert metrics.rounds == 3
        assert metrics.phases[0].name == "setup"

    def test_record_message_tracks_maximum(self):
        phase = PhaseMetrics(name="x")
        phase.record_message(2)
        phase.record_message(7)
        phase.record_message(1)
        assert phase.messages == 3
        assert phase.total_words == 10
        assert phase.max_message_words == 7

    def test_summary_tuple(self):
        metrics = RunMetrics()
        metrics.add_phase(
            PhaseMetrics(name="a", rounds=1, messages=2, total_words=3, max_message_words=4)
        )
        assert metrics.summary() == (1, 2, 3, 4)
