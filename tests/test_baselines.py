"""Unit tests for the baseline algorithms (the "previous" rows of Tables 1-2)."""

from __future__ import annotations

import pytest

from repro import graphs
from repro.baselines import (
    greedy_reduction_edge_coloring,
    greedy_sequential_edge_coloring,
    greedy_sequential_vertex_coloring,
    luby_edge_coloring,
    luby_vertex_coloring,
    panconesi_rizzi_edge_coloring,
)
from repro.verification.coloring import (
    assert_legal_edge_coloring,
    assert_legal_vertex_coloring,
    max_color,
)


class TestSequentialOracles:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: graphs.random_regular(30, 5, seed=1),
            lambda: graphs.clique_with_pendants(9),
            lambda: graphs.grid_graph(5, 6),
            lambda: graphs.complete_graph(7),
        ],
    )
    def test_greedy_vertex_coloring_legal_and_delta_plus_one(self, maker):
        network = maker()
        colors = greedy_sequential_vertex_coloring(network)
        assert_legal_vertex_coloring(network, colors)
        assert max_color(colors) <= network.max_degree + 1

    @pytest.mark.parametrize(
        "maker",
        [
            lambda: graphs.random_regular(30, 5, seed=1),
            lambda: graphs.random_bipartite_regular(10, 4, seed=2),
            lambda: graphs.star_graph(8),
        ],
    )
    def test_greedy_edge_coloring_legal_and_2delta_minus_1(self, maker):
        network = maker()
        edge_colors = greedy_sequential_edge_coloring(network)
        assert_legal_edge_coloring(network, edge_colors)
        assert max_color(edge_colors) <= max(1, 2 * network.max_degree - 1)

    def test_empty_graph_oracles(self):
        from repro.local_model import Network

        empty = Network({1: [], 2: []})
        assert greedy_sequential_edge_coloring(empty) == {}
        colors = greedy_sequential_vertex_coloring(empty)
        assert set(colors.values()) == {1}


class TestPanconesiRizziBaseline:
    def test_produces_2delta_minus_1_coloring(self, medium_regular):
        result = panconesi_rizzi_edge_coloring(medium_regular)
        assert_legal_edge_coloring(medium_regular, result.edge_colors)
        assert result.palette <= 2 * medium_regular.max_degree - 1
        assert result.colors_used <= result.palette
        assert result.route == "baseline-pr"

    def test_rounds_grow_with_degree(self):
        slow_growth = []
        for degree in (4, 8, 12):
            network = graphs.random_regular(36, degree, seed=degree)
            result = panconesi_rizzi_edge_coloring(network)
            slow_growth.append(result.metrics.rounds)
        assert slow_growth[0] < slow_growth[-1]

    def test_star_graph(self):
        star = graphs.star_graph(7)
        result = panconesi_rizzi_edge_coloring(star)
        assert_legal_edge_coloring(star, result.edge_colors)
        # A star needs exactly Delta colors.
        assert result.colors_used == 7


class TestGreedyReductionBaseline:
    def test_correct_but_slower_than_pr(self, small_regular):
        greedy = greedy_reduction_edge_coloring(small_regular)
        pr = panconesi_rizzi_edge_coloring(small_regular)
        assert_legal_edge_coloring(small_regular, greedy.edge_colors)
        assert greedy.palette == pr.palette
        # One class per round is never faster than the block reduction.
        assert greedy.metrics.rounds >= pr.metrics.rounds


class TestLubyBaseline:
    def test_vertex_coloring_legal(self, medium_regular):
        result = luby_vertex_coloring(medium_regular, seed=1)
        assert_legal_vertex_coloring(medium_regular, result.colors)
        assert max_color(result.colors) <= medium_regular.max_degree + 1
        assert result.palette == medium_regular.max_degree + 1
        assert result.color_column is not None
        assert result.metrics.rounds >= 1

    def test_edge_coloring_legal(self, small_regular):
        result = luby_edge_coloring(small_regular, seed=2)
        assert_legal_edge_coloring(small_regular, result.edge_colors)
        assert result.palette <= 2 * small_regular.max_degree - 1

    def test_reproducible_given_seed(self, small_regular):
        first = luby_vertex_coloring(small_regular, seed=5)
        second = luby_vertex_coloring(small_regular, seed=5)
        assert first.colors == second.colors

    def test_rounds_logarithmic_in_practice(self):
        network = graphs.random_regular(128, 6, seed=9)
        result = luby_vertex_coloring(network, seed=3)
        assert result.metrics.rounds <= 40

    def test_custom_palette(self, small_regular):
        result = luby_vertex_coloring(
            small_regular, palette=3 * small_regular.max_degree, seed=1
        )
        assert_legal_vertex_coloring(small_regular, result.colors)

    def test_deprecated_dict_shim(self, small_regular):
        import pytest as _pytest

        from repro.baselines import luby_vertex_coloring_dict

        with _pytest.warns(DeprecationWarning):
            colors, metrics = luby_vertex_coloring_dict(small_regular, seed=5)
        assert colors == luby_vertex_coloring(small_regular, seed=5).colors
        assert metrics.rounds >= 1
