"""Focused unit tests for the psi-selection loop of Algorithm 1 (Lemma 3.2)."""

from __future__ import annotations

from repro import graphs
from repro.core.defective_coloring import PsiSelectionPhase
from repro.local_model import Network, Scheduler


def run_psi(network, phi, p):
    """Run only the recoloring loop, with a given phi-coloring."""
    phase = PsiSelectionPhase(p=p, phi_key="phi", phi_palette=max(phi.values(), default=1))
    states = {node: {"phi": phi[node]} for node in network.nodes()}
    result = Scheduler(network).run(phase, initial_states=states)
    return result.extract(phase.output_key), result.metrics


class TestPsiSelection:
    def test_colors_within_palette(self, small_regular):
        phi = {node: small_regular.unique_id(node) for node in small_regular.nodes()}
        psi, _ = run_psi(small_regular, phi, p=3)
        assert set(psi.values()) <= {1, 2, 3}

    def test_lemma_3_2_round_bound(self):
        # A vertex with phi-color k selects within k rounds of the exchange, so
        # the loop finishes within (max phi) + O(1) rounds.
        path = graphs.path_graph(12)
        phi = {node: node + 1 for node in path.nodes()}
        _, metrics = run_psi(path, phi, p=2)
        assert metrics.rounds <= max(phi.values()) + 3

    def test_constant_phi_selects_in_constant_rounds(self, small_regular):
        # With a constant phi-coloring no vertex waits for anyone (only
        # strictly smaller phi-colors are waited for), so the loop ends in O(1)
        # rounds regardless of the graph.
        phi = {node: 1 for node in small_regular.nodes()}
        psi, metrics = run_psi(small_regular, phi, p=4)
        assert metrics.rounds <= 3
        assert set(psi.values()) <= {1, 2, 3, 4}

    def test_least_loaded_color_is_chosen_on_a_star(self):
        # The center has the largest phi-color, so it waits for all leaves and
        # then picks the psi-color used by the fewest of them.
        star = graphs.star_graph(4)
        phi = {("leaf", i): i + 1 for i in range(4)}
        phi["center"] = 10
        psi, _ = run_psi(star, phi, p=4)
        leaf_colors = [psi[("leaf", i)] for i in range(4)]
        center_load = sum(1 for color in leaf_colors if color == psi["center"])
        best_possible = min(
            sum(1 for color in leaf_colors if color == candidate) for candidate in range(1, 5)
        )
        assert center_load == best_possible

    def test_isolated_vertices_terminate(self):
        network = Network({1: [], 2: [], 3: []})
        psi, metrics = run_psi(network, {1: 1, 2: 2, 3: 3}, p=2)
        assert set(psi.values()) <= {1, 2}
        assert metrics.rounds <= 3

    def test_state_reuse_across_invocations_is_safe(self, small_regular):
        # Running the loop twice with different output keys on the same state
        # dictionaries (as Legal-Color does level by level) must not leak the
        # announcement flag of the first run into the second.
        phi = {node: small_regular.unique_id(node) for node in small_regular.nodes()}
        first_phase = PsiSelectionPhase(
            p=3, phi_key="phi", phi_palette=len(phi), output_key="psi_a"
        )
        second_phase = PsiSelectionPhase(
            p=3, phi_key="phi", phi_palette=len(phi), output_key="psi_b"
        )
        states = {node: {"phi": phi[node]} for node in small_regular.nodes()}
        first = Scheduler(small_regular).run(first_phase, initial_states=states)
        second = Scheduler(small_regular).run(second_phase, initial_states=first.states)
        assert all(value in {1, 2, 3} for value in second.extract("psi_b").values())
