"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro import graphs
from repro.local_model import Network


@pytest.fixture
def triangle() -> Network:
    """The 3-cycle (smallest graph with chromatic number 3)."""
    return graphs.cycle_graph(3)


@pytest.fixture
def small_regular() -> Network:
    """A small random 4-regular graph (fast enough for every distributed run)."""
    return graphs.random_regular(24, 4, seed=7)


@pytest.fixture
def medium_regular() -> Network:
    """A medium random 6-regular graph used by the integration tests."""
    return graphs.random_regular(48, 6, seed=11)


@pytest.fixture
def fig1_graph() -> Network:
    """The Figure 1 construction (clique with pendant vertices)."""
    return graphs.clique_with_pendants(10)


@pytest.fixture
def star() -> Network:
    """A star with 5 leaves (neighborhood independence 5, not claw-free)."""
    return graphs.star_graph(5)


@pytest.fixture
def path10() -> Network:
    """The path on 10 vertices."""
    return graphs.path_graph(10)
