"""Unit tests for the color-reduction phases and the (Delta+1)-coloring pipeline."""

from __future__ import annotations

import pytest

from repro import graphs
from repro.exceptions import InvalidParameterError, SimulationError
from repro.local_model import Scheduler
from repro.primitives.color_reduction import (
    IterativeColorReductionPhase,
    KuhnWattenhoferReductionPhase,
    delta_plus_one_pipeline,
)
from repro.primitives.linial import LinialColoringPhase
from repro.verification.coloring import assert_legal_vertex_coloring, max_color


def legal_seed_coloring(network):
    """A legal coloring with palette n: the unique identifiers themselves."""
    return {node: {"seed": network.unique_id(node)} for node in network.nodes()}


class TestIterativeReduction:
    def test_reduces_identifier_coloring_to_delta_plus_one(self, small_regular):
        phase = IterativeColorReductionPhase(
            palette=small_regular.num_nodes,
            target=small_regular.max_degree + 1,
            input_key="seed",
            output_key="out",
        )
        result = Scheduler(small_regular).run(
            phase, initial_states=legal_seed_coloring(small_regular)
        )
        colors = result.extract("out")
        assert_legal_vertex_coloring(small_regular, colors)
        assert max_color(colors) <= small_regular.max_degree + 1
        assert result.metrics.rounds == small_regular.num_nodes - small_regular.max_degree - 1

    def test_noop_when_palette_already_small(self, triangle):
        phase = IterativeColorReductionPhase(
            palette=3, target=3, input_key="seed", output_key="out"
        )
        result = Scheduler(triangle).run(phase, initial_states=legal_seed_coloring(triangle))
        assert result.extract("out") == {
            node: triangle.unique_id(node) for node in triangle.nodes()
        }

    def test_target_below_degree_plus_one_fails_loudly(self):
        clique = graphs.complete_graph(5)
        phase = IterativeColorReductionPhase(
            palette=5, target=3, input_key="seed", output_key="out"
        )
        with pytest.raises(SimulationError):
            Scheduler(clique).run(phase, initial_states=legal_seed_coloring(clique))

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            IterativeColorReductionPhase(palette=0, target=1, input_key="a")
        with pytest.raises(InvalidParameterError):
            IterativeColorReductionPhase(palette=5, target=0, input_key="a")

    def test_out_of_palette_input_rejected(self, triangle):
        phase = IterativeColorReductionPhase(
            palette=2, target=3, input_key="seed", output_key="out"
        )
        with pytest.raises(InvalidParameterError):
            Scheduler(triangle).run(phase, initial_states=legal_seed_coloring(triangle))


class TestKuhnWattenhoferReduction:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: graphs.random_regular(24, 4, seed=1),
            lambda: graphs.clique_with_pendants(8),
            lambda: graphs.cycle_graph(11),
            lambda: graphs.complete_graph(7),
        ],
    )
    def test_reduces_to_delta_plus_one_legally(self, maker):
        network = maker()
        target = network.max_degree + 1
        phase = KuhnWattenhoferReductionPhase(
            palette=network.num_nodes, target=target, input_key="seed", output_key="out"
        )
        result = Scheduler(network).run(phase, initial_states=legal_seed_coloring(network))
        colors = result.extract("out")
        assert_legal_vertex_coloring(network, colors)
        assert max_color(colors) <= target

    def test_round_count_is_target_times_log_ratio(self, small_regular):
        target = small_regular.max_degree + 1
        phase = KuhnWattenhoferReductionPhase(
            palette=small_regular.num_nodes, target=target, input_key="seed", output_key="out"
        )
        assert phase.total_rounds == len(phase.iteration_palettes) * target
        # The palette roughly halves per iteration, so far fewer rounds than
        # the one-class-per-round reduction needs.
        iterative_rounds = small_regular.num_nodes - target
        assert phase.total_rounds < iterative_rounds

    def test_final_palette_equals_target(self, small_regular):
        phase = KuhnWattenhoferReductionPhase(
            palette=200, target=small_regular.max_degree + 1, input_key="seed"
        )
        assert phase.final_palette == small_regular.max_degree + 1

    def test_larger_target_than_palette_is_noop(self, triangle):
        phase = KuhnWattenhoferReductionPhase(
            palette=3, target=10, input_key="seed", output_key="out"
        )
        result = Scheduler(triangle).run(phase, initial_states=legal_seed_coloring(triangle))
        assert max_color(result.extract("out")) <= 3

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            KuhnWattenhoferReductionPhase(palette=0, target=3, input_key="a")
        with pytest.raises(InvalidParameterError):
            KuhnWattenhoferReductionPhase(palette=10, target=0, input_key="a")


class TestDeltaPlusOnePipeline:
    @pytest.mark.parametrize("use_kw", [True, False])
    def test_pipeline_produces_delta_plus_one_coloring(self, use_kw):
        network = graphs.random_regular(20, 4, seed=3)
        pipeline, palette = delta_plus_one_pipeline(
            n=network.num_nodes,
            degree_bound=network.max_degree,
            output_key="legal",
            use_kuhn_wattenhofer=use_kw,
        )
        result = Scheduler(network).run(pipeline)
        colors = result.extract("legal")
        assert_legal_vertex_coloring(network, colors)
        assert max_color(colors) <= palette == network.max_degree + 1

    def test_pipeline_with_auxiliary_input(self, small_regular):
        # Compute an auxiliary coloring first, then reduce starting from it.
        aux = LinialColoringPhase(
            degree_bound=small_regular.max_degree,
            initial_palette=small_regular.num_nodes,
            output_key="rho",
        )
        aux_result = Scheduler(small_regular).run(aux)
        pipeline, palette = delta_plus_one_pipeline(
            n=small_regular.num_nodes,
            degree_bound=small_regular.max_degree,
            initial_palette=aux.final_palette,
            input_key="rho",
            output_key="legal",
        )
        result = Scheduler(small_regular).run(pipeline, initial_states=aux_result.states)
        assert_legal_vertex_coloring(small_regular, result.extract("legal"))

    def test_custom_target(self):
        network = graphs.cycle_graph(12)
        pipeline, palette = delta_plus_one_pipeline(
            n=network.num_nodes, degree_bound=2, target=5, output_key="legal"
        )
        result = Scheduler(network).run(pipeline)
        assert palette == 5
        assert max_color(result.extract("legal")) <= 5

    def test_target_below_degree_plus_one_rejected(self):
        with pytest.raises(InvalidParameterError):
            delta_plus_one_pipeline(n=10, degree_bound=4, target=4)
