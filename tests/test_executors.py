"""The executor-backend seam and the ``"workdir"`` distributed backend.

Covers the backend registry, the cross-backend status-matrix contract (one
sweep semantics whichever backend ran it), the spool file protocol (leases,
heartbeats, reaping, envelopes), whole-worker chaos (``worker_die``,
``worker_stall``, ``lease_steal``, ``envelope_corrupt``), coordinator
resume, the worker CLI, and pickling of the new spool dataclasses.
"""

from __future__ import annotations

import copy
import json
import os
import pickle
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.experiments import (
    EXECUTOR_BACKENDS,
    ExperimentRunner,
    GraphSpec,
    Lease,
    ResultEnvelope,
    Scenario,
    SoftTimeoutExpired,
    Spool,
    SpoolConfig,
    call_with_soft_timeout,
    make_executor,
    payload_digest,
)
from repro.resilience import FaultPlan, FaultSpec

#: Timing knobs shrunk for tests: a dead worker is detected within ~1s.
FAST = {"lease_ttl": 1.0, "heartbeat_interval": 0.2, "drain_timeout": 120.0}


def scenario(tag: str, seed: int = 7, n: int = 16) -> Scenario:
    return Scenario.make(
        name=f"exec-{tag}",
        graph=GraphSpec("random_regular", n=n, degree=4, seed=seed),
        algorithm="legal_coloring",
        params={"c": 2, "quality": "linear"},
    )


def sweep(count: int) -> list:
    return [scenario(str(i), seed=i) for i in range(count)]


def stable(payload: dict) -> dict:
    return {k: v for k, v in payload.items() if k != "wall_time"}


def fault_free(scenarios) -> list:
    results = ExperimentRunner(cache_dir=None, max_workers=0).run(scenarios)
    assert all(r.ok for r in results)
    return [stable(r.payload) for r in results]


class TestBackendRegistry:
    def test_three_backends_ship(self):
        assert {"serial", "process", "workdir"} <= set(EXECUTOR_BACKENDS)

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown executor backend"):
            make_executor("no-such-backend")

    def test_unknown_backend_rejected_from_runner(self):
        runner = ExperimentRunner(cache_dir=None, backend="no-such-backend")
        with pytest.raises(InvalidParameterError):
            runner.run([scenario("reject")])

    def test_invalid_backend_options_rejected(self):
        with pytest.raises(InvalidParameterError, match="invalid options"):
            make_executor("workdir", no_such_option=1)

    def test_explicit_backends_run_a_sweep(self, tmp_path):
        s = scenario("explicit")
        for backend in ("serial", "process"):
            (result,) = ExperimentRunner(
                cache_dir=None, max_workers=2, backend=backend
            ).run([s])
            assert result.ok


class TestSoftTimeoutWrapper:
    def test_value_passes_through(self):
        assert call_with_soft_timeout(lambda: 42, None) == 42
        assert call_with_soft_timeout(lambda: 42, 5.0) == 42

    def test_exception_passes_through(self):
        with pytest.raises(ZeroDivisionError):
            call_with_soft_timeout(lambda: 1 / 0, 5.0)

    def test_expiry_raises(self):
        with pytest.raises(SoftTimeoutExpired, match="soft timeout"):
            call_with_soft_timeout(lambda: time.sleep(5.0), 0.1)

    def test_none_timeout_runs_on_caller_thread(self):
        import threading

        seen = []
        call_with_soft_timeout(lambda: seen.append(threading.current_thread()), None)
        assert seen == [threading.current_thread()]


class TestStatusMatrixAcrossBackends:
    """Satellite regression: one status matrix, whichever backend ran it.

    Before the executor seam, ``timeout=`` was only enforced through pool
    futures -- a hung scenario blocked a serial sweep forever.  Now every
    backend routes execution through the same soft-timeout watchdog and
    charges the same attempts, so statuses and error shapes agree.
    """

    PLAN = FaultPlan(
        specs=(
            # Permanent error: fails after retries+1 attempts everywhere.
            FaultSpec(index=1, kind="error", attempts=99),
            # Permanent hang, longer than the timeout on every attempt.
            FaultSpec(index=2, kind="hang", attempts=99, hang_seconds=30.0),
        )
    )

    def run_backend(self, backend, **options):
        scenarios = sweep(3)
        runner = ExperimentRunner(
            cache_dir=None,
            max_workers=2,
            retries=1,
            timeout=0.75,
            fault_plan=self.PLAN,
            backend=backend,
            backend_options=options,
        )
        return runner.run(scenarios), runner.last_stats

    @pytest.mark.parametrize("backend", ["serial", "process", "workdir"])
    def test_statuses_and_attempts_agree(self, backend):
        options = dict(FAST) if backend == "workdir" else {}
        results, stats = self.run_backend(backend, **options)
        assert [r.status for r in results] == ["ok", "failed", "failed"]
        assert [r.attempts for r in results] == [1, 2, 2]
        assert "InjectedFaultError" in results[1].error
        assert "soft timeout" in results[2].error
        assert stats.timeouts >= 1
        assert stats.failures == 2 and stats.fresh == 1

    def test_serial_timeout_is_now_enforced(self):
        # The regression proper: a permanently hung scenario must not block
        # a serial sweep forever.
        started = time.monotonic()
        results, stats = self.run_backend("serial")
        assert time.monotonic() - started < 10.0
        assert results[2].status == "failed"
        assert stats.timeouts == 2  # one per attempt


class TestSpoolProtocol:
    def test_claim_is_exclusive(self, tmp_path):
        spool = Spool(tmp_path / "spool").create()
        spool.add_task(spool.task_document("00001-aa", 1, 0, "aa" * 32, {"x": 1}))
        assert spool.claim("00001-aa", "w1", ttl=60.0) is not None
        assert spool.claim("00001-aa", "w2", ttl=60.0) is None

    def test_claim_next_in_task_order(self, tmp_path):
        spool = Spool(tmp_path / "spool").create()
        for index in (2, 0, 1):
            spool.add_task(
                spool.task_document(f"{index:05d}-t", index, 0, "t" * 64, {})
            )
        claimed = [spool.claim_next("w1", 60.0)["index"] for _ in range(3)]
        assert claimed == [0, 1, 2]
        assert spool.claim_next("w1", 60.0) is None

    def test_reap_spares_live_heartbeats(self, tmp_path):
        spool = Spool(tmp_path / "spool").create()
        spool.add_task(spool.task_document("00000-t", 0, 0, "t" * 64, {}))
        spool.claim("00000-t", "w1", ttl=0.01)
        spool.heartbeat("w1")
        time.sleep(0.05)  # lease deadline passes, heartbeat stays fresh
        assert spool.reap_expired(ttl=60.0) == []

    def test_reap_recovers_dead_workers_task(self, tmp_path):
        spool = Spool(tmp_path / "spool").create()
        spool.add_task(spool.task_document("00000-t", 0, 0, "t" * 64, {"s": 1}))
        spool.claim("00000-t", "w1", ttl=0.01)
        spool.heartbeat("w1")
        stale = time.time() - 3600.0
        os.utime(spool.heartbeats_dir / "w1", (stale, stale))
        time.sleep(0.05)
        (task,) = spool.reap_expired(ttl=60.0)
        assert task["task_id"] == "00000-t"
        # The lease is gone: the task can be re-enqueued and claimed anew.
        assert not spool.has_task_or_lease("00000-t")

    def test_config_round_trips(self, tmp_path):
        spool = Spool(tmp_path / "spool").create()
        config = SpoolConfig(
            cache_dir=str(tmp_path / "cache"),
            lease_ttl=2.5,
            heartbeat_interval=0.5,
            timeout=7.0,
        )
        spool.write_config(config)
        assert spool.read_config() == config

    def test_unparseable_envelope_surfaces_as_none(self, tmp_path):
        spool = Spool(tmp_path / "spool").create()
        (spool.results_dir / "00000-t--a0--w1.json").write_text("{torn")
        seen = set()
        ((path, envelope),) = spool.new_envelopes(seen)
        assert envelope is None and path.name.startswith("00000-t")
        # Already-seen envelopes are not yielded again.
        assert spool.new_envelopes(seen) == []


class TestWorkdirSweep:
    def test_multi_worker_sweep_with_cache(self, tmp_path):
        scenarios = sweep(4)
        runner = ExperimentRunner(
            cache_dir=tmp_path / "cache",
            max_workers=2,
            backend="workdir",
            backend_options=dict(FAST),
        )
        results = runner.run(scenarios)
        assert [r.name for r in results] == [s.name for s in scenarios]
        assert all(r.ok and not r.cached for r in results)
        assert [stable(r.payload) for r in results] == fault_free(scenarios)

        # Second pass: served from the shared cache, no workers needed.
        again = runner.run(scenarios)
        assert all(r.cached for r in again)
        assert runner.last_stats.cache_hits == len(scenarios)

    def test_duplicate_scenarios_execute_once(self, tmp_path):
        s = scenario("dup")
        runner = ExperimentRunner(
            cache_dir=tmp_path / "cache",
            max_workers=2,
            backend="workdir",
            backend_options=dict(FAST),
        )
        first, second = runner.run([s, s])
        assert first.payload == second.payload
        assert len(runner.cache) == 1


class TestWorkerChaos:
    def test_worker_die_reassigns_and_completes(self, tmp_path):
        scenarios = sweep(4)
        plan = FaultPlan(specs=(FaultSpec(index=1, kind="worker_die"),))
        runner = ExperimentRunner(
            cache_dir=None,
            max_workers=2,
            backend="workdir",
            fault_plan=plan,
            backend_options=dict(FAST),
        )
        results = runner.run(scenarios)
        assert all(r.ok for r in results)
        assert [stable(r.payload) for r in results] == fault_free(scenarios)
        stats = runner.last_stats
        assert stats.reassignments >= 1
        assert stats.worker_replacements >= 1

    def test_envelope_corrupt_is_quarantined_and_retried(self, tmp_path):
        scenarios = sweep(3)
        plan = FaultPlan(specs=(FaultSpec(index=0, kind="envelope_corrupt"),))
        runner = ExperimentRunner(
            cache_dir=tmp_path / "cache",
            max_workers=2,
            backend="workdir",
            fault_plan=plan,
            backend_options=dict(FAST),
        )
        results = runner.run(scenarios)
        assert all(r.ok for r in results)
        assert [stable(r.payload) for r in results] == fault_free(scenarios)
        assert runner.last_stats.envelopes_rejected >= 1
        assert runner.last_stats.retries >= 1
        # The corrupted envelope never poisoned the shared cache: a fresh
        # cache-only run serves the verified payload.
        again = ExperimentRunner(
            cache_dir=tmp_path / "cache", max_workers=0
        ).run(scenarios)
        assert all(r.cached for r in again)
        assert [stable(r.payload) for r in again] == fault_free(scenarios)

    def test_worker_stall_yields_duplicate_completion(self, tmp_path):
        scenarios = sweep(3)
        # Stall far past the lease TTL with a suppressed heartbeat: the
        # coordinator reaps and reassigns, then the stalled worker's late
        # envelope arrives as a duplicate and must be ignored idempotently.
        plan = FaultPlan(
            specs=(FaultSpec(index=0, kind="worker_stall", hang_seconds=3.0),)
        )
        runner = ExperimentRunner(
            cache_dir=None,
            max_workers=2,
            backend="workdir",
            fault_plan=plan,
            backend_options=dict(FAST),
        )
        results = runner.run(scenarios)
        assert all(r.ok for r in results)
        assert [stable(r.payload) for r in results] == fault_free(scenarios)
        assert runner.last_stats.reassignments >= 1

    def test_lease_steal_duplicates_are_tolerated(self, tmp_path):
        scenarios = sweep(3)
        plan = FaultPlan(specs=(FaultSpec(index=1, kind="lease_steal"),))
        runner = ExperimentRunner(
            cache_dir=None,
            max_workers=2,
            backend="workdir",
            fault_plan=plan,
            backend_options=dict(FAST),
        )
        results = runner.run(scenarios)
        assert all(r.ok for r in results)
        assert [stable(r.payload) for r in results] == fault_free(scenarios)

    def test_chaos_acceptance_kill_half_the_workers(self, tmp_path):
        """The PR's acceptance scenario: kill >= half the workers mid-sweep
        (plus one corrupted envelope) and still match a fault-free
        process-backend run bit for bit, with non-empty recovery counters."""
        scenarios = sweep(6)
        plan = FaultPlan(
            specs=(
                FaultSpec(index=0, kind="worker_die"),
                FaultSpec(index=3, kind="worker_die"),
                FaultSpec(index=4, kind="envelope_corrupt"),
            )
        )
        reference = ExperimentRunner(
            cache_dir=None, max_workers=2, backend="process"
        ).run(scenarios)
        assert all(r.ok for r in reference)

        runner = ExperimentRunner(
            cache_dir=None,
            max_workers=3,  # two worker_die faults: >= half the fleet dies
            backend="workdir",
            fault_plan=plan,
            backend_options=dict(FAST),
        )
        results = runner.run(scenarios)
        assert all(r.ok for r in results)
        assert [stable(r.payload) for r in results] == [
            stable(r.payload) for r in reference
        ]
        stats = runner.last_stats
        assert stats.reassignments >= 2
        assert stats.envelopes_rejected >= 1
        assert stats.worker_replacements >= 2


class TestCoordinatorResume:
    def test_preexisting_envelopes_are_collected_not_reexecuted(self, tmp_path):
        """A killed coordinator's restart honors results its workers produced
        while it was gone: pre-existing digest-valid envelopes complete their
        scenarios without re-execution."""
        scenarios = sweep(3)
        spool_dir = tmp_path / "spool"
        spool = Spool(spool_dir).create()
        token = scenarios[0].cache_token()
        ghost_payload = {"rounds": 123, "resumed_marker": True}
        spool.write_envelope(
            ResultEnvelope(
                task_id=f"{0:05d}-{token[:10]}",
                index=0,
                attempt=0,
                worker="ghost",
                status="ok",
                payload=ghost_payload,
                engine_used="batched",
                integrity=payload_digest(ghost_payload),
            )
        )
        runner = ExperimentRunner(
            cache_dir=None,
            max_workers=2,
            backend="workdir",
            backend_options=dict(FAST, spool_dir=spool_dir),
        )
        results = runner.run(scenarios)
        assert all(r.ok for r in results)
        # Scenario 0 was never re-executed: its result is the ghost worker's.
        assert results[0].payload is ghost_payload or results[0].payload == ghost_payload
        assert results[0].payload["resumed_marker"] is True
        assert [stable(r.payload) for r in results[1:]] == fault_free(scenarios[1:])


class TestWorkerCLI:
    def test_externally_launched_worker_drains_the_spool(self, tmp_path):
        """``python -m repro.experiments.worker <dir>`` against a coordinator
        that launches no workers of its own."""
        scenarios = sweep(2)
        spool_dir = tmp_path / "spool"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        env.pop("REPRO_FAULT_PLAN", None)
        worker = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments.worker",
                str(spool_dir),
                "--worker-id",
                "external-1",
                "--max-idle",
                "30",
            ],
            env=env,
        )
        try:
            runner = ExperimentRunner(
                cache_dir=None,
                max_workers=1,
                backend="workdir",
                backend_options=dict(FAST, spool_dir=spool_dir, launch_workers=False),
            )
            results = runner.run(scenarios)
            assert all(r.ok for r in results)
            assert [stable(r.payload) for r in results] == fault_free(scenarios)
        finally:
            code = worker.wait(timeout=30)
        assert code == 0  # clean exit on the coordinator's stop sentinel


class TestSpoolDataclassProtocol:
    """Satellite: the new spool dataclasses survive pickle/deepcopy (the
    same dunder-guard contract as ``ScenarioResult``)."""

    def envelope(self) -> ResultEnvelope:
        payload = {"rounds": 9, "colors_used": 4, "__getstate__": "decoy"}
        return ResultEnvelope(
            task_id="00001-abcdef",
            index=1,
            attempt=0,
            worker="w1",
            payload=payload,
            engine_used="batched",
            degraded_from=("compiled",),
            integrity=payload_digest(payload),
        )

    def test_envelope_payload_attribute_fallthrough(self):
        envelope = self.envelope()
        assert envelope.rounds == 9 and envelope.colors_used == 4
        with pytest.raises(AttributeError):
            envelope.no_such_key

    def test_envelope_dunder_probes_raise(self):
        envelope = self.envelope()
        # The decoy payload key must NOT answer protocol probes: dunders
        # resolve normally (object.__getstate__ on 3.11+) or raise, never
        # fall through to the payload dict.
        assert callable(envelope.__getstate__)
        assert envelope.__getstate__ != "decoy"
        with pytest.raises(AttributeError):
            getattr(envelope, "__deepcopy__")
        with pytest.raises(AttributeError):
            getattr(envelope, "__no_such_dunder__")

    def test_envelope_survives_pickle_and_deepcopy(self):
        envelope = self.envelope()
        for clone in (pickle.loads(pickle.dumps(envelope)), copy.deepcopy(envelope)):
            assert clone == envelope
            assert clone.rounds == 9
            assert clone.verified()

    def test_envelope_document_round_trip(self):
        envelope = self.envelope()
        document = json.loads(json.dumps(envelope.to_document()))
        assert ResultEnvelope.from_document(document) == envelope

    def test_error_envelope_attribute_access_raises(self):
        envelope = ResultEnvelope(
            task_id="00002-ffffff",
            index=2,
            attempt=1,
            worker="w2",
            status="error",
            error="InjectedFaultError: boom",
            error_type="InjectedFaultError",
        )
        assert not envelope.ok and not envelope.verified()
        with pytest.raises(AttributeError):
            envelope.rounds

    def test_lease_survives_pickle_and_deepcopy(self):
        lease = Lease(task_id="00001-abcdef", worker="w1", claimed_at=1.0, deadline=6.0)
        for clone in (pickle.loads(pickle.dumps(lease)), copy.deepcopy(lease)):
            assert clone == lease
        with pytest.raises(AttributeError):
            lease.no_such_field
        document = json.loads(json.dumps(lease.to_document()))
        assert Lease.from_document(document) == lease


class TestClaimReapCompleteInterleavings:
    """Satellite: hypothesis over claim/heartbeat/stall/crash/reap/complete
    interleavings on a real tmpdir spool -- no task is ever lost, and none
    is double-counted by the coordinator."""

    TASKS = 3
    OPS = st.lists(
        st.sampled_from(
            [
                "claim0",
                "claim1",
                "complete0",
                "complete1",
                "crash0",
                "crash1",
                "stall0",
                "stall1",
                "reap",
                "collect",
            ]
        ),
        max_size=30,
    )

    @settings(max_examples=40, deadline=None)
    @given(ops=OPS)
    def test_no_task_lost_or_double_counted(self, ops):
        import tempfile

        root = Path(tempfile.mkdtemp(prefix="repro-spool-hyp-"))
        try:
            self._drive(Spool(root).create(), ops)
        finally:
            import shutil

            shutil.rmtree(root, ignore_errors=True)

    # -- simulation harness ------------------------------------------------

    TTL = 300.0  # huge: leases only "expire" when an op forces it

    def _expire(self, spool, task_id, worker):
        """Model a death/partition: lease deadline passes, heartbeat stale."""
        meta_path = spool.meta_dir / f"{task_id}.json"
        try:
            document = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError):
            document = None  # already reaped (repeated stall/crash): fine
        if document is not None:
            document["deadline"] = time.time() - 60.0
            meta_path.write_text(json.dumps(document))
        beat = spool.heartbeats_dir / worker
        if beat.exists():
            stale = time.time() - 10 * self.TTL
            os.utime(beat, (stale, stale))

    def _complete(self, spool, state, slot):
        doc = state["holding"][slot]
        payload = {"answer": doc["index"]}
        spool.write_envelope(
            ResultEnvelope(
                task_id=doc["task_id"],
                index=doc["index"],
                attempt=doc["attempt"],
                worker=state["ids"][slot],
                payload=payload,
                integrity=payload_digest(payload),
            )
        )
        spool.release(doc["task_id"])
        state["holding"][slot] = None

    def _collect(self, spool, state):
        for _, envelope in spool.new_envelopes(state["seen"]):
            if envelope is None:
                continue
            if envelope.index in state["outstanding"]:
                assert envelope.verified()
                state["outstanding"].discard(envelope.index)
                state["completed"][envelope.index] += 1
            else:
                state["duplicates"] += 1

    def _reap(self, spool, state):
        for task in spool.reap_expired(self.TTL):
            index = task["index"]
            if index not in state["outstanding"]:
                continue
            task["attempt"] += 1
            spool.add_task(task)

    def _drive(self, spool, ops):
        state = {
            "outstanding": set(range(self.TASKS)),
            "completed": dict.fromkeys(range(self.TASKS), 0),
            "duplicates": 0,
            "holding": [None, None],
            "ids": ["w0g0", "w1g0"],
            "gen": [0, 0],
            "seen": set(),
        }
        for index in range(self.TASKS):
            spool.add_task(
                spool.task_document(f"{index:05d}-t", index, 0, "t" * 64, {})
            )

        for op in ops:
            kind, slot = op[:-1], int(op[-1]) if op[-1].isdigit() else None
            if kind == "claim" and state["holding"][slot] is None:
                spool.heartbeat(state["ids"][slot])
                state["holding"][slot] = spool.claim_next(
                    state["ids"][slot], self.TTL
                )
            elif kind == "complete" and state["holding"][slot] is not None:
                self._complete(spool, state, slot)
            elif kind == "crash" and state["holding"][slot] is not None:
                # The worker dies mid-task; its replacement has a new identity
                # (fresh heartbeat file), so the old lease goes reapable.
                doc = state["holding"][slot]
                self._expire(spool, doc["task_id"], state["ids"][slot])
                state["holding"][slot] = None
                state["gen"][slot] += 1
                state["ids"][slot] = f"w{slot}g{state['gen'][slot]}"
            elif kind == "stall" and state["holding"][slot] is not None:
                # Partitioned but alive: the lease expires and the task is
                # reassigned, yet this worker later completes it anyway --
                # producing a duplicate the coordinator must absorb.
                doc = state["holding"][slot]
                self._expire(spool, doc["task_id"], state["ids"][slot])
            elif op == "reap":
                self._reap(spool, state)
            elif op == "collect":
                self._collect(spool, state)

        # Deterministic drain: however the interleaving left the spool,
        # the coordinator loop must finish the sweep.
        for _ in range(200):
            self._collect(spool, state)
            if not state["outstanding"]:
                break
            self._reap(spool, state)
            for slot in (0, 1):
                if state["holding"][slot] is None:
                    spool.heartbeat(state["ids"][slot])
                    state["holding"][slot] = spool.claim_next(
                        state["ids"][slot], self.TTL
                    )
                if state["holding"][slot] is not None:
                    self._complete(spool, state, slot)
        else:
            pytest.fail(f"sweep failed to drain: {state}")

        # The invariant: every task completed exactly once; late duplicate
        # envelopes were counted, never double-completed.
        assert state["outstanding"] == set()
        assert all(count == 1 for count in state["completed"].values())
