"""Property-based tests (hypothesis) for the core invariants.

Random graphs are generated from random edge sets; for every generated input
the tests check the paper's structural facts (Lemma 5.1, Lemma 3.6), the
simulator's accounting, and the legality / defect / palette guarantees of the
colorings produced by the primitives and by the full algorithms.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import numpy as np

from repro.core import color_edges, run_defective_color
from repro.experiments import ExperimentRunner, GraphSpec, Scenario
from repro.graphs.line_graph import line_graph_network
from repro.graphs.properties import (
    has_neighborhood_independence_at_most,
    neighborhood_independence,
)
from repro.local_model import (
    BatchedScheduler,
    CompiledScheduler,
    Network,
    Scheduler,
    VectorizedScheduler,
    fast_view,
)
from repro.local_model.messages import payload_size_words
from repro.primitives.kuhn_defective import defective_coloring_pipeline
from repro.primitives.color_reduction import delta_plus_one_pipeline
from repro.primitives.numbers import base_q_digits, log_star, next_prime, poly_eval
from repro.primitives.linial import linial_final_palette, linial_schedule
from repro.verification.coloring import (
    assert_legal_edge_coloring,
    assert_legal_vertex_coloring,
    coloring_defect,
    max_color,
)

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #


@st.composite
def random_edge_lists(draw, max_nodes: int = 12) -> Tuple[int, List[Tuple[int, int]]]:
    """A random simple graph given as (num_nodes, edge list)."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
    )
    return n, edges


def build_network(n: int, edges: List[Tuple[int, int]]) -> Network:
    return Network.from_edges(edges, isolated_nodes=range(n))


SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# --------------------------------------------------------------------------- #
# Structural invariants
# --------------------------------------------------------------------------- #


class TestStructuralProperties:
    @SLOW
    @given(random_edge_lists())
    def test_line_graphs_always_have_independence_at_most_two(self, data):
        n, edges = data
        network = build_network(n, edges)
        line = line_graph_network(network)
        assert has_neighborhood_independence_at_most(line, 2)

    @SLOW
    @given(random_edge_lists())
    def test_line_graph_size_and_degree_bounds(self, data):
        n, edges = data
        network = build_network(n, edges)
        line = line_graph_network(network)
        assert line.num_nodes == network.num_edges
        if network.max_degree >= 1:
            assert line.max_degree <= 2 * (network.max_degree - 1)

    @SLOW
    @given(random_edge_lists(), st.integers(min_value=0, max_value=5))
    def test_induced_subgraphs_inherit_bounded_independence(self, data, c):
        # Lemma 3.6: the family is closed under vertex-induced subgraphs.
        n, edges = data
        network = build_network(n, edges)
        if not has_neighborhood_independence_at_most(network, c):
            return
        subset = [node for node in network.nodes() if node % 2 == 0]
        induced = network.induced_subgraph(subset)
        assert has_neighborhood_independence_at_most(induced, c)

    @SLOW
    @given(random_edge_lists())
    def test_neighborhood_independence_at_most_max_degree(self, data):
        n, edges = data
        network = build_network(n, edges)
        assert neighborhood_independence(network) <= max(network.max_degree, 0)


# --------------------------------------------------------------------------- #
# Number-theoretic invariants
# --------------------------------------------------------------------------- #


class TestPrimitivesProperties:
    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=2, max_value=97))
    def test_base_q_digits_round_trip(self, value, q):
        digits = base_q_digits(value, q, num_digits=8) if value < q**8 else None
        if digits is None:
            return
        assert sum(d * q**i for i, d in enumerate(digits)) == value
        assert all(0 <= d < q for d in digits)

    @given(st.integers(min_value=2, max_value=5000))
    def test_next_prime_within_bertrand_window(self, value):
        prime = next_prime(value)
        assert value <= prime < 2 * value

    @given(st.integers(min_value=2, max_value=10**9))
    def test_log_star_is_tiny_and_monotone_under_log(self, value):
        assert 0 <= log_star(value) <= 6
        assert log_star(value) >= log_star(max(2, value // 2)) - 1

    @given(
        st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=4),
        st.integers(min_value=0, max_value=10),
    )
    def test_poly_eval_is_linear_in_constant_term(self, coefficients, point):
        q = 11
        shifted = [coefficients[0] + 1] + coefficients[1:]
        base_value = poly_eval(coefficients, point, q)
        shifted_value = poly_eval(shifted, point, q)
        assert shifted_value == (base_value + 1) % q

    @given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=1, max_value=64))
    def test_linial_palette_bound(self, palette, delta):
        final = linial_final_palette(palette, delta)
        assert final <= palette
        assert final <= 9 * (delta + 2) ** 2 or final <= palette

    @given(st.integers(min_value=2, max_value=10**6), st.integers(min_value=1, max_value=32))
    def test_linial_schedule_primes_are_valid(self, palette, delta):
        schedule, _ = linial_schedule(palette, delta)
        for q, digits, before in schedule:
            assert q > delta * (digits - 1)
            assert q * q < before


# --------------------------------------------------------------------------- #
# Simulator invariants
# --------------------------------------------------------------------------- #


class TestSimulatorProperties:
    @given(
        st.recursive(
            st.one_of(st.integers(), st.text(max_size=5), st.none(), st.booleans()),
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.dictionaries(st.text(max_size=3), children, max_size=3),
            ),
            max_leaves=10,
        )
    )
    def test_payload_size_is_positive_and_additive_over_lists(self, payload):
        size = payload_size_words(payload)
        assert size >= 1
        assert payload_size_words([payload, payload]) == 2 * size


# --------------------------------------------------------------------------- #
# Coloring invariants on random graphs
# --------------------------------------------------------------------------- #


class TestColoringProperties:
    @SLOW
    @given(random_edge_lists(max_nodes=10))
    def test_delta_plus_one_pipeline_always_legal(self, data):
        n, edges = data
        network = build_network(n, edges)
        pipeline, palette = delta_plus_one_pipeline(
            n=network.num_nodes, degree_bound=max(1, network.max_degree), output_key="c"
        )
        result = Scheduler(network).run(pipeline)
        colors = result.extract("c")
        assert_legal_vertex_coloring(network, colors)
        assert max_color(colors) <= palette

    @SLOW
    @given(random_edge_lists(max_nodes=10), st.integers(min_value=1, max_value=4))
    def test_defective_pipeline_respects_defect_and_palette(self, data, defect):
        n, edges = data
        network = build_network(n, edges)
        pipeline, palette = defective_coloring_pipeline(
            n=network.num_nodes,
            degree_bound=max(1, network.max_degree),
            target_defect=defect,
            output_key="d",
        )
        result = Scheduler(network).run(pipeline)
        colors = result.extract("d")
        assert coloring_defect(network, colors) <= defect
        assert max_color(colors) <= palette

    @SLOW
    @given(random_edge_lists(max_nodes=9), st.integers(min_value=2, max_value=4))
    def test_defective_color_procedure_defect_bound(self, data, p):
        n, edges = data
        network = build_network(n, edges)
        line = line_graph_network(network)
        if line.num_nodes == 0:
            return
        Lambda = max(1, line.max_degree)
        if p > Lambda:
            return
        colors, info, _ = run_defective_color(line, b=1, p=p, c=2, Lambda=Lambda)
        assert coloring_defect(line, colors) <= info.psi_defect_bound
        assert set(colors.values()) <= set(range(1, p + 1))

    @SLOW
    @given(random_edge_lists(max_nodes=9))
    def test_edge_coloring_always_legal(self, data):
        n, edges = data
        network = build_network(n, edges)
        if network.num_edges == 0:
            return
        result = color_edges(network, quality="superlinear", route="direct")
        assert_legal_edge_coloring(network, result.edge_colors)
        assert result.colors_used <= result.palette


# --------------------------------------------------------------------------- #
# CSR line-graph builder == legacy Python constructor
# --------------------------------------------------------------------------- #


class TestFastLineGraphBuilder:
    """build_line_graph_fast reproduces build_line_graph_network exactly."""

    @SLOW
    @given(random_edge_lists(), st.booleans())
    def test_builder_matches_legacy_constructor(self, data, scramble_ids):
        from repro.graphs.line_graph import build_line_graph_fast, build_line_graph_network

        n, edges = data
        network = build_network(n, edges)
        if scramble_ids:
            # Non-monotone unique ids: identifier order and node_sort_key
            # order disagree, which exercises the pair-key/sort-rank split.
            network = Network(
                {node: network.neighbors(node) for node in network.nodes()},
                unique_ids={
                    node: n + 1 - network.unique_id(node) for node in network.nodes()
                },
            )
        legacy, edge_ids = build_line_graph_network(network)
        fast = build_line_graph_fast(network)
        assert fast.num_nodes == legacy.num_nodes
        assert fast.max_degree == legacy.max_degree
        materialized = fast.to_network()
        assert materialized.nodes() == legacy.nodes()
        assert materialized.unique_ids() == legacy.unique_ids()
        for node in legacy.nodes():
            assert materialized.neighbors(node) == legacy.neighbors(node)
        assert {edge: fast.unique_id(edge) for edge in fast.order} == edge_ids

    @SLOW
    @given(random_edge_lists())
    def test_edge_mode_defective_color_identical_on_all_engines(self, data):
        from repro.core.defective_coloring import defective_color_pipeline
        from repro.graphs.line_graph import build_line_graph_fast

        n, edges = data
        network = build_network(n, edges)
        if network.num_edges == 0:
            return
        line = build_line_graph_fast(network)
        Lambda = max(2, network.max_degree)
        pipeline, _ = defective_color_pipeline(
            n=line.num_nodes, b=1, p=2, Lambda=Lambda, c=2, mode="edge"
        )
        reference = Scheduler(line.to_network()).run(pipeline)
        for engine_cls in (BatchedScheduler, VectorizedScheduler, CompiledScheduler):
            candidate = engine_cls(line).run(pipeline)
            assert candidate.states == reference.states
            assert candidate.metrics.summary() == reference.metrics.summary()


# --------------------------------------------------------------------------- #
# CSR masking: FastNetwork.filtered == Network.filtered_by_edge
# --------------------------------------------------------------------------- #


def _assert_same_filtered(derived, expected: Network) -> None:
    """A derived FastNetwork and a filtered Network describe the same graph."""
    assert derived.num_nodes == expected.num_nodes
    assert derived.num_edges == expected.num_edges
    assert derived.max_degree == expected.max_degree
    assert derived.nodes() == expected.nodes()
    for i, node in enumerate(derived.order):
        assert derived.neighbor_ids[i] == expected.neighbors(node)
    materialized = derived.to_network()
    assert materialized.nodes() == expected.nodes()
    assert materialized.edges() == expected.edges()
    assert materialized.unique_ids() == expected.unique_ids()


class TestFastNetworkFiltering:
    """CSR masking agrees with the Network-rebuilding path on random graphs."""

    @SLOW
    @given(
        random_edge_lists(),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_filtered_by_labels_matches_network_path(self, data, num_labels, salt):
        n, edges = data
        network = build_network(n, edges)
        fast = fast_view(network)
        label_of = {
            node: (network.unique_id(node) * 2654435761 + salt) % num_labels
            for node in network.nodes()
        }
        expected = network.filtered_by_edge(
            lambda u, v: label_of[u] == label_of[v]
        )
        labels = np.fromiter(
            (label_of[node] for node in fast.order), dtype=np.int64, count=n
        )
        _assert_same_filtered(fast.filtered_by_labels(labels), expected)

    @SLOW
    @given(random_edge_lists())
    def test_edge_mask_subset_matches_network_path(self, data):
        n, edges = data
        network = build_network(n, edges)
        fast = fast_view(network)
        # Keep every second canonical edge -- an arbitrary symmetric subset.
        kept_edges = {
            frozenset(edge) for i, edge in enumerate(network.edges()) if i % 2 == 0
        }
        expected = network.filtered_by_edge(
            lambda u, v: frozenset((u, v)) in kept_edges
        )
        rows, cols = fast.rows_np, fast.indices_np
        order = fast.order
        edge_mask = np.fromiter(
            (
                frozenset((order[u], order[v])) in kept_edges
                for u, v in zip(rows.tolist(), cols.tolist())
            ),
            dtype=bool,
            count=len(rows),
        )
        _assert_same_filtered(fast.filtered(edge_mask=edge_mask), expected)

    @SLOW
    @given(random_edge_lists())
    def test_node_mask_matches_network_path(self, data):
        n, edges = data
        network = build_network(n, edges)
        fast = fast_view(network)
        kept = {node for node in network.nodes() if node % 3 != 0}
        expected = network.filtered_by_edge(lambda u, v: u in kept and v in kept)
        node_mask = np.fromiter(
            (node in kept for node in fast.order), dtype=bool, count=n
        )
        _assert_same_filtered(fast.filtered(node_mask=node_mask), expected)

    @SLOW
    @given(random_edge_lists())
    def test_empty_edge_mask_isolates_every_node(self, data):
        n, edges = data
        network = build_network(n, edges)
        fast = fast_view(network)
        expected = network.filtered_by_edge(lambda u, v: False)
        derived = fast.filtered(edge_mask=np.zeros(len(fast.indices), dtype=bool))
        _assert_same_filtered(derived, expected)
        assert derived.num_edges == 0
        assert derived.max_degree == 0

    def test_single_node_network(self):
        network = Network({"only": []})
        fast = fast_view(network)
        derived = fast.filtered_by_labels(np.zeros(1, dtype=np.int64))
        _assert_same_filtered(derived, network.filtered_by_edge(lambda u, v: True))
        assert derived.num_nodes == 1
        assert derived.neighbor_ids == ((),)

    def test_empty_network(self):
        fast = fast_view(Network({}))
        derived = fast.filtered_by_labels(np.zeros(0, dtype=np.int64))
        assert derived.num_nodes == 0
        assert derived.num_edges == 0
        assert derived.to_network().num_nodes == 0


# --------------------------------------------------------------------------- #
# Fast-engine equivalence on random graphs
# --------------------------------------------------------------------------- #


def _metrics_fingerprint(metrics):
    return (
        metrics.summary(),
        [
            (p.name, p.rounds, p.messages, p.total_words, p.max_message_words)
            for p in metrics.phases
        ],
    )


FAST_ENGINE_CLASSES = (BatchedScheduler, VectorizedScheduler, CompiledScheduler)


class TestFastEngineProperties:
    """The batched, vectorized and compiled engines are indistinguishable
    from the reference scheduler on arbitrary random graphs -- states,
    per-phase metrics, everything."""

    @SLOW
    @given(random_edge_lists(max_nodes=10))
    def test_delta_plus_one_pipeline_is_engine_independent(self, data):
        n, edges = data
        network = build_network(n, edges)
        pipeline, _ = delta_plus_one_pipeline(
            n=network.num_nodes, degree_bound=max(1, network.max_degree), output_key="c"
        )
        reference = Scheduler(network).run(pipeline)
        for engine_cls in FAST_ENGINE_CLASSES:
            candidate = engine_cls(network).run(pipeline)
            assert candidate.states == reference.states
            assert _metrics_fingerprint(candidate.metrics) == _metrics_fingerprint(
                reference.metrics
            )

    @SLOW
    @given(random_edge_lists(max_nodes=10), st.integers(min_value=1, max_value=4))
    def test_defective_pipeline_is_engine_independent(self, data, defect):
        n, edges = data
        network = build_network(n, edges)
        pipeline, _ = defective_coloring_pipeline(
            n=network.num_nodes,
            degree_bound=max(1, network.max_degree),
            target_defect=defect,
            output_key="d",
        )
        reference = Scheduler(network).run(pipeline)
        for engine_cls in FAST_ENGINE_CLASSES:
            candidate = engine_cls(network).run(pipeline)
            assert candidate.states == reference.states
            assert _metrics_fingerprint(candidate.metrics) == _metrics_fingerprint(
                reference.metrics
            )

    @SLOW
    @given(random_edge_lists(max_nodes=8))
    def test_edge_coloring_is_engine_independent(self, data):
        n, edges = data
        network = build_network(n, edges)
        if network.num_edges == 0:
            return
        reference = color_edges(
            network, quality="superlinear", route="direct", engine="reference"
        )
        for engine in ("batched", "vectorized", "compiled"):
            candidate = color_edges(
                network, quality="superlinear", route="direct", engine=engine
            )
            assert candidate.edge_colors == reference.edge_colors
            assert _metrics_fingerprint(candidate.metrics) == _metrics_fingerprint(
                reference.metrics
            )


# --------------------------------------------------------------------------- #
# ExperimentRunner cache invariants
# --------------------------------------------------------------------------- #


@st.composite
def runner_scenarios(draw) -> Scenario:
    """A random (but valid) legal-coloring scenario on a tiny regular graph."""
    degree = draw(st.integers(min_value=2, max_value=4))
    n = draw(st.integers(min_value=degree + 2, max_value=14))
    if (n * degree) % 2 != 0:
        n += 1
    seed = draw(st.integers(min_value=0, max_value=5))
    quality = draw(st.sampled_from(["superlinear", "linear"]))
    engine = draw(st.sampled_from(["batched", "reference", "vectorized", "compiled"]))
    return Scenario.make(
        name=f"prop-{degree}-{n}-{seed}-{quality}-{engine}",
        graph=GraphSpec("random_regular", n=n, degree=degree, seed=seed),
        algorithm="legal_coloring",
        params={"c": degree, "quality": quality},
        engine=engine,
    )


class TestExperimentRunnerProperties:
    @SLOW
    @given(runner_scenarios())
    def test_cache_hit_equals_fresh_run(self, scenario):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            runner = ExperimentRunner(cache_dir=tmp, max_workers=0)
            (fresh,) = runner.run([scenario])
            (cached,) = runner.run([scenario])
            assert not fresh.cached
            assert cached.cached
            # The cached payload is the fresh payload, verbatim.
            assert cached.payload == fresh.payload
            assert cached.coloring_digest == fresh.coloring_digest
            assert fresh.verified

    @SLOW
    @given(runner_scenarios())
    def test_cache_token_is_stable_and_name_independent(self, scenario):
        renamed = Scenario.make(
            name="completely-different-name",
            graph=scenario.graph,
            algorithm=scenario.algorithm,
            params=scenario.params_dict,
            engine=scenario.engine,
        )
        assert renamed.cache_token() == scenario.cache_token()
        assert scenario.with_engine("reference").cache_token() != (
            scenario.with_engine("batched").cache_token()
        )

    @SLOW
    @given(runner_scenarios())
    def test_engines_agree_through_the_runner(self, scenario):
        runner = ExperimentRunner(cache_dir=None, max_workers=0)
        (reference,) = runner.run([scenario.with_engine("reference")])
        (batched,) = runner.run([scenario.with_engine("batched")])
        assert batched.coloring_digest == reference.coloring_digest
        assert batched.rounds == reference.rounds
        assert batched.messages == reference.messages
