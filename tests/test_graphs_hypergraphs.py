"""Unit tests for r-hypergraphs and their line graphs."""

from __future__ import annotations

import pytest

from repro.exceptions import HypergraphError
from repro.graphs.hypergraphs import Hypergraph, hypergraph_line_graph, random_r_hypergraph


class TestHypergraph:
    def test_add_vertices_and_edges(self):
        hypergraph = Hypergraph(rank=3)
        hypergraph.add_vertex("a")
        index = hypergraph.add_edge(["a", "b", "c"])
        assert index == 0
        assert hypergraph.num_vertices == 3
        assert hypergraph.num_edges == 1
        assert hypergraph.max_edge_size() == 3

    def test_rank_bound_enforced(self):
        hypergraph = Hypergraph(rank=2)
        with pytest.raises(HypergraphError):
            hypergraph.add_edge([1, 2, 3])

    def test_unbounded_rank_allows_large_edges(self):
        hypergraph = Hypergraph()
        hypergraph.add_edge(range(10))
        assert hypergraph.max_edge_size() == 10

    def test_empty_edge_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph(rank=3).add_edge([])

    def test_vertex_degree(self):
        hypergraph = Hypergraph(rank=3)
        hypergraph.add_edge([1, 2])
        hypergraph.add_edge([2, 3])
        hypergraph.add_edge([2, 4, 5])
        assert hypergraph.vertex_degree(2) == 3
        assert hypergraph.vertex_degree(1) == 1
        assert hypergraph.max_vertex_degree() == 3

    def test_duplicate_vertices_within_edge_collapse(self):
        hypergraph = Hypergraph(rank=2)
        hypergraph.add_edge([1, 1])
        assert hypergraph.max_edge_size() == 1

    def test_vertices_are_sorted_and_deduplicated(self):
        hypergraph = Hypergraph(rank=3)
        hypergraph.add_edge([3, 1])
        hypergraph.add_edge([1, 2])
        assert hypergraph.vertices == (1, 2, 3)


class TestHypergraphLineGraph:
    def test_adjacency_is_vertex_sharing(self):
        hypergraph = Hypergraph(rank=3)
        hypergraph.add_edge([1, 2, 3])  # edge 0
        hypergraph.add_edge([3, 4])     # edge 1 (shares vertex 3 with edge 0)
        hypergraph.add_edge([5, 6])     # edge 2 (disjoint)
        line = hypergraph_line_graph(hypergraph)
        assert line.has_edge(0, 1)
        assert not line.has_edge(0, 2)
        assert not line.has_edge(1, 2)

    def test_line_graph_node_count(self):
        hypergraph = random_r_hypergraph(num_vertices=12, num_edges=15, rank=3, seed=4)
        line = hypergraph_line_graph(hypergraph)
        assert line.num_nodes == hypergraph.num_edges

    def test_line_graph_degree_bound(self):
        # An edge of size <= r meets at most r * (max vertex degree - 1) others.
        hypergraph = random_r_hypergraph(num_vertices=12, num_edges=15, rank=3, seed=4)
        line = hypergraph_line_graph(hypergraph)
        bound = 3 * max(1, hypergraph.max_vertex_degree() - 1) + 3
        assert line.max_degree <= bound


class TestRandomHypergraph:
    def test_deterministic_given_seed(self):
        a = random_r_hypergraph(10, 12, 3, seed=2)
        b = random_r_hypergraph(10, 12, 3, seed=2)
        assert a.edges == b.edges

    def test_rank_respected(self):
        hypergraph = random_r_hypergraph(15, 30, 4, seed=1)
        assert hypergraph.max_edge_size() <= 4

    def test_exact_size_edges(self):
        hypergraph = random_r_hypergraph(15, 10, 3, seed=1, exact_size=True)
        assert all(len(edge) == 3 for edge in hypergraph.edges)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(HypergraphError):
            random_r_hypergraph(10, 5, 1, seed=1)
        with pytest.raises(HypergraphError):
            random_r_hypergraph(2, 5, 3, seed=1)
