"""The batched string-seeded RNG kernel must be bit-exact vs `random.Random`.

`StringSeededDraws` replicates CPython's version-2 string seeding (sha512
key expansion + `init_by_array`) and the `_randbelow` rejection loop in
numpy, so the vectorized Luby kernel draws the very same stream as the
scalar engines.  These tests pin that equivalence over adversarial ids,
seeds, limits, and round indices — through both the vectorized path
(`scalar_cutoff=0`) and the scalar fallback.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.local_model.rng_kernel import SCALAR_CUTOFF, StringSeededDraws, scalar_randbelow


def expected(seed: int, uid: int, round_index: int, limit: int) -> int:
    return random.Random(f"{seed}:{uid}:{round_index}")._randbelow(limit)


class TestScalarReference:
    def test_matches_random_module(self):
        for seed, uid, rnd, limit in [
            (0, 1, 1, 7),
            (7, -3, 12, 2),
            (-12345, 10**18, 99, 1 << 20),
            (3, 123456789, 2, 3),
        ]:
            assert scalar_randbelow(seed, uid, rnd, limit) == expected(
                seed, uid, rnd, limit
            )


class TestVectorizedDraws:
    @pytest.mark.parametrize("scalar_cutoff", [0, SCALAR_CUTOFF])
    def test_exhaustive_small_space(self, scalar_cutoff):
        uids = np.arange(-5, 40, dtype=np.int64)
        draws = StringSeededDraws(9, uids, scalar_cutoff=scalar_cutoff)
        rows = np.arange(len(uids), dtype=np.int64)
        for round_index in (1, 2, 17):
            limits = (rows % 13) + 1
            got = draws.draw(rows, limits, round_index)
            want = [
                expected(9, int(uids[r]), round_index, int(limits[r]))
                for r in rows
            ]
            assert got.tolist() == want

    def test_limit_one_shortcut(self):
        uids = np.array([5, 6, 7], dtype=np.int64)
        draws = StringSeededDraws(0, uids, scalar_cutoff=0)
        got = draws.draw(
            np.arange(3, dtype=np.int64), np.ones(3, dtype=np.int64), 4
        )
        assert got.tolist() == [0, 0, 0]

    def test_subset_of_rows(self):
        # `rows` indexes into the uid table; drawing a sparse subset must
        # address the right ids.
        uids = np.arange(100, dtype=np.int64) * 17 - 30
        draws = StringSeededDraws(4, uids, scalar_cutoff=0)
        rows = np.array([3, 97, 41, 0], dtype=np.int64)
        limits = np.array([5, 300, 2, 1000], dtype=np.int64)
        got = draws.draw(rows, limits, 8)
        want = [expected(4, int(uids[r]), 8, int(l)) for r, l in zip(rows, limits)]
        assert got.tolist() == want

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=-(10**6), max_value=10**6),
        uids=st.lists(
            st.integers(min_value=-(10**9), max_value=10**12),
            min_size=1,
            max_size=40,
            unique=True,
        ),
        round_index=st.integers(min_value=1, max_value=200),
        data=st.data(),
    )
    def test_property_bit_exact(self, seed, uids, round_index, data):
        limits = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=1 << 22),
                min_size=len(uids),
                max_size=len(uids),
            )
        )
        uid_arr = np.array(uids, dtype=np.int64)
        limit_arr = np.array(limits, dtype=np.int64)
        rows = np.arange(len(uids), dtype=np.int64)
        for cutoff in (0, SCALAR_CUTOFF):
            draws = StringSeededDraws(seed, uid_arr, scalar_cutoff=cutoff)
            got = draws.draw(rows, limit_arr, round_index)
            want = [
                expected(seed, u, round_index, l) for u, l in zip(uids, limits)
            ]
            assert got.tolist() == want

    def test_huge_limits_fall_back_to_scalar(self):
        # Limits at or beyond 2^32 exceed the one-word fast path; the kernel
        # must still return the exact scalar stream.
        uids = np.array([11, 22, 33], dtype=np.int64)
        draws = StringSeededDraws(1, uids, scalar_cutoff=0)
        limits = np.array([(1 << 32) + 5, 1 << 40, 6], dtype=np.int64)
        rows = np.arange(3, dtype=np.int64)
        got = draws.draw(rows, limits, 3)
        want = [expected(1, int(u), 3, int(l)) for u, l in zip(uids, limits)]
        assert got.tolist() == want

    def test_matches_random_choice_semantics(self):
        # rng.choice(seq) == seq[_randbelow(len(seq))]: the contract the
        # Luby kernel relies on.
        rng = random.Random("5:42:3")
        available = [2, 5, 9, 11]
        pick = rng.choice(available)
        draws = StringSeededDraws(5, np.array([42], dtype=np.int64), scalar_cutoff=0)
        idx = draws.draw(
            np.zeros(1, dtype=np.int64), np.array([4], dtype=np.int64), 3
        )[0]
        assert available[idx] == pick
