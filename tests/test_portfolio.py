"""Decision pinning for the `color_graph` / `color_edges` portfolio façade.

The façade decides (engine, quality preset, route) per instance from the
committed cost model (``benchmarks/results/portfolio_model.json``).  These
tests pin the decisions on the three benchmarked instance classes — small,
large, and dense — so a model re-record that silently flips a decision
fails loudly, and they check that every decision is carried on the result
object with its reason and predicted costs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro import graphs
from repro.exceptions import InvalidParameterError
from repro.portfolio import (
    EDGE_ALGORITHMS,
    QUALITY_ORDER,
    VERTEX_ALGORITHMS,
    CostModel,
    color_edges,
    color_graph,
)
from repro.portfolio.cost_model import DEFAULT_MODEL, quality_round_shape
from repro.portfolio.facade import _csr_entries, _line_csr_entries
from repro.local_model.fast_network import fast_view
from repro.verification import (
    assert_legal_edge_coloring,
    assert_legal_vertex_coloring,
)

MODEL_RECORD = (
    Path(__file__).resolve().parents[1]
    / "benchmarks"
    / "results"
    / "portfolio_model.json"
)


class TestCommittedModel:
    def test_default_loads_the_committed_record(self):
        assert MODEL_RECORD.exists(), "calibration record missing"
        model = CostModel.default()
        assert model.source == str(MODEL_RECORD)

    def test_embedded_snapshot_matches_committed_record(self):
        # The in-package fallback must stay in sync with the record so an
        # installed package decides identically to a repo checkout.
        with MODEL_RECORD.open() as handle:
            record = json.load(handle)
        for section in ("engine", "route", "rounds"):
            assert record[section] == DEFAULT_MODEL[section]

    def test_engine_crossover(self):
        model = CostModel.default()
        assert model.choose_engine(500) == "batched"
        # Without a resolved kernel backend the crossover lands on the
        # vectorized kernels; with one, the compiled engine's smaller slope
        # wins the same instance.
        assert model.choose_engine(200_000, compiled_available=False) == "vectorized"
        assert model.choose_engine(200_000, compiled_available=True) == "compiled"

    def test_compiled_candidate_requires_coefficients(self):
        # A model without compiled coefficients never offers the engine,
        # however large the instance and whatever the backend state.
        stripped = {
            "engine": {
                k: v
                for k, v in DEFAULT_MODEL["engine"].items()
                if not k.startswith("compiled")
            },
            "route": dict(DEFAULT_MODEL["route"]),
            "rounds": {q: dict(DEFAULT_MODEL["rounds"][q]) for q in QUALITY_ORDER},
        }
        model = CostModel.from_mapping(stripped, source="unit-test")
        assert not model.has_engine("compiled")
        assert model.choose_engine(10_000_000, compiled_available=True) == "vectorized"
        with pytest.raises(InvalidParameterError):
            model.predict_engine_seconds("compiled", 1_000)

    def test_route_choice_follows_committed_coefficients(self):
        # The route cost is linear in line entries, so the choice is
        # whichever measured per-entry coefficient is smaller at every size
        # (ties break to direct: same wall cost, smaller messages).
        model = CostModel.default()
        cheaper = min(
            ("direct", "simulation"),
            key=lambda route: model.route[f"{route}_us_per_line_entry"],
        )
        assert model.choose_route(1_000) == cheaper
        assert model.choose_route(1_000_000) == cheaper
        tied = CostModel.from_mapping(
            {
                "engine": dict(DEFAULT_MODEL["engine"]),
                "route": {
                    "direct_us_per_line_entry": 0.5,
                    "simulation_us_per_line_entry": 0.5,
                },
                "rounds": {q: dict(DEFAULT_MODEL["rounds"][q]) for q in QUALITY_ORDER},
            },
            source="unit-test",
        )
        assert tied.choose_route(1_000) == "direct"

    def test_quality_budget_walk(self):
        model = CostModel.default()
        assert model.choose_quality(92, 48, None) == "linear"
        assert model.choose_quality(92, 48, 10_000.0) == "linear"
        # Predicted rounds are monotone along QUALITY_ORDER shapes, so a
        # budget between two presets picks the best palette that fits.
        linear = model.predict_rounds("linear", 92, 48)
        subpoly = model.predict_rounds("subpolynomial", 92, 48)
        assert subpoly < linear
        assert model.choose_quality(92, 48, (linear + subpoly) / 2) == "subpolynomial"
        assert model.choose_quality(92, 48, 1.0) == "superlinear"

    def test_round_shapes_monotone_in_delta(self):
        for quality in QUALITY_ORDER:
            assert quality_round_shape(quality, 64, 100) > quality_round_shape(
                quality, 4, 100
            )


class TestDecisionPins:
    """The benchmarked instance classes and the decisions they must get."""

    @staticmethod
    def _expected_fast_engine() -> str:
        """What the portfolio should pick past the batched crossover."""
        from repro.local_model import kernels

        return "compiled" if kernels.get_backend() is not None else "vectorized"

    def test_small_instance_keeps_batched_engine(self):
        network = graphs.random_regular(32, 4, seed=1, backend="fast")
        result = color_edges(network)
        decision = result.decision
        assert (decision.algorithm, decision.engine) == ("legal-color", "batched")
        assert decision.quality == "linear"
        # The route follows the committed coefficients (the two routes are
        # nearly tied on the reference machine, so the pin is model-relative).
        model = CostModel.default()
        assert decision.route == model.choose_route(
            _line_csr_entries(fast_view(network))
        )
        assert decision.is_default() == (decision.route == "direct")
        assert decision.overrides == ()
        assert_legal_edge_coloring(network, result.colors)

    def test_large_instance_flips_engine(self):
        network = graphs.random_regular(2048, 8, seed=2, backend="fast")
        result = color_graph(network, seed=1)
        decision = result.decision
        assert decision.algorithm == "luby"
        assert decision.engine == self._expected_fast_engine()
        assert not decision.is_default()
        assert "CSR entries" in decision.reasons["engine"]
        predicted = decision.predicted
        assert (
            predicted["engine_vectorized_seconds"]
            < predicted["engine_batched_seconds"]
        )
        if decision.engine == "compiled":
            assert (
                predicted["engine_compiled_seconds"]
                < predicted["engine_vectorized_seconds"]
            )
            assert decision.kernel_backend is not None
            assert decision.kernel_threads >= 1
        assert_legal_vertex_coloring(network, result.colors)

    def test_dense_instance_with_budget_degrades_quality(self):
        network = graphs.complete_graph(24, backend="fast")
        result = color_edges(network, budget=40.0)
        decision = result.decision
        # L(G) is big even at n=24, so the engine leaves the batched default.
        assert decision.engine == self._expected_fast_engine()
        assert decision.quality == "superlinear"
        assert not decision.is_default()
        assert "infeasible" in decision.reasons["quality"]
        assert_legal_edge_coloring(network, result.colors)

    def test_decisions_match_committed_benchmark_pins(self):
        # bench_portfolio.py records the decisions it took with the fresh
        # calibration; the committed model must reproduce them.
        with MODEL_RECORD.open() as handle:
            pins = json.load(handle)["decisions"]
        assert len(pins) >= 3
        by_instance = {pin["instance"]: pin for pin in pins}
        small = by_instance["small-regular(n=32, Delta=4)"]
        assert small["engine"] == "batched"
        large = next(
            pin for name, pin in by_instance.items() if name.startswith("large-")
        )
        assert large["engine"] in ("vectorized", "compiled")
        assert not large["is_default"]
        dense = by_instance["dense-complete(n=48, Delta=47)"]
        assert dense["quality"] == "superlinear" and not dense["is_default"]

    def test_backend_absent_degrades_to_vectorized(self, monkeypatch):
        # With no resolvable kernel backend the portfolio must not steer a
        # large instance onto the compiled engine (it would just pay kernel
        # dispatch overhead on top of the same numpy fallback).
        from repro.local_model import kernels

        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "none")
        kernels.reset()
        try:
            network = graphs.random_regular(2048, 8, seed=2, backend="fast")
            result = color_graph(network, seed=1)
            decision = result.decision
            assert decision.engine == "vectorized"
            assert decision.kernel_backend is None
            assert "no kernel backend" in decision.reasons["engine"]
        finally:
            monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
            kernels.reset()

    def test_entry_counts_match_csr(self):
        network = graphs.random_regular(32, 4, seed=1, backend="fast")
        fast = fast_view(network)
        assert _csr_entries(fast) == 32 * 4 + 32
        # |E| = 64, each edge has d(u)+d(v)-2 = 6 line neighbors.
        assert _line_csr_entries(fast) == 64 * 6 + 64


class TestFacadeContract:
    def test_algorithm_lists_exposed(self):
        assert "legal-color" in VERTEX_ALGORITHMS
        assert set(EDGE_ALGORITHMS) >= {"legal-color", "panconesi-rizzi", "luby"}

    def test_every_decision_has_an_override(self):
        network = graphs.random_regular(16, 4, seed=3, backend="fast")
        result = color_edges(
            network,
            algorithm="legal-color",
            engine="reference",
            quality="superlinear",
            route="simulation",
        )
        decision = result.decision
        assert decision.overrides == ("algorithm", "engine", "quality", "route")
        assert decision.engine == "reference"
        assert decision.quality == "superlinear"
        assert decision.route == "simulation"
        for knob in ("algorithm", "engine", "quality", "route"):
            assert "pinned by caller" in decision.reasons[knob]

    def test_custom_cost_model_is_honored_and_recorded(self):
        # A model that makes the vectorized engine free must flip even a
        # tiny instance; the decision records where the model came from.
        skewed = {k: dict(v) if isinstance(v, dict) else v for k, v in DEFAULT_MODEL.items()}
        skewed["engine"] = {
            "batched_us_per_entry": 1e6,
            "vectorized_us_per_entry": 0.0,
            "vectorized_overhead_us": 0.0,
        }
        skewed["rounds"] = {q: dict(DEFAULT_MODEL["rounds"][q]) for q in QUALITY_ORDER}
        model = CostModel.from_mapping(skewed, source="unit-test")
        network = graphs.random_regular(16, 4, seed=3, backend="fast")
        result = color_graph(network, cost_model=model, seed=1)
        assert result.decision.engine == "vectorized"
        assert result.decision.model_source == "unit-test"

    def test_normalized_result_shape(self):
        network = graphs.random_regular(16, 4, seed=3, backend="fast")
        for result in (
            color_graph(network, seed=1),
            color_edges(network, algorithm="greedy-reduction"),
        ):
            assert isinstance(result, repro.PortfolioResult)
            assert result.color_column is not None
            assert len(result.colors) == len(result.color_column)
            assert result.palette >= 1
            assert result.metrics.rounds >= 1
            assert result.decision.model_source

    def test_invalid_knobs_raise(self):
        network = graphs.random_regular(16, 4, seed=3, backend="fast")
        with pytest.raises(InvalidParameterError):
            color_edges(network, algorithm="nope")
        with pytest.raises(InvalidParameterError):
            color_edges(network, algorithm="greedy-reduction", quality="linear")
        with pytest.raises(InvalidParameterError):
            color_graph(network, quality="linear")  # luby has no presets
