"""Unit tests for the workload graph generators."""

from __future__ import annotations

import pytest

from repro import graphs
from repro.exceptions import InvalidParameterError
from repro.graphs.properties import (
    has_neighborhood_independence_at_most,
    neighborhood_independence,
)


class TestFigure1Graph:
    def test_size_and_degree(self):
        network = graphs.clique_with_pendants(8)
        assert network.num_nodes == 16
        assert network.max_degree == 8  # 7 clique neighbors + 1 pendant

    def test_neighborhood_independence_is_two(self):
        network = graphs.clique_with_pendants(6)
        assert neighborhood_independence(network) == 2

    def test_pendants_have_degree_one(self):
        network = graphs.clique_with_pendants(5)
        pendants = [node for node in network.nodes() if node[0] == "pendant"]
        assert len(pendants) == 5
        assert all(network.degree(node) == 1 for node in pendants)

    def test_single_vertex_clique(self):
        network = graphs.clique_with_pendants(1)
        assert network.num_nodes == 2
        assert network.num_edges == 1

    def test_invalid_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            graphs.clique_with_pendants(0)


class TestBasicFamilies:
    def test_complete_graph(self):
        network = graphs.complete_graph(6)
        assert network.num_edges == 15
        assert network.max_degree == 5

    def test_path_and_cycle(self):
        path = graphs.path_graph(7)
        cycle = graphs.cycle_graph(7)
        assert path.num_edges == 6
        assert cycle.num_edges == 7
        assert path.max_degree == 2
        assert cycle.max_degree == 2

    def test_cycle_too_small_rejected(self):
        with pytest.raises(InvalidParameterError):
            graphs.cycle_graph(2)

    def test_star_graph_structure(self):
        star = graphs.star_graph(6)
        assert star.num_nodes == 7
        assert star.max_degree == 6
        assert neighborhood_independence(star) == 6

    def test_grid_is_bounded_growth_like(self):
        grid = graphs.grid_graph(5, 5)
        assert grid.num_nodes == 25
        assert grid.max_degree == 4

    def test_hypercube(self):
        cube = graphs.hypercube_graph(4)
        assert cube.num_nodes == 16
        assert cube.max_degree == 4

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(InvalidParameterError):
            graphs.grid_graph(0, 3)
        with pytest.raises(InvalidParameterError):
            graphs.hypercube_graph(0)
        with pytest.raises(InvalidParameterError):
            graphs.path_graph(0)
        with pytest.raises(InvalidParameterError):
            graphs.complete_graph(0)
        with pytest.raises(InvalidParameterError):
            graphs.star_graph(0)


class TestRandomFamilies:
    def test_random_regular_degree_exact(self):
        network = graphs.random_regular(30, 5, seed=3)
        assert all(network.degree(node) == 5 for node in network.nodes())

    def test_random_regular_deterministic_given_seed(self):
        a = graphs.random_regular(20, 3, seed=9)
        b = graphs.random_regular(20, 3, seed=9)
        assert a.edges() == b.edges()

    def test_random_regular_zero_degree(self):
        network = graphs.random_regular(10, 0, seed=1)
        assert network.num_edges == 0

    def test_random_regular_parity_validation(self):
        with pytest.raises(InvalidParameterError):
            graphs.random_regular(9, 3, seed=1)
        with pytest.raises(InvalidParameterError):
            graphs.random_regular(5, 5, seed=1)

    def test_erdos_renyi_bounds(self):
        empty = graphs.erdos_renyi(20, 0.0, seed=1)
        full = graphs.erdos_renyi(10, 1.0, seed=1)
        assert empty.num_edges == 0
        assert full.num_edges == 45
        with pytest.raises(InvalidParameterError):
            graphs.erdos_renyi(10, 1.5, seed=1)

    def test_power_law_graph(self):
        network = graphs.power_law_graph(40, 3, seed=2)
        assert network.num_nodes == 40
        assert network.num_edges >= 3 * (40 - 3)
        with pytest.raises(InvalidParameterError):
            graphs.power_law_graph(5, 5, seed=2)

    def test_bipartite_regular_is_bipartite_and_near_regular(self):
        network = graphs.random_bipartite_regular(12, 4, seed=5)
        assert network.num_nodes == 24
        for u, v in network.edges():
            assert u[0] != v[0]
        assert network.max_degree <= 4
        with pytest.raises(InvalidParameterError):
            graphs.random_bipartite_regular(4, 5, seed=1)


class TestLineGraphsOfGeneratedGraphs:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: graphs.random_regular(16, 4, seed=1),
            lambda: graphs.erdos_renyi(16, 0.3, seed=2),
            lambda: graphs.clique_with_pendants(5),
            lambda: graphs.grid_graph(4, 4),
        ],
    )
    def test_line_graph_independence_at_most_two(self, maker):
        network = maker()
        line = graphs.line_graph_network(network)
        assert has_neighborhood_independence_at_most(line, 2)
