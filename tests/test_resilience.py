"""The fault matrix: :mod:`repro.resilience` + the hardened ExperimentRunner.

Every test here drives real executions (serial or a real process pool) under
a deterministic :class:`FaultPlan` and asserts the runner's contract: a
faulted sweep either completes every scenario with ``status="ok"`` and a
payload bit-identical to a fault-free run, or attributes the failure on the
:class:`ScenarioResult` -- it never aborts the sweep.
"""

from __future__ import annotations

import copy
import os
import pickle
import subprocess

import pytest

from repro.exceptions import EngineFailure, InvalidParameterError
from repro.experiments import (
    CacheIntegrityWarning,
    ExperimentRunner,
    GraphSpec,
    ResultCache,
    Scenario,
    payload_digest,
)
from repro.local_model import kernels
from repro.local_model.kernels import _c_backend
from repro.resilience import (
    DEGRADE_CHAIN,
    FAULT_PLAN_ENV,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    degrade_path,
    run_with_degradation,
)
from repro.resilience.faults import _LostKernelBackend


def scenario(tag: str, degree: int = 4, n: int = 32, engine: str = "batched") -> Scenario:
    return Scenario.make(
        name=f"res-{tag}-d{degree}-n{n}",
        graph=GraphSpec("random_regular", n=n, degree=degree, seed=7),
        algorithm="legal_coloring",
        params={"c": 2, "quality": "linear"},
        engine=engine,
    )


def sweep(count: int = 6) -> list:
    return [scenario(str(i), degree=4, n=24 + 4 * i) for i in range(count)]


def stable(payload: dict) -> dict:
    """A payload with its run-dependent wall clock stripped, for equality."""
    return {k: v for k, v in payload.items() if k != "wall_time"}


def fault_free(scenarios) -> list:
    """Reference payloads from a clean serial run (no cache, no faults)."""
    results = ExperimentRunner(cache_dir=None, max_workers=0).run(scenarios)
    assert all(r.ok for r in results)
    return [stable(r.payload) for r in results]


class TestFaultPlan:
    def test_seeded_plan_is_deterministic(self):
        kwargs = dict(
            num_scenarios=64, crash_rate=0.1, hang_rate=0.1, error_rate=0.2
        )
        assert FaultPlan.seeded(5, **kwargs) == FaultPlan.seeded(5, **kwargs)
        assert FaultPlan.seeded(5, **kwargs) != FaultPlan.seeded(6, **kwargs)

    def test_seeded_plan_covers_requested_kinds(self):
        plan = FaultPlan.seeded(
            1, num_scenarios=200, crash_rate=0.2, hang_rate=0.2, corrupt_rate=0.2
        )
        kinds = {spec.kind for spec in plan.specs}
        assert kinds == {"crash", "hang", "corrupt"}
        assert all(0 <= spec.index < 200 for spec in plan.specs)

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            FaultPlan.seeded(0, num_scenarios=4, crash_rate=0.7, hang_rate=0.7)

    def test_json_round_trip(self):
        plan = FaultPlan(
            (
                FaultSpec(index=0, kind="crash", attempts=2),
                FaultSpec(index=3, kind="hang", hang_seconds=1.5),
            )
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_spec_fires_only_below_its_attempt_budget(self):
        plan = FaultPlan((FaultSpec(index=2, kind="error", attempts=2),))
        assert plan.spec_for(2, 0) is not None
        assert plan.spec_for(2, 1) is not None
        assert plan.spec_for(2, 2) is None
        assert plan.spec_for(1, 0) is None

    def test_unknown_kind_and_bad_attempts_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(index=0, kind="meltdown")
        with pytest.raises(ValueError):
            FaultSpec(index=0, kind="crash", attempts=0)

    def test_injector_from_env_absent(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert FaultInjector.from_env() is None

    def test_in_process_crash_raises_instead_of_exiting(self):
        injector = FaultInjector(
            FaultPlan((FaultSpec(index=0, kind="crash"),)), allow_process_exit=False
        )
        with pytest.raises(InjectedFaultError):
            injector.fire_before_run(0, 0)

    def test_corrupt_mutates_payload_after_digest(self):
        injector = FaultInjector(FaultPlan((FaultSpec(index=0, kind="corrupt"),)))
        payload = {"rounds": 3, "coloring_digest": "a" * 64}
        digest = payload_digest(payload)
        assert injector.corrupt_payload(0, 0, payload)
        assert payload_digest(payload) != digest


class TestScenarioResultProtocol:
    """Regression: dunder probes must not be answered from the payload."""

    @pytest.fixture(scope="class")
    def result(self):
        (result,) = ExperimentRunner(cache_dir=None, max_workers=0).run(
            [scenario("proto", n=16)]
        )
        return result

    def test_payload_attributes_fall_through(self, result):
        assert result.rounds == result.payload["rounds"]
        with pytest.raises(AttributeError):
            result.no_such_payload_key

    def test_dunder_lookup_raises_attribute_error(self, result):
        with pytest.raises(AttributeError):
            result.__no_such_dunder__

    def test_pickle_round_trip(self, result):
        clone = pickle.loads(pickle.dumps(result))
        assert clone.payload == result.payload
        assert clone.status == "ok" and clone.ok

    def test_deepcopy(self, result):
        clone = copy.deepcopy(result)
        assert clone.payload == result.payload
        assert clone.scenario == result.scenario

    def test_failed_result_has_no_payload_attributes(self):
        from repro.experiments.runner import ScenarioResult

        failed = ScenarioResult(
            scenario=scenario("failed"),
            payload=None,
            cached=False,
            status="failed",
            error="InjectedFaultError: boom",
            attempts=3,
        )
        assert not failed.ok
        with pytest.raises(AttributeError):
            failed.rounds
        clone = pickle.loads(pickle.dumps(failed))
        assert clone.status == "failed" and clone.error == failed.error


class TestSerialResilience:
    def test_injected_errors_are_retried_to_identical_payloads(self, tmp_path):
        scenarios = sweep(4)
        reference = fault_free(scenarios)
        plan = FaultPlan(
            (
                FaultSpec(index=1, kind="error", attempts=1),
                FaultSpec(index=3, kind="error", attempts=2),
            )
        )
        runner = ExperimentRunner(
            cache_dir=tmp_path, max_workers=0, retries=2, fault_plan=plan
        )
        results = runner.run(scenarios)
        assert all(r.ok for r in results)
        assert [stable(r.payload) for r in results] == reference
        assert runner.last_stats.retries == 3
        assert results[1].attempts == 2 and results[3].attempts == 3

    def test_exhausted_retries_attribute_the_failure(self, tmp_path):
        scenarios = sweep(3)
        plan = FaultPlan((FaultSpec(index=1, kind="error", attempts=99),))
        runner = ExperimentRunner(
            cache_dir=tmp_path, max_workers=0, retries=1, fault_plan=plan
        )
        results = runner.run(scenarios)
        assert [r.status for r in results] == ["ok", "failed", "ok"]
        assert "InjectedFaultError" in results[1].error
        assert results[1].payload is None
        assert runner.last_stats.failures == 1
        # The failure is not cached: a healthy re-run recomputes it.
        healthy = ExperimentRunner(cache_dir=tmp_path, max_workers=0).run(scenarios)
        assert all(r.ok for r in healthy)
        assert [r.cached for r in healthy] == [True, False, True]

    def test_invalid_parameters_still_propagate(self, tmp_path):
        bad = Scenario.make(
            name="bad",
            graph=GraphSpec("random_regular", n=10, degree=3, seed=0),
            algorithm="no-such-algorithm",
        )
        runner = ExperimentRunner(cache_dir=tmp_path, max_workers=0, retries=5)
        with pytest.raises(InvalidParameterError):
            runner.run([bad])

    def test_write_through_checkpoints_each_scenario(self, tmp_path):
        """Killing the sweep after scenario k leaves k results on disk."""
        scenarios = sweep(4)
        runner = ExperimentRunner(cache_dir=tmp_path, max_workers=0)

        class Killed(Exception):
            pass

        def killer(done, total, s, cached):
            if done == 2:
                raise Killed()

        with pytest.raises(Killed):
            runner.run(scenarios, on_progress=killer)
        assert len(runner.cache) == 2

        # Resume: the two finished scenarios are honest cache hits; only the
        # unfinished two execute.
        resumed = ExperimentRunner(cache_dir=tmp_path, max_workers=0)
        results = resumed.run(scenarios)
        assert all(r.ok for r in results)
        assert [r.cached for r in results] == [True, True, False, False]
        assert resumed.last_stats.cache_hits == 2
        assert resumed.last_stats.fresh == 2


class TestPoolFaultMatrix:
    def test_acceptance_matrix_completes_bit_identical(self, tmp_path):
        """The ISSUE's acceptance scenario: crashes + hang + corruption.

        Two scenarios crash their workers, one hangs past the soft timeout,
        one returns a corrupted payload -- and the sweep still completes
        every scenario ``ok`` with payloads bit-identical to a fault-free
        run, with the retries/rebuilds visible in the stats.
        """
        scenarios = sweep(6)
        reference = fault_free(scenarios)
        plan = FaultPlan(
            (
                FaultSpec(index=0, kind="crash", attempts=1),
                FaultSpec(index=3, kind="crash", attempts=2),
                FaultSpec(index=1, kind="hang", attempts=1, hang_seconds=60.0),
                FaultSpec(index=4, kind="corrupt", attempts=1),
            )
        )
        runner = ExperimentRunner(
            cache_dir=tmp_path,
            max_workers=2,
            retries=3,
            timeout=5.0,
            fault_plan=plan,
        )
        results = runner.run(scenarios)
        assert [r.status for r in results] == ["ok"] * 6
        assert [stable(r.payload) for r in results] == reference
        assert runner.last_stats.retries > 0
        assert runner.last_stats.pool_rebuilds >= 1
        # No corrupted payload leaked through the integrity check.
        assert all("_injected_corruption" not in r.payload for r in results)
        # The fault plan env propagation cleaned up after itself.
        assert FAULT_PLAN_ENV not in os.environ

    def test_broken_pool_is_rebuilt_and_work_resubmitted(self, tmp_path):
        scenarios = sweep(4)
        plan = FaultPlan((FaultSpec(index=2, kind="crash", attempts=1),))
        runner = ExperimentRunner(
            cache_dir=tmp_path, max_workers=2, retries=3, fault_plan=plan
        )
        results = runner.run(scenarios)
        assert all(r.ok for r in results)
        assert runner.last_stats.pool_rebuilds >= 1
        assert runner.last_stats.retries >= 1

    def test_hang_trips_soft_timeout_then_retry_succeeds(self, tmp_path):
        scenarios = sweep(3)
        plan = FaultPlan(
            (FaultSpec(index=1, kind="hang", attempts=1, hang_seconds=60.0),)
        )
        runner = ExperimentRunner(
            cache_dir=tmp_path, max_workers=2, retries=2, timeout=1.0, fault_plan=plan
        )
        results = runner.run(scenarios)
        assert all(r.ok for r in results)
        assert runner.last_stats.timeouts >= 1
        assert runner.last_stats.pool_rebuilds >= 1

    def test_permanent_hang_is_attributed_as_timeout(self, tmp_path):
        scenarios = sweep(2)
        plan = FaultPlan(
            (FaultSpec(index=0, kind="hang", attempts=99, hang_seconds=60.0),)
        )
        runner = ExperimentRunner(
            cache_dir=tmp_path, max_workers=2, retries=1, timeout=1.0, fault_plan=plan
        )
        results = runner.run(scenarios)
        assert results[0].status == "failed"
        assert "soft timeout" in results[0].error
        assert results[1].ok

    def test_permanent_crasher_fails_alone_innocents_complete(self, tmp_path):
        scenarios = sweep(3)
        plan = FaultPlan((FaultSpec(index=0, kind="crash", attempts=99),))
        runner = ExperimentRunner(
            cache_dir=tmp_path, max_workers=2, retries=1, fault_plan=plan
        )
        results = runner.run(scenarios)
        assert results[0].status == "failed"
        assert "crashed" in results[0].error
        assert results[1].ok and results[2].ok

    def test_kill_and_resume_only_reruns_unfinished(self, tmp_path):
        """Checkpoint/resume across a hard sweep death (pool path)."""
        scenarios = sweep(5)

        class Killed(Exception):
            pass

        def killer(done, total, s, cached):
            if done == 3:
                raise Killed()

        runner = ExperimentRunner(cache_dir=tmp_path, max_workers=2)
        with pytest.raises(Killed):
            runner.run(scenarios, on_progress=killer)
        on_disk = len(runner.cache)
        assert on_disk >= 3  # write-through happened before the death

        resumed = ExperimentRunner(cache_dir=tmp_path, max_workers=2)
        results = resumed.run(scenarios)
        assert all(r.ok for r in results)
        assert resumed.last_stats.cache_hits == on_disk
        assert resumed.last_stats.fresh == len(scenarios) - on_disk


class TestCacheIntegrity:
    def test_tampered_payload_is_quarantined_and_recomputed(self, tmp_path):
        s = scenario("tamper", n=16)
        runner = ExperimentRunner(cache_dir=tmp_path, max_workers=0)
        runner.run([s])
        cache = runner.cache
        path = cache._path(s.cache_token())
        entry = path.read_text()
        path.write_text(entry.replace('"rounds": ', '"rounds": 99'))

        # The sweep quarantines the tampered entry, warns, and transparently
        # recomputes and repopulates it.
        rerun = ExperimentRunner(cache_dir=tmp_path, max_workers=0)
        with pytest.warns(CacheIntegrityWarning):
            (result,) = rerun.run([s])
        assert result.ok and not result.cached
        # The tampered file was moved aside (write-through then re-created a
        # good entry at the same path); the quarantined copy keeps its name.
        assert (rerun.cache.quarantine_root / path.name).exists()
        assert rerun.cache.quarantined == 1
        (again,) = ExperimentRunner(cache_dir=tmp_path, max_workers=0).run([s])
        assert again.cached

    def test_unparseable_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"k": 1}, {"rounds": 3})
        path = cache._path("ab" * 32)
        path.write_text("{not json")
        with pytest.warns(CacheIntegrityWarning):
            assert cache.get("ab" * 32) is None
        assert (cache.quarantine_root / path.name).exists()

    def test_warning_fires_once_per_instance(self, tmp_path):
        cache = ResultCache(tmp_path)
        for token in ("aa" * 32, "bb" * 32):
            cache.put(token, {"k": 1}, {"rounds": 3})
            cache._path(token).write_text("{not json")
        with pytest.warns(CacheIntegrityWarning):
            cache.get("aa" * 32)
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert cache.get("bb" * 32) is None  # no second warning
        assert cache.quarantined == 2

    def test_entries_carry_payload_digests(self, tmp_path):
        import json

        cache = ResultCache(tmp_path)
        payload = {"rounds": 5, "palette": 9}
        cache.put("cd" * 32, {"k": 2}, payload)
        entry = json.loads(cache._path("cd" * 32).read_text())
        assert entry["sha256"] == payload_digest(payload)

    def test_digest_mismatch_warning_names_both_digests(self, tmp_path):
        import json

        cache = ResultCache(tmp_path)
        token = "ee" * 32
        cache.put(token, {"k": 1}, {"rounds": 3})
        path = cache._path(token)
        entry = json.loads(path.read_text())
        entry["payload"]["rounds"] = 99  # tamper without updating sha256
        path.write_text(json.dumps(entry))
        stored = entry["sha256"]
        actual = payload_digest(entry["payload"])
        with pytest.warns(CacheIntegrityWarning) as caught:
            assert cache.get(token) is None
        message = str(caught[0].message)
        # Both digests appear, so multi-worker corruption is attributable.
        assert stored in message and actual in message

    def test_quarantine_is_capped_to_newest_entries(self, tmp_path):
        import warnings as _warnings

        cache = ResultCache(tmp_path, quarantine_keep=3)
        tokens = [f"{i:02x}" * 32 for i in range(8)]
        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore", CacheIntegrityWarning)
            for i, token in enumerate(tokens):
                cache.put(token, {"k": 1}, {"rounds": 3})
                path = cache._path(token)
                path.write_text("{not json")
                os.utime(path, (i, i))  # distinct mtimes, oldest first
                assert cache.get(token) is None
        kept = sorted(p.name for p in cache.quarantine_root.iterdir())
        assert len(kept) == 3
        # The newest three survived the pruning.
        assert kept == sorted(f"{token}.json" for token in tokens[-3:])
        assert cache.quarantined == 8

    def test_quarantine_keep_is_configurable_and_defaults(self, tmp_path):
        from repro.experiments import DEFAULT_QUARANTINE_KEEP

        assert ResultCache(tmp_path).quarantine_keep == DEFAULT_QUARANTINE_KEEP
        assert ResultCache(tmp_path, quarantine_keep=0).quarantine_keep == 0


class TestEngineDegradation:
    def test_degrade_path_is_a_chain_suffix(self):
        assert degrade_path("compiled") == DEGRADE_CHAIN
        assert degrade_path("vectorized") == ("vectorized", "batched", "reference")
        assert degrade_path("reference") == ("reference",)
        assert degrade_path("custom") == ("custom",)

    def test_run_with_degradation_walks_the_chain(self):
        calls = []

        def invoke(engine):
            calls.append(engine)
            if engine in ("compiled", "vectorized"):
                raise EngineFailure(f"{engine} is broken")
            return f"ran on {engine}"

        outcome = run_with_degradation(invoke, "compiled")
        assert outcome.result == "ran on batched"
        assert outcome.engine == "batched"
        assert outcome.degraded_from == ("compiled", "vectorized")
        assert calls == ["compiled", "vectorized", "batched"]

    def test_non_engine_failures_are_not_recoverable(self):
        def invoke(engine):
            raise ValueError("an algorithm bug, not infrastructure")

        with pytest.raises(ValueError):
            run_with_degradation(invoke, "compiled")

    def test_whole_chain_failing_raises_engine_failure(self):
        def invoke(engine):
            raise EngineFailure(f"{engine} down")

        with pytest.raises(EngineFailure) as excinfo:
            run_with_degradation(invoke, "vectorized")
        assert "reference" in str(excinfo.value)

    def test_lost_backend_degrades_scenario_to_next_engine(self, tmp_path):
        s = scenario("degrade", n=24, engine="compiled")
        reference = fault_free([s.with_engine("vectorized")])
        plan = FaultPlan((FaultSpec(index=0, kind="lose_backend", attempts=1),))
        runner = ExperimentRunner(
            cache_dir=tmp_path, max_workers=0, retries=0, fault_plan=plan
        )
        (result,) = runner.run([s])
        assert result.ok
        assert result.engine_used == "vectorized"
        assert result.degraded_from == ("compiled",)
        assert runner.last_stats.degraded == 1
        # Bit-identical engines: the degraded payload matches a healthy
        # vectorized run (the engine name is part of the scenario, not the
        # payload).
        assert stable(result.payload) == reference[0]

    def test_portfolio_surfaces_degradation(self):
        graph = GraphSpec("random_regular", n=24, degree=4, seed=3).build()
        from repro.portfolio import color_graph

        restore = kernels.force_backend(
            _LostKernelBackend(), reason="injected for test"
        )
        try:
            result = color_graph(graph, c=2, engine="compiled")
        finally:
            restore()
        assert result.decision.engine == "vectorized"
        assert result.decision.degraded_from == ("compiled",)
        assert "degraded" in result.decision.reasons["engine"]
        assert "compiled" in result.metrics.degraded_engine_names
        # The coloring is still a valid result (engines are bit-identical).
        healthy = color_graph(graph, c=2, engine="vectorized")
        assert result.colors == healthy.colors


class TestCompileHardening:
    def test_compile_timeout_env_parsing(self, monkeypatch):
        monkeypatch.delenv(_c_backend._COMPILE_TIMEOUT_ENV, raising=False)
        assert _c_backend._compile_timeout() == _c_backend._COMPILE_TIMEOUT_DEFAULT
        monkeypatch.setenv(_c_backend._COMPILE_TIMEOUT_ENV, "7.5")
        assert _c_backend._compile_timeout() == 7.5
        monkeypatch.setenv(_c_backend._COMPILE_TIMEOUT_ENV, "0.01")
        assert _c_backend._compile_timeout() == 1.0  # floor
        monkeypatch.setenv(_c_backend._COMPILE_TIMEOUT_ENV, "not-a-number")
        assert _c_backend._compile_timeout() == _c_backend._COMPILE_TIMEOUT_DEFAULT

    def test_failed_compile_is_memoized(self, tmp_path, monkeypatch):
        monkeypatch.setattr(_c_backend, "_build_dir", lambda: tmp_path)
        calls = []

        def hanging_run(command, **kwargs):
            calls.append(command)
            raise subprocess.TimeoutExpired(cmd=command, timeout=kwargs["timeout"])

        monkeypatch.setattr(_c_backend.subprocess, "run", hanging_run)
        assert _c_backend._compile(_c_backend._SOURCE, "cc", use_openmp=False) is None
        assert len(calls) == 1
        memos = list(tmp_path.glob("*.failed"))
        assert len(memos) == 1
        assert "TimeoutExpired" in memos[0].read_text()
        # Second attempt consults the memo: the compiler is not re-invoked.
        assert _c_backend._compile(_c_backend._SOURCE, "cc", use_openmp=False) is None
        assert len(calls) == 1
        # Removing the memo retries the build.
        memos[0].unlink()
        assert _c_backend._compile(_c_backend._SOURCE, "cc", use_openmp=False) is None
        assert len(calls) == 2
