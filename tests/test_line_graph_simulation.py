"""Unit tests for the Lemma 5.2 simulation layer and the utility phases."""

from __future__ import annotations


from repro import graphs
from repro.local_model import Scheduler
from repro.local_model.line_graph_sim import simulate_on_line_graph
from repro.primitives.linial import LinialColoringPhase
from repro.primitives.util_phases import ConstantColorPhase, CopyKeyPhase, TransformKeyPhase
from repro.verification.coloring import assert_legal_vertex_coloring


class TestSimulateOnLineGraph:
    def test_outputs_keyed_by_canonical_edges(self, small_regular):
        phase = LinialColoringPhase(
            degree_bound=2 * small_regular.max_degree,
            initial_palette=small_regular.num_edges,
            output_key="color",
        )
        result = simulate_on_line_graph(small_regular, phase)
        assert set(result.edge_states.keys()) == set(result.line_network.nodes())
        assert len(result.edge_states) == small_regular.num_edges

    def test_round_accounting_doubles_plus_setup(self):
        network = graphs.random_regular(40, 4, seed=1)
        phase = LinialColoringPhase(
            degree_bound=2 * network.max_degree,
            initial_palette=network.num_edges,
            output_key="color",
        )
        result = simulate_on_line_graph(network, phase)
        assert result.metrics.rounds == 2 * result.line_graph_metrics.rounds + 1

    def test_message_size_scaled_by_degree(self):
        network = graphs.random_regular(40, 4, seed=1)
        phase = LinialColoringPhase(
            degree_bound=2 * network.max_degree,
            initial_palette=network.num_edges,
            output_key="color",
        )
        result = simulate_on_line_graph(network, phase)
        if result.line_graph_metrics.max_message_words:
            assert (
                result.metrics.max_message_words
                == result.line_graph_metrics.max_message_words * network.max_degree
            )

    def test_simulated_coloring_is_legal_on_the_line_graph(self, small_regular):
        phase = LinialColoringPhase(
            degree_bound=2 * small_regular.max_degree,
            initial_palette=small_regular.num_edges,
            output_key="color",
        )
        result = simulate_on_line_graph(small_regular, phase)
        colors = {edge: state["color"] for edge, state in result.edge_states.items()}
        assert_legal_vertex_coloring(result.line_network, colors)


class TestUtilityPhases:
    def test_copy_key_phase(self, triangle):
        result = Scheduler(triangle).run(
            CopyKeyPhase("a", "b"),
            initial_states={node: {"a": triangle.unique_id(node)} for node in triangle.nodes()},
        )
        assert result.extract("b") == {node: triangle.unique_id(node) for node in triangle.nodes()}
        assert result.metrics.rounds == 0

    def test_constant_color_phase(self, triangle):
        result = Scheduler(triangle).run(ConstantColorPhase("c", color=7))
        assert set(result.extract("c").values()) == {7}

    def test_transform_key_phase_uses_local_view(self, triangle):
        phase = TransformKeyPhase(
            "a", "b", lambda view, value: value + view.unique_id, name="shift"
        )
        result = Scheduler(triangle).run(
            phase, initial_states={node: {"a": 10} for node in triangle.nodes()}
        )
        for node, value in result.extract("b").items():
            assert value == 10 + triangle.unique_id(node)
