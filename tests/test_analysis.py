"""Unit tests for the analytic complexity curves and report formatting."""

from __future__ import annotations

from repro.analysis.complexity import (
    colors_new_linear,
    colors_new_superlinear,
    colors_panconesi_rizzi,
    rounds_be10_linear,
    rounds_be10_superlinear,
    rounds_new_linear,
    rounds_new_superlinear,
    rounds_panconesi_rizzi,
    rounds_schneider_wattenhofer,
)
from repro.analysis.reporting import Series, crossover_point, format_table
from repro.primitives.numbers import log_star


class TestComplexityCurves:
    def test_new_superlinear_beats_pr_for_moderate_delta(self):
        # The paper's headline: exponential improvement over O(Delta) once
        # Delta = omega(log* n).
        n = 4096
        for delta in (16, 64, 256):
            assert rounds_new_superlinear(delta, n) < rounds_panconesi_rizzi(delta, n)

    def test_new_beats_be10_when_delta_polylogarithmic(self):
        n = 2**20
        delta = 64  # polylog(n)
        assert rounds_new_superlinear(delta, n) < rounds_be10_superlinear(delta, n)
        assert rounds_new_linear(delta, n) < rounds_be10_linear(delta, n)

    def test_pr_wins_at_tiny_delta(self):
        # For Delta = O(log* n) the additive log* n terms dominate and the
        # baseline is as good as the new algorithm -- Table 1's left boundary.
        n = 4096
        delta = 2
        assert rounds_panconesi_rizzi(delta, n) <= rounds_new_linear(delta, n) + delta

    def test_randomized_baseline_comparison_matches_table_2(self):
        # For Delta <= log^{1-delta} n, the new deterministic bound
        # log Delta + log* n is below sqrt(log n) once Delta is small enough.
        n = 2**64
        delta = 8
        assert rounds_new_superlinear(delta, n) < (
            rounds_schneider_wattenhofer(delta, n) + log_star(n)
        )

    def test_color_curves(self):
        assert colors_panconesi_rizzi(10) == 19
        assert colors_new_linear(10) >= 10
        assert colors_new_superlinear(10, eta=0.5) > 10
        assert colors_panconesi_rizzi(0) == 1

    def test_curves_are_monotone_in_delta(self):
        n = 4096
        for curve in (rounds_panconesi_rizzi, rounds_new_linear, rounds_new_superlinear):
            values = [curve(delta, n) for delta in (2, 8, 32, 128)]
            assert values == sorted(values)


class TestReporting:
    def test_format_table_alignment_and_title(self):
        table = format_table(
            ["Delta", "rounds"],
            [[4, 10], [8, 20.5]],
            title="Example",
        )
        lines = table.splitlines()
        assert lines[0] == "Example"
        assert "Delta" in lines[1] and "rounds" in lines[1]
        assert "20.50" in lines[-1]
        # All data lines share the same width.
        assert len(set(len(line) for line in lines[2:])) <= 2

    def test_series_accumulates(self):
        series = Series("measured")
        series.add(2, 10)
        series.add(4, 12)
        assert series.as_rows() == [(2.0, 10.0), (4.0, 12.0)]

    def test_crossover_point_found(self):
        new = Series("new")
        base = Series("baseline")
        for delta in (2, 4, 8, 16):
            new.add(delta, 10)           # flat
            base.add(delta, delta)       # linear
        assert crossover_point(new, base) == 16

    def test_crossover_point_absent(self):
        new = Series("new")
        base = Series("baseline")
        for delta in (2, 4):
            new.add(delta, 100)
            base.add(delta, 1)
        assert crossover_point(new, base) is None
