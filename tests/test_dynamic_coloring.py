"""Differential tests for the dynamic recoloring layer (:mod:`repro.dynamic`).

The central contract: after *every* update batch, a ``strategy="incremental"``
session and a ``strategy="recompute"`` session that received the identical
batches

* hold the identical patched CSR (the delta-merge patch equals a from-scratch
  rebuild of the same edge set),
* both pass :func:`assert_legal_vertex_coloring`, and
* the incremental session's palette bound never exceeds the recompute
  session's (both are monotone running maxima, and each incremental repair
  stays within ``Delta + 1`` while every from-scratch run's palette is at
  least ``Delta + 1``).

Churn schedules are hypothesis-driven: insert/delete/mixed batches with
duplicate edges, insertions of already-present edges, removals of absent
edges, and empty batches -- on grid, random-regular and Barabasi-Albert
bases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.dynamic import DynamicColoring, UpdateReport
from repro.exceptions import InvalidParameterError
from repro.local_model.fast_network import FastNetwork
from repro.verification import assert_legal_vertex_coloring

QUICK_PROPERTY = settings(
    max_examples=15, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

#: (name, base-graph maker, neighborhood-independence bound c).
BASE_GRAPHS = [
    ("grid", lambda: graphs.grid_graph(4, 5, backend="fast"), 2),
    ("regular", lambda: graphs.random_regular(24, 4, seed=3, backend="fast"), 4),
    ("ba", lambda: graphs.barabasi_albert(20, 3, seed=5, backend="fast"), 4),
]


def churn_step(n: int):
    """One (added, removed) batch: loop-free pairs, duplicates allowed."""
    pair = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    ).filter(lambda p: p[0] != p[1])
    return st.tuples(st.lists(pair, max_size=8), st.lists(pair, max_size=8))


def canonical_edge_set(fast: FastNetwork) -> set:
    rows, cols = fast.rows_np, fast.indices_np
    forward = rows < cols
    return set(zip(rows[forward].tolist(), cols[forward].tolist()))


class TestDifferentialChurn:
    @pytest.mark.parametrize("name,maker,c", BASE_GRAPHS)
    @QUICK_PROPERTY
    @given(data=st.data())
    def test_incremental_matches_recompute_every_step(self, name, maker, c, data):
        base = maker()
        n = base.num_nodes
        incremental = DynamicColoring(base, c=c, engine="vectorized")
        recompute = DynamicColoring(
            base, c=c, strategy="recompute", engine="vectorized"
        )
        assert incremental.palette_bound == recompute.palette_bound
        steps = data.draw(st.lists(churn_step(n), min_size=1, max_size=4))
        for added, removed in steps:
            inc_report = incremental.apply_updates(added=added, removed=removed)
            rec_report = recompute.apply_updates(added=added, removed=removed)
            # The patch is strategy-independent: identical CSR either way.
            assert list(incremental.network.indptr) == list(recompute.network.indptr)
            assert list(incremental.network.indices) == list(recompute.network.indices)
            assert inc_report.edges_added == rec_report.edges_added
            assert inc_report.edges_removed == rec_report.edges_removed
            # Both stay legal, and within their own palette bound.
            incremental.verify()
            recompute.verify()
            for session in (incremental, recompute):
                if session.network.num_nodes:
                    assert int(session.color_column.max()) <= session.palette_bound
            assert incremental.palette_bound <= recompute.palette_bound

    @pytest.mark.parametrize("name,maker,c", BASE_GRAPHS)
    @QUICK_PROPERTY
    @given(data=st.data())
    def test_patch_equals_rebuild_from_scratch(self, name, maker, c, data):
        """The delta-merge CSR equals a from-scratch build of the edge set."""
        base = maker()
        n = base.num_nodes
        session = DynamicColoring(base, c=c, engine="vectorized")
        edges = canonical_edge_set(base)
        steps = data.draw(st.lists(churn_step(n), min_size=1, max_size=3))
        for added, removed in steps:
            report = session.apply_updates(added=added, removed=removed)
            for u, v in removed:
                edges.discard((min(u, v), max(u, v)))
            for u, v in added:
                edges.add((min(u, v), max(u, v)))
            assert canonical_edge_set(session.network) == edges
            assert session.network.num_edges == len(edges)
            if edges:
                rebuilt = FastNetwork.from_edge_array(
                    np.array([e[0] for e in sorted(edges)], dtype=np.int64),
                    np.array([e[1] for e in sorted(edges)], dtype=np.int64),
                    num_nodes=n,
                )
                assert list(session.network.indptr) == list(rebuilt.indptr)
                assert list(session.network.indices) == list(rebuilt.indices)
            assert isinstance(report, UpdateReport)


class TestBatchSemantics:
    def _session(self, **kwargs):
        base = graphs.grid_graph(3, 4, backend="fast")
        return DynamicColoring(base, c=2, engine="vectorized", **kwargs)

    def test_empty_and_none_batches_are_noops(self):
        session = self._session()
        before = session.color_column
        for added, removed in [(None, None), ([], []), (np.zeros((0, 2)), None)]:
            report = session.apply_updates(added=added, removed=removed)
            assert report.edges_added == report.edges_removed == 0
            assert report.conflicts == report.repaired_nodes == 0
            assert (session.color_column == before).all()

    def test_duplicate_and_present_edges_count_once(self):
        session = self._session()
        # (0, 1) is a grid edge already; (0, 5) twice counts once.
        report = session.apply_updates(added=[(0, 1), (0, 5), (5, 0), (0, 5)])
        assert report.edges_added == 1
        session.verify()

    def test_removing_absent_edges_is_a_noop(self):
        session = self._session()
        edges_before = session.network.num_edges
        report = session.apply_updates(removed=[(0, 11), (11, 0), (2, 9)])
        assert report.edges_removed == 0
        assert session.network.num_edges == edges_before

    def test_remove_then_readd_in_one_batch(self):
        # Removals apply before insertions: the edge survives the batch.
        session = self._session()
        edges_before = session.network.num_edges
        report = session.apply_updates(added=[(0, 1)], removed=[(0, 1)])
        assert report.edges_removed == 1
        assert report.edges_added == 1
        assert session.network.num_edges == edges_before
        session.verify()

    def test_batch_shapes_accepted(self):
        session = self._session()
        session.apply_updates(added=np.array([[0, 5], [1, 6]], dtype=np.int64))
        session.apply_updates(
            added=(np.array([0, 1], dtype=np.int64), np.array([7, 8], dtype=np.int64))
        )
        session.apply_updates(added=[(2, 9)])
        session.verify()

    def test_self_loops_and_out_of_range_rejected(self):
        session = self._session()
        with pytest.raises(InvalidParameterError, match="self-loop"):
            session.apply_updates(added=[(3, 3)])
        with pytest.raises(InvalidParameterError):
            session.apply_updates(added=[(0, 99)])
        with pytest.raises(InvalidParameterError, match="shape"):
            session.apply_updates(added=np.zeros((2, 3), dtype=np.int64))
        with pytest.raises(InvalidParameterError, match="disagree"):
            session.apply_updates(added=(np.array([0]), np.array([1, 2])))

    def test_invalid_session_parameters_rejected(self):
        base = graphs.grid_graph(3, 3, backend="fast")
        with pytest.raises(InvalidParameterError, match="strategy"):
            DynamicColoring(base, c=2, strategy="lazy")
        with pytest.raises(InvalidParameterError, match="ball_radius"):
            DynamicColoring(base, c=2, ball_radius=-1)


class TestSessionBehavior:
    def _schedule(self, session, seed=4, steps=5, batch=6):
        rng = np.random.default_rng(seed)
        n = session.network.num_nodes
        for _ in range(steps):
            add_u = rng.integers(0, n, size=batch)
            add_v = rng.integers(0, n, size=batch)
            loopless = add_u != add_v
            fast = session.network
            forward = fast.rows_np < fast.indices_np
            edge_u, edge_v = fast.rows_np[forward], fast.indices_np[forward]
            pick = rng.integers(0, len(edge_u), size=batch // 2)
            session.apply_updates(
                added=(add_u[loopless], add_v[loopless]),
                removed=(edge_u[pick], edge_v[pick]),
            )
            session.verify()

    def test_deterministic_replay(self):
        columns = []
        for _ in range(2):
            session = DynamicColoring(
                graphs.random_regular(32, 4, seed=7, backend="fast"),
                c=4,
                engine="vectorized",
            )
            self._schedule(session)
            columns.append(session.color_column)
        assert (columns[0] == columns[1]).all()

    def test_engines_agree_on_the_full_session(self):
        columns = {}
        metrics = {}
        for engine in ("reference", "batched", "vectorized"):
            session = DynamicColoring(
                graphs.random_regular(24, 4, seed=2, backend="fast"),
                c=4,
                engine=engine,
            )
            self._schedule(session, seed=9)
            columns[engine] = session.color_column
            metrics[engine] = session.metrics.summary()
        assert (columns["reference"] == columns["batched"]).all()
        assert (columns["reference"] == columns["vectorized"]).all()
        assert metrics["reference"] == metrics["vectorized"]

    def test_vectorized_repairs_never_fall_back(self):
        session = DynamicColoring(
            graphs.random_regular(48, 6, seed=1, backend="fast"),
            c=6,
            engine="vectorized",
        )
        self._schedule(session, seed=3, steps=6, batch=10)
        assert any(r.conflicts for r in session.reports), "schedule never conflicted"
        assert session.fallback_phase_names == []

    def test_reports_and_accessors(self):
        base = graphs.grid_graph(4, 4, backend="fast")
        session = DynamicColoring(base, c=2, engine="vectorized")
        report = session.apply_updates(added=[(0, 15)])
        assert session.reports == [report]
        assert report.step == 1
        assert report.strategy == "incremental"
        column = session.color_column
        column[:] = -1  # a copy: mutating it must not corrupt the session
        session.verify()
        colors = session.colors
        assert set(colors) == set(session.network.order)
        assert all(1 <= color <= session.palette_bound for color in colors.values())

    def test_wider_ball_radius_stays_legal(self):
        session = DynamicColoring(
            graphs.random_regular(24, 4, seed=5, backend="fast"),
            c=4,
            engine="vectorized",
            ball_radius=2,
        )
        self._schedule(session, seed=6, steps=4)
        session.verify()

    def test_legacy_network_input_is_accepted(self):
        legacy = graphs.grid_graph(3, 4, backend="legacy")
        session = DynamicColoring(legacy, c=2)
        session.apply_updates(added=[(0, 7)])
        session.verify()

    def test_palette_bound_is_monotone(self):
        session = DynamicColoring(
            graphs.random_regular(20, 4, seed=8, backend="fast"),
            c=4,
            engine="vectorized",
        )
        bounds = [session.palette_bound]
        self._schedule(session, seed=12, steps=5)
        bounds.extend(r.palette_bound for r in session.reports)
        assert bounds == sorted(bounds)
