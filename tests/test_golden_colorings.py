"""Golden regression tests: seeded outputs are frozen under ``tests/data/``.

Every fixture in :mod:`make_goldens` is executed on *all four* engines and
compared -- full coloring, palette, round count, message count, bandwidth --
against its committed golden file.  A mismatch means an (intentional or not)
behavior change: if intentional, regenerate with
``PYTHONPATH=src python tests/make_goldens.py`` and review the diff.
"""

from __future__ import annotations

import json

import pytest

from make_goldens import FIXTURES, compute_fixture, golden_path

#: Fields compared one by one for a readable failure before the full diff.
SUMMARY_FIELDS = (
    "num_nodes",
    "num_edges",
    "palette",
    "colors_used",
    "rounds",
    "messages",
    "total_words",
    "max_message_words",
)


@pytest.mark.parametrize("name", sorted(FIXTURES))
@pytest.mark.parametrize(
    "engine", ["reference", "batched", "vectorized", "compiled"]
)
def test_golden_coloring(name, engine):
    path = golden_path(name)
    assert path.exists(), (
        f"missing golden file {path}; generate with "
        "'PYTHONPATH=src python tests/make_goldens.py'"
    )
    golden = json.loads(path.read_text())
    actual = compute_fixture(name, engine=engine)

    for field in SUMMARY_FIELDS:
        assert actual[field] == golden[field], (
            f"{name} [{engine}]: {field} changed "
            f"({golden[field]} -> {actual[field]})"
        )
    assert actual["coloring"] == golden["coloring"], (
        f"{name} [{engine}]: the coloring itself changed; if intentional, "
        "regenerate the goldens and review the diff"
    )
    assert actual == golden


def test_goldens_cover_every_fixture():
    for name in FIXTURES:
        assert golden_path(name).exists()
