"""Unit tests for the Legal-Color parameter presets."""

from __future__ import annotations

import pytest

from repro.core.parameters import (
    LegalColorParameters,
    implied_color_exponent,
    params_for_few_rounds,
    params_for_linear_colors,
    params_for_subpolynomial_rounds,
)
from repro.exceptions import InvalidParameterError


class TestLinearColorsPreset:
    def test_constraints_hold_when_recursion_runs(self):
        for delta in (64, 256, 1024, 4096):
            params = params_for_linear_colors(delta, c=2, epsilon=0.75)
            if delta > params.threshold:
                assert params.b * params.p <= delta
                assert params.p > 4  # > 2c for c = 2
            params.validate(delta, c=2)

    def test_scaling_with_delta(self):
        small = params_for_linear_colors(64, c=2)
        large = params_for_linear_colors(4096, c=2)
        assert large.p >= small.p
        assert large.threshold >= small.threshold

    def test_threshold_grows_like_delta_to_epsilon(self):
        params = params_for_linear_colors(2**12, c=2, epsilon=0.5)
        assert params.threshold >= 2**6
        assert params.threshold <= 2**9

    def test_invalid_epsilon(self):
        with pytest.raises(InvalidParameterError):
            params_for_linear_colors(100, c=2, epsilon=0.0)
        with pytest.raises(InvalidParameterError):
            params_for_linear_colors(100, c=2, epsilon=1.5)

    def test_invalid_c(self):
        with pytest.raises(InvalidParameterError):
            params_for_linear_colors(100, c=0)


class TestFewRoundsPreset:
    def test_parameters_are_delta_independent(self):
        first = params_for_few_rounds(100, c=2)
        second = params_for_few_rounds(100_000, c=2)
        assert (first.b, first.p, first.threshold) == (second.b, second.p, second.threshold)

    def test_p_exceeds_independence_requirement(self):
        for c in (1, 2, 3, 4):
            params = params_for_few_rounds(10_000, c=c)
            assert params.p > 4 * c

    def test_validation_passes_for_large_delta(self):
        params = params_for_few_rounds(10_000, c=2)
        params.validate(10_000, c=2)

    def test_explicit_p_and_b(self):
        params = params_for_few_rounds(1000, c=2, p=27, b=3)
        assert params.p == 27
        assert params.b == 3


class TestSubpolynomialPreset:
    def test_threshold_polylogarithmic(self):
        params = params_for_subpolynomial_rounds(2**20, c=2, eta=0.5)
        assert params.threshold <= 64

    def test_validation(self):
        params = params_for_subpolynomial_rounds(2**16, c=2)
        params.validate(2**16, c=2)

    def test_invalid_eta(self):
        with pytest.raises(InvalidParameterError):
            params_for_subpolynomial_rounds(100, c=2, eta=0)


class TestValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(InvalidParameterError):
            LegalColorParameters(b=0, p=4, threshold=4, description="x").validate(100, 2)
        with pytest.raises(InvalidParameterError):
            LegalColorParameters(b=1, p=200, threshold=4, description="x").validate(100, 2)
        with pytest.raises(InvalidParameterError):
            LegalColorParameters(b=1, p=3, threshold=4, description="x").validate(100, 2)

    def test_small_delta_skips_recursion_constraints(self):
        # Below the threshold the recursion never runs, so even "invalid"
        # b/p combinations are acceptable.
        LegalColorParameters(b=1, p=3, threshold=500, description="x").validate(100, 2)


class TestImpliedExponent:
    def test_linear_preset_has_finite_exponent(self):
        # The generic per-level estimate is pessimistic for the linear preset
        # (its O(Delta) palette comes from the Lemma 4.4 telescoping, not from
        # this formula), but the recursion must at least be shrinking.
        params = params_for_linear_colors(4096, c=2, epsilon=0.75)
        exponent = implied_color_exponent(params, c=2)
        assert exponent != float("inf")
        assert exponent < 3.0

    def test_larger_p_means_smaller_exponent(self):
        small_p = params_for_few_rounds(10**6, c=2, p=9, b=2)
        large_p = params_for_few_rounds(10**6, c=2, p=81, b=2)
        assert implied_color_exponent(large_p, 2) < implied_color_exponent(small_p, 2)

    def test_non_shrinking_parameters_report_infinity(self):
        params = LegalColorParameters(b=1, p=2, threshold=5, description="x")
        assert implied_color_exponent(params, c=2) == float("inf")
