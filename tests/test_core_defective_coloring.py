"""Unit tests for Procedure Defective-Color (Algorithm 1, Theorem 3.7)."""

from __future__ import annotations

import pytest

from repro import graphs
from repro.exceptions import InvalidParameterError
from repro.graphs.line_graph import line_graph_network
from repro.core.defective_coloring import (
    defective_color_pipeline,
    run_defective_color,
)
from repro.verification.bounds import theorem_3_7_defect_bound
from repro.verification.coloring import coloring_defect, max_color


class TestParameterValidation:
    def test_b_times_p_must_not_exceed_lambda(self):
        with pytest.raises(InvalidParameterError):
            defective_color_pipeline(n=10, b=3, p=4, Lambda=10, c=2)

    def test_positive_parameters_required(self):
        with pytest.raises(InvalidParameterError):
            defective_color_pipeline(n=10, b=0, p=2, Lambda=10, c=2)
        with pytest.raises(InvalidParameterError):
            defective_color_pipeline(n=10, b=1, p=0, Lambda=10, c=2)
        with pytest.raises(InvalidParameterError):
            defective_color_pipeline(n=10, b=1, p=2, Lambda=0, c=2)
        with pytest.raises(InvalidParameterError):
            defective_color_pipeline(n=10, b=1, p=2, Lambda=10, c=0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(InvalidParameterError):
            defective_color_pipeline(n=10, b=1, p=2, Lambda=10, c=2, mode="quantum")


class TestVertexMode:
    @pytest.mark.parametrize("p", [2, 3, 5])
    def test_theorem_3_7_on_line_graphs(self, p):
        base = graphs.random_regular(36, 6, seed=3)
        line = line_graph_network(base)
        Lambda = line.max_degree
        b = max(1, Lambda // (2 * p))
        colors, info, metrics = run_defective_color(line, b=b, p=p, c=2)
        assert set(colors.values()) <= set(range(1, p + 1))
        measured = coloring_defect(line, colors)
        assert measured <= info.psi_defect_bound
        assert info.psi_defect_bound == theorem_3_7_defect_bound(Lambda, b, p, 2)

    def test_defect_times_colors_linear_in_delta(self):
        # The headline of Section 3: defect * colors = O(Delta) for bounded
        # neighborhood independence, versus O(Delta * p) previously.
        base = graphs.random_regular(40, 8, seed=2)
        line = line_graph_network(base)
        Lambda = line.max_degree
        p = 4
        b = max(1, Lambda // (2 * p))
        _, info, _ = run_defective_color(line, b=b, p=p, c=2)
        assert info.psi_defect_bound * p <= 12 * Lambda + 12

    def test_fig1_graph_defective_coloring(self, fig1_graph):
        colors, info, _ = run_defective_color(fig1_graph, b=1, p=3, c=2)
        assert coloring_defect(fig1_graph, colors) <= info.psi_defect_bound
        assert max_color(colors) <= 3

    def test_hypergraph_line_graph_with_larger_c(self):
        from repro.graphs.hypergraphs import hypergraph_line_graph, random_r_hypergraph

        hypergraph = random_r_hypergraph(num_vertices=18, num_edges=40, rank=3, seed=6)
        line = hypergraph_line_graph(hypergraph)
        Lambda = max(1, line.max_degree)
        p = 3
        b = max(1, Lambda // (2 * p))
        if b * p > Lambda:
            pytest.skip("degree too small for these parameters")
        colors, info, _ = run_defective_color(line, b=b, p=p, c=3)
        assert coloring_defect(line, colors) <= info.psi_defect_bound

    def test_p_equal_one_gives_single_class(self, small_regular):
        colors, info, _ = run_defective_color(small_regular, b=1, p=1, c=2)
        assert set(colors.values()) == {1}
        assert info.psi_defect_bound >= small_regular.max_degree

    def test_rounds_dominated_by_phi_palette(self):
        base = graphs.random_regular(30, 6, seed=4)
        line = line_graph_network(base)
        p = 3
        b = 1
        colors, info, metrics = run_defective_color(line, b=b, p=p, c=2)
        # log* n rounds for the base coloring plus at most phi_palette + a few
        # rounds for the recoloring loop.
        assert metrics.rounds <= info.phi_palette + 16


class TestEdgeMode:
    def test_edge_mode_on_line_graph_network(self):
        base = graphs.random_regular(24, 4, seed=8)
        line = line_graph_network(base)
        Lambda = max(1, line.max_degree)
        p = 3
        b = max(1, Lambda // (3 * p))
        colors, info, metrics = run_defective_color(line, b=b, p=p, c=2, mode="edge")
        assert set(colors.values()) <= set(range(1, p + 1))
        assert coloring_defect(line, colors) <= info.psi_defect_bound
        # Corollary 5.4 replaces the log* n base coloring, so the round count
        # is tiny: one round for the labels plus the recoloring loop.
        assert metrics.rounds <= info.phi_palette + 8

    def test_edge_mode_requires_edge_tuple_ids(self, small_regular):
        with pytest.raises(InvalidParameterError):
            run_defective_color(small_regular, b=1, p=2, c=2, mode="edge")


class TestInfoObject:
    def test_info_fields_are_consistent(self):
        pipeline, info = defective_color_pipeline(n=100, b=2, p=4, Lambda=32, c=2)
        assert info.p == 4
        assert info.output_key == "psi_color"
        assert info.phi_defect_bound == 32 // 8
        assert info.psi_defect_bound == 2 * (32 // 8 + 32 // 4 + 1)
        assert len(pipeline.phases) >= 2
