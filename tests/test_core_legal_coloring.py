"""Unit tests for Procedure Legal-Color (Algorithm 2, Theorems 4.5-4.8)."""

from __future__ import annotations

import pytest

from repro import graphs
from repro.core.legal_coloring import color_vertices, run_legal_coloring
from repro.core.parameters import params_for_few_rounds, params_for_linear_colors
from repro.exceptions import InvalidParameterError
from repro.graphs.line_graph import line_graph_network
from repro.verification.coloring import assert_legal_vertex_coloring, max_color


class TestQualityPresets:
    @pytest.mark.parametrize("quality", ["linear", "superlinear", "subpolynomial"])
    def test_legal_coloring_on_fig1_graph(self, quality):
        network = graphs.clique_with_pendants(12)
        result = color_vertices(network, c=2, quality=quality)
        assert_legal_vertex_coloring(network, result.colors)
        assert max_color(result.colors) <= result.palette

    @pytest.mark.parametrize("quality", ["linear", "superlinear"])
    def test_legal_coloring_on_line_graph(self, quality):
        base = graphs.random_regular(30, 6, seed=1)
        line = line_graph_network(base)
        result = color_vertices(line, c=2, quality=quality)
        assert_legal_vertex_coloring(line, result.colors)
        assert max_color(result.colors) <= result.palette

    def test_unknown_quality_rejected(self, fig1_graph):
        with pytest.raises(InvalidParameterError):
            color_vertices(fig1_graph, c=2, quality="perfect")

    def test_claw_free_graph(self):
        # Line graphs are claw-free; reuse one as a claw-free workload.
        base = graphs.erdos_renyi(24, 0.25, seed=5)
        line = line_graph_network(base)
        result = color_vertices(line, c=2, quality="superlinear")
        assert_legal_vertex_coloring(line, result.colors)

    def test_hypergraph_line_graph_with_c_three(self):
        from repro.graphs.hypergraphs import hypergraph_line_graph, random_r_hypergraph

        hypergraph = random_r_hypergraph(num_vertices=20, num_edges=45, rank=3, seed=2)
        line = hypergraph_line_graph(hypergraph)
        result = color_vertices(line, c=3, quality="superlinear")
        assert_legal_vertex_coloring(line, result.colors)


class TestRecursionBehaviour:
    def test_recursion_runs_on_large_degree_line_graph(self):
        base = graphs.random_regular(48, 14, seed=3)
        line = line_graph_network(base)
        params = params_for_few_rounds(line.max_degree, c=2)
        result = run_legal_coloring(line, params, c=2)
        assert result.num_levels >= 1
        assert_legal_vertex_coloring(line, result.colors)

    def test_level_trace_is_consistent(self):
        base = graphs.random_regular(48, 10, seed=3)
        line = line_graph_network(base)
        params = params_for_few_rounds(line.max_degree, c=2)
        result = run_legal_coloring(line, params, c=2)
        previous_bound = None
        for trace in result.levels:
            # Theorem 3.7 must hold at every level: the measured subgraph
            # degree never exceeds the declared degree bound.
            assert trace.max_subgraph_degree <= trace.degree_bound
            assert trace.next_degree_bound >= 1
            assert 1 <= trace.num_subgraphs <= params.p ** (trace.level + 1)
            if previous_bound is not None:
                assert trace.degree_bound <= previous_bound
            previous_bound = trace.next_degree_bound
        assert result.bottom_degree_bound <= max(
            params.threshold,
            result.levels[-1].next_degree_bound if result.levels else params.threshold,
        )

    def test_palette_accounting_matches_figure_3(self):
        base = graphs.random_regular(48, 10, seed=3)
        line = line_graph_network(base)
        params = params_for_few_rounds(line.max_degree, c=2)
        result = run_legal_coloring(line, params, c=2)
        expected = (result.bottom_degree_bound + 1) * params.p ** result.num_levels
        assert result.palette == expected
        assert max_color(result.colors) <= result.palette

    def test_small_graph_goes_straight_to_bottom(self, triangle):
        params = params_for_few_rounds(2, c=2)
        result = run_legal_coloring(triangle, params, c=2)
        assert result.num_levels == 0
        assert_legal_vertex_coloring(triangle, result.colors)
        assert result.palette <= params.threshold + 1

    def test_degree_bound_below_actual_degree_rejected(self, fig1_graph):
        params = params_for_few_rounds(fig1_graph.max_degree, c=2)
        with pytest.raises(InvalidParameterError):
            run_legal_coloring(fig1_graph, params, c=2, degree_bound=1)

    def test_invalid_c_rejected(self, fig1_graph):
        params = params_for_few_rounds(fig1_graph.max_degree, c=2)
        with pytest.raises(InvalidParameterError):
            run_legal_coloring(fig1_graph, params, c=0)

    def test_auxiliary_coloring_reduces_rounds(self):
        base = graphs.random_regular(60, 8, seed=4)
        line = line_graph_network(base)
        params = params_for_few_rounds(line.max_degree, c=2)
        with_aux = run_legal_coloring(line, params, c=2, use_auxiliary_coloring=True)
        without_aux = run_legal_coloring(line, params, c=2, use_auxiliary_coloring=False)
        assert_legal_vertex_coloring(line, with_aux.colors)
        assert_legal_vertex_coloring(line, without_aux.colors)
        # Both are legal; the Section 4.2 variant should not be slower once
        # there is at least one recursion level (it pays log* n once instead
        # of once per level).
        if with_aux.num_levels >= 1:
            assert with_aux.metrics.rounds <= without_aux.metrics.rounds + 4

    def test_empty_and_single_vertex_networks(self):
        from repro.local_model import Network

        empty = Network({})
        params = params_for_few_rounds(1, c=2)
        result = run_legal_coloring(empty, params, c=2)
        assert result.colors == {}

        single = Network({"v": []})
        result_single = run_legal_coloring(single, params, c=2)
        assert result_single.colors["v"] >= 1


class TestColorQuality:
    def test_linear_preset_uses_linearly_many_colors(self):
        # O(Delta) colors: verify the measured palette is within a moderate
        # constant times Delta on a line-graph workload.
        base = graphs.random_regular(60, 8, seed=6)
        line = line_graph_network(base)
        params = params_for_linear_colors(line.max_degree, c=2, epsilon=0.9)
        result = run_legal_coloring(line, params, c=2)
        assert_legal_vertex_coloring(line, result.colors)
        assert result.colors_used <= 12 * line.max_degree + 12

    def test_bottom_only_run_uses_delta_plus_one_colors(self, small_regular):
        params = params_for_few_rounds(small_regular.max_degree, c=2)
        result = run_legal_coloring(small_regular, params, c=2)
        if result.num_levels == 0:
            assert result.palette <= max(params.threshold, small_regular.max_degree) + 1
