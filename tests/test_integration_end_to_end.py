"""Integration tests: full pipelines across modules, checked against the
paper's quantitative guarantees on every workload family."""

from __future__ import annotations

import pytest

from repro import graphs
from repro.baselines import (
    greedy_sequential_edge_coloring,
    luby_edge_coloring,
    panconesi_rizzi_edge_coloring,
)
from repro.core import color_edges, color_vertices, run_defective_color
from repro.core.parameters import params_for_few_rounds
from repro.core.legal_coloring import run_legal_coloring
from repro.graphs.hypergraphs import hypergraph_line_graph, random_r_hypergraph
from repro.graphs.line_graph import line_graph_network
from repro.graphs.properties import has_neighborhood_independence_at_most
from repro.verification.coloring import (
    assert_legal_edge_coloring,
    assert_legal_vertex_coloring,
    coloring_defect,
    max_color,
)


EDGE_WORKLOADS = [
    ("random-regular", lambda: graphs.random_regular(40, 8, seed=11)),
    ("erdos-renyi", lambda: graphs.erdos_renyi(40, 0.2, seed=12)),
    ("bipartite-switch", lambda: graphs.random_bipartite_regular(16, 6, seed=13)),
    ("power-law", lambda: graphs.power_law_graph(40, 4, seed=14)),
    ("grid", lambda: graphs.grid_graph(6, 6)),
]


class TestEdgeColoringAgainstBaselines:
    @pytest.mark.parametrize("name,maker", EDGE_WORKLOADS)
    def test_all_algorithms_agree_on_legality(self, name, maker):
        network = maker()
        new_fast = color_edges(network, quality="superlinear", route="direct")
        new_linear = color_edges(network, quality="linear", route="direct")
        baseline = panconesi_rizzi_edge_coloring(network)
        oracle = greedy_sequential_edge_coloring(network)

        for label, coloring in [
            ("new-superlinear", new_fast.edge_colors),
            ("new-linear", new_linear.edge_colors),
            ("baseline-pr", baseline.edge_colors),
            ("oracle", oracle),
        ]:
            assert_legal_edge_coloring(network, coloring, context=label)

    @pytest.mark.parametrize("name,maker", EDGE_WORKLOADS[:3])
    def test_new_algorithm_beats_baseline_rounds_at_moderate_degree(self, name, maker):
        network = maker()
        new_fast = color_edges(network, quality="superlinear", route="direct")
        baseline = panconesi_rizzi_edge_coloring(network)
        # Table 1's qualitative claim at moderate Delta: the new algorithm
        # needs fewer rounds than the (2 Delta - 1)-coloring baseline, at the
        # price of more colors.
        assert new_fast.metrics.rounds < baseline.metrics.rounds

    def test_randomized_baseline_uses_fewer_colors_but_is_randomized(self):
        network = graphs.random_regular(40, 8, seed=15)
        new_fast = color_edges(network, quality="superlinear", route="direct")
        randomized = luby_edge_coloring(network, seed=1)
        assert randomized.palette <= 2 * network.max_degree - 1
        assert new_fast.colors_used >= network.max_degree


class TestVertexColoringOnBoundedIndependenceFamilies:
    @pytest.mark.parametrize(
        "name,maker,c",
        [
            ("fig1", lambda: graphs.clique_with_pendants(14), 2),
            ("line-graph", lambda: line_graph_network(graphs.random_regular(30, 6, seed=16)), 2),
            (
                "hypergraph-line-graph",
                lambda: hypergraph_line_graph(
                    random_r_hypergraph(num_vertices=24, num_edges=50, rank=3, seed=17)
                ),
                3,
            ),
            ("claw-free-clique", lambda: graphs.complete_graph(12), 1),
        ],
    )
    def test_family_membership_and_coloring(self, name, maker, c):
        network = maker()
        assert has_neighborhood_independence_at_most(network, c)
        result = color_vertices(network, c=c, quality="superlinear")
        assert_legal_vertex_coloring(network, result.colors)
        assert max_color(result.colors) <= result.palette


class TestDefectiveToLegalPipeline:
    def test_manual_recursion_matches_procedure_guarantees(self):
        # Reproduce one level of Legal-Color "by hand": Defective-Color, then a
        # legal coloring of every class, then merge palettes -- and check the
        # same invariants the procedure relies on.
        base = graphs.random_regular(36, 8, seed=18)
        line = line_graph_network(base)
        Lambda = line.max_degree
        p = 4
        b = max(1, Lambda // (3 * p))
        psi, info, _ = run_defective_color(line, b=b, p=p, c=2)
        assert coloring_defect(line, psi) <= info.psi_defect_bound

        filtered = line.filtered_by_edge(lambda u, v: psi[u] == psi[v])
        assert filtered.max_degree <= info.psi_defect_bound

        params = params_for_few_rounds(max(1, filtered.max_degree), c=2)
        per_class = run_legal_coloring(filtered, params, c=2)
        merged = {
            node: (psi[node] - 1) * per_class.palette + per_class.colors[node]
            for node in line.nodes()
        }
        assert_legal_vertex_coloring(line, merged)
        assert max_color(merged) <= p * per_class.palette


class TestMessageSizeGuarantees:
    def test_direct_route_messages_independent_of_delta(self):
        # Theorem 5.5(2): with constant p, the direct edge-coloring variant
        # uses O(log n)-size (i.e. O(1)-word) messages, no matter the degree.
        sizes = []
        for degree in (6, 10, 14):
            network = graphs.random_regular(32, degree, seed=degree)
            result = color_edges(network, quality="superlinear", route="direct")
            sizes.append(result.metrics.max_message_words)
        assert max(sizes) <= max(result.parameters.p, 4)

    def test_simulation_route_messages_grow_with_delta(self):
        small = color_edges(
            graphs.random_regular(32, 4, seed=1), quality="superlinear", route="simulation"
        )
        large = color_edges(
            graphs.random_regular(32, 12, seed=1), quality="superlinear", route="simulation"
        )
        assert large.metrics.max_message_words > small.metrics.max_message_words
