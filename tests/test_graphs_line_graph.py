"""Unit tests for line-graph construction (Lemma 5.1 / 5.2 structural facts)."""

from __future__ import annotations


from repro import graphs
from repro.graphs.line_graph import build_line_graph_network, canonical_edge, line_graph_network
from repro.graphs.properties import has_neighborhood_independence_at_most


class TestCanonicalEdge:
    def test_orders_by_unique_id(self, triangle):
        a, b = triangle.nodes()[0], triangle.nodes()[1]
        edge = canonical_edge(triangle, b, a)
        assert triangle.unique_id(edge[0]) < triangle.unique_id(edge[1])

    def test_same_result_for_both_orders(self, small_regular):
        u, v = small_regular.edges()[0]
        assert canonical_edge(small_regular, u, v) == canonical_edge(small_regular, v, u)


class TestLineGraphStructure:
    def test_vertex_count_equals_edge_count(self, small_regular):
        line = line_graph_network(small_regular)
        assert line.num_nodes == small_regular.num_edges

    def test_degree_bound_of_lemma_5_2(self, small_regular):
        line = line_graph_network(small_regular)
        assert line.max_degree <= 2 * (small_regular.max_degree - 1)

    def test_adjacency_means_sharing_an_endpoint(self, medium_regular):
        line = line_graph_network(medium_regular)
        for e1 in line.nodes():
            for e2 in line.neighbors(e1):
                assert set(e1) & set(e2), f"{e1} and {e2} adjacent but disjoint"

    def test_non_adjacent_edges_are_not_neighbors(self):
        # Two disjoint edges: their line graph has no edges.
        network = (
            graphs.Network.from_edges([(1, 2), (3, 4)]) if hasattr(graphs, "Network") else None
        )
        from repro.local_model import Network

        network = Network.from_edges([(1, 2), (3, 4)])
        line = line_graph_network(network)
        assert line.num_nodes == 2
        assert line.num_edges == 0

    def test_triangle_line_graph_is_triangle(self, triangle):
        line = line_graph_network(triangle)
        assert line.num_nodes == 3
        assert line.num_edges == 3

    def test_star_line_graph_is_clique(self):
        star = graphs.star_graph(5)
        line = line_graph_network(star)
        assert line.num_nodes == 5
        assert line.num_edges == 10  # K5

    def test_path_line_graph_is_shorter_path(self):
        path = graphs.path_graph(6)
        line = line_graph_network(path)
        assert line.num_nodes == 5
        assert line.num_edges == 4
        assert line.max_degree == 2

    def test_lemma_5_1_independence_bound(self, medium_regular):
        line = line_graph_network(medium_regular)
        assert has_neighborhood_independence_at_most(line, 2)

    def test_empty_graph_line_graph(self):
        from repro.local_model import Network

        line = line_graph_network(Network({1: [], 2: []}))
        assert line.num_nodes == 0


class TestIdentifiers:
    def test_edge_ids_are_unique_and_cover_all_edges(self, small_regular):
        line, edge_ids = build_line_graph_network(small_regular)
        assert len(edge_ids) == small_regular.num_edges
        assert sorted(edge_ids.values()) == list(range(1, small_regular.num_edges + 1))

    def test_edge_ids_sorted_by_endpoint_pair(self, small_regular):
        line, edge_ids = build_line_graph_network(small_regular)
        pairs = {
            edge: (small_regular.unique_id(edge[0]), small_regular.unique_id(edge[1]))
            for edge in edge_ids
        }
        ordered = sorted(edge_ids, key=lambda e: edge_ids[e])
        assert [pairs[e] for e in ordered] == sorted(pairs[e] for e in ordered)

    def test_line_network_uses_the_returned_ids(self, small_regular):
        line, edge_ids = build_line_graph_network(small_regular)
        for edge, unique_id in edge_ids.items():
            assert line.unique_id(edge) == unique_id

    def test_node_ids_are_canonical_edge_tuples(self, small_regular):
        line, _ = build_line_graph_network(small_regular)
        for edge in line.nodes():
            assert isinstance(edge, tuple) and len(edge) == 2
            u, v = edge
            assert small_regular.unique_id(u) < small_regular.unique_id(v)
            assert small_regular.has_edge(u, v)
