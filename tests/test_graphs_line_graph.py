"""Unit tests for line-graph construction (Lemma 5.1 / 5.2 structural facts)."""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.graphs.line_graph import (
    build_line_graph_fast,
    build_line_graph_network,
    canonical_edge,
    line_graph_network,
)
from repro.graphs.properties import has_neighborhood_independence_at_most
from repro.local_model import Network, line_meta_for


class TestCanonicalEdge:
    def test_orders_by_unique_id(self, triangle):
        a, b = triangle.nodes()[0], triangle.nodes()[1]
        edge = canonical_edge(triangle, b, a)
        assert triangle.unique_id(edge[0]) < triangle.unique_id(edge[1])

    def test_same_result_for_both_orders(self, small_regular):
        u, v = small_regular.edges()[0]
        assert canonical_edge(small_regular, u, v) == canonical_edge(small_regular, v, u)


class TestLineGraphStructure:
    def test_vertex_count_equals_edge_count(self, small_regular):
        line = line_graph_network(small_regular)
        assert line.num_nodes == small_regular.num_edges

    def test_degree_bound_of_lemma_5_2(self, small_regular):
        line = line_graph_network(small_regular)
        assert line.max_degree <= 2 * (small_regular.max_degree - 1)

    def test_adjacency_means_sharing_an_endpoint(self, medium_regular):
        line = line_graph_network(medium_regular)
        for e1 in line.nodes():
            for e2 in line.neighbors(e1):
                assert set(e1) & set(e2), f"{e1} and {e2} adjacent but disjoint"

    def test_non_adjacent_edges_are_not_neighbors(self):
        # Two disjoint edges: their line graph has no edges.
        network = (
            graphs.Network.from_edges([(1, 2), (3, 4)]) if hasattr(graphs, "Network") else None
        )
        from repro.local_model import Network

        network = Network.from_edges([(1, 2), (3, 4)])
        line = line_graph_network(network)
        assert line.num_nodes == 2
        assert line.num_edges == 0

    def test_triangle_line_graph_is_triangle(self, triangle):
        line = line_graph_network(triangle)
        assert line.num_nodes == 3
        assert line.num_edges == 3

    def test_star_line_graph_is_clique(self):
        star = graphs.star_graph(5)
        line = line_graph_network(star)
        assert line.num_nodes == 5
        assert line.num_edges == 10  # K5

    def test_path_line_graph_is_shorter_path(self):
        path = graphs.path_graph(6)
        line = line_graph_network(path)
        assert line.num_nodes == 5
        assert line.num_edges == 4
        assert line.max_degree == 2

    def test_lemma_5_1_independence_bound(self, medium_regular):
        line = line_graph_network(medium_regular)
        assert has_neighborhood_independence_at_most(line, 2)

    def test_empty_graph_line_graph(self):
        from repro.local_model import Network

        line = line_graph_network(Network({1: [], 2: []}))
        assert line.num_nodes == 0


class TestIdentifiers:
    def test_edge_ids_are_unique_and_cover_all_edges(self, small_regular):
        line, edge_ids = build_line_graph_network(small_regular)
        assert len(edge_ids) == small_regular.num_edges
        assert sorted(edge_ids.values()) == list(range(1, small_regular.num_edges + 1))

    def test_edge_ids_sorted_by_endpoint_pair(self, small_regular):
        line, edge_ids = build_line_graph_network(small_regular)
        pairs = {
            edge: (small_regular.unique_id(edge[0]), small_regular.unique_id(edge[1]))
            for edge in edge_ids
        }
        ordered = sorted(edge_ids, key=lambda e: edge_ids[e])
        assert [pairs[e] for e in ordered] == sorted(pairs[e] for e in ordered)

    def test_line_network_uses_the_returned_ids(self, small_regular):
        line, edge_ids = build_line_graph_network(small_regular)
        for edge, unique_id in edge_ids.items():
            assert line.unique_id(edge) == unique_id

    def test_node_ids_are_canonical_edge_tuples(self, small_regular):
        line, _ = build_line_graph_network(small_regular)
        for edge in line.nodes():
            assert isinstance(edge, tuple) and len(edge) == 2
            u, v = edge
            assert small_regular.unique_id(u) < small_regular.unique_id(v)
            assert small_regular.has_edge(u, v)


#: Networks the CSR builder is pinned against the legacy constructor on,
#: including custom (non-monotone) unique ids and mixed identifier types.
BUILDER_CASES = {
    "regular30x6": lambda: graphs.random_regular(30, 6, seed=1),
    "erdos-renyi": lambda: graphs.erdos_renyi(24, 0.3, seed=2),
    "star9": lambda: graphs.star_graph(9),
    "grid5x4": lambda: graphs.grid_graph(5, 4),
    "path6": lambda: graphs.path_graph(6),
    "two-disjoint-edges": lambda: Network.from_edges([(1, 2), (3, 4)]),
    "edgeless": lambda: Network({1: [], 2: []}),
    "empty": lambda: Network({}),
    "custom-uids": lambda: Network(
        {"a": ["b", "c"], "b": ["c", "d"], "c": [], "d": []},
        unique_ids={"a": 40, "b": 10, "c": 30, "d": 20},
    ),
    "mixed-ids": lambda: Network.from_edges([(1, "x"), ("x", (2, 3)), ((2, 3), 1)]),
}


class TestFastBuilder:
    """build_line_graph_fast == build_line_graph_network, bit for bit."""

    def test_materializes_the_exact_legacy_network(self):
        for name, maker in BUILDER_CASES.items():
            network = maker()
            legacy, edge_ids = build_line_graph_network(network)
            fast = build_line_graph_fast(network)
            assert fast.num_nodes == legacy.num_nodes, name
            assert fast.max_degree == legacy.max_degree, name
            materialized = fast.to_network()
            assert materialized.nodes() == legacy.nodes(), name
            assert materialized.unique_ids() == legacy.unique_ids(), name
            for node in legacy.nodes():
                assert materialized.neighbors(node) == legacy.neighbors(node), name
            assert {edge: fast.unique_id(edge) for edge in fast.order} == edge_ids, name

    def test_order_is_lazy_until_the_api_boundary(self, small_regular):
        fast = build_line_graph_fast(small_regular)
        assert fast._order is None  # no edge tuples were interned yet
        assert fast.num_nodes == small_regular.num_edges
        assert fast.order == build_line_graph_network(small_regular)[0].nodes()

    def test_filtered_views_inherit_the_incidence_encoding(self, small_regular):
        fast = build_line_graph_fast(small_regular)
        meta = fast.line_meta
        assert meta is not None
        derived = fast.filtered_by_labels(np.zeros(fast.num_nodes, dtype=np.int64))
        assert derived.line_meta is meta

    def test_incidence_encoding_matches_the_edge_tuples(self, small_regular):
        fast = build_line_graph_fast(small_regular)
        meta = fast.line_meta
        g_order = small_regular.nodes()
        for k, (u, v) in enumerate(fast.order):
            assert g_order[meta.edge_u[k]] == u
            assert g_order[meta.edge_v[k]] == v
        # sort_rank reproduces node_sort_key order over the edge tuples.
        from repro.local_model import node_sort_key

        by_rank = np.argsort(meta.sort_rank)
        assert [fast.order[i] for i in by_rank.tolist()] == sorted(
            fast.order, key=node_sort_key
        )
        # The per-vertex CSR lists exactly the incident edges, ascending.
        for w, node in enumerate(g_order):
            incident = meta.vert_edges[meta.vert_indptr[w] : meta.vert_indptr[w + 1]]
            assert list(incident) == sorted(incident.tolist())
            assert [fast.order[e] for e in incident.tolist()] == [
                edge for edge in fast.order if node in edge
            ]

    def test_derived_meta_agrees_with_builder_meta(self, small_regular):
        built = build_line_graph_fast(small_regular)
        from repro.local_model.fast_network import fast_view

        legacy_fast = fast_view(line_graph_network(small_regular))
        derived = line_meta_for(legacy_fast)
        np.testing.assert_array_equal(
            np.argsort(derived.sort_rank), np.argsort(built.line_meta.sort_rank)
        )
        # Endpoint codes differ (interned vs. dense) but must induce the same
        # sharing relation.
        for k in range(built.num_nodes):
            same_built = (built.line_meta.edge_u == built.line_meta.edge_u[k]) | (
                built.line_meta.edge_v == built.line_meta.edge_u[k]
            )
            same_derived = (derived.edge_u == derived.edge_u[k]) | (
                derived.edge_v == derived.edge_u[k]
            )
            np.testing.assert_array_equal(same_built, same_derived)
