"""Unit tests for the Section 5 edge-coloring algorithms (Theorems 5.3 / 5.5)."""

from __future__ import annotations

import pytest

from repro import graphs
from repro.core.edge_coloring import color_edges
from repro.core.parameters import params_for_few_rounds
from repro.exceptions import InvalidParameterError
from repro.verification.coloring import assert_legal_edge_coloring


WORKLOADS = [
    ("regular", lambda: graphs.random_regular(30, 6, seed=1)),
    ("erdos-renyi", lambda: graphs.erdos_renyi(30, 0.25, seed=2)),
    ("bipartite", lambda: graphs.random_bipartite_regular(12, 5, seed=3)),
    ("grid", lambda: graphs.grid_graph(5, 5)),
    ("star", lambda: graphs.star_graph(9)),
]


class TestLegality:
    @pytest.mark.parametrize("name,maker", WORKLOADS)
    @pytest.mark.parametrize("route", ["direct", "simulation"])
    def test_superlinear_variant_is_legal(self, name, maker, route):
        network = maker()
        result = color_edges(network, quality="superlinear", route=route)
        assert_legal_edge_coloring(network, result.edge_colors)
        assert result.colors_used <= result.palette

    @pytest.mark.parametrize("name,maker", WORKLOADS[:3])
    def test_linear_variant_is_legal(self, name, maker):
        network = maker()
        result = color_edges(network, quality="linear", route="direct")
        assert_legal_edge_coloring(network, result.edge_colors)

    def test_subpolynomial_variant_is_legal(self):
        network = graphs.random_regular(24, 4, seed=5)
        result = color_edges(network, quality="subpolynomial", route="direct")
        assert_legal_edge_coloring(network, result.edge_colors)

    def test_single_edge_graph(self):
        from repro.local_model import Network

        network = Network.from_edges([(1, 2)])
        result = color_edges(network, quality="superlinear")
        assert result.edge_colors and set(result.edge_colors.values()) == {1}

    def test_triangle(self, triangle):
        result = color_edges(triangle, quality="superlinear")
        assert_legal_edge_coloring(triangle, result.edge_colors)
        assert result.colors_used == 3


class TestResultObject:
    def test_color_lookup_in_both_endpoint_orders(self, small_regular):
        result = color_edges(small_regular, quality="superlinear")
        u, v = small_regular.edges()[0]
        assert result.color_of(u, v) == result.color_of(v, u)

    def test_line_graph_degree_recorded(self, small_regular):
        result = color_edges(small_regular, quality="superlinear")
        assert result.line_graph_max_degree <= 2 * (small_regular.max_degree - 1)

    def test_explicit_parameters_override_quality(self, small_regular):
        params = params_for_few_rounds(2 * small_regular.max_degree, c=2, p=11, b=2)
        result = color_edges(small_regular, parameters=params)
        assert result.parameters is params

    def test_unknown_route_rejected(self, small_regular):
        with pytest.raises(InvalidParameterError):
            color_edges(small_regular, route="teleport")

    def test_unknown_quality_rejected(self, small_regular):
        with pytest.raises(InvalidParameterError):
            color_edges(small_regular, quality="psychic")


class TestRoutesAndMessageSizes:
    def test_simulation_route_doubles_rounds(self, small_regular):
        direct = color_edges(small_regular, quality="superlinear", route="direct")
        simulated = color_edges(small_regular, quality="superlinear", route="simulation")
        # Lemma 5.2: the simulation pays a factor-2 (plus O(1)) round overhead
        # relative to running natively on L(G); the direct route avoids it.
        assert simulated.metrics.rounds >= direct.metrics.rounds

    def test_simulation_route_uses_large_messages(self, medium_regular):
        simulated = color_edges(medium_regular, quality="superlinear", route="simulation")
        direct = color_edges(medium_regular, quality="superlinear", route="direct")
        # Theorem 5.3 vs 5.5: the simulation needs Omega(Delta)-word messages,
        # the direct route needs only max(p, O(1)) words.
        assert simulated.metrics.max_message_words >= medium_regular.max_degree
        assert direct.metrics.max_message_words <= max(
            direct.parameters.p, 4
        )

    def test_both_routes_agree_on_palette_shape(self, small_regular):
        direct = color_edges(small_regular, quality="superlinear", route="direct")
        simulated = color_edges(small_regular, quality="superlinear", route="simulation")
        # Both are O(Delta_L^{1+eta}) bounds computed from the same preset.
        assert direct.palette <= 4 * simulated.palette + 4
        assert simulated.palette <= 4 * direct.palette + 4


class TestColorCounts:
    def test_number_of_colors_at_most_palette_bound(self):
        for _, maker in WORKLOADS:
            network = maker()
            result = color_edges(network, quality="superlinear")
            assert result.colors_used <= result.palette

    def test_at_least_delta_colors_needed_and_used(self, small_regular):
        result = color_edges(small_regular, quality="superlinear")
        # Any legal edge coloring needs at least Delta colors.
        assert result.colors_used >= small_regular.max_degree
