"""Unit tests for the arithmetic helpers."""

from __future__ import annotations


import pytest

from repro.exceptions import InvalidParameterError
from repro.primitives.numbers import (
    base_q_digits,
    ceil_div,
    ceil_log,
    is_prime,
    log_star,
    next_prime,
    num_base_q_digits,
    poly_eval,
)


class TestPrimes:
    def test_small_primes(self):
        primes = [value for value in range(2, 60) if is_prime(value)]
        assert primes == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59]

    def test_non_primes(self):
        for value in (-5, 0, 1, 4, 9, 21, 49, 1001):
            assert not is_prime(value)

    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 2
        assert next_prime(14) == 17
        assert next_prime(17) == 17
        assert next_prime(90) == 97

    def test_next_prime_bertrand_window(self):
        # Bertrand's postulate: the next prime never exceeds 2 * value.
        for value in range(2, 500, 7):
            assert value <= next_prime(value) < 2 * value


class TestIntegerHelpers:
    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert ceil_div(0, 5) == 0
        assert ceil_div(1, 7) == 1

    def test_ceil_div_invalid_denominator(self):
        with pytest.raises(InvalidParameterError):
            ceil_div(5, 0)

    def test_ceil_log(self):
        assert ceil_log(1) == 0
        assert ceil_log(2) == 1
        assert ceil_log(9, base=3) == 2
        assert ceil_log(10, base=3) == 3

    def test_ceil_log_invalid(self):
        with pytest.raises(InvalidParameterError):
            ceil_log(0)
        with pytest.raises(InvalidParameterError):
            ceil_log(4, base=1)


class TestLogStar:
    def test_small_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 0
        assert log_star(4) == 1
        assert log_star(16) == 2
        assert log_star(2**16) == 3

    def test_astronomical_value_is_still_tiny(self):
        assert log_star(2.0**64) <= 5

    def test_monotone(self):
        values = [log_star(x) for x in (2, 10, 100, 10_000, 10**9)]
        assert values == sorted(values)


class TestBaseQAndPolynomials:
    def test_digit_round_trip(self):
        for value in range(0, 200, 7):
            digits = base_q_digits(value, q=7, num_digits=4)
            reconstructed = sum(d * 7**i for i, d in enumerate(digits))
            assert reconstructed == value

    def test_value_too_large_rejected(self):
        with pytest.raises(InvalidParameterError):
            base_q_digits(100, q=3, num_digits=2)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(InvalidParameterError):
            base_q_digits(5, q=1, num_digits=2)
        with pytest.raises(InvalidParameterError):
            base_q_digits(-1, q=3, num_digits=2)
        with pytest.raises(InvalidParameterError):
            base_q_digits(5, q=3, num_digits=0)

    def test_num_base_q_digits(self):
        assert num_base_q_digits(1, 5) == 1
        assert num_base_q_digits(5, 5) == 1
        assert num_base_q_digits(6, 5) == 2
        assert num_base_q_digits(26, 5) == 3

    def test_poly_eval_matches_horner_by_hand(self):
        # p(x) = 2 + 3x + x^2 over GF(7)
        coefficients = [2, 3, 1]
        for point in range(7):
            expected = (2 + 3 * point + point * point) % 7
            assert poly_eval(coefficients, point, 7) == expected

    def test_distinct_polynomials_agree_on_few_points(self):
        # Two distinct degree-t polynomials agree on at most t points -- the
        # combinatorial fact behind Linial's algorithm.
        q = 11
        first = [3, 5, 2]
        second = [1, 5, 2]
        agreements = sum(
            1 for point in range(q) if poly_eval(first, point, q) == poly_eval(second, point, q)
        )
        assert agreements <= 2

    def test_poly_eval_invalid_modulus(self):
        with pytest.raises(InvalidParameterError):
            poly_eval([1, 2], 3, 1)
