"""Regression: ``pytest benchmarks/`` must actually collect the harnesses.

The benchmark files are named ``bench_*.py`` (so the tier-1 root run skips
them), which used to make ``pytest benchmarks/`` collect *nothing* and exit
green without running a single smoke path.  ``benchmarks/conftest.py`` fixes
that; these subprocess tests pin both sides of the behavior.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _collect_only(*args: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-m", "pytest", "--collect-only", "-q", "-p", "no:cacheprovider", *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    return completed.stdout


def test_pytest_benchmarks_collects_the_bench_modules():
    output = _collect_only("benchmarks")
    assert "bench_engine_speedup.py::test_engine_speedup" in output
    assert "0 tests collected" not in output


def test_root_run_still_skips_the_benchmarks():
    # The tier-1 gate (bare ``pytest`` from the repo root) must not start
    # executing multi-minute benchmarks.
    output = _collect_only()
    assert "benchmarks/bench_" not in output
