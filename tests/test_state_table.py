"""Tests for the columnar node-state store (:mod:`repro.local_model.state_table`).

The table's whole value rests on one contract: the dict view it materializes
is *exactly* (``==``) the per-node state the engines would have produced with
plain dictionaries.  The hypothesis property here drives the round-trip with
the full mix of value shapes the engines store -- ints, path tuples, lists,
sets, ``None``, booleans, missing keys -- and the ``run_table`` tests pin the
columnar execution path of every engine to the dict-based ``run``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError, SimulationError
from repro.local_model import (
    BatchedScheduler,
    CompiledScheduler,
    Scheduler,
    StateTable,
    VectorizedScheduler,
    fast_view,
)
from repro.primitives.color_reduction import delta_plus_one_pipeline
from repro.primitives.kuhn_defective import defective_coloring_pipeline

# --------------------------------------------------------------------------- #
# Strategies: the value shapes node states actually hold
# --------------------------------------------------------------------------- #

_scalars = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.booleans(),
    st.none(),
    st.text(max_size=4),
)

_values = st.one_of(
    _scalars,
    st.tuples(),
    st.tuples(st.integers(0, 50)),
    st.tuples(st.integers(0, 50), st.integers(0, 50)),
    st.lists(st.integers(0, 9), max_size=4),
    st.sets(st.integers(0, 9), max_size=4),
)

_state_dicts = st.lists(
    st.dictionaries(st.sampled_from(["a", "b", "_path", "c"]), _values, max_size=4),
    max_size=8,
)


class TestRoundTrip:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(dicts=_state_dicts)
    def test_from_dicts_to_dicts_is_identity(self, dicts):
        assert StateTable.from_dicts(dicts).to_dicts() == dicts

    def test_mixed_int_tuple_list_states(self):
        dicts = [
            {"color": 3, "_path": (1, 2), "counts": [0, 1], "seen": {4}},
            {"color": 7, "_path": (1, 2), "counts": [2, 0], "flag": True},
            {"color": 5, "_path": (2,), "counts": [], "maybe": None},
        ]
        table = StateTable.from_dicts(dicts)
        assert table.to_dicts() == dicts
        assert table.kind("color") == "int"
        assert table.kind("_path") == "path"
        assert table.kind("counts") == "object"

    def test_partial_presence_round_trips(self):
        dicts = [{"x": 1}, {}, {"x": 3, "y": (1,)}, {"y": (1,)}]
        table = StateTable.from_dicts(dicts)
        assert table.to_dicts() == dicts
        with pytest.raises(KeyError):
            table.get_ints("x")  # missing on node 1, like state["x"] would be

    def test_mapping_round_trip_ignores_unknown_nodes(self):
        order = ("a", "b", "c")
        states = {"a": {"v": 1}, "c": {"v": 3}, "zz": {"v": 9}}
        table = StateTable.from_mapping(states, order)
        assert table.to_mapping(order) == {"a": {"v": 1}, "b": {}, "c": {"v": 3}}

    def test_bool_values_keep_their_type(self):
        dicts = [{"flag": True}, {"flag": False}]
        restored = StateTable.from_dicts(dicts).to_dicts()
        assert restored == dicts
        assert type(restored[0]["flag"]) is bool


class TestColumns:
    def test_int_columns(self):
        table = StateTable(4)
        table.set_ints("c", np.array([5, 6, 7, 8]))
        assert table.get_ints("c").tolist() == [5, 6, 7, 8]
        table.fill_int("d", 2)
        assert table.get_ints("d").tolist() == [2, 2, 2, 2]
        # get_ints hands out a copy: kernels may scribble on it freely.
        column = table.get_ints("c")
        column[0] = 99
        assert table.get_ints("c").tolist() == [5, 6, 7, 8]

    def test_get_ints_rejects_paths(self):
        table = StateTable(2)
        table.fill_path("_path", (1,))
        with pytest.raises(TypeError):
            table.get_ints("_path")

    def test_shape_validation(self):
        table = StateTable(3)
        with pytest.raises(InvalidParameterError):
            table.set_ints("c", np.array([1, 2]))
        with pytest.raises(InvalidParameterError):
            table.set_objects("o", [1, 2])
        table.fill_path("_path", ())
        with pytest.raises(InvalidParameterError):
            table.append_to_paths("_path", np.array([1, 2]))

    def test_copy_column_preserves_kind(self):
        table = StateTable.from_dicts(
            [{"i": 1, "p": (1,), "o": [2]}, {"i": 2, "p": (), "o": [3]}]
        )
        for key in ("i", "p", "o"):
            table.copy_column(key, key + "2")
            assert table.kind(key + "2") == table.kind(key)
        rows = table.to_dicts()
        assert rows[0]["i2"] == 1 and rows[0]["p2"] == (1,) and rows[0]["o2"] == [2]
        # Object copies are by reference, exactly like state[t] = state[s].
        assert rows[0]["o2"] is rows[0]["o"]

    def test_set_values_reclassifies(self):
        table = StateTable(2)
        table.set_values("k", [1, 2])
        assert table.kind("k") == "int"
        table.set_values("k", [(1,), (2,)])
        assert table.kind("k") == "path"
        table.set_values("k", [1, (2,)])
        assert table.kind("k") == "object"
        assert table.to_dicts() == [{"k": 1}, {"k": (2,)}]


class TestPathColumns:
    def test_fill_and_append(self):
        table = StateTable(5)
        table.fill_path("_path", ())
        assert table.num_paths("_path") == 1
        table.append_to_paths("_path", np.array([1, 2, 1, 2, 3]))
        assert table.num_paths("_path") == 3
        table.append_to_paths("_path", np.array([1, 1, 2, 1, 1]))
        expected = [(1, 1), (2, 1), (1, 2), (2, 1), (3, 1)]
        assert [row["_path"] for row in table.to_dicts()] == expected
        assert table.num_paths("_path") == 4

    def test_path_ids_equal_iff_paths_equal(self):
        table = StateTable.from_dicts(
            [{"_path": (1, 2)}, {"_path": (2, 1)}, {"_path": (1, 2)}]
        )
        ids = table.path_ids("_path")
        assert ids[0] == ids[2] and ids[0] != ids[1]

    def test_append_interns_per_distinct_pair(self):
        table = StateTable(1000)
        table.fill_path("_path", ())
        table.append_to_paths("_path", np.arange(1000) % 7 + 1)
        assert table.num_paths("_path") == 7

    def test_empty_table_paths(self):
        table = StateTable(0)
        table.fill_path("_path", ())
        table.append_to_paths("_path", np.zeros(0, dtype=np.int64))
        assert table.num_paths("_path") == 0
        assert table.to_dicts() == []

    def test_path_interned_indexes_the_ids(self):
        table = StateTable.from_dicts(
            [{"_path": (1, 2)}, {"_path": (2, 1)}, {"_path": (1, 2)}]
        )
        interned = table.path_interned("_path")
        ids = table.path_ids("_path")
        assert [interned[i] for i in ids.tolist()] == [(1, 2), (2, 1), (1, 2)]
        with pytest.raises(TypeError):
            StateTable.from_dicts([{"x": 1}]).path_interned("x")


class TestGetValuesOrNone:
    def test_mirrors_state_get(self):
        dicts = [{"a": 1, "b": (1, 2)}, {"b": (1, 2)}, {"a": 3, "c": [7]}]
        table = StateTable.from_dicts(dicts)
        for key in ("a", "b", "c", "missing"):
            assert table.get_values_or_none(key) == [d.get(key) for d in dicts]


class TestRunTable:
    """``run_table`` == ``run`` on the dict view, for every engine."""

    def _pipeline(self, network):
        pipeline, _ = defective_coloring_pipeline(
            n=network.num_nodes,
            degree_bound=max(1, network.max_degree),
            target_defect=2,
            output_key="d",
        )
        return pipeline

    @pytest.mark.parametrize(
        "engine_cls", [Scheduler, BatchedScheduler, VectorizedScheduler, CompiledScheduler]
    )
    def test_matches_dict_run(self, small_regular, engine_cls):
        pipeline = self._pipeline(small_regular)
        reference = Scheduler(small_regular).run(pipeline)

        fast = fast_view(small_regular)
        table = StateTable(fast.num_nodes)
        final, metrics = engine_cls(small_regular).run_table(pipeline, table)
        assert final.to_mapping(fast.order) == reference.states
        assert metrics.summary() == reference.metrics.summary()

    @pytest.mark.parametrize(
        "engine_cls", [Scheduler, BatchedScheduler, VectorizedScheduler, CompiledScheduler]
    )
    def test_seeded_table_matches_seeded_run(self, small_regular, engine_cls):
        fast = fast_view(small_regular)
        pipeline, _ = delta_plus_one_pipeline(
            n=fast.num_nodes,
            degree_bound=max(1, fast.max_degree),
            initial_palette=fast.num_nodes,
            input_key="seeded",
            output_key="c",
        )
        seeds = {node: {"seeded": fast.unique_id(node)} for node in fast.order}
        reference = Scheduler(small_regular).run(pipeline, initial_states=seeds)

        table = StateTable.from_mapping(seeds, fast.order)
        final, metrics = engine_cls(small_regular).run_table(pipeline, table)
        assert final.to_mapping(fast.order) == reference.states
        assert metrics.summary() == reference.metrics.summary()

    @pytest.mark.parametrize(
        "engine_cls", [Scheduler, BatchedScheduler, VectorizedScheduler, CompiledScheduler]
    )
    def test_row_count_mismatch_rejected(self, small_regular, engine_cls):
        pipeline = self._pipeline(small_regular)
        with pytest.raises(SimulationError):
            engine_cls(small_regular).run_table(pipeline, StateTable(3))

    def test_vectorized_keeps_columns_native(self, small_regular):
        """A fully vectorized pipeline never materializes state dicts."""
        pipeline = self._pipeline(small_regular)
        scheduler = VectorizedScheduler(small_regular)
        final, _ = scheduler.run_table(pipeline, StateTable(small_regular.num_nodes))
        assert scheduler.fallback_phases == 0
        assert final.kind("d") == "int"

    def test_empty_network_run_table(self):
        from repro.local_model import Network

        network = Network({})
        pipeline, _ = delta_plus_one_pipeline(n=1, degree_bound=1, output_key="c")
        for engine_cls in (
            Scheduler,
            BatchedScheduler,
            VectorizedScheduler,
            CompiledScheduler,
        ):
            final, metrics = engine_cls(network).run_table(pipeline, StateTable(0))
            assert final.to_dicts() == []
            assert metrics.rounds == 0


class TestVectorContextColumnCache:
    """Dict-backed ``column()`` gathers each key at most once (satellite fix)."""

    def _context(self, n=4):
        from repro.local_model import Network
        from repro.local_model.metrics import PhaseMetrics
        from repro.local_model.vectorized import VectorContext

        network = Network({i: [] for i in range(n)})
        states = [{"c": i + 1} for i in range(n)]
        ctx = VectorContext(
            fast_view(network), states, PhaseMetrics(name="t"), 10, "t"
        )
        return ctx, states

    def test_repeat_reads_served_from_mirror(self):
        ctx, states = self._context()
        first = ctx.column("c")
        states[0]["c"] = 999  # a stale write the mirror must hide ...
        second = ctx.column("c")
        assert np.array_equal(first, second)  # ... so reads stay coherent

    def test_returned_arrays_are_independent_copies(self):
        ctx, _ = self._context()
        first = ctx.column("c")
        first[0] = -5
        assert ctx.column("c")[0] == 1

    def test_write_column_updates_mirror_and_dicts(self):
        ctx, states = self._context()
        ctx.column("c")
        ctx.write_column("c", np.array([9, 8, 7, 6], dtype=np.int64))
        assert [s["c"] for s in states] == [9, 8, 7, 6]
        assert ctx.column("c").tolist() == [9, 8, 7, 6]

    def test_write_value_and_copy_key_keep_mirror_coherent(self):
        ctx, states = self._context()
        ctx.write_value("c", 5)
        assert ctx.column("c").tolist() == [5, 5, 5, 5]
        ctx.copy_key("c", "d")
        assert ctx.column("d").tolist() == [5, 5, 5, 5]
        assert all(s["d"] == 5 for s in states)

    def test_states_escape_hatch_disables_mirror(self):
        ctx, _ = self._context()
        ctx.column("c")
        raw = ctx.states
        raw[0]["c"] = 42
        assert ctx.column("c")[0] == 42  # no stale mirror after the escape

    def test_non_int_write_value_invalidates_mirror(self):
        ctx, _ = self._context()
        ctx.column("c")
        ctx.write_value("c", "label")
        assert ctx.read_values("c") == ["label"] * 4
