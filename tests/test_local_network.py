"""Unit tests for :mod:`repro.local_model.network`."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import InvalidParameterError
from repro.local_model import Network


class TestConstruction:
    def test_from_adjacency_symmetrizes_missing_reverse_entries(self):
        network = Network({1: [2], 2: [], 3: []})
        assert network.has_edge(2, 1)
        assert network.degree(2) == 1

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidParameterError):
            Network({1: [1]})

    def test_from_edges_with_isolated_nodes(self):
        network = Network.from_edges([(1, 2), (2, 3)], isolated_nodes=[9])
        assert network.num_nodes == 4
        assert network.degree(9) == 0

    def test_from_networkx_round_trip(self):
        graph = nx.path_graph(6)
        network = Network.from_networkx(graph)
        back = network.to_networkx()
        assert set(back.edges) == set(graph.edges)
        assert set(back.nodes) == set(graph.nodes)

    def test_empty_network(self):
        network = Network({})
        assert network.num_nodes == 0
        assert network.num_edges == 0
        assert network.max_degree == 0
        assert network.nodes() == ()


class TestAccessors:
    def test_basic_counts(self, small_regular):
        assert small_regular.num_nodes == 24
        assert small_regular.max_degree == 4
        assert small_regular.num_edges == 24 * 4 // 2

    def test_neighbors_are_sorted_and_consistent(self, small_regular):
        for node in small_regular.nodes():
            neighbors = small_regular.neighbors(node)
            assert list(neighbors) == sorted(neighbors, key=small_regular.unique_id)
            for neighbor in neighbors:
                assert small_regular.has_edge(node, neighbor)
                assert small_regular.has_edge(neighbor, node)

    def test_edges_are_canonical_and_unique(self, small_regular):
        edges = small_regular.edges()
        assert len(edges) == len(set(map(frozenset, edges)))

    def test_contains_iter_len(self, triangle):
        assert 0 in triangle
        assert 99 not in triangle
        assert sorted(triangle) == [0, 1, 2]
        assert len(triangle) == 3

    def test_degree_of_missing_node_raises(self, triangle):
        with pytest.raises(KeyError):
            triangle.degree(42)


class TestOrdering:
    """Regression tests for the repr-ordering bug.

    Node, neighbor and edge orderings used to be derived from ``repr``, which
    sorts integers lexicographically (10 before 2) and interleaves mixed
    int/tuple identifier sets arbitrarily.  All orderings now follow the
    assigned unique identifiers.
    """

    def test_integer_nodes_are_ordered_numerically(self):
        network = Network({i: [] for i in (2, 10, 1, 30, 3)})
        assert network.nodes() == (1, 2, 3, 10, 30)
        assert [network.unique_id(node) for node in network.nodes()] == [1, 2, 3, 4, 5]

    def test_canonical_edges_follow_unique_ids_not_repr(self):
        # repr ordering would canonicalize (2, 10) as (10, 2) since "10" < "2".
        network = Network({2: [10], 10: []})
        assert network.edges() == ((2, 10),)

    def test_mixed_int_and_tuple_identifiers(self):
        # A graph mixing plain integers with edge-tuple identifiers (as appears
        # when original-graph and line-graph style ids are combined).
        adjacency = {10: [(1, 2)], (1, 2): [2], 2: [], (1, 10): []}
        network = Network(adjacency)
        # Integers first (numerically), then tuples (element-wise).
        assert network.nodes() == (2, 10, (1, 2), (1, 10))
        ids = [network.unique_id(node) for node in network.nodes()]
        assert ids == [1, 2, 3, 4]
        # Canonical edges are oriented by unique id: 2 and 10 precede the tuples.
        assert network.edges() == ((2, (1, 2)), (10, (1, 2)))
        # Neighbor lists are ordered by unique id too.
        assert network.neighbors((1, 2)) == (2, 10)

    def test_explicit_unique_ids_drive_all_orderings(self):
        network = Network({1: [2, 3], 2: [3], 3: []}, unique_ids={1: 30, 2: 20, 3: 10})
        assert network.nodes() == (3, 2, 1)
        assert network.neighbors(1) == (3, 2)
        assert network.edges() == ((3, 2), (3, 1), (2, 1))

    def test_derived_networks_preserve_ordering(self):
        network = Network({i: [(i + 1) % 12] for i in range(12)})
        filtered = network.filtered_by_edge(lambda u, v: (u + v) % 3 == 0)
        assert filtered.nodes() == network.nodes()
        induced = network.induced_subgraph(range(0, 12, 2))
        assert induced.nodes() == tuple(range(0, 12, 2))


class TestUniqueIds:
    def test_ids_are_a_permutation_of_1_to_n(self, small_regular):
        ids = sorted(small_regular.unique_id(node) for node in small_regular.nodes())
        assert ids == list(range(1, small_regular.num_nodes + 1))

    def test_explicit_ids_respected(self):
        network = Network({1: [2], 2: []}, unique_ids={1: 7, 2: 3})
        assert network.unique_id(1) == 7
        assert network.unique_id(2) == 3

    def test_duplicate_ids_rejected(self):
        with pytest.raises(InvalidParameterError):
            Network({1: [2], 2: []}, unique_ids={1: 5, 2: 5})

    def test_missing_ids_rejected(self):
        with pytest.raises(InvalidParameterError):
            Network({1: [2], 2: []}, unique_ids={1: 5})


class TestDerivedNetworks:
    def test_filtered_by_edge_keeps_all_nodes(self, small_regular):
        filtered = small_regular.filtered_by_edge(lambda u, v: False)
        assert filtered.num_nodes == small_regular.num_nodes
        assert filtered.num_edges == 0

    def test_filtered_by_edge_preserves_unique_ids(self, small_regular):
        filtered = small_regular.filtered_by_edge(lambda u, v: u % 2 == v % 2)
        for node in small_regular.nodes():
            assert filtered.unique_id(node) == small_regular.unique_id(node)

    def test_filtered_by_edge_is_subset(self, small_regular):
        filtered = small_regular.filtered_by_edge(lambda u, v: u % 2 == v % 2)
        original_edges = set(map(frozenset, small_regular.edges()))
        for edge in filtered.edges():
            assert frozenset(edge) in original_edges

    def test_induced_subgraph(self, fig1_graph):
        clique_nodes = [node for node in fig1_graph.nodes() if node[0] == "clique"]
        induced = fig1_graph.induced_subgraph(clique_nodes)
        assert induced.num_nodes == len(clique_nodes)
        assert induced.max_degree == len(clique_nodes) - 1

    def test_induced_subgraph_unknown_node_rejected(self, triangle):
        with pytest.raises(InvalidParameterError):
            triangle.induced_subgraph([0, "nope"])

    def test_create_nodes_matches_structure(self, triangle):
        nodes = triangle.create_nodes()
        assert set(nodes) == set(triangle.nodes())
        for node_id, node in nodes.items():
            assert node.degree == triangle.degree(node_id)
            assert node.unique_id == triangle.unique_id(node_id)
