"""Smoke tests: every example script runs end to end and validates its output."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load_module(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_there_are_at_least_three_examples():
    assert len(EXAMPLE_FILES) >= 3


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_runs_to_completion(path, capsys):
    module = _load_module(path)
    assert hasattr(module, "main"), f"{path.name} must expose a main() entry point"
    module.main()
    output = capsys.readouterr().out
    assert output.strip(), f"{path.name} should print a report"
