#!/usr/bin/env python3
"""Golden fixture definitions and (re)generation for the regression tests.

``tests/test_golden_colorings.py`` compares every fixture's full output --
coloring, palette, rounds, messages, bandwidth -- against the JSON files
committed under ``tests/data/``.  The goldens freeze the *observed* behavior
of the seeded deterministic algorithms so refactors (new engines, new
orderings) cannot silently change results.

Regenerate after an *intentional* behavior change with::

    PYTHONPATH=src python tests/make_goldens.py

and review the resulting diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

DATA_DIR = Path(__file__).resolve().parent / "data"


def _legal(network, c, quality, engine):
    from repro.core import color_vertices

    result = color_vertices(network, c=c, quality=quality, engine=engine)
    return result.colors, {
        "palette": result.palette,
        "levels": result.num_levels,
        **_metrics(result.metrics),
    }


def _edge(network, quality, route, engine):
    from repro.core import color_edges

    result = color_edges(network, quality=quality, route=route, engine=engine)
    return result.edge_colors, {"palette": result.palette, **_metrics(result.metrics)}


def _defective(network, b, p, c, engine):
    from repro.core import run_defective_color

    colors, info, metrics = run_defective_color(network, b=b, p=p, c=c, engine=engine)
    return colors, {
        "palette": info.p,
        "psi_defect_bound": info.psi_defect_bound,
        **_metrics(metrics),
    }


def _tradeoff(network, c, g_name, engine):
    from repro.core import tradeoff_color_vertices
    from repro.experiments import G_FUNCTIONS

    result = tradeoff_color_vertices(network, c=c, g=G_FUNCTIONS[g_name], engine=engine)
    return result.colors, {
        "palette": result.palette,
        "split_palette": result.split_palette,
        **_metrics(result.metrics),
    }


def _randomized(network, c, seed, engine):
    from repro.core import randomized_color_vertices

    result = randomized_color_vertices(network, c=c, seed=seed, engine=engine)
    return result.colors, {
        "palette": result.palette,
        "num_classes": result.num_classes,
        **_metrics(result.metrics),
    }


def _dynamic_churn(network, c, seed, steps, batch, engine):
    """Drive a seeded churn schedule through a :class:`DynamicColoring`.

    The schedule is a deterministic function of the seed and the evolving
    edge set only (never of the coloring), so every engine sees the identical
    sequence of update batches; the golden freezes the final coloring, the
    session palette bound and the merged run metrics.
    """
    import numpy as np

    from repro.dynamic import DynamicColoring

    session = DynamicColoring(network, c=c, engine=engine)
    rng = np.random.default_rng(seed)
    n = session.network.num_nodes
    for _ in range(steps):
        add_u = rng.integers(0, n, size=batch)
        add_v = rng.integers(0, n, size=batch)
        loopless = add_u != add_v
        fast = session.network
        forward = fast.rows_np < fast.indices_np
        edge_u = fast.rows_np[forward]
        edge_v = fast.indices_np[forward]
        pick = rng.integers(0, len(edge_u), size=batch // 2)
        session.apply_updates(
            added=(add_u[loopless], add_v[loopless]),
            removed=(edge_u[pick], edge_v[pick]),
        )
        session.verify()
    return session.colors, {
        "palette": session.palette_bound,
        "steps": steps,
        "final_edges": session.network.num_edges,
        **_metrics(session.metrics),
    }


def _metrics(metrics) -> Dict[str, int]:
    return {
        "rounds": metrics.rounds,
        "messages": metrics.messages,
        "total_words": metrics.total_words,
        "max_message_words": metrics.max_message_words,
    }


def _regular(n, degree, seed):
    from repro import graphs

    return graphs.random_regular(n, degree, seed=seed)


def _line_of_regular(n, degree, seed):
    from repro.graphs.line_graph import line_graph_network

    return line_graph_network(_regular(n, degree, seed))


#: fixture name -> (network builder, runner(network, engine)).
FIXTURES: Dict[str, Any] = {
    "legal_superlinear_regular24x4": (
        lambda: _regular(24, 4, 7),
        lambda network, engine: _legal(network, c=4, quality="superlinear", engine=engine),
    ),
    "legal_linear_grid5x5": (
        lambda: __import__("repro").graphs.grid_graph(5, 5),
        lambda network, engine: _legal(network, c=2, quality="linear", engine=engine),
    ),
    "edge_direct_superlinear_regular20x4": (
        lambda: _regular(20, 4, 5),
        lambda network, engine: _edge(
            network, quality="superlinear", route="direct", engine=engine
        ),
    ),
    "edge_simulation_linear_regular16x6": (
        lambda: _regular(16, 6, 2),
        lambda network, engine: _edge(
            network, quality="linear", route="simulation", engine=engine
        ),
    ),
    # Delta(L) = 30 > the superlinear threshold: the direct route actually
    # executes Corollary 5.4 recursion levels (the CSR edge kernel's path).
    "edge_direct_superlinear_regular40x16": (
        lambda: _regular(40, 16, 3),
        lambda network, engine: _edge(
            network, quality="superlinear", route="direct", engine=engine
        ),
    ),
    "defective_p3_line18x4": (
        lambda: _line_of_regular(18, 4, 2),
        lambda network, engine: _defective(network, b=1, p=3, c=2, engine=engine),
    ),
    "tradeoff_sqrt_line20x6": (
        lambda: _line_of_regular(20, 6, 13),
        lambda network, engine: _tradeoff(network, c=2, g_name="sqrt", engine=engine),
    ),
    "randomized_seed0_regular32x8": (
        lambda: _regular(32, 8, 21),
        lambda network, engine: _randomized(network, c=8, seed=0, engine=engine),
    ),
    # Dynamic recoloring under a seeded churn schedule: incremental patch +
    # conflict-ball repair on every step, verified legal throughout.
    "dynamic_churn_regular32x8": (
        lambda: _regular(32, 8, 21),
        lambda network, engine: _dynamic_churn(
            network, c=8, seed=11, steps=6, batch=8, engine=engine
        ),
    ),
}


def compute_fixture(name: str, engine: str = "reference") -> Dict[str, Any]:
    """Run one fixture and return its JSON-ready golden document."""
    build, run = FIXTURES[name]
    network = build()
    colors, summary = run(network, engine)
    return {
        "fixture": name,
        "num_nodes": network.num_nodes,
        "num_edges": network.num_edges,
        "colors_used": len(set(colors.values())),
        **summary,
        "coloring": sorted([repr(node), int(color)] for node, color in colors.items()),
    }


def golden_path(name: str) -> Path:
    return DATA_DIR / f"{name}.json"


def main() -> None:
    DATA_DIR.mkdir(exist_ok=True)
    for name in sorted(FIXTURES):
        document = compute_fixture(name, engine="reference")
        golden_path(name).write_text(json.dumps(document, indent=2) + "\n")
        print(f"wrote {golden_path(name)} ({document['num_nodes']} nodes, "
              f"{document['rounds']} rounds, palette {document['palette']})")


if __name__ == "__main__":
    main()
