"""Three-engine equivalence for the vectorized baseline kernels.

The PR 7 tentpole gives the Luby, Panconesi–Rizzi, and greedy-reduction
baselines fully array-native execution paths.  These tests lock down that
(1) all three engines produce identical colorings, final states, and
metrics, (2) the vectorized engine runs each baseline with ZERO batched
fallbacks on regular and heavy-tailed families alike, and (3) the
normalized result objects carry consistent `color_column`s.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.baselines import (
    greedy_reduction_edge_coloring,
    luby_edge_coloring,
    luby_vertex_coloring,
    panconesi_rizzi_edge_coloring,
)
from repro.baselines.luby_random import LubyRandomColoringPhase
from repro.local_model.engine import make_scheduler
from repro.local_model.fast_network import fast_view
from repro.local_model.state_table import StateTable
from repro.verification import (
    assert_legal_edge_coloring,
    assert_legal_vertex_coloring,
)

ENGINES = ("reference", "batched", "vectorized")

FAMILIES = {
    "regular": lambda: graphs.random_regular(48, 6, seed=11),
    "heavy-tailed-ba": lambda: graphs.barabasi_albert(60, 4, seed=12),
    "heavy-tailed-powerlaw": lambda: graphs.planted_degree_sequence(
        graphs.heavy_tailed_degree_sequence(50, exponent=2.2, seed=13),
        seed=13,
        backend="fast",
    ),
}


def run_luby_states(network, engine, palette, seed=0):
    fast = fast_view(network)
    phase = LubyRandomColoringPhase(palette=palette, seed=seed)
    table, metrics = make_scheduler(fast, engine=engine).run_table(
        phase, StateTable(fast.num_nodes)
    )
    return table.to_dicts(), metrics


class TestLubyEngineEquivalence:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_full_state_and_metrics_identical(self, family):
        network = FAMILIES[family]()
        palette = fast_view(network).max_degree + 1
        states = {}
        metrics = {}
        for engine in ENGINES:
            states[engine], metrics[engine] = run_luby_states(
                network, engine, palette
            )
        assert states["reference"] == states["batched"] == states["vectorized"]
        for engine in ("batched", "vectorized"):
            assert metrics[engine].rounds == metrics["reference"].rounds
            assert metrics[engine].messages == metrics["reference"].messages
            assert metrics[engine].total_words == metrics["reference"].total_words
            assert (
                metrics[engine].max_message_words
                == metrics["reference"].max_message_words
            )
        assert metrics["vectorized"].fallback_phase_names == []

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_vertex_results_identical_and_legal(self, family):
        network = FAMILIES[family]()
        results = {
            engine: luby_vertex_coloring(network, seed=3, engine=engine)
            for engine in ENGINES
        }
        assert_legal_vertex_coloring(network, results["vectorized"].colors)
        for engine in ("batched", "vectorized"):
            assert results[engine].colors == results["reference"].colors
            assert np.array_equal(
                results[engine].color_column, results["reference"].color_column
            )

    @settings(max_examples=12, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=40),
        seed=st.integers(min_value=0, max_value=50),
        p_percent=st.integers(min_value=5, max_value=40),
    )
    def test_hypothesis_er_equivalence(self, n, seed, p_percent):
        network = graphs.erdos_renyi(n, p_percent / 100.0, seed=seed)
        palette = max(1, fast_view(network).max_degree + 1)
        sb, mb = run_luby_states(network, "batched", palette, seed=seed)
        sv, mv = run_luby_states(network, "vectorized", palette, seed=seed)
        assert sb == sv
        assert mb.rounds == mv.rounds
        assert mb.messages == mv.messages
        assert mv.fallback_phase_names == []


class TestLineGraphBaselinesVectorized:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize(
        "baseline",
        [panconesi_rizzi_edge_coloring, greedy_reduction_edge_coloring, luby_edge_coloring],
        ids=["pr", "greedy", "luby-edge"],
    )
    def test_three_engines_zero_fallbacks(self, family, baseline):
        network = FAMILIES[family]()
        results = {engine: baseline(network, engine=engine) for engine in ENGINES}
        assert_legal_edge_coloring(network, results["vectorized"].edge_colors)
        for engine in ("batched", "vectorized"):
            assert (
                results[engine].edge_colors == results["reference"].edge_colors
            )
            assert results[engine].palette == results["reference"].palette
            assert (
                results[engine].metrics.rounds
                == results["reference"].metrics.rounds
            )
            assert (
                results[engine].metrics.messages
                == results["reference"].metrics.messages
            )
        assert results["vectorized"].metrics.fallback_phase_names == []

    def test_color_column_matches_mapping(self):
        network = graphs.random_regular(32, 4, seed=5)
        for baseline in (
            panconesi_rizzi_edge_coloring,
            greedy_reduction_edge_coloring,
            luby_edge_coloring,
        ):
            result = baseline(network, engine="vectorized")
            assert result.color_column is not None
            assert result.color_column.tolist() == list(
                result.edge_colors.values()
            )

    def test_fastnetwork_input_accepted(self):
        network = graphs.random_regular(24, 4, seed=6)
        fast = fast_view(network)
        for baseline in (
            panconesi_rizzi_edge_coloring,
            greedy_reduction_edge_coloring,
            luby_edge_coloring,
        ):
            from_fast = baseline(fast, engine="vectorized")
            from_network = baseline(network, engine="vectorized")
            assert from_fast.edge_colors == from_network.edge_colors

    def test_luby_vertex_delta_from_csr_degrees(self):
        # The default palette must equal Delta + 1 as read off the CSR
        # degree column (no Python pass over the adjacency).
        network = graphs.barabasi_albert(40, 3, seed=7)
        fast = fast_view(network)
        result = luby_vertex_coloring(fast)
        assert result.palette == int(fast.degrees_np.max()) + 1
