"""Tests for the exception hierarchy and the top-level public API surface."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import (
    ColoringError,
    GraphPropertyError,
    HypergraphError,
    InvalidParameterError,
    ReproError,
    RoundLimitExceeded,
    SimulationError,
)


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc in (
            ColoringError,
            GraphPropertyError,
            HypergraphError,
            InvalidParameterError,
            RoundLimitExceeded,
            SimulationError,
        ):
            assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self):
        # Parameter and graph errors double as ValueError so generic callers
        # can catch them idiomatically.
        assert issubclass(InvalidParameterError, ValueError)
        assert issubclass(GraphPropertyError, ValueError)
        assert issubclass(HypergraphError, ValueError)

    def test_runtime_error_compatibility(self):
        assert issubclass(SimulationError, RuntimeError)
        assert issubclass(RoundLimitExceeded, SimulationError)

    def test_catching_base_class_catches_specific(self):
        with pytest.raises(ReproError):
            raise RoundLimitExceeded("phase ran too long")


class TestPublicApi:
    def test_version_string(self):
        assert repro.__version__ == "1.4.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_main_entry_points_exposed(self):
        assert callable(repro.color_edges)
        assert callable(repro.color_vertices)
        assert callable(repro.run_defective_color)
        assert callable(repro.run_legal_coloring)
        assert callable(repro.randomized_color_vertices)
        assert callable(repro.tradeoff_color_vertices)

    def test_subpackages_exposed(self):
        for module_name in (
            "graphs",
            "core",
            "local_model",
            "primitives",
            "baselines",
            "verification",
            "analysis",
        ):
            assert hasattr(repro, module_name)

    def test_quickstart_snippet_from_docstring(self):
        # The README / package-docstring quickstart must keep working.
        network = repro.graphs.random_regular(20, 4, seed=1)
        result = repro.color_edges(network, quality="superlinear")
        repro.verification.assert_legal_edge_coloring(network, result.edge_colors)
        assert result.colors_used >= network.max_degree
