"""Tests for the exception hierarchy and the top-level public API surface."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import (
    ColoringError,
    GraphPropertyError,
    HypergraphError,
    InvalidParameterError,
    ReproError,
    RoundLimitExceeded,
    SimulationError,
)


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc in (
            ColoringError,
            GraphPropertyError,
            HypergraphError,
            InvalidParameterError,
            RoundLimitExceeded,
            SimulationError,
        ):
            assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self):
        # Parameter and graph errors double as ValueError so generic callers
        # can catch them idiomatically.
        assert issubclass(InvalidParameterError, ValueError)
        assert issubclass(GraphPropertyError, ValueError)
        assert issubclass(HypergraphError, ValueError)

    def test_runtime_error_compatibility(self):
        assert issubclass(SimulationError, RuntimeError)
        assert issubclass(RoundLimitExceeded, SimulationError)

    def test_catching_base_class_catches_specific(self):
        with pytest.raises(ReproError):
            raise RoundLimitExceeded("phase ran too long")


class TestPublicApi:
    def test_version_string(self):
        assert repro.__version__ == "1.8.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_main_entry_points_exposed(self):
        assert callable(repro.color_edges)
        assert callable(repro.color_graph)
        assert callable(repro.color_vertices)
        assert callable(repro.run_defective_color)
        assert callable(repro.run_legal_coloring)
        assert callable(repro.randomized_color_vertices)
        assert callable(repro.tradeoff_color_vertices)

    def test_subpackages_exposed(self):
        for module_name in (
            "graphs",
            "core",
            "local_model",
            "portfolio",
            "primitives",
            "baselines",
            "verification",
            "analysis",
        ):
            assert hasattr(repro, module_name)

    def test_quickstart_snippet_from_docstring(self):
        # The README / package-docstring quickstart must keep working.
        network = repro.graphs.random_regular(20, 4, seed=1)
        result = repro.color_edges(network, quality="superlinear")
        repro.verification.assert_legal_edge_coloring(network, result.edge_colors)
        assert result.colors_used >= network.max_degree

    def test_root_color_edges_is_the_portfolio_facade(self):
        # The package root dispatches through the portfolio; the
        # preset-explicit core entry points stay where they were.
        assert repro.color_edges is repro.portfolio.color_edges
        assert repro.core.color_edges is not repro.color_edges
        network = repro.graphs.random_regular(16, 4, seed=3)
        result = repro.color_edges(network)
        assert isinstance(result, repro.PortfolioResult)
        assert isinstance(result.decision, repro.PortfolioDecision)
        assert result.decision.algorithm == "legal-color"
        # Duck compatibility with EdgeColoringResult consumers.
        assert result.edge_colors == result.colors
        assert result.route == result.decision.route
        assert result.color_column is not None

    def test_portfolio_override_escape_hatches(self):
        network = repro.graphs.random_regular(16, 4, seed=3)
        result = repro.color_edges(
            network, algorithm="panconesi-rizzi", engine="vectorized"
        )
        assert result.decision.overrides == ("algorithm", "engine")
        assert result.decision.engine == "vectorized"
        assert result.raw.route == "baseline-pr"
        with pytest.raises(InvalidParameterError):
            repro.color_edges(network, algorithm="luby", route="direct")
        with pytest.raises(InvalidParameterError):
            repro.color_graph(network, algorithm="legal-color")  # needs c

    def test_normalized_baseline_returns(self):
        # The four baselines share the core result dataclasses since 1.5.
        network = repro.graphs.random_regular(16, 4, seed=3)
        vertex = repro.baselines.luby_vertex_coloring(network, seed=1)
        assert isinstance(vertex, repro.LegalColoringResult)
        assert vertex.color_column is not None
        for fn in (
            repro.baselines.luby_edge_coloring,
            repro.baselines.panconesi_rizzi_edge_coloring,
            repro.baselines.greedy_reduction_edge_coloring,
        ):
            result = fn(network)
            assert isinstance(result, repro.EdgeColoringResult)
            assert result.color_column is not None

    def test_deprecated_luby_dict_shim(self):
        network = repro.graphs.random_regular(16, 4, seed=3)
        with pytest.warns(DeprecationWarning):
            colors, metrics = repro.baselines.luby_vertex_coloring_dict(
                network, seed=1
            )
        assert colors == repro.baselines.luby_vertex_coloring(network, seed=1).colors
        assert metrics.rounds >= 1
