"""Tests for :mod:`repro.experiments` -- the parallel, caching runner."""

from __future__ import annotations

import json

import pytest

import io

from repro.exceptions import InvalidParameterError
from repro.experiments import (
    CACHE_VERSION,
    ExperimentRunner,
    GraphSpec,
    ResultCache,
    Scenario,
    progress_ticker,
)


def legal_scenario(degree=4, n=16, seed=1, engine="batched", **kwargs) -> Scenario:
    return Scenario.make(
        name=f"legal-d{degree}-n{n}-s{seed}",
        graph=GraphSpec("random_regular", n=n, degree=degree, seed=seed),
        algorithm="legal_coloring",
        params={"c": degree, "quality": "superlinear"},
        engine=engine,
        **kwargs,
    )


def sweep_scenarios(count_at_least=32):
    scenarios = []
    for degree in (2, 3, 4, 6):
        for seed in (0, 1):
            spec = GraphSpec("random_regular", n=16, degree=degree, seed=seed)
            scenarios.append(
                Scenario.make(
                    name=f"legal-d{degree}-s{seed}",
                    graph=spec,
                    algorithm="legal_coloring",
                    params={"c": degree},
                )
            )
            scenarios.append(
                Scenario.make(
                    name=f"edge-d{degree}-s{seed}",
                    graph=spec,
                    algorithm="edge_coloring",
                    params={"quality": "superlinear", "route": "direct"},
                )
            )
            scenarios.append(
                Scenario.make(
                    name=f"pr-d{degree}-s{seed}",
                    graph=spec,
                    algorithm="panconesi_rizzi",
                )
            )
            scenarios.append(
                Scenario.make(
                    name=f"tradeoff-d{degree}-s{seed}",
                    graph=spec,
                    algorithm="tradeoff",
                    params={"c": degree, "g": "sqrt"},
                )
            )
    assert len(scenarios) >= count_at_least
    return scenarios


class TestParallelSweep:
    def test_32_scenarios_sharded_across_processes_with_caching(self, tmp_path):
        scenarios = sweep_scenarios(32)
        runner = ExperimentRunner(cache_dir=tmp_path, max_workers=4)

        results = runner.run(scenarios)
        assert len(results) == len(scenarios)
        # Results come back in input order, fresh and verified.
        assert [r.name for r in results] == [s.name for s in scenarios]
        assert all(not r.cached for r in results)
        assert all(r.verified for r in results)
        assert all(r.rounds > 0 for r in results)

        # Second pass: everything is served from the on-disk cache, verbatim.
        again = runner.run(scenarios)
        assert all(r.cached for r in again)
        for fresh, cached in zip(results, again):
            assert cached.payload == fresh.payload

    def test_cache_survives_runner_instances(self, tmp_path):
        scenario = legal_scenario()
        ExperimentRunner(cache_dir=tmp_path, max_workers=0).run([scenario])
        (hit,) = ExperimentRunner(cache_dir=tmp_path, max_workers=0).run([scenario])
        assert hit.cached

    def test_duplicate_scenarios_execute_once(self, tmp_path):
        scenario = legal_scenario()
        runner = ExperimentRunner(cache_dir=tmp_path, max_workers=0)
        first, second = runner.run([scenario, scenario])
        assert first.payload == second.payload
        # Only one cache entry was produced for the pair.
        assert len(runner.cache) == 1

    def test_without_cache_dir_everything_is_fresh(self):
        scenario = legal_scenario(n=12, degree=3, seed=2)
        runner = ExperimentRunner(cache_dir=None, max_workers=0)
        (first,) = runner.run([scenario])
        (second,) = runner.run([scenario])
        assert not first.cached and not second.cached
        assert first.coloring_digest == second.coloring_digest


class TestSweepProgress:
    """The optional per-scenario progress callback (off by default)."""

    @staticmethod
    def _scenarios(count=6):
        return [
            legal_scenario(degree=3, n=12, seed=seed) for seed in range(count)
        ]

    @pytest.mark.parametrize("max_workers", [0, 3])
    def test_callback_fires_once_per_scenario(self, tmp_path, max_workers):
        scenarios = self._scenarios()
        events = []
        runner = ExperimentRunner(cache_dir=tmp_path, max_workers=max_workers)
        runner.run(scenarios, on_progress=lambda *event: events.append(event))

        assert [done for done, _, _, _ in events] == list(range(1, len(scenarios) + 1))
        assert all(total == len(scenarios) for _, total, _, _ in events)
        assert {s.name for _, _, s, _ in events} == {s.name for s in scenarios}
        assert all(not cached for _, _, _, cached in events)

        # Second pass: everything is a cache hit and is reported as such.
        events.clear()
        runner.run(scenarios, on_progress=lambda *event: events.append(event))
        assert len(events) == len(scenarios)
        assert all(cached for _, _, _, cached in events)

    def test_duplicates_are_each_reported(self):
        scenario = legal_scenario(degree=3, n=12)
        events = []
        runner = ExperimentRunner(cache_dir=None, max_workers=0)
        runner.run([scenario, scenario], on_progress=lambda *e: events.append(e))
        assert [done for done, _, _, _ in events] == [1, 2]

    def test_off_by_default(self, tmp_path):
        # No callback anywhere: the sweep must run exactly as before.
        runner = ExperimentRunner(cache_dir=tmp_path, max_workers=0)
        assert runner.on_progress is None
        (result,) = runner.run([legal_scenario(degree=3, n=12)])
        assert result.rounds > 0

    def test_constructor_default_callback_is_used(self):
        events = []
        runner = ExperimentRunner(
            cache_dir=None,
            max_workers=0,
            on_progress=lambda *event: events.append(event),
        )
        runner.run([legal_scenario(degree=3, n=12)])
        assert [done for done, _, _, _ in events] == [1]

    def test_stderr_ticker_format(self):
        stream = io.StringIO()
        tick = progress_ticker(stream)
        runner = ExperimentRunner(cache_dir=None, max_workers=0, on_progress=tick)
        scenario = legal_scenario(degree=3, n=12)
        runner.run([scenario])
        assert stream.getvalue() == f"[1/1] {scenario.name}\n"


class TestScenarioAndCache:
    def test_capture_colors_round_trips_node_identifiers(self):
        scenario = Scenario.make(
            name="edge-capture",
            graph=GraphSpec("random_regular", n=10, degree=3, seed=3),
            algorithm="edge_coloring",
            params={"quality": "superlinear", "route": "direct"},
            capture_colors=True,
        )
        runner = ExperimentRunner(cache_dir=None, max_workers=0)
        (result,) = runner.run([scenario])
        coloring = result.coloring
        # Edge identifiers are 2-tuples; literal_eval restores them.
        assert all(isinstance(node, tuple) and len(node) == 2 for node in coloring)
        assert len(coloring) == result.num_edges

    def test_uncaptured_coloring_raises(self):
        runner = ExperimentRunner(cache_dir=None, max_workers=0)
        (result,) = runner.run([legal_scenario(n=12, degree=3)])
        with pytest.raises(ValueError):
            result.coloring

    def test_unknown_algorithm_rejected(self):
        scenario = Scenario.make(
            name="bad",
            graph=GraphSpec("random_regular", n=10, degree=3, seed=0),
            algorithm="no-such-algorithm",
        )
        with pytest.raises(InvalidParameterError):
            ExperimentRunner(max_workers=0).run([scenario])

    def test_unknown_graph_family_rejected(self):
        with pytest.raises(InvalidParameterError):
            GraphSpec("no-such-family", n=4).build()

    def test_cache_files_are_self_describing_json(self, tmp_path):
        scenario = legal_scenario()
        ExperimentRunner(cache_dir=tmp_path, max_workers=0).run([scenario])
        files = list((tmp_path / f"v{CACHE_VERSION}").glob("*/*.json"))
        assert len(files) == 1
        entry = json.loads(files[0].read_text())
        assert entry["key"] == scenario.key()
        assert entry["payload"]["rounds"] > 0

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        from repro.experiments import CacheIntegrityWarning

        cache = ResultCache(tmp_path)
        token = legal_scenario().cache_token()
        cache.put(token, {"k": 1}, {"rounds": 3})
        path = cache._path(token)
        path.write_text("{not json")
        with pytest.warns(CacheIntegrityWarning):
            assert cache.get(token) is None


class TestEngineCacheKeys:
    """Regression: cache tokens must always name the concrete engine.

    Results computed by one engine must never be served for another --
    in particular ``"vectorized"`` results can never collide with
    ``"batched"`` ones cached before the engine existed -- and a scenario
    built with ``engine=None`` must resolve the process default *eagerly* so
    its cache identity cannot drift when the default changes.
    """

    def test_tokens_differ_per_engine(self):
        tokens = {
            legal_scenario(engine=engine).cache_token()
            for engine in ("reference", "batched", "vectorized")
        }
        assert len(tokens) == 3

    def test_engine_none_resolves_to_concrete_default(self):
        from repro.local_model import default_engine, use_engine

        scenario = legal_scenario(engine=None)
        assert scenario.engine == default_engine()
        assert scenario.key()["engine"] == default_engine()
        with use_engine("vectorized"):
            pinned = legal_scenario(engine=None)
        assert pinned.engine == "vectorized"
        # The resolution happened at construction time: the token does not
        # change when the ambient default changes afterwards.
        with use_engine("reference"):
            assert pinned.cache_token() == pinned.with_engine("vectorized").cache_token()

    def test_with_engine_none_resolves_to_concrete_default(self):
        from repro.local_model import default_engine

        scenario = legal_scenario(engine="reference").with_engine(None)
        assert scenario.engine == default_engine()

    def test_directly_constructed_scenario_resolves_in_key(self):
        from repro.local_model import default_engine

        scenario = Scenario(
            name="direct",
            graph=GraphSpec("random_regular", n=10, degree=3, seed=0),
            algorithm="legal_coloring",
            engine=None,
        )
        assert scenario.key()["engine"] == default_engine()

    def test_vectorized_and_batched_cache_entries_coexist(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path, max_workers=0)
        batched = legal_scenario(engine="batched")
        vectorized = legal_scenario(engine="vectorized")
        first = runner.run([batched, vectorized])
        assert [r.cached for r in first] == [False, False]
        assert len(runner.cache) == 2
        again = runner.run([batched, vectorized])
        assert [r.cached for r in again] == [True, True]
        # Same deterministic algorithm, same graph: identical colorings.
        assert again[0].coloring_digest == again[1].coloring_digest
