"""Unit tests for the verification oracles."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import graphs
from repro.exceptions import ColoringError
from repro.local_model import Network
from repro.local_model.fast_network import fast_view
from repro.verification.bounds import (
    assert_defective_coloring,
    theorem_3_7_defect_bound,
    verify_legal_coloring_result,
)
from repro.verification.coloring import (
    assert_legal_edge_coloring,
    assert_legal_vertex_coloring,
    coloring_defect,
    edge_coloring_defect,
    is_legal_edge_coloring,
    is_legal_vertex_coloring,
    max_color,
    palette_size,
)


class TestVertexColoringOracles:
    def test_legal_coloring_accepted(self, triangle):
        colors = {node: index + 1 for index, node in enumerate(triangle.nodes())}
        assert is_legal_vertex_coloring(triangle, colors)
        assert_legal_vertex_coloring(triangle, colors)

    def test_monochromatic_edge_rejected(self, triangle):
        colors = {node: 1 for node in triangle.nodes()}
        assert not is_legal_vertex_coloring(triangle, colors)
        with pytest.raises(ColoringError):
            assert_legal_vertex_coloring(triangle, colors)

    def test_missing_vertex_rejected(self, triangle):
        colors = {triangle.nodes()[0]: 1}
        with pytest.raises(ColoringError):
            is_legal_vertex_coloring(triangle, colors)

    def test_defect_measurement(self):
        path = graphs.path_graph(5)
        alternating = {node: node % 2 + 1 for node in path.nodes()}
        constant = {node: 1 for node in path.nodes()}
        assert coloring_defect(path, alternating) == 0
        assert coloring_defect(path, constant) == 2

    def test_palette_helpers(self):
        colors = {1: 3, 2: 3, 3: 7}
        assert palette_size(colors) == 2
        assert max_color(colors) == 7
        assert max_color({}) == 0


class TestEdgeColoringOracles:
    def test_legal_edge_coloring_accepted(self, triangle):
        edge_colors = {edge: index + 1 for index, edge in enumerate(triangle.edges())}
        assert is_legal_edge_coloring(triangle, edge_colors)
        assert_legal_edge_coloring(triangle, edge_colors)

    def test_lookup_accepts_reversed_endpoints(self, triangle):
        edge_colors = {(v, u): index + 1 for index, (u, v) in enumerate(triangle.edges())}
        assert is_legal_edge_coloring(triangle, edge_colors)

    def test_incident_same_color_rejected(self):
        star = graphs.star_graph(3)
        edge_colors = {edge: 1 for edge in star.edges()}
        assert not is_legal_edge_coloring(star, edge_colors)
        with pytest.raises(ColoringError):
            assert_legal_edge_coloring(star, edge_colors)

    def test_missing_edge_rejected(self, triangle):
        edge_colors = {triangle.edges()[0]: 1}
        with pytest.raises(ColoringError):
            is_legal_edge_coloring(triangle, edge_colors)

    def test_edge_defect_measurement(self):
        star = graphs.star_graph(4)
        same = {edge: 1 for edge in star.edges()}
        distinct = {edge: index + 1 for index, edge in enumerate(star.edges())}
        assert edge_coloring_defect(star, same) == 3
        assert edge_coloring_defect(star, distinct) == 0

    def test_disjoint_edges_may_share_colors(self):
        network = Network.from_edges([(1, 2), (3, 4)])
        edge_colors = {edge: 1 for edge in network.edges()}
        assert is_legal_edge_coloring(network, edge_colors)


class TestArrayOracles:
    """The masked-CSR oracle paths agree with the mapping paths exactly --
    verdicts, defects, and error messages byte for byte."""

    MAKERS = [
        lambda: graphs.random_regular(24, 4, seed=7),
        lambda: graphs.erdos_renyi(25, 0.2, seed=3),
        lambda: graphs.star_graph(6),
        lambda: graphs.grid_graph(4, 5),
        lambda: graphs.clique_with_pendants(5),
    ]

    @staticmethod
    def _message(callable_, *args):
        try:
            callable_(*args)
        except ColoringError as error:
            return str(error)
        return None

    @pytest.mark.parametrize("maker", MAKERS)
    def test_vertex_oracles_agree_across_forms(self, maker):
        network = maker()
        fast = fast_view(network)
        rnd = random.Random(0)
        for _ in range(20):
            colors = {node: rnd.randrange(1, 5) for node in network.nodes()}
            column = np.array([colors[node] for node in fast.order], dtype=np.int64)
            assert is_legal_vertex_coloring(fast, column) == is_legal_vertex_coloring(
                network, colors
            )
            assert coloring_defect(fast, column) == coloring_defect(network, colors)
            assert self._message(
                assert_legal_vertex_coloring, fast, column
            ) == self._message(assert_legal_vertex_coloring, network, colors)
            # Mixed forms dispatch to the array kernels too.
            assert is_legal_vertex_coloring(fast, colors) == is_legal_vertex_coloring(
                network, column
            )

    @pytest.mark.parametrize("maker", MAKERS)
    def test_edge_oracles_agree_across_forms(self, maker):
        network = maker()
        fast = fast_view(network)
        rnd = random.Random(1)
        for _ in range(20):
            edge_colors = {edge: rnd.randrange(1, 7) for edge in network.edges()}
            column = np.array(
                [edge_colors[edge] for edge in network.edges()], dtype=np.int64
            )
            assert is_legal_edge_coloring(fast, column) == is_legal_edge_coloring(
                network, edge_colors
            )
            assert edge_coloring_defect(fast, column) == edge_coloring_defect(
                network, edge_colors
            )
            assert self._message(
                assert_legal_edge_coloring, fast, column
            ) == self._message(assert_legal_edge_coloring, network, edge_colors)

    def test_missing_entries_report_the_same_errors(self):
        network = graphs.cycle_graph(3)
        fast = fast_view(network)
        short_vertex = self._message(
            is_legal_vertex_coloring, fast, np.array([1], dtype=np.int64)
        )
        mapping_vertex = self._message(
            is_legal_vertex_coloring, network, {network.nodes()[0]: 1}
        )
        assert short_vertex == mapping_vertex
        short_edge = self._message(
            is_legal_edge_coloring, fast, np.array([1], dtype=np.int64)
        )
        mapping_edge = self._message(
            is_legal_edge_coloring, network, {network.edges()[0]: 1}
        )
        assert short_edge == mapping_edge
        oversized = self._message(
            is_legal_vertex_coloring, fast, np.ones(9, dtype=np.int64)
        )
        assert "9 entries" in oversized

    def test_palette_helpers_accept_columns(self):
        column = np.array([3, 3, 7], dtype=np.int64)
        assert palette_size(column) == 2
        assert max_color(column) == 7
        assert max_color(np.zeros(0, dtype=np.int64)) == 0
        assert palette_size(np.zeros(0, dtype=np.int64)) == 0

    def test_column_verification_on_a_fast_built_workload(self):
        fast = graphs.random_regular(40, 6, seed=2, backend="fast")
        from repro.core import color_vertices

        result = color_vertices(fast, c=6, quality="superlinear", engine="vectorized")
        assert is_legal_vertex_coloring(fast, result.color_column)
        assert coloring_defect(fast, result.color_column) == 0
        broken = result.color_column.copy()
        broken[int(fast.indices_np[0])] = broken[0]  # recolor a neighbor of node 0
        assert not is_legal_vertex_coloring(fast, broken)
        with pytest.raises(ColoringError):
            assert_legal_vertex_coloring(fast, broken)


class TestBoundCheckers:
    def test_theorem_3_7_formula(self):
        assert theorem_3_7_defect_bound(Lambda=32, b=2, p=4, c=2) == 2 * (4 + 8 + 1)
        assert theorem_3_7_defect_bound(Lambda=10, b=1, p=10, c=3) == 3 * (1 + 1 + 1)

    def test_assert_defective_coloring_accepts_valid(self, small_regular):
        colors = {node: 1 + (small_regular.unique_id(node) % 3) for node in small_regular.nodes()}
        defect = coloring_defect(small_regular, colors)
        assert_defective_coloring(small_regular, colors, max_defect=defect, max_palette=3)

    def test_assert_defective_coloring_rejects_excess_defect(self, small_regular):
        colors = {node: 1 for node in small_regular.nodes()}
        with pytest.raises(ColoringError):
            assert_defective_coloring(small_regular, colors, max_defect=1, max_palette=1)

    def test_assert_defective_coloring_rejects_excess_palette(self, triangle):
        colors = {node: index + 1 for index, node in enumerate(triangle.nodes())}
        with pytest.raises(ColoringError):
            assert_defective_coloring(triangle, colors, max_defect=0, max_palette=2)

    def test_assert_defective_coloring_rejects_nonpositive_colors(self, triangle):
        colors = {node: 0 for node in triangle.nodes()}
        with pytest.raises(ColoringError):
            assert_defective_coloring(triangle, colors, max_defect=3, max_palette=3)

    def test_verify_legal_coloring_result(self, triangle):
        colors = {node: index + 1 for index, node in enumerate(triangle.nodes())}
        verify_legal_coloring_result(triangle, colors, palette_bound=3)
        with pytest.raises(ColoringError):
            verify_legal_coloring_result(triangle, colors, palette_bound=2)
