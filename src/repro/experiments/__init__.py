"""Parallel experiment sweeps with on-disk result caching.

This package turns one-off benchmark loops into declarative, shardable
sweeps:

* :class:`~repro.experiments.scenarios.GraphSpec` /
  :class:`~repro.experiments.scenarios.Scenario` describe a workload as plain
  picklable data (graph family, algorithm name, parameters, seed, engine);
* :class:`~repro.experiments.runner.ExperimentRunner` executes scenarios over
  a pluggable backend -- ``"serial"`` in-process, ``"process"`` sharding
  across ``ProcessPoolExecutor`` workers, or ``"workdir"`` distributing over
  independent worker processes coordinating through a shared spool directory
  (see :mod:`repro.experiments.executors` / :mod:`repro.experiments.spool` /
  :mod:`repro.experiments.worker`) -- and memoizes results on disk, keyed by
  the SHA-256 of the scenario's canonical key (see
  :mod:`repro.experiments.cache` for the layout);
* results come back as :class:`~repro.experiments.runner.ScenarioResult`
  objects exposing rounds / messages / palette / colors-used / wall time and
  a stable coloring digest.

Quickstart::

    from repro.experiments import ExperimentRunner, GraphSpec, Scenario

    scenarios = [
        Scenario.make(
            name=f"legal-d{degree}",
            graph=GraphSpec("random_regular", n=256, degree=degree, seed=1),
            algorithm="legal_coloring",
            params={"c": 4, "quality": "superlinear"},
        )
        for degree in (8, 16, 32)
    ]
    results = ExperimentRunner(cache_dir=".experiment_cache").run(scenarios)
    for result in results:
        print(result.name, result.rounds, result.colors_used, result.cached)
"""

from repro.experiments.cache import (
    CACHE_ENV_VAR,
    CACHE_VERSION,
    DEFAULT_QUARANTINE_KEEP,
    QUARANTINE_DIR_NAME,
    CacheIntegrityWarning,
    ResultCache,
    default_cache_dir,
)
from repro.experiments.executors import (
    EXECUTOR_BACKENDS,
    ExecutorBackend,
    SoftTimeoutExpired,
    call_with_soft_timeout,
    make_executor,
    register_executor_backend,
)
from repro.experiments.runner import (
    ExperimentRunner,
    ScenarioResult,
    SweepStats,
    progress_ticker,
    run_scenario,
)
from repro.experiments.spool import Lease, ResultEnvelope, Spool, SpoolConfig
from repro.experiments.scenarios import (
    ALGORITHMS,
    G_FUNCTIONS,
    GRAPH_FAMILIES,
    GraphSpec,
    Scenario,
    coloring_digest,
    payload_digest,
    register_algorithm,
    register_graph_family,
)

def __getattr__(name: str):
    # SpoolWorker is imported lazily so ``python -m repro.experiments.worker``
    # does not trip runpy's found-in-sys.modules RuntimeWarning (the package
    # import would otherwise load the module runpy is about to execute).
    if name == "SpoolWorker":
        from repro.experiments.worker import SpoolWorker

        return SpoolWorker
    raise AttributeError(name)


__all__ = [
    "ALGORITHMS",
    "CACHE_ENV_VAR",
    "CACHE_VERSION",
    "CacheIntegrityWarning",
    "DEFAULT_QUARANTINE_KEEP",
    "EXECUTOR_BACKENDS",
    "ExecutorBackend",
    "ExperimentRunner",
    "G_FUNCTIONS",
    "GRAPH_FAMILIES",
    "GraphSpec",
    "Lease",
    "QUARANTINE_DIR_NAME",
    "ResultCache",
    "ResultEnvelope",
    "Scenario",
    "ScenarioResult",
    "SoftTimeoutExpired",
    "Spool",
    "SpoolConfig",
    "SpoolWorker",
    "SweepStats",
    "call_with_soft_timeout",
    "coloring_digest",
    "default_cache_dir",
    "make_executor",
    "payload_digest",
    "progress_ticker",
    "register_algorithm",
    "register_executor_backend",
    "register_graph_family",
    "run_scenario",
]
