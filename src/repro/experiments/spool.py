"""Shared-directory spool for the ``"workdir"`` distributed executor backend.

The spool is the coordination substrate between an
:class:`~repro.experiments.ExperimentRunner` coordinator and any number of
independent worker processes (``python -m repro.experiments.worker <dir>``)
that share nothing but a directory (local disk, NFS, a container volume).
Every primitive is a plain file operation whose atomicity comes from
``os.rename`` / ``os.replace``, so the protocol needs no locks, sockets, or
daemons:

.. code-block:: text

    <spool>/
        config.json        # coordinator-written: cache dir, lease TTL, ...
        tasks/<id>.json    # claimable task records (scenario as JSON)
        leases/<id>.json   # claimed tasks (the task file, atomically renamed)
        meta/<id>.json     # lease metadata: worker, claim time, deadline
        heartbeats/<w>     # one file per worker, touched while it lives
        results/<id>--a<attempt>--<worker>.json   # result envelopes
        quarantine/        # rejected envelopes, moved aside for forensics
        stop               # sentinel: workers drain and exit when present

*Claiming* a task is ``os.rename(tasks/X, leases/X)`` -- exactly one worker
can win because rename-with-source-missing fails for everyone else.  A
*lease* carries a TTL deadline, but expiry alone never revokes it: the
coordinator's reaper reassigns a task only when the lease is past its
deadline **and** the claiming worker's heartbeat has gone stale, so a slow
but live worker keeps its claim while a dead or partitioned one loses it.
*Completion* is an atomically renamed result envelope; envelopes are
digest-stamped (:func:`~repro.experiments.scenarios.payload_digest`) and
idempotent -- the first digest-valid envelope per task wins, later
duplicates (a stalled worker finishing after its task was reassigned) are
counted and discarded.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

#: Spool layout version, recorded in ``config.json``; bump on layout changes.
SPOOL_VERSION = 1

_TASKS = "tasks"
_LEASES = "leases"
_META = "meta"
_HEARTBEATS = "heartbeats"
_RESULTS = "results"
_QUARANTINE = "quarantine"
_CONFIG = "config.json"
_STOP = "stop"


def _atomic_write_json(path: Path, document: Any) -> None:
    """Write ``document`` to ``path`` via a same-directory tmp file + rename."""
    descriptor, temp_name = tempfile.mkstemp(
        prefix=f".{path.stem[:12]}-", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def _read_json(path: Path) -> Optional[Any]:
    try:
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


@dataclass(frozen=True)
class SpoolConfig:
    """Coordinator-written sweep configuration, read by every worker.

    ``cache_dir`` names the shared :class:`~repro.experiments.cache.ResultCache`
    root that workers write finished payloads through to (``None`` disables
    the shared store); ``timeout`` is the per-scenario soft timeout workers
    enforce with the same watchdog used by the serial backend.
    """

    cache_dir: Optional[str] = None
    lease_ttl: float = 5.0
    heartbeat_interval: float = 1.0
    timeout: Optional[float] = None
    version: int = SPOOL_VERSION

    def to_document(self) -> Dict[str, Any]:
        return {
            "cache_dir": self.cache_dir,
            "lease_ttl": self.lease_ttl,
            "heartbeat_interval": self.heartbeat_interval,
            "timeout": self.timeout,
            "version": self.version,
        }

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "SpoolConfig":
        return cls(
            cache_dir=document.get("cache_dir"),
            lease_ttl=float(document.get("lease_ttl", 5.0)),
            heartbeat_interval=float(document.get("heartbeat_interval", 1.0)),
            timeout=(
                None
                if document.get("timeout") is None
                else float(document["timeout"])
            ),
            version=int(document.get("version", SPOOL_VERSION)),
        )


@dataclass(frozen=True)
class Lease:
    """One claimed task: who holds it, since when, and its TTL deadline."""

    task_id: str
    worker: str
    claimed_at: float
    deadline: float

    def __getattr__(self, name: str) -> Any:
        # Same dunder guard as ScenarioResult: protocol probes (pickle's
        # __getstate__, copy's __deepcopy__, ...) must fail fast with
        # AttributeError rather than being searched anywhere else.
        raise AttributeError(name)

    def to_document(self) -> Dict[str, Any]:
        return {
            "task_id": self.task_id,
            "worker": self.worker,
            "claimed_at": self.claimed_at,
            "deadline": self.deadline,
        }

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "Lease":
        return cls(
            task_id=str(document["task_id"]),
            worker=str(document["worker"]),
            claimed_at=float(document["claimed_at"]),
            deadline=float(document["deadline"]),
        )


@dataclass
class ResultEnvelope:
    """One worker execution's outcome, as written into ``results/``.

    Mirrors the pool workers' in-memory envelope: the JSON-safe ``payload``
    plus resilience metadata that must never leak into the cached payload
    itself (the engine that actually ran after degradation, the abandoned
    engines, and the ``integrity`` digest stamped *before* any injected
    transport corruption).  ``status == "error"`` envelopes carry the
    exception type and message instead of a payload.

    Payload keys are readable as attributes (``envelope.rounds``), with the
    same dunder guard as :class:`~repro.experiments.runner.ScenarioResult`
    so envelopes survive pickle / deepcopy round trips.
    """

    task_id: str
    index: int
    attempt: int
    worker: str
    status: str = "ok"
    payload: Optional[Dict[str, Any]] = None
    engine_used: Optional[str] = None
    degraded_from: Tuple[str, ...] = ()
    integrity: Optional[str] = None
    error: Optional[str] = None
    error_type: Optional[str] = None

    def __getattr__(self, name: str) -> Any:
        # Dunder probes (pickle's __getstate__, copy's __deepcopy__, ...)
        # must raise AttributeError instead of being answered from the
        # payload dict -- the same guard as ScenarioResult, so envelopes
        # survive deepcopy/pickle round trips.
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        payload = self.__dict__.get("payload")
        if payload is None:
            raise AttributeError(name)
        try:
            return payload[name]
        except KeyError:
            raise AttributeError(name) from None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def verified(self) -> bool:
        """Whether the payload matches the integrity digest stamped on it."""
        from repro.experiments.scenarios import payload_digest

        return (
            self.status == "ok"
            and self.payload is not None
            and self.integrity == payload_digest(self.payload)
        )

    def filename(self) -> str:
        return f"{self.task_id}--a{self.attempt}--{self.worker}.json"

    def to_document(self) -> Dict[str, Any]:
        return {
            "task_id": self.task_id,
            "index": self.index,
            "attempt": self.attempt,
            "worker": self.worker,
            "status": self.status,
            "payload": self.payload,
            "engine_used": self.engine_used,
            "degraded_from": list(self.degraded_from),
            "integrity": self.integrity,
            "error": self.error,
            "error_type": self.error_type,
        }

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "ResultEnvelope":
        return cls(
            task_id=str(document["task_id"]),
            index=int(document["index"]),
            attempt=int(document["attempt"]),
            worker=str(document["worker"]),
            status=str(document.get("status", "ok")),
            payload=document.get("payload"),
            engine_used=document.get("engine_used"),
            degraded_from=tuple(document.get("degraded_from") or ()),
            integrity=document.get("integrity"),
            error=document.get("error"),
            error_type=document.get("error_type"),
        )


@dataclass
class Spool:
    """File-protocol operations over one spool directory (see module doc)."""

    root: Path
    _dirs_ready: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -------------------------------------------------------------- layout

    @property
    def tasks_dir(self) -> Path:
        return self.root / _TASKS

    @property
    def leases_dir(self) -> Path:
        return self.root / _LEASES

    @property
    def meta_dir(self) -> Path:
        return self.root / _META

    @property
    def heartbeats_dir(self) -> Path:
        return self.root / _HEARTBEATS

    @property
    def results_dir(self) -> Path:
        return self.root / _RESULTS

    @property
    def quarantine_dir(self) -> Path:
        return self.root / _QUARANTINE

    def create(self) -> "Spool":
        """Ensure the directory layout exists (idempotent)."""
        for directory in (
            self.root,
            self.tasks_dir,
            self.leases_dir,
            self.meta_dir,
            self.heartbeats_dir,
            self.results_dir,
            self.quarantine_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        self._dirs_ready = True
        return self

    # ------------------------------------------------------------- config

    def write_config(self, config: SpoolConfig) -> None:
        _atomic_write_json(self.root / _CONFIG, config.to_document())

    def read_config(self, wait: float = 0.0, poll: float = 0.05) -> Optional[SpoolConfig]:
        """The coordinator's config, waiting up to ``wait`` seconds for it.

        Workers may be launched before the coordinator finished writing the
        spool; they poll briefly instead of dying on the race.
        """
        deadline = time.monotonic() + wait
        while True:
            document = _read_json(self.root / _CONFIG)
            if isinstance(document, dict):
                return SpoolConfig.from_document(document)
            if time.monotonic() >= deadline:
                return None
            time.sleep(poll)

    def request_stop(self) -> None:
        try:
            (self.root / _STOP).touch()
        except OSError:
            pass

    def clear_stop(self) -> None:
        try:
            (self.root / _STOP).unlink()
        except OSError:
            pass

    def stop_requested(self) -> bool:
        return (self.root / _STOP).exists()

    # -------------------------------------------------------------- tasks

    def task_document(
        self,
        task_id: str,
        index: int,
        attempt: int,
        token: str,
        scenario_document: Dict[str, Any],
    ) -> Dict[str, Any]:
        return {
            "task_id": task_id,
            "index": index,
            "attempt": attempt,
            "token": token,
            "scenario": scenario_document,
        }

    def add_task(self, document: Dict[str, Any]) -> None:
        """Enqueue (or re-enqueue, with a bumped attempt) one task record."""
        _atomic_write_json(self.tasks_dir / f"{document['task_id']}.json", document)

    def has_task_or_lease(self, task_id: str) -> bool:
        return (self.tasks_dir / f"{task_id}.json").exists() or (
            self.leases_dir / f"{task_id}.json"
        ).exists()

    def pending_task_ids(self) -> List[str]:
        try:
            names = sorted(p.stem for p in self.tasks_dir.glob("*.json"))
        except OSError:
            return []
        return names

    # ------------------------------------------------------------- claims

    def claim(self, task_id: str, worker: str, ttl: float) -> Optional[Dict[str, Any]]:
        """Atomically claim ``task_id`` for ``worker``; ``None`` if lost.

        The claim is the rename ``tasks/<id>.json -> leases/<id>.json``:
        exactly one contender's rename finds the source present.  The lease
        metadata (claim time, TTL deadline) is written next to it for the
        coordinator's reaper.
        """
        source = self.tasks_dir / f"{task_id}.json"
        target = self.leases_dir / f"{task_id}.json"
        try:
            os.rename(source, target)
        except OSError:
            return None
        now = time.time()
        lease = Lease(task_id=task_id, worker=worker, claimed_at=now, deadline=now + ttl)
        try:
            _atomic_write_json(self.meta_dir / f"{task_id}.json", lease.to_document())
        except OSError:
            pass
        document = _read_json(target)
        if not isinstance(document, dict):
            # The claimed file is unreadable (should not happen: writes are
            # atomic).  Release the claim so the reaper can recover it.
            self.release(task_id)
            return None
        return document

    def claim_next(self, worker: str, ttl: float) -> Optional[Dict[str, Any]]:
        """Claim the first available task in task-id order, or ``None``."""
        for task_id in self.pending_task_ids():
            document = self.claim(task_id, worker, ttl)
            if document is not None:
                return document
        return None

    def release(self, task_id: str) -> None:
        """Drop the lease + metadata for ``task_id`` (completion or steal)."""
        for path in (
            self.leases_dir / f"{task_id}.json",
            self.meta_dir / f"{task_id}.json",
        ):
            try:
                path.unlink()
            except OSError:
                pass

    def live_leases(self) -> List[Lease]:
        leases = []
        for path in sorted(self.meta_dir.glob("*.json")):
            document = _read_json(path)
            if isinstance(document, dict):
                try:
                    leases.append(Lease.from_document(document))
                except (KeyError, TypeError, ValueError):
                    continue
        return leases

    # --------------------------------------------------------- heartbeats

    def heartbeat(self, worker: str) -> None:
        """Record that ``worker`` is alive *now* (file mtime is the clock)."""
        path = self.heartbeats_dir / worker
        try:
            path.touch()
            os.utime(path)
        except OSError:
            pass

    def heartbeat_age(self, worker: str, now: Optional[float] = None) -> Optional[float]:
        """Seconds since ``worker`` last heartbeat, or ``None`` if never."""
        if now is None:
            now = time.time()
        try:
            return max(0.0, now - (self.heartbeats_dir / worker).stat().st_mtime)
        except OSError:
            return None

    def reap_expired(
        self, ttl: float, now: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        """Revoke leases whose deadline passed *and* whose worker went quiet.

        Returns the recovered task documents (for the coordinator to charge
        an attempt and re-enqueue); the lease and its metadata are removed.
        A lease whose worker still heartbeats within ``ttl`` is left alone
        no matter how old it is -- slowness is not death.
        """
        if now is None:
            now = time.time()
        recovered: List[Dict[str, Any]] = []
        for meta_path in sorted(self.meta_dir.glob("*.json")):
            document = _read_json(meta_path)
            if not isinstance(document, dict):
                continue
            try:
                lease = Lease.from_document(document)
            except (KeyError, TypeError, ValueError):
                continue
            if now <= lease.deadline:
                continue
            age = self.heartbeat_age(lease.worker, now)
            if age is not None and age < ttl:
                continue
            lease_path = self.leases_dir / f"{lease.task_id}.json"
            task = _read_json(lease_path)
            self.release(lease.task_id)
            if isinstance(task, dict):
                recovered.append(task)
            # A missing/unreadable lease file means the worker completed and
            # released between our reads; the envelope speaks for the task.
        return recovered

    # ------------------------------------------------------------ results

    def write_envelope(self, envelope: ResultEnvelope) -> Path:
        path = self.results_dir / envelope.filename()
        _atomic_write_json(path, envelope.to_document())
        return path

    def new_envelopes(
        self, seen: Set[str]
    ) -> List[Tuple[Path, Optional[ResultEnvelope]]]:
        """Unprocessed result envelopes, oldest name first.

        Adds every returned filename to ``seen``.  An unparseable or
        malformed envelope is returned as ``(path, None)`` so the caller can
        quarantine it and charge the task an attempt (the task id is
        recoverable from the filename).
        """
        fresh: List[Tuple[Path, Optional[ResultEnvelope]]] = []
        try:
            paths = sorted(self.results_dir.glob("*.json"))
        except OSError:
            return fresh
        for path in paths:
            if path.name in seen:
                continue
            seen.add(path.name)
            document = _read_json(path)
            envelope: Optional[ResultEnvelope] = None
            if isinstance(document, dict):
                try:
                    envelope = ResultEnvelope.from_document(document)
                except (KeyError, TypeError, ValueError):
                    envelope = None
            fresh.append((path, envelope))
        return fresh

    def quarantine(self, path: Path) -> None:
        """Move a rejected envelope aside for forensics (best-effort)."""
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:
            pass
