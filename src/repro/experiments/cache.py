"""On-disk result cache for experiment scenarios.

Layout (documented in the README):

.. code-block:: text

    <cache_dir>/
        v2/                      # bumped when the payload format changes
            ab/                  # first two hex digits of the cache token
                ab3f...e1.json   # one file per scenario result
        quarantine/              # corrupt/tampered entries, moved aside

Each file holds ``{"key": <scenario key>, "payload": <result payload>,
"sha256": <payload digest>}``; the ``key`` is stored alongside the payload so
cache entries are self-describing and collisions (which would require a
SHA-256 break) are detectable, and the ``sha256`` digest (see
:func:`~repro.experiments.scenarios.payload_digest`) lets :meth:`ResultCache.get`
verify the payload byte for byte before serving it.  Writes go through a
temporary file followed by :func:`os.replace`, so concurrent writers -- e.g.
parallel benchmark workers sharing one cache -- can never leave a torn file
behind.

Entries that fail to parse or fail their digest check are *quarantined*: the
file is moved to ``<cache_dir>/quarantine/`` (keeping its name, for forensics)
and a :class:`CacheIntegrityWarning` is emitted once per cache instance.
Before quarantining existed, a corrupt file was silently re-read -- and
re-missed -- on every sweep; now the first encounter removes it from the hot
path and the scenario simply recomputes and rewrites a good entry.  The
quarantine keeps only the newest ``quarantine_keep`` entries (default
:data:`DEFAULT_QUARANTINE_KEEP`), so repeated corruption in a long-lived
multi-worker cache cannot grow it without bound.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Any, Dict, Optional

from repro.experiments.scenarios import payload_digest

#: Bump to invalidate every existing cache entry on a payload format change.
#: v2: entries carry a ``sha256`` payload-integrity digest.
CACHE_VERSION = 2

#: Environment variable overriding the shared default cache location.
CACHE_ENV_VAR = "REPRO_EXPERIMENT_CACHE"

#: Subdirectory (sibling of the versioned store) holding quarantined entries.
QUARANTINE_DIR_NAME = "quarantine"

#: Default cap on retained quarantined entries (newest kept, oldest pruned).
DEFAULT_QUARANTINE_KEEP = 32


class CacheIntegrityWarning(UserWarning):
    """A cache entry failed to parse or failed its integrity digest check."""


def default_cache_dir() -> Path:
    """The shared default cache location.

    ``$REPRO_EXPERIMENT_CACHE`` if set, otherwise a well-known directory
    under the system temp dir -- the single location used by the benchmark
    harnesses and the examples, so identical scenarios are computed once.
    """
    configured = os.environ.get(CACHE_ENV_VAR)
    if configured:
        return Path(configured)
    return Path(tempfile.gettempdir()) / "repro-experiments-cache"


class ResultCache:
    """A content-addressed JSON store under ``root``, with integrity checks."""

    def __init__(
        self, root: os.PathLike, quarantine_keep: int = DEFAULT_QUARANTINE_KEEP
    ) -> None:
        self._base = Path(root)
        self.root = self._base / f"v{CACHE_VERSION}"
        self.quarantine_root = self._base / QUARANTINE_DIR_NAME
        #: Keep at most this many quarantined entries (newest first); older
        #: ones are pruned so a long-lived multi-worker cache under repeated
        #: corruption cannot grow its quarantine without bound.
        self.quarantine_keep = max(0, int(quarantine_keep))
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self._warned = False

    def _path(self, token: str) -> Path:
        return self.root / token[:2] / f"{token}.json"

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a bad entry aside (best-effort) and warn once per instance."""
        try:
            self.quarantine_root.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_root / path.name)
            self.quarantined += 1
            self._prune_quarantine()
        except OSError:
            # A shared cache owned by another user may be unmovable; the
            # entry then stays a miss, exactly as before quarantining existed.
            pass
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"quarantined corrupt cache entry {path.name} ({reason}); "
                f"further corrupt entries in this cache will be quarantined "
                f"silently under {self.quarantine_root}",
                CacheIntegrityWarning,
                stacklevel=3,
            )

    def _prune_quarantine(self) -> None:
        """Drop all but the newest ``quarantine_keep`` quarantined entries."""
        try:
            entries = sorted(
                (p for p in self.quarantine_root.iterdir() if p.is_file()),
                key=lambda p: p.stat().st_mtime,
                reverse=True,
            )
        except OSError:
            return
        for stale in entries[self.quarantine_keep :]:
            try:
                stale.unlink()
            except OSError:
                pass

    def get(self, token: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``token``, or ``None`` on a miss.

        Entries that fail to parse or whose payload does not match the stored
        ``sha256`` digest are quarantined and count as misses, so the sweep
        recomputes (and rewrites) them instead of crashing -- or instead of
        silently trusting a tampered result.
        """
        path = self._path(token)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except json.JSONDecodeError as error:
            self._quarantine(path, f"unparseable JSON: {error}")
            self.misses += 1
            return None
        except OSError:
            self.misses += 1
            return None
        payload = entry.get("payload") if isinstance(entry, dict) else None
        if not isinstance(payload, dict):
            self._quarantine(path, "entry is not a payload-bearing object")
            self.misses += 1
            return None
        digest = entry.get("sha256")
        if digest is not None:
            actual = payload_digest(payload)
            if digest != actual:
                # Name both digests so multi-worker corruption is attributable
                # (which write was bad, whether two writers disagreed).
                self._quarantine(
                    path,
                    f"payload does not match its sha256 digest "
                    f"(entry claims {digest}, payload hashes to {actual})",
                )
                self.misses += 1
                return None
        self.hits += 1
        return payload

    def put(self, token: str, key: Dict[str, Any], payload: Dict[str, Any]) -> None:
        """Atomically store ``payload`` (with its self-describing ``key``).

        Best-effort: an unwritable cache (e.g. a shared directory owned by
        another user) degrades to not caching instead of failing the sweep.
        """
        path = self._path(token)
        entry = {"key": key, "payload": payload, "sha256": payload_digest(payload)}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(
                prefix=f".{token[:8]}-", suffix=".tmp", dir=path.parent
            )
        except OSError:
            return
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(temp_name, path)
        except BaseException as error:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            if not isinstance(error, OSError):
                raise

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
