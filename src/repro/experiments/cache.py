"""On-disk result cache for experiment scenarios.

Layout (documented in the README):

.. code-block:: text

    <cache_dir>/
        v1/                      # bumped when the payload format changes
            ab/                  # first two hex digits of the cache token
                ab3f...e1.json   # one file per scenario result

Each file holds ``{"key": <scenario key>, "payload": <result payload>}``; the
``key`` is stored alongside the payload so cache entries are self-describing
and collisions (which would require a SHA-256 break) are detectable.  Writes
go through a temporary file followed by :func:`os.replace`, so concurrent
writers -- e.g. parallel benchmark workers sharing one cache -- can never
leave a torn file behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

#: Bump to invalidate every existing cache entry on a payload format change.
CACHE_VERSION = 1

#: Environment variable overriding the shared default cache location.
CACHE_ENV_VAR = "REPRO_EXPERIMENT_CACHE"


def default_cache_dir() -> Path:
    """The shared default cache location.

    ``$REPRO_EXPERIMENT_CACHE`` if set, otherwise a well-known directory
    under the system temp dir -- the single location used by the benchmark
    harnesses and the examples, so identical scenarios are computed once.
    """
    configured = os.environ.get(CACHE_ENV_VAR)
    if configured:
        return Path(configured)
    return Path(tempfile.gettempdir()) / "repro-experiments-cache"


class ResultCache:
    """A content-addressed JSON store under ``root``."""

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root) / f"v{CACHE_VERSION}"
        self.hits = 0
        self.misses = 0

    def _path(self, token: str) -> Path:
        return self.root / token[:2] / f"{token}.json"

    def get(self, token: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``token``, or ``None`` on a miss.

        Unreadable entries (corrupt JSON, permission problems in a shared
        cache directory) count as misses rather than crashing the sweep.
        """
        path = self._path(token)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return entry.get("payload")

    def put(self, token: str, key: Dict[str, Any], payload: Dict[str, Any]) -> None:
        """Atomically store ``payload`` (with its self-describing ``key``).

        Best-effort: an unwritable cache (e.g. a shared directory owned by
        another user) degrades to not caching instead of failing the sweep.
        """
        path = self._path(token)
        entry = {"key": key, "payload": payload}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(
                prefix=f".{token[:8]}-", suffix=".tmp", dir=path.parent
            )
        except OSError:
            return
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(temp_name, path)
        except BaseException as error:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            if not isinstance(error, OSError):
                raise

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
