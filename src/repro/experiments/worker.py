"""Standalone sweep worker: ``python -m repro.experiments.worker <spool_dir>``.

A :class:`SpoolWorker` attaches to a spool directory (see
:mod:`repro.experiments.spool`), claims tasks via atomic-rename leases,
executes each scenario with the same envelope/degradation/soft-timeout
machinery as the pool backend, writes a digest-stamped
:class:`~repro.experiments.spool.ResultEnvelope` into ``results/``, and
writes finished payloads through to the shared
:class:`~repro.experiments.cache.ResultCache` named in the spool config.
A heartbeat thread touches ``heartbeats/<worker_id>`` every
``heartbeat_interval`` seconds so the coordinator can tell a slow worker
from a dead one.

Workers are crash-oblivious by design: any number can die at any point and
the coordinator's lease reaper reassigns their in-flight tasks.  Worker-level
fault kinds from ``$REPRO_FAULT_PLAN`` (``worker_die``, ``worker_stall``,
``lease_steal``, ``envelope_corrupt``) are honored here, making whole-worker
chaos deterministically reproducible.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.experiments.cache import ResultCache
from repro.experiments.executors import (
    SoftTimeoutExpired,
    _execute_scenario,
    call_with_soft_timeout,
)
from repro.experiments.scenarios import Scenario
from repro.experiments.spool import ResultEnvelope, Spool, SpoolConfig
from repro.resilience.faults import FaultInjector

#: Exit code of a deliberately killed worker (``worker_die`` fault).
WORKER_DIE_EXIT_CODE = 23


def _default_worker_id() -> str:
    return f"w{os.getpid()}"


class SpoolWorker:
    """One worker process draining a spool directory (see module docstring).

    Parameters
    ----------
    spool_dir:
        The shared spool directory written by the coordinator.
    worker_id:
        Stable identity used for leases, heartbeats, and envelope filenames;
        defaults to ``w<pid>``.  Sanitized to filename-safe characters.
    poll:
        Sleep between claim attempts when the queue is empty (seconds).
    max_idle:
        Exit after this many seconds without claiming any task (``None``
        keeps waiting until the coordinator's stop sentinel appears) --
        the safety valve for externally launched workers whose coordinator
        vanished without writing ``stop``.
    """

    def __init__(
        self,
        spool_dir: os.PathLike,
        worker_id: Optional[str] = None,
        poll: float = 0.05,
        max_idle: Optional[float] = None,
    ) -> None:
        self.spool = Spool(Path(spool_dir))
        raw_id = worker_id or _default_worker_id()
        self.worker_id = re.sub(r"[^A-Za-z0-9._-]+", "-", raw_id)
        self.poll = float(poll)
        self.max_idle = max_idle
        self._stop_heartbeat = threading.Event()
        self._suppress_heartbeat = threading.Event()
        self.tasks_completed = 0

    # ------------------------------------------------------------ heartbeat

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._stop_heartbeat.is_set():
            if not self._suppress_heartbeat.is_set():
                self.spool.heartbeat(self.worker_id)
            self._stop_heartbeat.wait(interval)

    # ------------------------------------------------------------------ run

    def run(self) -> int:
        """Drain the spool until the stop sentinel (or idle timeout); 0 on clean exit."""
        config = self.spool.read_config(wait=10.0)
        if config is None:
            print(
                f"worker {self.worker_id}: no spool config at {self.spool.root}",
                file=sys.stderr,
            )
            return 2
        cache = ResultCache(config.cache_dir) if config.cache_dir else None
        injector = FaultInjector.from_env()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(max(0.01, config.heartbeat_interval),),
            daemon=True,
        )
        heartbeat.start()
        idle_since = time.monotonic()
        try:
            while True:
                if self.spool.stop_requested():
                    return 0
                task = self.spool.claim_next(self.worker_id, config.lease_ttl)
                if task is None:
                    if (
                        self.max_idle is not None
                        and time.monotonic() - idle_since > self.max_idle
                    ):
                        return 0
                    time.sleep(self.poll)
                    continue
                idle_since = time.monotonic()
                self._run_task(task, config, cache, injector)
                self.tasks_completed += 1
        finally:
            self._stop_heartbeat.set()
            heartbeat.join(timeout=1.0)

    def _run_task(
        self,
        task: Dict[str, Any],
        config: SpoolConfig,
        cache: Optional[ResultCache],
        injector: Optional[FaultInjector],
    ) -> None:
        task_id = str(task["task_id"])
        index = int(task["index"])
        attempt = int(task["attempt"])
        spec = injector.worker_fault(index, attempt) if injector is not None else None
        if spec is not None:
            if spec.kind == "worker_die":
                # Die *while holding the lease*: the coordinator must detect
                # the death (expired lease + stale heartbeat) and reassign.
                os._exit(WORKER_DIE_EXIT_CODE)
            if spec.kind == "lease_steal":
                # Simulate a partitioned worker whose lease was revoked while
                # it kept computing: drop the lease and put the task back up
                # for grabs, then execute anyway -- a second worker claims and
                # completes the same task, exercising duplicate-completion
                # idempotency (first digest-valid envelope wins).
                self.spool.release(task_id)
                self.spool.add_task(task)
            if spec.kind == "worker_stall":
                # Go quiet: no heartbeat for the stall duration, so the
                # coordinator reaps the lease as if this worker partitioned,
                # then resume and finish (a late duplicate completion).
                self._suppress_heartbeat.set()
                time.sleep(spec.hang_seconds)
                self._suppress_heartbeat.clear()

        scenario = Scenario.from_json_dict(task["scenario"])
        envelope = self._execute(scenario, task_id, index, attempt, config, injector)
        if envelope.verified() and cache is not None:
            # Write-through from the worker side -- but only the verified
            # payload, *before* any injected transport corruption below, so
            # a corrupted envelope can never poison the shared cache.
            cache.put(str(task["token"]), scenario.key(), envelope.payload)
        if (
            spec is not None
            and spec.kind == "envelope_corrupt"
            and injector is not None
            and envelope.payload is not None
        ):
            injector.corrupt_envelope(index, attempt, envelope.payload)
        self.spool.write_envelope(envelope)
        self.spool.release(task_id)

    def _execute(
        self,
        scenario: Scenario,
        task_id: str,
        index: int,
        attempt: int,
        config: SpoolConfig,
        injector: Optional[FaultInjector],
    ) -> ResultEnvelope:
        try:
            raw = call_with_soft_timeout(
                lambda: _execute_scenario(scenario, index, attempt, injector=injector),
                config.timeout,
            )
        except SoftTimeoutExpired as exc:
            return ResultEnvelope(
                task_id=task_id,
                index=index,
                attempt=attempt,
                worker=self.worker_id,
                status="error",
                error=str(exc),
                error_type="SoftTimeoutExpired",
            )
        except Exception as exc:  # noqa: BLE001 - captured into the envelope
            return ResultEnvelope(
                task_id=task_id,
                index=index,
                attempt=attempt,
                worker=self.worker_id,
                status="error",
                error=f"{type(exc).__name__}: {exc}",
                error_type=type(exc).__name__,
            )
        return ResultEnvelope(
            task_id=task_id,
            index=index,
            attempt=attempt,
            worker=self.worker_id,
            status="ok",
            payload=raw["payload"],
            engine_used=raw.get("engine_used"),
            degraded_from=tuple(raw.get("degraded_from") or ()),
            integrity=raw["integrity"],
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.worker",
        description="Attach to a sweep spool directory and drain scenario tasks.",
    )
    parser.add_argument("spool_dir", help="the coordinator's spool directory")
    parser.add_argument(
        "--worker-id",
        default=None,
        help="stable worker identity (default: w<pid>)",
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.05,
        help="seconds to sleep between claim attempts when idle (default 0.05)",
    )
    parser.add_argument(
        "--max-idle",
        type=float,
        default=None,
        help="exit after this many idle seconds (default: wait for the stop sentinel)",
    )
    options = parser.parse_args(argv)
    worker = SpoolWorker(
        options.spool_dir,
        worker_id=options.worker_id,
        poll=options.poll,
        max_idle=options.max_idle,
    )
    return worker.run()


if __name__ == "__main__":
    sys.exit(main())
