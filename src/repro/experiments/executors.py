"""Pluggable executor backends for :class:`~repro.experiments.ExperimentRunner`.

The runner's sweep logic (cache-first lookup, duplicate folding, write-through
checkpointing, result assembly) is backend-agnostic; everything about *how*
the pending scenarios actually execute lives behind the
:class:`ExecutorBackend` seam defined here.  Three backends ship in-tree:

``"serial"``
    In-process execution, one scenario at a time, with the same soft-timeout
    watchdog (:func:`call_with_soft_timeout`), retry policy, and integrity
    verification as the parallel backends -- the status matrix of a sweep is
    identical whichever backend ran it.
``"process"``
    The ``concurrent.futures`` process pool, executed in *generations*: a
    broken pool is rebuilt and only unfinished work resubmitted, collective
    breakage charges bound poison scenarios to ``retries + 1`` attempts, and
    never-individually-convicted suspects get an isolated retrial.
``"workdir"``
    The distributed backend: independent worker processes (see
    :mod:`repro.experiments.worker`) claim tasks from a shared spool
    directory (:mod:`repro.experiments.spool`) via atomic-rename leases,
    heartbeat while alive, and write digest-stamped result envelopes.  The
    coordinator here reaps expired leases from dead workers (charging one
    attempt, same bound as a pool breakage), replaces dead workers, accepts
    the first digest-valid envelope per task (duplicates are counted and
    ignored), and -- because completion goes through the runner's
    write-through ``complete`` callback -- checkpoints every result, so a
    killed coordinator resumes with workers still draining the spool.

Register additional backends with :func:`register_executor_backend`;
:func:`make_executor` instantiates by name with backend-specific options.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Type

from repro.exceptions import InvalidParameterError
from repro.experiments.cache import ResultCache
from repro.experiments.scenarios import ALGORITHMS, Scenario, payload_digest
from repro.experiments.spool import Spool, SpoolConfig
from repro.resilience.degrade import run_with_degradation
from repro.resilience.faults import FAULT_PLAN_ENV, FaultInjector, FaultPlan

#: How often polling loops wake to check soft timeouts / spool progress
#: (seconds).  The pool backend only polls when a timeout is configured;
#: without one it blocks until a future completes.
_POLL_SECONDS = 0.05


class SoftTimeoutExpired(Exception):
    """A scenario execution exceeded its soft timeout (internal signal)."""


def call_with_soft_timeout(fn: Callable[[], Any], timeout: Optional[float]) -> Any:
    """Run ``fn()`` with a watchdog; raise :class:`SoftTimeoutExpired` on expiry.

    With ``timeout=None`` this is a plain call -- no thread, no overhead.
    Otherwise ``fn`` runs on a daemon thread and the caller waits up to
    ``timeout`` seconds: the timed-out thread cannot be killed (it is
    abandoned and may finish later), which exactly mirrors the pool backend's
    semantics where a hung worker is written off rather than reclaimed.
    """
    if timeout is None:
        return fn()
    box: Dict[str, Any] = {}

    def target() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised in the caller
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise SoftTimeoutExpired(
            f"soft timeout: no result within {timeout:g}s (worker hung)"
        )
    if "error" in box:
        raise box["error"]
    return box["value"]


def _run_payload(scenario: Scenario, engine: str) -> Dict[str, Any]:
    """Execute ``scenario`` on ``engine`` and return its JSON-safe payload."""
    try:
        runner = ALGORITHMS[scenario.algorithm]
    except KeyError:
        raise InvalidParameterError(
            f"unknown algorithm {scenario.algorithm!r}; known: {sorted(ALGORITHMS)}"
        ) from None
    started = time.perf_counter()
    network = scenario.graph.build()
    payload = runner(
        network,
        scenario.params_dict,
        engine,
        scenario.capture_colors,
    )
    payload["wall_time"] = time.perf_counter() - started
    payload["num_nodes"] = network.num_nodes
    payload["num_edges"] = network.num_edges
    payload["max_degree"] = network.max_degree
    return payload


def _execute_scenario(
    scenario: Scenario,
    index: int = 0,
    attempt: int = 0,
    injector: Optional[FaultInjector] = None,
) -> Dict[str, Any]:
    """The worker entry point (module-level so it pickles): one envelope.

    The envelope wraps the result payload with resilience metadata that must
    never leak into the cached payload itself (cached payloads stay
    bit-identical to fault-free runs): the engine that actually produced the
    result after degradation, the abandoned engines, and an integrity digest
    computed *before* any injected corruption so the parent can verify the
    payload it received.
    """
    if injector is None:
        injector = FaultInjector.from_env()
    restore = None
    if injector is not None:
        restore = injector.fire_before_run(index, attempt)
    try:
        outcome = run_with_degradation(
            lambda engine: _run_payload(scenario, engine), scenario.engine
        )
    finally:
        if restore is not None:
            restore()
    payload = outcome.result
    envelope = {
        "payload": payload,
        "engine_used": outcome.engine,
        "degraded_from": list(outcome.degraded_from),
        "integrity": payload_digest(payload),
    }
    if injector is not None:
        injector.corrupt_payload(index, attempt, payload)
    return envelope


@dataclass
class _Outcome:
    """Internal per-token outcome record (shared by duplicate scenarios)."""

    payload: Optional[Dict[str, Any]] = None
    cached: bool = False
    status: str = "ok"
    error: Optional[str] = None
    attempts: int = 1
    engine_used: Optional[str] = None
    degraded_from: Tuple[str, ...] = ()


def _ok_outcome(envelope: Dict[str, Any], attempts: int) -> _Outcome:
    return _Outcome(
        payload=envelope["payload"],
        status="ok",
        attempts=attempts,
        engine_used=envelope.get("engine_used"),
        degraded_from=tuple(envelope.get("degraded_from") or ()),
    )


@dataclass
class ExecutionRequest:
    """Everything a backend needs to execute one sweep's pending scenarios.

    ``complete(index, outcome)`` is the runner's write-through completion
    callback (it caches, counts, and reports progress); a backend must call
    it exactly once per pending index.  ``stats`` is the live
    :class:`~repro.experiments.runner.SweepStats` the backend charges its
    reliability counters to.
    """

    scenarios: Sequence[Scenario]
    tokens: Sequence[str]
    pending: Sequence[int]
    complete: Callable[[int, _Outcome], None]
    stats: Any
    retries: int = 2
    retry_backoff: float = 0.0
    timeout: Optional[float] = None
    fault_plan: Optional[FaultPlan] = None
    workers: int = 1
    cache: Optional[ResultCache] = None

    def backoff(self, attempt: int) -> None:
        delay = self.retry_backoff * (2 ** max(0, attempt - 1))
        if delay > 0:
            time.sleep(delay)


class ExecutorBackend:
    """Base class for executor backends (see module docstring)."""

    #: The registry name; subclasses must override.
    name = "abstract"

    def execute(self, request: ExecutionRequest) -> None:
        raise NotImplementedError


#: name -> backend class.  Use :func:`register_executor_backend` to extend.
EXECUTOR_BACKENDS: Dict[str, Type[ExecutorBackend]] = {}


def register_executor_backend(name: str) -> Callable:
    """Decorator registering an :class:`ExecutorBackend` under ``name``."""

    def decorator(cls: Type[ExecutorBackend]) -> Type[ExecutorBackend]:
        cls.name = name
        EXECUTOR_BACKENDS[name] = cls
        return cls

    return decorator


def make_executor(name: str, **options: Any) -> ExecutorBackend:
    """Instantiate the backend registered under ``name``.

    Unknown names and unsupported options raise
    :class:`~repro.exceptions.InvalidParameterError` -- a misconfigured
    backend is a caller bug, not a runtime fault.
    """
    try:
        cls = EXECUTOR_BACKENDS[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown executor backend {name!r}; known: {sorted(EXECUTOR_BACKENDS)}"
        ) from None
    try:
        return cls(**options)
    except TypeError as error:
        raise InvalidParameterError(
            f"invalid options for executor backend {name!r}: {error}"
        ) from None


# --------------------------------------------------------------------------- #
# Serial backend
# --------------------------------------------------------------------------- #


@register_executor_backend("serial")
class SerialExecutor(ExecutorBackend):
    """In-process execution with the full capture/retry/timeout policy.

    The soft timeout is enforced with the same watchdog semantics as the
    pool backend (same error string, same attempt charging), so a sweep's
    status matrix does not depend on which backend ran it.  Injected
    ``"crash"`` faults degrade to raised errors here -- exiting the caller's
    interpreter is never acceptable in-process.
    """

    def execute(self, request: ExecutionRequest) -> None:
        injector = (
            FaultInjector(request.fault_plan, allow_process_exit=False)
            if request.fault_plan is not None
            else None
        )
        for index in request.pending:
            scenario = request.scenarios[index]
            attempt = 0
            while True:
                error = None
                envelope = None
                try:
                    envelope = call_with_soft_timeout(
                        lambda s=scenario, i=index, a=attempt: _execute_scenario(
                            s, i, a, injector=injector
                        ),
                        request.timeout,
                    )
                except InvalidParameterError:
                    raise
                except SoftTimeoutExpired as exc:
                    request.stats.timeouts += 1
                    error = str(exc)
                except Exception as exc:  # noqa: BLE001 - capture, not abort
                    error = f"{type(exc).__name__}: {exc}"
                if error is None and envelope["integrity"] != payload_digest(
                    envelope["payload"]
                ):
                    error = "payload integrity digest mismatch"
                if error is None:
                    request.complete(index, _ok_outcome(envelope, attempt + 1))
                    break
                attempt += 1
                if attempt > request.retries:
                    request.complete(
                        index,
                        _Outcome(status="failed", error=error, attempts=attempt),
                    )
                    break
                request.stats.retries += 1
                request.backoff(attempt)


# --------------------------------------------------------------------------- #
# Process-pool backend
# --------------------------------------------------------------------------- #


@register_executor_backend("process")
class ProcessExecutor(ExecutorBackend):
    """Pool execution in *generations*: a lost pool is rebuilt, and only
    unfinished work is resubmitted to the replacement."""

    def execute(self, request: ExecutionRequest) -> None:
        previous_env = None
        env_set = False
        if request.fault_plan is not None:
            previous_env = os.environ.get(FAULT_PLAN_ENV)
            os.environ[FAULT_PLAN_ENV] = request.fault_plan.to_json()
            env_set = True
        attempts = dict.fromkeys(request.pending, 0)
        unfinished = list(request.pending)
        suspects: set = set()
        first = True
        try:
            while unfinished:
                if not first:
                    request.stats.pool_rebuilds += 1
                first = False
                unfinished = self._pool_generation(
                    request, unfinished, attempts, request.workers, suspects
                )
            # Scenarios that ran out of attempts purely through *collective*
            # pool-breakage charges were never individually convicted: give
            # each one isolated, single-worker execution.  If the pool
            # breaks again the crash is theirs beyond doubt (and is recorded
            # as such); innocents caught near a serial crasher complete here.
            for index in sorted(suspects):
                unfinished = [index]
                while unfinished:
                    request.stats.pool_rebuilds += 1
                    unfinished = self._pool_generation(
                        request, unfinished, attempts, 1, suspects, isolated=True
                    )
        finally:
            if env_set:
                if previous_env is None:
                    os.environ.pop(FAULT_PLAN_ENV, None)
                else:
                    os.environ[FAULT_PLAN_ENV] = previous_env

    def _pool_generation(
        self,
        request: ExecutionRequest,
        unfinished: Sequence[int],
        attempts: Dict[int, int],
        workers: int,
        suspects: set,
        isolated: bool = False,
    ) -> List[int]:
        """Drain one process pool; return the indexes a fresh pool must redo.

        The generation ends early ("the pool is lost") on a broken pool or a
        soft-timeout expiry, because in both cases at least one worker can no
        longer be trusted or reclaimed.  A pool breakage cannot be attributed
        to a single scenario, so it charges one attempt to *every* index that
        was unfinished at that moment -- this guarantees termination (a
        scenario that always kills its worker runs out of attempts after at
        most ``retries + 1`` breakages).  Indexes exhausted *only* by those
        collective charges are not failed here but parked in ``suspects``
        for an isolated retrial (see :meth:`execute`); in an ``isolated``
        (single-scenario) generation a breakage is individual guilt and
        fails the scenario directly.
        """
        scenarios = request.scenarios
        complete = request.complete
        stats = request.stats
        pool = ProcessPoolExecutor(max_workers=workers)
        futures: Dict[Any, int] = {}
        started: Dict[Any, float] = {}
        remaining = set(unfinished)
        lost = False
        charge_all = False
        try:
            for index in unfinished:
                futures[
                    pool.submit(
                        _execute_scenario, scenarios[index], index, attempts[index]
                    )
                ] = index
            while futures and not lost:
                tick = _POLL_SECONDS if request.timeout is not None else None
                finished, _ = wait(
                    set(futures), timeout=tick, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                for future in finished:
                    index = futures.pop(future)
                    started.pop(future, None)
                    envelope = None
                    error = None
                    try:
                        envelope = future.result()
                    except InvalidParameterError:
                        raise
                    except BrokenProcessPool:
                        lost = True
                        charge_all = True
                        break
                    except Exception as exc:  # noqa: BLE001 - capture, not abort
                        error = f"{type(exc).__name__}: {exc}"
                    if error is None and envelope["integrity"] != payload_digest(
                        envelope["payload"]
                    ):
                        error = "payload integrity digest mismatch (corrupted in transit)"
                    if error is None:
                        remaining.discard(index)
                        complete(index, _ok_outcome(envelope, attempts[index] + 1))
                        continue
                    attempts[index] += 1
                    if attempts[index] > request.retries:
                        remaining.discard(index)
                        complete(
                            index,
                            _Outcome(
                                status="failed", error=error, attempts=attempts[index]
                            ),
                        )
                    else:
                        stats.retries += 1
                        request.backoff(attempts[index])
                        futures[
                            pool.submit(
                                _execute_scenario,
                                scenarios[index],
                                index,
                                attempts[index],
                            )
                        ] = index
                if lost or request.timeout is None:
                    continue
                for future in list(futures):
                    if future not in started and future.running():
                        started[future] = now
                expired = [
                    future
                    for future, began in started.items()
                    if future in futures and now - began >= request.timeout
                ]
                if expired:
                    # A hung worker cannot be cancelled or reclaimed: charge
                    # the timed-out scenarios an attempt and lose the pool.
                    lost = True
                    stats.timeouts += len(expired)
                    for future in expired:
                        index = futures.pop(future)
                        attempts[index] += 1
                        if attempts[index] > request.retries:
                            remaining.discard(index)
                            complete(
                                index,
                                _Outcome(
                                    status="failed",
                                    error=(
                                        f"soft timeout: no result within "
                                        f"{request.timeout:g}s (worker hung)"
                                    ),
                                    attempts=attempts[index],
                                ),
                            )
                        else:
                            stats.retries += 1
        finally:
            self._teardown_pool(pool, graceful=not lost)
        if charge_all:
            # The pool broke; every unfinished scenario pays one attempt
            # (see the docstring for why attribution is collective).
            for index in sorted(remaining):
                attempts[index] += 1
                if isolated:
                    # The scenario was alone in this pool: the crash is its.
                    remaining.discard(index)
                    complete(
                        index,
                        _Outcome(
                            status="failed",
                            error=(
                                "worker process crashed while executing this "
                                "scenario (confirmed in isolation); retries "
                                "exhausted"
                            ),
                            attempts=attempts[index],
                        ),
                    )
                elif attempts[index] > request.retries:
                    remaining.discard(index)
                    suspects.add(index)
                else:
                    stats.retries += 1
        return sorted(remaining)

    @staticmethod
    def _teardown_pool(pool: ProcessPoolExecutor, graceful: bool) -> None:
        """Shut a pool down; a lost pool's workers are terminated outright.

        ``_processes`` is private executor state, but it is the only handle
        on a *hung* worker -- ``shutdown`` alone would block on (or leak) it.
        The access is defensive: if the attribute moves, teardown degrades to
        the plain non-waiting shutdown.
        """
        if graceful:
            pool.shutdown(wait=True)
            return
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 - already-dead workers are fine
                pass
        pool.shutdown(wait=False, cancel_futures=True)


# --------------------------------------------------------------------------- #
# Workdir (distributed spool) backend
# --------------------------------------------------------------------------- #


@register_executor_backend("workdir")
class WorkdirExecutor(ExecutorBackend):
    """Distributed execution over a shared spool directory.

    The coordinator writes one task file per pending scenario into the
    spool, (optionally) launches ``workers`` worker subprocesses, then loops
    collecting result envelopes, reaping expired leases, and replacing dead
    workers until every pending index completed.  See
    :mod:`repro.experiments.spool` for the on-disk protocol.

    Parameters
    ----------
    spool_dir:
        The shared directory.  ``None`` (the default) creates a private
        temporary spool, removed when the sweep finishes.  Point it at a
        durable path to resume a killed coordinator (pre-existing envelopes
        and in-flight leases are honored) or to share a sweep with
        externally launched workers.
    lease_ttl:
        Lease lifetime in seconds.  A task whose lease deadline passed *and*
        whose worker's heartbeat is older than the TTL is reassigned,
        charging one attempt.
    heartbeat_interval:
        How often workers touch their heartbeat file.  Must be comfortably
        below ``lease_ttl`` or live workers get reaped.
    launch_workers:
        When ``False``, the coordinator only manages the spool -- workers
        are expected to be launched externally
        (``python -m repro.experiments.worker <spool_dir>``).
    poll / worker_poll:
        Coordinator / worker loop sleep intervals in seconds.
    drain_timeout:
        Safety net: raise ``RuntimeError`` if the sweep has not drained
        within this many seconds (``None`` waits forever).  The retry bound
        already guarantees termination while workers exist; this guards
        the ``launch_workers=False`` case where none might.
    """

    def __init__(
        self,
        spool_dir: Optional[os.PathLike] = None,
        lease_ttl: float = 5.0,
        heartbeat_interval: float = 1.0,
        launch_workers: bool = True,
        poll: float = _POLL_SECONDS,
        worker_poll: float = _POLL_SECONDS,
        drain_timeout: Optional[float] = None,
    ) -> None:
        self.spool_dir = spool_dir
        self.lease_ttl = float(lease_ttl)
        self.heartbeat_interval = float(heartbeat_interval)
        self.launch_workers = launch_workers
        self.poll = float(poll)
        self.worker_poll = float(worker_poll)
        self.drain_timeout = drain_timeout

    def execute(self, request: ExecutionRequest) -> None:
        own_spool = self.spool_dir is None
        root = Path(
            tempfile.mkdtemp(prefix="repro-spool-")
            if own_spool
            else self.spool_dir
        )
        spool = Spool(root).create()
        spool.clear_stop()
        spool.write_config(
            SpoolConfig(
                cache_dir=(
                    str(request.cache._base) if request.cache is not None else None
                ),
                lease_ttl=self.lease_ttl,
                heartbeat_interval=self.heartbeat_interval,
                timeout=request.timeout,
            )
        )
        attempts: Dict[int, int] = dict.fromkeys(request.pending, 0)
        outstanding: Set[int] = set(request.pending)
        task_ids: Dict[int, str] = {
            index: f"{index:05d}-{request.tokens[index][:10]}"
            for index in request.pending
        }
        index_of: Dict[str, int] = {tid: i for i, tid in task_ids.items()}
        seen_envelopes: Set[str] = set()
        processes: List[subprocess.Popen] = []
        worker_serial = 0
        try:
            # Resume before enqueue: a durable spool may already hold
            # envelopes from workers that outlived a killed coordinator.
            self._collect(request, spool, seen_envelopes, outstanding, attempts, index_of)
            for index in sorted(outstanding):
                if not spool.has_task_or_lease(task_ids[index]):
                    spool.add_task(
                        spool.task_document(
                            task_ids[index],
                            index,
                            attempts[index],
                            request.tokens[index],
                            request.scenarios[index].to_json_dict(),
                        )
                    )
            if self.launch_workers and outstanding:
                for _ in range(max(1, min(request.workers, len(outstanding)))):
                    worker_serial += 1
                    processes.append(
                        self._launch_worker(request, root, f"w{worker_serial}")
                    )
            started = time.monotonic()
            while outstanding:
                self._collect(
                    request, spool, seen_envelopes, outstanding, attempts, index_of
                )
                if not outstanding:
                    break
                self._reap(request, spool, outstanding, attempts, index_of)
                if self.launch_workers:
                    worker_serial = self._replace_dead_workers(
                        request, root, processes, outstanding, worker_serial
                    )
                if (
                    self.drain_timeout is not None
                    and time.monotonic() - started > self.drain_timeout
                ):
                    raise RuntimeError(
                        f"workdir sweep did not drain within {self.drain_timeout:g}s; "
                        f"{len(outstanding)} scenario(s) outstanding"
                    )
                time.sleep(self.poll)
        finally:
            spool.request_stop()
            for process in processes:
                try:
                    process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    process.terminate()
                    try:
                        process.wait(timeout=5.0)
                    except subprocess.TimeoutExpired:
                        process.kill()
            if own_spool:
                shutil.rmtree(root, ignore_errors=True)

    def _launch_worker(
        self, request: ExecutionRequest, root: Path, worker_id: str
    ) -> subprocess.Popen:
        import repro

        package_root = Path(repro.__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(package_root)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        if request.fault_plan is not None:
            env[FAULT_PLAN_ENV] = request.fault_plan.to_json()
        else:
            env.pop(FAULT_PLAN_ENV, None)
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments.worker",
                str(root),
                "--worker-id",
                worker_id,
                "--poll",
                str(self.worker_poll),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def _collect(
        self,
        request: ExecutionRequest,
        spool: Spool,
        seen: Set[str],
        outstanding: Set[int],
        attempts: Dict[int, int],
        index_of: Dict[str, int],
    ) -> None:
        """Process new result envelopes: first digest-valid envelope wins."""
        for path, envelope in spool.new_envelopes(seen):
            if envelope is None:
                # Unparseable envelope: quarantine it and charge the task an
                # attempt (its id is recoverable from the filename).
                task_id = path.name.split("--", 1)[0]
                index = index_of.get(task_id)
                spool.quarantine(path)
                request.stats.envelopes_rejected += 1
                if index is not None and index in outstanding:
                    self._requeue(
                        request,
                        spool,
                        outstanding,
                        attempts,
                        index,
                        "unparseable result envelope",
                    )
                continue
            index = index_of.get(envelope.task_id)
            if index is None:
                continue
            if index not in outstanding:
                # A stalled or partitioned worker finished after its task was
                # reassigned and completed elsewhere.  First envelope won;
                # this one is merely counted.
                request.stats.duplicate_completions += 1
                continue
            if envelope.status == "error":
                if envelope.error_type == "InvalidParameterError":
                    # An invalid scenario is a caller bug: propagate, exactly
                    # like the serial and pool backends.
                    raise InvalidParameterError(envelope.error or "invalid scenario")
                if envelope.error_type == "SoftTimeoutExpired":
                    request.stats.timeouts += 1
                self._requeue(
                    request,
                    spool,
                    outstanding,
                    attempts,
                    index,
                    envelope.error or "worker error",
                )
                continue
            if not envelope.verified():
                spool.quarantine(path)
                request.stats.envelopes_rejected += 1
                self._requeue(
                    request,
                    spool,
                    outstanding,
                    attempts,
                    index,
                    "payload integrity digest mismatch (corrupted in transit)",
                )
                continue
            outstanding.discard(index)
            request.complete(
                index,
                _Outcome(
                    payload=envelope.payload,
                    status="ok",
                    attempts=attempts[index] + 1,
                    engine_used=envelope.engine_used,
                    degraded_from=tuple(envelope.degraded_from),
                ),
            )

    def _reap(
        self,
        request: ExecutionRequest,
        spool: Spool,
        outstanding: Set[int],
        attempts: Dict[int, int],
        index_of: Dict[str, int],
    ) -> None:
        """Reassign tasks whose lease expired with a stale worker heartbeat."""
        for task in spool.reap_expired(self.lease_ttl):
            index = index_of.get(str(task.get("task_id")))
            if index is None or index not in outstanding:
                continue
            request.stats.reassignments += 1
            self._requeue(
                request,
                spool,
                outstanding,
                attempts,
                index,
                "lease expired: worker died or partitioned mid-scenario",
            )

    def _requeue(
        self,
        request: ExecutionRequest,
        spool: Spool,
        outstanding: Set[int],
        attempts: Dict[int, int],
        index: int,
        error: str,
    ) -> None:
        """Charge ``index`` one attempt; re-enqueue or fail it.

        Mirrors the pool backend's bound: a poison scenario is reassigned at
        most ``retries + 1`` times before it is failed.  Workdir retries are
        immediate (``retry_backoff`` is not slept here -- the coordinator
        loop must keep collecting envelopes from other workers).
        """
        attempts[index] += 1
        if attempts[index] > request.retries:
            outstanding.discard(index)
            request.complete(
                index,
                _Outcome(status="failed", error=error, attempts=attempts[index]),
            )
            return
        request.stats.retries += 1
        task_id = f"{index:05d}-{request.tokens[index][:10]}"
        # Unconditional: the failing worker's lease may briefly still exist
        # (it releases *after* writing its envelope), and waiting for it
        # would lose the task.  The worst case is a duplicate execution,
        # which first-digest-valid-envelope-wins already tolerates.
        spool.add_task(
            spool.task_document(
                task_id,
                index,
                attempts[index],
                request.tokens[index],
                request.scenarios[index].to_json_dict(),
            )
        )

    def _replace_dead_workers(
        self,
        request: ExecutionRequest,
        root: Path,
        processes: List[subprocess.Popen],
        outstanding: Set[int],
        worker_serial: int,
    ) -> int:
        """Launch a replacement for every exited worker while work remains."""
        for position, process in enumerate(processes):
            if process.poll() is not None and outstanding:
                worker_serial += 1
                processes[position] = self._launch_worker(
                    request, root, f"w{worker_serial}"
                )
                request.stats.worker_replacements += 1
        return worker_serial


# Re-exported for the worker module and tests.
__all__ = [
    "EXECUTOR_BACKENDS",
    "ExecutionRequest",
    "ExecutorBackend",
    "ProcessExecutor",
    "SerialExecutor",
    "SoftTimeoutExpired",
    "WorkdirExecutor",
    "call_with_soft_timeout",
    "make_executor",
    "register_executor_backend",
]
