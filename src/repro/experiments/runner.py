"""The parallel, caching, fault-tolerant experiment runner.

:class:`ExperimentRunner` takes a list of :class:`~repro.experiments.scenarios.Scenario`
objects and produces one :class:`ScenarioResult` per scenario, in input order:

1. every scenario is first looked up in the on-disk cache (if one is
   configured) by its SHA-256 cache token;
2. the misses are handed to a pluggable executor backend (see
   :mod:`repro.experiments.executors`): ``"serial"`` in-process, ``"process"``
   sharding across a ``concurrent.futures.ProcessPoolExecutor``, or
   ``"workdir"`` distributing over independent worker processes that claim
   tasks from a shared spool directory via leases and heartbeats;
3. every fresh result is written back to the cache *as it lands*
   (write-through), so an interrupted sweep acts as a checkpoint: re-running
   it re-executes only the scenarios that had not finished -- and under the
   ``"workdir"`` backend a killed coordinator resumes with its workers still
   draining the queue.

A worker failure never aborts the sweep.  Exceptions are captured per
scenario into ``ScenarioResult.status`` / ``error``, with configurable
retries (exponential backoff), a per-scenario soft timeout enforced
identically across backends, transparent recovery from a broken process pool
(the pool is rebuilt and only unfinished work resubmitted), and -- in the
distributed backend -- lease reaping that reassigns tasks from dead or
partitioned workers, dead-worker replacement, and idempotent handling of
duplicate completions (first digest-valid envelope wins).  Workers apply the
engine degradation chain (compiled -> vectorized -> batched -> reference, see
:mod:`repro.resilience`) when an engine fails as infrastructure, and stamp an
integrity digest on each payload so results corrupted in transit are detected
and retried.  A seedable :class:`~repro.resilience.FaultPlan` can be injected
to rehearse all of this deterministically -- including whole-worker chaos
(``worker_die``, ``worker_stall``, ``lease_steal``, ``envelope_corrupt``).

Only :class:`~repro.exceptions.InvalidParameterError` still propagates: an
invalid scenario is a caller bug, not a fault, and retrying it cannot help.

Duplicate scenarios (same cache token) are executed only once per ``run``
call.  Set ``max_workers=0`` to force serial in-process execution -- useful
under hypothesis or in debuggers.

Sweep-level progress is reported through an optional ``on_progress`` callback
(off by default): it fires once per scenario -- immediately for cache hits,
as executions complete for fresh ones -- with ``(done, total, scenario,
cached)``.  :func:`progress_ticker` builds a ready-made stderr ticker
callback.  Aggregate reliability counters for the last sweep (retries,
timeouts, pool rebuilds, reassignments, failures, ...) are kept on
``runner.last_stats``.
"""

from __future__ import annotations

import ast
import os
import sys
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
)

from repro.experiments.cache import ResultCache
from repro.experiments.executors import (  # noqa: F401 - re-exported compat
    _POLL_SECONDS,
    ExecutionRequest,
    ExecutorBackend,
    _execute_scenario,
    _Outcome,
    _run_payload,
    make_executor,
)
from repro.experiments.scenarios import Scenario
from repro.resilience.degrade import run_with_degradation
from repro.resilience.faults import FaultPlan

#: Signature of the sweep progress callback: ``(done, total, scenario, cached)``.
ProgressCallback = Callable[[int, int, Scenario, bool], None]


def progress_ticker(stream: Optional[TextIO] = None) -> ProgressCallback:
    """A ready-made ``on_progress`` callback: one status line per completion.

    Writes ``[done/total] scenario-name (cached)`` lines to ``stream``
    (default ``sys.stderr``, resolved at call time so pytest's capture
    replacement is honored).
    """

    def tick(done: int, total: int, scenario: Scenario, cached: bool) -> None:
        out = stream if stream is not None else sys.stderr
        suffix = " (cached)" if cached else ""
        out.write(f"[{done}/{total}] {scenario.name}{suffix}\n")
        out.flush()

    return tick


def run_scenario(scenario: Scenario) -> Dict[str, Any]:
    """Execute one scenario and return its JSON-safe result payload.

    Single-shot, no fault injection; the engine degradation chain still
    applies, so an infrastructure failure of the requested engine degrades to
    the next bit-identical engine instead of raising.
    """
    outcome = run_with_degradation(
        lambda engine: _run_payload(scenario, engine), scenario.engine
    )
    return outcome.result


@dataclass
class SweepStats:
    """Aggregate reliability counters for one ``run`` call.

    ``retries`` counts re-executions charged to a specific scenario (worker
    exceptions, integrity mismatches, soft timeouts, lease reassignments,
    and the collective charge after a pool breakage); ``pool_rebuilds``
    counts the process-pool generations created beyond the first;
    ``degraded`` counts scenarios whose result was produced below their
    requested engine.

    The distributed (``"workdir"``) backend additionally reports:
    ``reassignments`` -- tasks recovered from expired leases of dead or
    partitioned workers; ``duplicate_completions`` -- result envelopes that
    arrived after their task had already completed elsewhere (ignored
    idempotently: first digest-valid envelope wins); ``envelopes_rejected``
    -- unparseable or digest-mismatched envelopes quarantined off the spool;
    ``worker_replacements`` -- dead worker processes replaced mid-sweep.
    """

    scenarios: int = 0
    cache_hits: int = 0
    fresh: int = 0
    failures: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    degraded: int = 0
    reassignments: int = 0
    duplicate_completions: int = 0
    envelopes_rejected: int = 0
    worker_replacements: int = 0


@dataclass
class ScenarioResult:
    """One scenario's outcome.

    ``payload`` holds the JSON-safe result produced by the algorithm runner
    (metrics, palette, colors_used, coloring digest, wall time, ...);
    ``cached`` tells whether it was served from the on-disk cache.

    ``status`` is ``"ok"`` or ``"failed"``.  A failed result has
    ``payload=None`` and an attributed ``error`` string (the final exception,
    timeout, or pool breakage, after ``attempts`` executions); unknown
    attribute lookups then raise :class:`AttributeError` instead of
    dereferencing a payload that does not exist.  ``engine_used`` /
    ``degraded_from`` record engine degradation (``engine_used`` equals the
    scenario's engine when no degradation happened; both are ``None``/empty
    for cache hits, whose execution history was not retained).
    """

    scenario: Scenario
    payload: Optional[Dict[str, Any]]
    cached: bool
    status: str = "ok"
    error: Optional[str] = None
    attempts: int = 1
    engine_used: Optional[str] = None
    degraded_from: Tuple[str, ...] = ()

    def __getattr__(self, name: str) -> Any:
        # Dunder probes (pickle's __getstate__, copy's __deepcopy__,
        # __dataclass_fields__ lookups on the instance, ...) must fail fast
        # with AttributeError instead of being searched for in the payload
        # dict -- otherwise copying or pickling a result explodes on payload
        # keys that merely *look* like protocol hooks, and every protocol
        # probe costs a dict lookup.
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        payload = self.__dict__.get("payload")
        if payload is None:
            raise AttributeError(name)
        try:
            return payload[name]
        except KeyError:
            raise AttributeError(name) from None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def name(self) -> str:
        return self.scenario.name

    @property
    def coloring(self) -> Dict[Hashable, int]:
        """The captured coloring (requires ``capture_colors=True``)."""
        encoded = self.payload.get("coloring") if self.payload else None
        if encoded is None:
            raise ValueError(
                f"scenario {self.scenario.name!r} did not capture its coloring; "
                "construct it with capture_colors=True"
            )
        return {ast.literal_eval(node): color for node, color in encoded}


class ExperimentRunner:
    """Run scenario sweeps over a pluggable executor backend, with caching
    and fault tolerance.

    Parameters
    ----------
    cache_dir:
        Directory of the result cache (see :mod:`repro.experiments.cache`).
        ``None`` disables caching (and with it checkpoint/resume).
    max_workers:
        Worker count.  ``None`` uses ``os.cpu_count()`` (capped by the
        number of scenarios); ``0`` or ``1`` runs serially in-process (under
        ``backend="auto"``).
    on_progress:
        Default sweep-progress callback used by :meth:`run` when none is
        passed explicitly; ``None`` (the default) disables reporting.
    retries:
        How many times a failing scenario is re-executed before it is
        recorded as ``status="failed"`` (so each scenario runs at most
        ``retries + 1`` times, whichever backend executes it).
    retry_backoff:
        Base of the exponential backoff slept before retry ``k``:
        ``retry_backoff * 2**(k-1)`` seconds.  ``0`` (the default) retries
        immediately -- the right choice for deterministic in-process faults;
        give it a small positive value when failures are environmental.
        (The ``"workdir"`` backend retries immediately regardless: its
        coordinator loop must keep collecting envelopes from other workers.)
    timeout:
        Per-scenario soft timeout in seconds, measured from when execution
        starts, enforced identically by every backend (the serial backend
        runs each scenario under a watchdog thread).  On expiry the scenario
        is charged an attempt; a hung pool worker additionally loses its
        pool, because it cannot be reclaimed.
    fault_plan:
        A :class:`~repro.resilience.FaultPlan` to inject deterministic
        faults, propagated to workers via ``$REPRO_FAULT_PLAN``.
    backend:
        Executor backend name (see :mod:`repro.experiments.executors`):
        ``"serial"``, ``"process"``, ``"workdir"``, or ``"auto"`` (the
        default: ``"process"`` when ``max_workers`` and the pending count
        both exceed 1, else ``"serial"`` -- exactly the pre-backend
        behavior).
    backend_options:
        Keyword options forwarded to the backend constructor (e.g.
        ``{"spool_dir": ..., "lease_ttl": 5.0}`` for ``"workdir"``).
    """

    def __init__(
        self,
        cache_dir: Optional[os.PathLike] = None,
        max_workers: Optional[int] = None,
        on_progress: Optional[ProgressCallback] = None,
        retries: int = 2,
        retry_backoff: float = 0.0,
        timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        backend: str = "auto",
        backend_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.max_workers = max_workers
        self.on_progress = on_progress
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.timeout = timeout
        self.fault_plan = fault_plan
        self.backend = backend
        self.backend_options = dict(backend_options or {})
        #: :class:`SweepStats` of the most recent :meth:`run` call.
        self.last_stats = SweepStats()

    def _executor_for(self, workers: int, pending: int) -> ExecutorBackend:
        name = self.backend
        if name == "auto":
            name = "process" if workers > 1 and pending > 1 else "serial"
        return make_executor(name, **self.backend_options)

    def run(
        self,
        scenarios: Sequence[Scenario],
        on_progress: Optional[ProgressCallback] = None,
    ) -> List[ScenarioResult]:
        """Run every scenario (cache-first, then via the backend), in input order.

        ``on_progress`` (or the runner's default) is invoked once per
        scenario with ``(done, total, scenario, cached)``: immediately for
        cache hits and duplicates, and in completion order for fresh
        executions.  ``done`` counts monotonically up to ``len(scenarios)``.
        """
        on_progress = on_progress if on_progress is not None else self.on_progress
        scenarios = list(scenarios)
        tokens = [scenario.cache_token() for scenario in scenarios]
        total = len(scenarios)
        done = 0
        stats = SweepStats(scenarios=total)
        self.last_stats = stats

        def report(index: int, cached: bool) -> None:
            nonlocal done
            done += 1
            if on_progress is not None:
                on_progress(done, total, scenarios[index], cached)

        outcomes: Dict[str, _Outcome] = {}
        if self.cache is not None:
            for scenario, token in zip(scenarios, tokens):
                if token in outcomes:
                    continue
                hit = self.cache.get(token)
                if hit is not None:
                    outcomes[token] = _Outcome(payload=hit, cached=True)
                    stats.cache_hits += 1
        for index, token in enumerate(tokens):
            if token in outcomes:
                report(index, cached=True)

        pending: List[int] = []
        pending_tokens = set()
        for index, token in enumerate(tokens):
            if token not in outcomes and token not in pending_tokens:
                pending.append(index)
                pending_tokens.add(token)

        def complete(index: int, outcome: _Outcome) -> None:
            # Write-through: each fresh result checkpoints to the cache the
            # moment it lands, so an interrupted sweep resumes from here.
            token = tokens[index]
            outcomes[token] = outcome
            if outcome.status == "ok":
                stats.fresh += 1
                if outcome.degraded_from:
                    stats.degraded += 1
                if self.cache is not None:
                    self.cache.put(token, scenarios[index].key(), outcome.payload)
            else:
                stats.failures += 1
            report(index, cached=False)

        if pending:
            workers = self.max_workers
            if workers is None:
                workers = min(len(pending), os.cpu_count() or 1)
            executor = self._executor_for(workers, len(pending))
            executor.execute(
                ExecutionRequest(
                    scenarios=scenarios,
                    tokens=tokens,
                    pending=pending,
                    complete=complete,
                    stats=stats,
                    retries=self.retries,
                    retry_backoff=self.retry_backoff,
                    timeout=self.timeout,
                    fault_plan=self.fault_plan,
                    workers=max(1, workers or 1),
                    cache=self.cache,
                )
            )

        # Duplicates of freshly executed scenarios resolve last (their
        # outcome was computed once, under the executing index).
        pending_set = set(pending)
        for index, token in enumerate(tokens):
            if token in pending_tokens and index not in pending_set:
                report(index, cached=False)

        return [
            ScenarioResult(
                scenario=scenario,
                payload=outcomes[token].payload,
                cached=outcomes[token].cached,
                status=outcomes[token].status,
                error=outcomes[token].error,
                attempts=outcomes[token].attempts,
                engine_used=outcomes[token].engine_used,
                degraded_from=outcomes[token].degraded_from,
            )
            for scenario, token in zip(scenarios, tokens)
        ]
