"""The parallel, caching experiment runner.

:class:`ExperimentRunner` takes a list of :class:`~repro.experiments.scenarios.Scenario`
objects and produces one :class:`ScenarioResult` per scenario, in input order:

1. every scenario is first looked up in the on-disk cache (if one is
   configured) by its SHA-256 cache token;
2. the misses are sharded across a ``concurrent.futures.ProcessPoolExecutor``
   (scenarios are plain picklable data; the worker rebuilds the graph from
   its :class:`~repro.experiments.scenarios.GraphSpec` and runs the named
   algorithm on the named engine);
3. fresh results are written back to the cache atomically, so interrupted or
   concurrent sweeps never corrupt it.

Duplicate scenarios (same cache token) are executed only once per ``run``
call.  Set ``max_workers=0`` to force serial in-process execution -- useful
under hypothesis or in debuggers.
"""

from __future__ import annotations

import ast
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence

from repro.experiments.cache import ResultCache
from repro.experiments.scenarios import ALGORITHMS, Scenario


def run_scenario(scenario: Scenario) -> Dict[str, Any]:
    """Execute one scenario and return its JSON-safe result payload.

    This is the worker entry point (module-level so it pickles); it is also
    called directly for serial execution and cache backfills.
    """
    try:
        runner = ALGORITHMS[scenario.algorithm]
    except KeyError:
        from repro.exceptions import InvalidParameterError

        raise InvalidParameterError(
            f"unknown algorithm {scenario.algorithm!r}; known: {sorted(ALGORITHMS)}"
        ) from None
    started = time.perf_counter()
    network = scenario.graph.build()
    payload = runner(
        network,
        scenario.params_dict,
        scenario.engine,
        scenario.capture_colors,
    )
    payload["wall_time"] = time.perf_counter() - started
    payload["num_nodes"] = network.num_nodes
    payload["num_edges"] = network.num_edges
    payload["max_degree"] = network.max_degree
    return payload


@dataclass
class ScenarioResult:
    """One scenario's outcome.

    ``payload`` holds the JSON-safe result produced by the algorithm runner
    (metrics, palette, colors_used, coloring digest, wall time, ...);
    ``cached`` tells whether it was served from the on-disk cache.
    """

    scenario: Scenario
    payload: Dict[str, Any]
    cached: bool

    def __getattr__(self, name: str) -> Any:
        try:
            return self.payload[name]
        except KeyError:
            raise AttributeError(name) from None

    @property
    def name(self) -> str:
        return self.scenario.name

    @property
    def coloring(self) -> Dict[Hashable, int]:
        """The captured coloring (requires ``capture_colors=True``)."""
        encoded = self.payload.get("coloring")
        if encoded is None:
            raise ValueError(
                f"scenario {self.scenario.name!r} did not capture its coloring; "
                "construct it with capture_colors=True"
            )
        return {ast.literal_eval(node): color for node, color in encoded}


class ExperimentRunner:
    """Shard scenarios across processes, with on-disk result caching.

    Parameters
    ----------
    cache_dir:
        Directory of the result cache (see :mod:`repro.experiments.cache`).
        ``None`` disables caching.
    max_workers:
        Worker process count.  ``None`` uses ``os.cpu_count()`` (capped by
        the number of scenarios); ``0`` or ``1`` runs serially in-process.
    """

    def __init__(
        self,
        cache_dir: Optional[os.PathLike] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.max_workers = max_workers

    def run(self, scenarios: Sequence[Scenario]) -> List[ScenarioResult]:
        """Run every scenario (cache-first, then in parallel), in input order."""
        scenarios = list(scenarios)
        tokens = [scenario.cache_token() for scenario in scenarios]

        payloads: Dict[str, Dict[str, Any]] = {}
        cached_tokens = set()
        if self.cache is not None:
            for scenario, token in zip(scenarios, tokens):
                if token in payloads:
                    continue
                hit = self.cache.get(token)
                if hit is not None:
                    payloads[token] = hit
                    cached_tokens.add(token)

        pending: List[int] = []
        pending_tokens = set()
        for index, token in enumerate(tokens):
            if token not in payloads and token not in pending_tokens:
                pending.append(index)
                pending_tokens.add(token)

        if pending:
            workers = self.max_workers
            if workers is None:
                workers = min(len(pending), os.cpu_count() or 1)
            if workers and workers > 1 and len(pending) > 1:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    fresh = list(
                        pool.map(run_scenario, [scenarios[i] for i in pending])
                    )
            else:
                fresh = [run_scenario(scenarios[i]) for i in pending]
            for index, payload in zip(pending, fresh):
                token = tokens[index]
                payloads[token] = payload
                if self.cache is not None:
                    self.cache.put(token, scenarios[index].key(), payload)

        return [
            ScenarioResult(
                scenario=scenario,
                payload=payloads[token],
                cached=token in cached_tokens,
            )
            for scenario, token in zip(scenarios, tokens)
        ]
