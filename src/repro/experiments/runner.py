"""The parallel, caching, fault-tolerant experiment runner.

:class:`ExperimentRunner` takes a list of :class:`~repro.experiments.scenarios.Scenario`
objects and produces one :class:`ScenarioResult` per scenario, in input order:

1. every scenario is first looked up in the on-disk cache (if one is
   configured) by its SHA-256 cache token;
2. the misses are sharded across a ``concurrent.futures.ProcessPoolExecutor``
   (scenarios are plain picklable data; the worker rebuilds the graph from
   its :class:`~repro.experiments.scenarios.GraphSpec` and runs the named
   algorithm on the named engine);
3. every fresh result is written back to the cache *as its future lands*
   (write-through), so an interrupted sweep acts as a checkpoint: re-running
   it re-executes only the scenarios that had not finished.

A worker failure never aborts the sweep.  Exceptions are captured per
scenario into ``ScenarioResult.status`` / ``error``, with configurable
retries (exponential backoff), a per-scenario soft timeout for hung workers,
and transparent recovery from a broken process pool (the pool is rebuilt and
only unfinished work resubmitted).  Workers apply the engine degradation
chain (compiled -> vectorized -> batched -> reference, see
:mod:`repro.resilience`) when an engine fails as infrastructure, and stamp an
integrity digest on each payload so results corrupted in transit are detected
and retried.  A seedable :class:`~repro.resilience.FaultPlan` can be injected
to rehearse all of this deterministically.

Only :class:`~repro.exceptions.InvalidParameterError` still propagates: an
invalid scenario is a caller bug, not a fault, and retrying it cannot help.

Duplicate scenarios (same cache token) are executed only once per ``run``
call.  Set ``max_workers=0`` to force serial in-process execution -- useful
under hypothesis or in debuggers.

Sweep-level progress is reported through an optional ``on_progress`` callback
(off by default): it fires once per scenario -- immediately for cache hits,
from the process-pool futures as they complete for fresh executions -- with
``(done, total, scenario, cached)``.  :func:`progress_ticker` builds a
ready-made stderr ticker callback.  Aggregate reliability counters for the
last sweep (retries, timeouts, pool rebuilds, failures, ...) are kept on
``runner.last_stats``.
"""

from __future__ import annotations

import ast
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
)

from repro.exceptions import InvalidParameterError
from repro.experiments.cache import ResultCache
from repro.experiments.scenarios import ALGORITHMS, Scenario, payload_digest
from repro.resilience.faults import FAULT_PLAN_ENV, FaultInjector, FaultPlan
from repro.resilience.degrade import run_with_degradation

#: Signature of the sweep progress callback: ``(done, total, scenario, cached)``.
ProgressCallback = Callable[[int, int, Scenario, bool], None]

#: How often the pool loop wakes to check soft timeouts (seconds).  Only used
#: when a timeout is configured; without one the loop blocks until a future
#: completes, exactly like the pre-resilience runner.
_POLL_SECONDS = 0.05


def progress_ticker(stream: Optional[TextIO] = None) -> ProgressCallback:
    """A ready-made ``on_progress`` callback: one status line per completion.

    Writes ``[done/total] scenario-name (cached)`` lines to ``stream``
    (default ``sys.stderr``, resolved at call time so pytest's capture
    replacement is honored).
    """

    def tick(done: int, total: int, scenario: Scenario, cached: bool) -> None:
        out = stream if stream is not None else sys.stderr
        suffix = " (cached)" if cached else ""
        out.write(f"[{done}/{total}] {scenario.name}{suffix}\n")
        out.flush()

    return tick


def _run_payload(scenario: Scenario, engine: str) -> Dict[str, Any]:
    """Execute ``scenario`` on ``engine`` and return its JSON-safe payload."""
    try:
        runner = ALGORITHMS[scenario.algorithm]
    except KeyError:
        raise InvalidParameterError(
            f"unknown algorithm {scenario.algorithm!r}; known: {sorted(ALGORITHMS)}"
        ) from None
    started = time.perf_counter()
    network = scenario.graph.build()
    payload = runner(
        network,
        scenario.params_dict,
        engine,
        scenario.capture_colors,
    )
    payload["wall_time"] = time.perf_counter() - started
    payload["num_nodes"] = network.num_nodes
    payload["num_edges"] = network.num_edges
    payload["max_degree"] = network.max_degree
    return payload


def run_scenario(scenario: Scenario) -> Dict[str, Any]:
    """Execute one scenario and return its JSON-safe result payload.

    Single-shot, no fault injection; the engine degradation chain still
    applies, so an infrastructure failure of the requested engine degrades to
    the next bit-identical engine instead of raising.
    """
    outcome = run_with_degradation(
        lambda engine: _run_payload(scenario, engine), scenario.engine
    )
    return outcome.result


def _execute_scenario(
    scenario: Scenario,
    index: int = 0,
    attempt: int = 0,
    injector: Optional[FaultInjector] = None,
) -> Dict[str, Any]:
    """The worker entry point (module-level so it pickles): one envelope.

    The envelope wraps the result payload with resilience metadata that must
    never leak into the cached payload itself (cached payloads stay
    bit-identical to fault-free runs): the engine that actually produced the
    result after degradation, the abandoned engines, and an integrity digest
    computed *before* any injected corruption so the parent can verify the
    payload it received.
    """
    if injector is None:
        injector = FaultInjector.from_env()
    restore = None
    if injector is not None:
        restore = injector.fire_before_run(index, attempt)
    try:
        outcome = run_with_degradation(
            lambda engine: _run_payload(scenario, engine), scenario.engine
        )
    finally:
        if restore is not None:
            restore()
    payload = outcome.result
    envelope = {
        "payload": payload,
        "engine_used": outcome.engine,
        "degraded_from": list(outcome.degraded_from),
        "integrity": payload_digest(payload),
    }
    if injector is not None:
        injector.corrupt_payload(index, attempt, payload)
    return envelope


@dataclass
class SweepStats:
    """Aggregate reliability counters for one ``run`` call.

    ``retries`` counts re-executions charged to a specific scenario (worker
    exceptions, integrity mismatches, soft timeouts, and the collective
    charge after a pool breakage); ``pool_rebuilds`` counts the process-pool
    generations created beyond the first; ``degraded`` counts scenarios whose
    result was produced below their requested engine.
    """

    scenarios: int = 0
    cache_hits: int = 0
    fresh: int = 0
    failures: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    degraded: int = 0


@dataclass
class _Outcome:
    """Internal per-token outcome record (shared by duplicate scenarios)."""

    payload: Optional[Dict[str, Any]] = None
    cached: bool = False
    status: str = "ok"
    error: Optional[str] = None
    attempts: int = 1
    engine_used: Optional[str] = None
    degraded_from: Tuple[str, ...] = ()


@dataclass
class ScenarioResult:
    """One scenario's outcome.

    ``payload`` holds the JSON-safe result produced by the algorithm runner
    (metrics, palette, colors_used, coloring digest, wall time, ...);
    ``cached`` tells whether it was served from the on-disk cache.

    ``status`` is ``"ok"`` or ``"failed"``.  A failed result has
    ``payload=None`` and an attributed ``error`` string (the final exception,
    timeout, or pool breakage, after ``attempts`` executions); unknown
    attribute lookups then raise :class:`AttributeError` instead of
    dereferencing a payload that does not exist.  ``engine_used`` /
    ``degraded_from`` record engine degradation (``engine_used`` equals the
    scenario's engine when no degradation happened; both are ``None``/empty
    for cache hits, whose execution history was not retained).
    """

    scenario: Scenario
    payload: Optional[Dict[str, Any]]
    cached: bool
    status: str = "ok"
    error: Optional[str] = None
    attempts: int = 1
    engine_used: Optional[str] = None
    degraded_from: Tuple[str, ...] = ()

    def __getattr__(self, name: str) -> Any:
        # Dunder probes (pickle's __getstate__, copy's __deepcopy__,
        # __dataclass_fields__ lookups on the instance, ...) must fail fast
        # with AttributeError instead of being searched for in the payload
        # dict -- otherwise copying or pickling a result explodes on payload
        # keys that merely *look* like protocol hooks, and every protocol
        # probe costs a dict lookup.
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        payload = self.__dict__.get("payload")
        if payload is None:
            raise AttributeError(name)
        try:
            return payload[name]
        except KeyError:
            raise AttributeError(name) from None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def name(self) -> str:
        return self.scenario.name

    @property
    def coloring(self) -> Dict[Hashable, int]:
        """The captured coloring (requires ``capture_colors=True``)."""
        encoded = self.payload.get("coloring") if self.payload else None
        if encoded is None:
            raise ValueError(
                f"scenario {self.scenario.name!r} did not capture its coloring; "
                "construct it with capture_colors=True"
            )
        return {ast.literal_eval(node): color for node, color in encoded}


class ExperimentRunner:
    """Shard scenarios across processes, with caching and fault tolerance.

    Parameters
    ----------
    cache_dir:
        Directory of the result cache (see :mod:`repro.experiments.cache`).
        ``None`` disables caching (and with it checkpoint/resume).
    max_workers:
        Worker process count.  ``None`` uses ``os.cpu_count()`` (capped by
        the number of scenarios); ``0`` or ``1`` runs serially in-process.
    on_progress:
        Default sweep-progress callback used by :meth:`run` when none is
        passed explicitly; ``None`` (the default) disables reporting.
    retries:
        How many times a failing scenario is re-executed before it is
        recorded as ``status="failed"`` (so each scenario runs at most
        ``retries + 1`` times).
    retry_backoff:
        Base of the exponential backoff slept before retry ``k``:
        ``retry_backoff * 2**(k-1)`` seconds.  ``0`` (the default) retries
        immediately -- the right choice for deterministic in-process faults;
        give it a small positive value when failures are environmental.
    timeout:
        Per-scenario soft timeout in seconds, measured from when the worker
        starts executing (pool execution only; a serial run cannot preempt
        itself).  On expiry the scenario is charged an attempt and the pool
        is rebuilt, because a hung worker cannot be reclaimed.
    fault_plan:
        A :class:`~repro.resilience.FaultPlan` to inject deterministic
        faults, propagated to pool workers via ``$REPRO_FAULT_PLAN``.
    """

    def __init__(
        self,
        cache_dir: Optional[os.PathLike] = None,
        max_workers: Optional[int] = None,
        on_progress: Optional[ProgressCallback] = None,
        retries: int = 2,
        retry_backoff: float = 0.0,
        timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.max_workers = max_workers
        self.on_progress = on_progress
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.timeout = timeout
        self.fault_plan = fault_plan
        #: :class:`SweepStats` of the most recent :meth:`run` call.
        self.last_stats = SweepStats()

    def run(
        self,
        scenarios: Sequence[Scenario],
        on_progress: Optional[ProgressCallback] = None,
    ) -> List[ScenarioResult]:
        """Run every scenario (cache-first, then in parallel), in input order.

        ``on_progress`` (or the runner's default) is invoked once per
        scenario with ``(done, total, scenario, cached)``: immediately for
        cache hits and duplicates, and from the pool futures in completion
        order for fresh executions.  ``done`` counts monotonically up to
        ``len(scenarios)``.
        """
        on_progress = on_progress if on_progress is not None else self.on_progress
        scenarios = list(scenarios)
        tokens = [scenario.cache_token() for scenario in scenarios]
        total = len(scenarios)
        done = 0
        stats = SweepStats(scenarios=total)
        self.last_stats = stats

        def report(index: int, cached: bool) -> None:
            nonlocal done
            done += 1
            if on_progress is not None:
                on_progress(done, total, scenarios[index], cached)

        outcomes: Dict[str, _Outcome] = {}
        if self.cache is not None:
            for scenario, token in zip(scenarios, tokens):
                if token in outcomes:
                    continue
                hit = self.cache.get(token)
                if hit is not None:
                    outcomes[token] = _Outcome(payload=hit, cached=True)
                    stats.cache_hits += 1
        for index, token in enumerate(tokens):
            if token in outcomes:
                report(index, cached=True)

        pending: List[int] = []
        pending_tokens = set()
        for index, token in enumerate(tokens):
            if token not in outcomes and token not in pending_tokens:
                pending.append(index)
                pending_tokens.add(token)

        def complete(index: int, outcome: _Outcome) -> None:
            # Write-through: each fresh result checkpoints to the cache the
            # moment it lands, so an interrupted sweep resumes from here.
            token = tokens[index]
            outcomes[token] = outcome
            if outcome.status == "ok":
                stats.fresh += 1
                if outcome.degraded_from:
                    stats.degraded += 1
                if self.cache is not None:
                    self.cache.put(token, scenarios[index].key(), outcome.payload)
            else:
                stats.failures += 1
            report(index, cached=False)

        if pending:
            workers = self.max_workers
            if workers is None:
                workers = min(len(pending), os.cpu_count() or 1)
            if workers and workers > 1 and len(pending) > 1:
                self._run_pool(scenarios, pending, workers, complete, stats)
            else:
                self._run_serial(scenarios, pending, complete, stats)

        # Duplicates of freshly executed scenarios resolve last (their
        # outcome was computed once, under the executing index).
        pending_set = set(pending)
        for index, token in enumerate(tokens):
            if token in pending_tokens and index not in pending_set:
                report(index, cached=False)

        return [
            ScenarioResult(
                scenario=scenario,
                payload=outcomes[token].payload,
                cached=outcomes[token].cached,
                status=outcomes[token].status,
                error=outcomes[token].error,
                attempts=outcomes[token].attempts,
                engine_used=outcomes[token].engine_used,
                degraded_from=outcomes[token].degraded_from,
            )
            for scenario, token in zip(scenarios, tokens)
        ]

    # ------------------------------------------------------------------ #
    # Execution paths
    # ------------------------------------------------------------------ #

    def _backoff(self, attempt: int) -> None:
        delay = self.retry_backoff * (2 ** max(0, attempt - 1))
        if delay > 0:
            time.sleep(delay)

    @staticmethod
    def _ok_outcome(envelope: Dict[str, Any], attempts: int) -> _Outcome:
        return _Outcome(
            payload=envelope["payload"],
            status="ok",
            attempts=attempts,
            engine_used=envelope.get("engine_used"),
            degraded_from=tuple(envelope.get("degraded_from") or ()),
        )

    def _run_serial(
        self,
        scenarios: Sequence[Scenario],
        pending: Sequence[int],
        complete: Callable[[int, _Outcome], None],
        stats: SweepStats,
    ) -> None:
        """In-process execution with the same capture/retry/write-through policy."""
        injector = (
            FaultInjector(self.fault_plan, allow_process_exit=False)
            if self.fault_plan is not None
            else None
        )
        for index in pending:
            attempt = 0
            while True:
                error = None
                envelope = None
                try:
                    envelope = _execute_scenario(
                        scenarios[index], index, attempt, injector=injector
                    )
                except InvalidParameterError:
                    raise
                except Exception as exc:  # noqa: BLE001 - capture, not abort
                    error = f"{type(exc).__name__}: {exc}"
                if error is None and envelope["integrity"] != payload_digest(
                    envelope["payload"]
                ):
                    error = "payload integrity digest mismatch"
                if error is None:
                    complete(index, self._ok_outcome(envelope, attempt + 1))
                    break
                attempt += 1
                if attempt > self.retries:
                    complete(
                        index,
                        _Outcome(status="failed", error=error, attempts=attempt),
                    )
                    break
                stats.retries += 1
                self._backoff(attempt)

    def _run_pool(
        self,
        scenarios: Sequence[Scenario],
        pending: Sequence[int],
        workers: int,
        complete: Callable[[int, _Outcome], None],
        stats: SweepStats,
    ) -> None:
        """Pool execution in *generations*: a lost pool is rebuilt, and only
        unfinished work is resubmitted to the replacement."""
        previous_env = None
        env_set = False
        if self.fault_plan is not None:
            previous_env = os.environ.get(FAULT_PLAN_ENV)
            os.environ[FAULT_PLAN_ENV] = self.fault_plan.to_json()
            env_set = True
        attempts = dict.fromkeys(pending, 0)
        unfinished = list(pending)
        suspects: set = set()
        first = True
        try:
            while unfinished:
                if not first:
                    stats.pool_rebuilds += 1
                first = False
                unfinished = self._pool_generation(
                    scenarios, unfinished, attempts, workers, complete, stats, suspects
                )
            # Scenarios that ran out of attempts purely through *collective*
            # pool-breakage charges were never individually convicted: give
            # each one isolated, single-worker execution.  If the pool
            # breaks again the crash is theirs beyond doubt (and is recorded
            # as such); innocents caught near a serial crasher complete here.
            for index in sorted(suspects):
                unfinished = [index]
                while unfinished:
                    stats.pool_rebuilds += 1
                    unfinished = self._pool_generation(
                        scenarios,
                        unfinished,
                        attempts,
                        1,
                        complete,
                        stats,
                        suspects,
                        isolated=True,
                    )
        finally:
            if env_set:
                if previous_env is None:
                    os.environ.pop(FAULT_PLAN_ENV, None)
                else:
                    os.environ[FAULT_PLAN_ENV] = previous_env

    def _pool_generation(
        self,
        scenarios: Sequence[Scenario],
        unfinished: Sequence[int],
        attempts: Dict[int, int],
        workers: int,
        complete: Callable[[int, _Outcome], None],
        stats: SweepStats,
        suspects: set,
        isolated: bool = False,
    ) -> List[int]:
        """Drain one process pool; return the indexes a fresh pool must redo.

        The generation ends early ("the pool is lost") on a broken pool or a
        soft-timeout expiry, because in both cases at least one worker can no
        longer be trusted or reclaimed.  A pool breakage cannot be attributed
        to a single scenario, so it charges one attempt to *every* index that
        was unfinished at that moment -- this guarantees termination (a
        scenario that always kills its worker runs out of attempts after at
        most ``retries + 1`` breakages).  Indexes exhausted *only* by those
        collective charges are not failed here but parked in ``suspects``
        for an isolated retrial (see :meth:`_run_pool`); in an ``isolated``
        (single-scenario) generation a breakage is individual guilt and
        fails the scenario directly.
        """
        pool = ProcessPoolExecutor(max_workers=workers)
        futures: Dict[Any, int] = {}
        started: Dict[Any, float] = {}
        remaining = set(unfinished)
        lost = False
        charge_all = False
        try:
            for index in unfinished:
                futures[
                    pool.submit(
                        _execute_scenario, scenarios[index], index, attempts[index]
                    )
                ] = index
            while futures and not lost:
                tick = _POLL_SECONDS if self.timeout is not None else None
                finished, _ = wait(
                    set(futures), timeout=tick, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                for future in finished:
                    index = futures.pop(future)
                    started.pop(future, None)
                    envelope = None
                    error = None
                    try:
                        envelope = future.result()
                    except InvalidParameterError:
                        raise
                    except BrokenProcessPool:
                        lost = True
                        charge_all = True
                        break
                    except Exception as exc:  # noqa: BLE001 - capture, not abort
                        error = f"{type(exc).__name__}: {exc}"
                    if error is None and envelope["integrity"] != payload_digest(
                        envelope["payload"]
                    ):
                        error = "payload integrity digest mismatch (corrupted in transit)"
                    if error is None:
                        remaining.discard(index)
                        complete(index, self._ok_outcome(envelope, attempts[index] + 1))
                        continue
                    attempts[index] += 1
                    if attempts[index] > self.retries:
                        remaining.discard(index)
                        complete(
                            index,
                            _Outcome(
                                status="failed", error=error, attempts=attempts[index]
                            ),
                        )
                    else:
                        stats.retries += 1
                        self._backoff(attempts[index])
                        futures[
                            pool.submit(
                                _execute_scenario,
                                scenarios[index],
                                index,
                                attempts[index],
                            )
                        ] = index
                if lost or self.timeout is None:
                    continue
                for future in list(futures):
                    if future not in started and future.running():
                        started[future] = now
                expired = [
                    future
                    for future, began in started.items()
                    if future in futures and now - began >= self.timeout
                ]
                if expired:
                    # A hung worker cannot be cancelled or reclaimed: charge
                    # the timed-out scenarios an attempt and lose the pool.
                    lost = True
                    stats.timeouts += len(expired)
                    for future in expired:
                        index = futures.pop(future)
                        attempts[index] += 1
                        if attempts[index] > self.retries:
                            remaining.discard(index)
                            complete(
                                index,
                                _Outcome(
                                    status="failed",
                                    error=(
                                        f"soft timeout: no result within "
                                        f"{self.timeout:g}s (worker hung)"
                                    ),
                                    attempts=attempts[index],
                                ),
                            )
                        else:
                            stats.retries += 1
        finally:
            self._teardown_pool(pool, graceful=not lost)
        if charge_all:
            # The pool broke; every unfinished scenario pays one attempt
            # (see the docstring for why attribution is collective).
            for index in sorted(remaining):
                attempts[index] += 1
                if isolated:
                    # The scenario was alone in this pool: the crash is its.
                    remaining.discard(index)
                    complete(
                        index,
                        _Outcome(
                            status="failed",
                            error=(
                                "worker process crashed while executing this "
                                "scenario (confirmed in isolation); retries "
                                "exhausted"
                            ),
                            attempts=attempts[index],
                        ),
                    )
                elif attempts[index] > self.retries:
                    remaining.discard(index)
                    suspects.add(index)
                else:
                    stats.retries += 1
        return sorted(remaining)

    @staticmethod
    def _teardown_pool(pool: ProcessPoolExecutor, graceful: bool) -> None:
        """Shut a pool down; a lost pool's workers are terminated outright.

        ``_processes`` is private executor state, but it is the only handle
        on a *hung* worker -- ``shutdown`` alone would block on (or leak) it.
        The access is defensive: if the attribute moves, teardown degrades to
        the plain non-waiting shutdown.
        """
        if graceful:
            pool.shutdown(wait=True)
            return
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 - already-dead workers are fine
                pass
        pool.shutdown(wait=False, cancel_futures=True)
