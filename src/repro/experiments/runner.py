"""The parallel, caching experiment runner.

:class:`ExperimentRunner` takes a list of :class:`~repro.experiments.scenarios.Scenario`
objects and produces one :class:`ScenarioResult` per scenario, in input order:

1. every scenario is first looked up in the on-disk cache (if one is
   configured) by its SHA-256 cache token;
2. the misses are sharded across a ``concurrent.futures.ProcessPoolExecutor``
   (scenarios are plain picklable data; the worker rebuilds the graph from
   its :class:`~repro.experiments.scenarios.GraphSpec` and runs the named
   algorithm on the named engine);
3. fresh results are written back to the cache atomically, so interrupted or
   concurrent sweeps never corrupt it.

Duplicate scenarios (same cache token) are executed only once per ``run``
call.  Set ``max_workers=0`` to force serial in-process execution -- useful
under hypothesis or in debuggers.

Sweep-level progress is reported through an optional ``on_progress`` callback
(off by default): it fires once per scenario -- immediately for cache hits,
from the process-pool futures as they complete for fresh executions -- with
``(done, total, scenario, cached)``.  :func:`progress_ticker` builds a
ready-made stderr ticker callback.
"""

from __future__ import annotations

import ast
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, TextIO

from repro.experiments.cache import ResultCache
from repro.experiments.scenarios import ALGORITHMS, Scenario

#: Signature of the sweep progress callback: ``(done, total, scenario, cached)``.
ProgressCallback = Callable[[int, int, Scenario, bool], None]


def progress_ticker(stream: Optional[TextIO] = None) -> ProgressCallback:
    """A ready-made ``on_progress`` callback: one status line per completion.

    Writes ``[done/total] scenario-name (cached)`` lines to ``stream``
    (default ``sys.stderr``, resolved at call time so pytest's capture
    replacement is honored).
    """

    def tick(done: int, total: int, scenario: Scenario, cached: bool) -> None:
        out = stream if stream is not None else sys.stderr
        suffix = " (cached)" if cached else ""
        out.write(f"[{done}/{total}] {scenario.name}{suffix}\n")
        out.flush()

    return tick


def run_scenario(scenario: Scenario) -> Dict[str, Any]:
    """Execute one scenario and return its JSON-safe result payload.

    This is the worker entry point (module-level so it pickles); it is also
    called directly for serial execution and cache backfills.
    """
    try:
        runner = ALGORITHMS[scenario.algorithm]
    except KeyError:
        from repro.exceptions import InvalidParameterError

        raise InvalidParameterError(
            f"unknown algorithm {scenario.algorithm!r}; known: {sorted(ALGORITHMS)}"
        ) from None
    started = time.perf_counter()
    network = scenario.graph.build()
    payload = runner(
        network,
        scenario.params_dict,
        scenario.engine,
        scenario.capture_colors,
    )
    payload["wall_time"] = time.perf_counter() - started
    payload["num_nodes"] = network.num_nodes
    payload["num_edges"] = network.num_edges
    payload["max_degree"] = network.max_degree
    return payload


@dataclass
class ScenarioResult:
    """One scenario's outcome.

    ``payload`` holds the JSON-safe result produced by the algorithm runner
    (metrics, palette, colors_used, coloring digest, wall time, ...);
    ``cached`` tells whether it was served from the on-disk cache.
    """

    scenario: Scenario
    payload: Dict[str, Any]
    cached: bool

    def __getattr__(self, name: str) -> Any:
        try:
            return self.payload[name]
        except KeyError:
            raise AttributeError(name) from None

    @property
    def name(self) -> str:
        return self.scenario.name

    @property
    def coloring(self) -> Dict[Hashable, int]:
        """The captured coloring (requires ``capture_colors=True``)."""
        encoded = self.payload.get("coloring")
        if encoded is None:
            raise ValueError(
                f"scenario {self.scenario.name!r} did not capture its coloring; "
                "construct it with capture_colors=True"
            )
        return {ast.literal_eval(node): color for node, color in encoded}


class ExperimentRunner:
    """Shard scenarios across processes, with on-disk result caching.

    Parameters
    ----------
    cache_dir:
        Directory of the result cache (see :mod:`repro.experiments.cache`).
        ``None`` disables caching.
    max_workers:
        Worker process count.  ``None`` uses ``os.cpu_count()`` (capped by
        the number of scenarios); ``0`` or ``1`` runs serially in-process.
    on_progress:
        Default sweep-progress callback used by :meth:`run` when none is
        passed explicitly; ``None`` (the default) disables reporting.
    """

    def __init__(
        self,
        cache_dir: Optional[os.PathLike] = None,
        max_workers: Optional[int] = None,
        on_progress: Optional[ProgressCallback] = None,
    ) -> None:
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.max_workers = max_workers
        self.on_progress = on_progress

    def run(
        self,
        scenarios: Sequence[Scenario],
        on_progress: Optional[ProgressCallback] = None,
    ) -> List[ScenarioResult]:
        """Run every scenario (cache-first, then in parallel), in input order.

        ``on_progress`` (or the runner's default) is invoked once per
        scenario with ``(done, total, scenario, cached)``: immediately for
        cache hits and duplicates, and from the pool futures in completion
        order for fresh executions.  ``done`` counts monotonically up to
        ``len(scenarios)``.
        """
        on_progress = on_progress if on_progress is not None else self.on_progress
        scenarios = list(scenarios)
        tokens = [scenario.cache_token() for scenario in scenarios]
        total = len(scenarios)
        done = 0

        def report(index: int, cached: bool) -> None:
            nonlocal done
            done += 1
            if on_progress is not None:
                on_progress(done, total, scenarios[index], cached)

        payloads: Dict[str, Dict[str, Any]] = {}
        cached_tokens = set()
        if self.cache is not None:
            for scenario, token in zip(scenarios, tokens):
                if token in payloads or token in cached_tokens:
                    continue
                hit = self.cache.get(token)
                if hit is not None:
                    payloads[token] = hit
                    cached_tokens.add(token)
        for index, token in enumerate(tokens):
            if token in cached_tokens:
                report(index, cached=True)

        pending: List[int] = []
        pending_tokens = set()
        for index, token in enumerate(tokens):
            if token not in payloads and token not in pending_tokens:
                pending.append(index)
                pending_tokens.add(token)

        if pending:
            workers = self.max_workers
            if workers is None:
                workers = min(len(pending), os.cpu_count() or 1)
            if workers and workers > 1 and len(pending) > 1:
                fresh = self._run_pool(scenarios, pending, workers, report)
            else:
                fresh = []
                for index in pending:
                    fresh.append(run_scenario(scenarios[index]))
                    report(index, cached=False)
            for index, payload in zip(pending, fresh):
                token = tokens[index]
                payloads[token] = payload
                if self.cache is not None:
                    self.cache.put(token, scenarios[index].key(), payload)

        # Duplicates of freshly executed scenarios resolve last (their
        # payload was computed once, under the executing index).
        for index, token in enumerate(tokens):
            if token in pending_tokens and index not in pending:
                report(index, cached=False)

        return [
            ScenarioResult(
                scenario=scenario,
                payload=payloads[token],
                cached=token in cached_tokens,
            )
            for scenario, token in zip(scenarios, tokens)
        ]

    @staticmethod
    def _run_pool(
        scenarios: Sequence[Scenario],
        pending: Sequence[int],
        workers: int,
        report: Callable[[int, bool], None],
    ) -> List[Dict[str, Any]]:
        """Shard ``pending`` across a process pool, reporting as futures land.

        Results are returned in ``pending`` order regardless of completion
        order.
        """
        results: Dict[int, Dict[str, Any]] = {}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            future_index = {
                pool.submit(run_scenario, scenarios[index]): index
                for index in pending
            }
            outstanding = set(future_index)
            while outstanding:
                finished, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in finished:
                    index = future_index[future]
                    results[index] = future.result()
                    report(index, cached=False)
        return [results[index] for index in pending]
