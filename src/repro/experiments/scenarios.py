"""Declarative experiment scenarios.

A :class:`Scenario` describes one complete run -- *which graph*, *which
algorithm*, *which parameters*, *which seed*, *which engine* -- as plain,
picklable, JSON-serializable data.  That makes scenarios shardable across
worker processes and hashable into stable cache keys: the SHA-256 of a
scenario's canonical key addresses its result on disk (see
:mod:`repro.experiments.cache`).

Graphs, tradeoff ``g``-functions and algorithms are referenced *by name*
through the registries below, never by callable, so a scenario constructed in
the parent process means the same thing inside a worker.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

from repro.exceptions import InvalidParameterError
from repro.local_model.engine import resolve_engine
from repro.local_model.fast_network import FastNetwork
from repro.local_model.network import Network

#: What a graph builder produces: the legacy mapping-based network
#: (``backend="legacy"``) or the CSR-native view (``backend="fast"``).
NetworkLike = Union[Network, FastNetwork]

# --------------------------------------------------------------------------- #
# Graph family registry
# --------------------------------------------------------------------------- #

#: family name -> builder(spec) -> NetworkLike.  Builders read only ``n``,
#: ``degree``, ``seed``, ``backend`` and ``extra`` from the spec.
GRAPH_FAMILIES: Dict[str, Callable[["GraphSpec"], NetworkLike]] = {}


def register_graph_family(name: str) -> Callable:
    """Decorator registering a graph builder under ``name``."""

    def decorator(builder: Callable[["GraphSpec"], Network]) -> Callable:
        GRAPH_FAMILIES[name] = builder
        return builder

    return decorator


@dataclass(frozen=True)
class GraphSpec:
    """A picklable description of a workload graph.

    Attributes
    ----------
    family:
        Name in :data:`GRAPH_FAMILIES` (e.g. ``"random_regular"``).
    n, degree, seed:
        The standard size / degree / seed knobs (families ignore what they do
        not use).
    line_graph:
        Build the line graph of the base graph (the paper's edge-coloring
        workloads are vertex-coloring workloads on ``L(G)``).
    backend:
        ``"legacy"`` (the default: networkx / dict-of-tuples ``Network``
        construction, byte-stable seed streams) or ``"fast"`` (array-built
        :class:`~repro.local_model.fast_network.FastNetwork`, never
        materializing a legacy ``Network``; with ``line_graph`` the ``L(G)``
        derivation also stays on the CSR arrays).  Deterministic families
        are bit-identical across backends; the random families follow one
        documented seed stream per backend (see
        :mod:`repro.graphs.generators`), so the backend is part of the cache
        key.
    extra:
        Additional family-specific parameters as a sorted tuple of
        ``(key, value)`` pairs.
    """

    family: str
    n: Optional[int] = None
    degree: Optional[int] = None
    seed: Optional[int] = None
    line_graph: bool = False
    backend: str = "legacy"
    extra: Tuple[Tuple[str, Any], ...] = ()

    def build(self) -> NetworkLike:
        """Construct the described network."""
        try:
            builder = GRAPH_FAMILIES[self.family]
        except KeyError:
            raise InvalidParameterError(
                f"unknown graph family {self.family!r}; known: {sorted(GRAPH_FAMILIES)}"
            ) from None
        network = builder(self)
        if self.line_graph:
            if self.backend == "fast":
                from repro.graphs.line_graph import build_line_graph_fast

                network = build_line_graph_fast(network)
            else:
                from repro.graphs.line_graph import line_graph_network

                network = line_graph_network(network)
        return network

    def key(self) -> Dict[str, Any]:
        """The canonical JSON-ready identity of this spec."""
        return {
            "family": self.family,
            "n": self.n,
            "degree": self.degree,
            "seed": self.seed,
            "line_graph": self.line_graph,
            "backend": self.backend,
            "extra": [list(pair) for pair in self.extra],
        }

    @classmethod
    def from_key(cls, document: Mapping[str, Any]) -> "GraphSpec":
        """Rebuild a spec from its :meth:`key` document (JSON round trip)."""
        return cls(
            family=str(document["family"]),
            n=document.get("n"),
            degree=document.get("degree"),
            seed=document.get("seed"),
            line_graph=bool(document.get("line_graph", False)),
            backend=str(document.get("backend", "legacy")),
            extra=tuple(
                (str(pair[0]), tuple(pair[1]) if isinstance(pair[1], list) else pair[1])
                for pair in document.get("extra") or ()
            ),
        )


@register_graph_family("random_regular")
def _build_random_regular(spec: GraphSpec) -> NetworkLike:
    from repro import graphs

    return graphs.random_regular(
        spec.n, spec.degree, seed=spec.seed or 0, backend=spec.backend
    )


@register_graph_family("cycle")
def _build_cycle(spec: GraphSpec) -> NetworkLike:
    from repro import graphs

    return graphs.cycle_graph(spec.n, backend=spec.backend)


@register_graph_family("path")
def _build_path(spec: GraphSpec) -> NetworkLike:
    from repro import graphs

    return graphs.path_graph(spec.n, backend=spec.backend)


@register_graph_family("star")
def _build_star(spec: GraphSpec) -> NetworkLike:
    from repro import graphs

    return graphs.star_graph(spec.n, backend=spec.backend)


@register_graph_family("complete")
def _build_complete(spec: GraphSpec) -> NetworkLike:
    from repro import graphs

    return graphs.complete_graph(spec.n, backend=spec.backend)


@register_graph_family("grid")
def _build_grid(spec: GraphSpec) -> NetworkLike:
    from repro import graphs

    extra = dict(spec.extra)
    rows = extra.get("rows", spec.n)
    cols = extra.get("cols", spec.n)
    return graphs.grid_graph(rows, cols, backend=spec.backend)


@register_graph_family("hypercube")
def _build_hypercube(spec: GraphSpec) -> NetworkLike:
    from repro import graphs

    return graphs.hypercube_graph(spec.n, backend=spec.backend)


@register_graph_family("clique_with_pendants")
def _build_clique_with_pendants(spec: GraphSpec) -> NetworkLike:
    from repro import graphs

    return graphs.clique_with_pendants(spec.n, backend=spec.backend)


@register_graph_family("erdos_renyi")
def _build_erdos_renyi(spec: GraphSpec) -> NetworkLike:
    from repro import graphs

    extra = dict(spec.extra)
    probability = extra.get("edge_probability", 0.1)
    return graphs.erdos_renyi(
        spec.n, probability, seed=spec.seed or 0, backend=spec.backend
    )


@register_graph_family("bipartite_regular")
def _build_bipartite_regular(spec: GraphSpec) -> NetworkLike:
    """The switch-scheduling workload: ``n`` ports per side, ``degree`` demands."""
    from repro import graphs

    return graphs.random_bipartite_regular(
        spec.n, spec.degree, seed=spec.seed or 0, backend=spec.backend
    )


@register_graph_family("barabasi_albert")
def _build_barabasi_albert(spec: GraphSpec) -> NetworkLike:
    """Preferential attachment with ``degree`` edges per arriving vertex."""
    from repro import graphs

    return graphs.barabasi_albert(
        spec.n, spec.degree, seed=spec.seed or 0, backend=spec.backend
    )


@register_graph_family("planted_degree_sequence")
def _build_planted_degree_sequence(spec: GraphSpec) -> NetworkLike:
    """Configuration model over a heavy-tailed sequence (knobs via ``extra``)."""
    from repro import graphs

    extra = dict(spec.extra)
    degrees = graphs.heavy_tailed_degree_sequence(
        spec.n,
        exponent=extra.get("exponent", 2.5),
        min_degree=extra.get("min_degree", 1),
        max_degree=extra.get("max_degree"),
        seed=spec.seed or 0,
    )
    return graphs.planted_degree_sequence(
        degrees, seed=spec.seed or 0, backend=spec.backend
    )


@register_graph_family("random_geometric")
def _build_random_geometric(spec: GraphSpec) -> NetworkLike:
    """Unit-square geometric graph; connection radius via ``extra``."""
    from repro import graphs

    extra = dict(spec.extra)
    radius = extra.get("radius", 0.1)
    return graphs.random_geometric(
        spec.n, radius, seed=spec.seed or 0, backend=spec.backend
    )


@register_graph_family("bipartite_switch")
def _build_bipartite_switch(spec: GraphSpec) -> NetworkLike:
    """Switch-fabric demand instance: ``n`` ports, ``degree`` demands per port."""
    from repro import graphs

    return graphs.bipartite_switch(
        spec.n, spec.degree, seed=spec.seed or 0, backend=spec.backend
    )


# --------------------------------------------------------------------------- #
# Tradeoff g-function registry (callables are not picklable scenario data)
# --------------------------------------------------------------------------- #

G_FUNCTIONS: Dict[str, Callable[[int], float]] = {
    "constant2": lambda delta: 2.0,
    "sqrt": lambda delta: float(delta) ** 0.5,
    "linear": lambda delta: float(delta),
    "log": lambda delta: max(1.0, math.log2(max(2, delta))),
}


# --------------------------------------------------------------------------- #
# Scenario
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Scenario:
    """One (graph, algorithm, params, seed, engine) experiment.

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs so the
    scenario is hashable and its cache key is order-independent; use
    :meth:`make` to build one from a plain dict.

    ``engine`` is always a *concrete* engine name: :meth:`make` and
    :meth:`with_engine` resolve ``None`` to the process default immediately,
    and :meth:`key` resolves defensively for directly constructed instances.
    Cache entries therefore always record which engine actually computed
    them -- a ``"vectorized"`` result can never be served for a ``"batched"``
    request (or vice versa), and a result computed under one process default
    can never alias a run under another.
    """

    name: str
    graph: GraphSpec
    algorithm: str
    params: Tuple[Tuple[str, Any], ...] = ()
    engine: str = "batched"
    capture_colors: bool = False

    @classmethod
    def make(
        cls,
        name: str,
        graph: GraphSpec,
        algorithm: str,
        params: Optional[Mapping[str, Any]] = None,
        engine: Optional[str] = "batched",
        capture_colors: bool = False,
    ) -> "Scenario":
        """Build a scenario from a plain parameter mapping.

        ``engine=None`` selects the current process default, resolved to its
        concrete name *now* so the scenario's cache identity cannot drift
        with later default changes.
        """
        pairs = tuple(sorted((params or {}).items()))
        return cls(
            name=name,
            graph=graph,
            algorithm=algorithm,
            params=pairs,
            engine=resolve_engine(engine),
            capture_colors=capture_colors,
        )

    def with_engine(self, engine: Optional[str]) -> "Scenario":
        """A copy of this scenario pinned to another engine."""
        return replace(self, engine=resolve_engine(engine))

    @property
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def key(self) -> Dict[str, Any]:
        """The canonical identity of this scenario (JSON-ready).

        ``name`` is presentation-only and deliberately excluded, so renaming a
        scenario does not invalidate its cached result.  The engine is part
        of the key (resolved to a concrete name), so results from different
        engines can never collide in the cache.
        """
        return {
            "graph": self.graph.key(),
            "algorithm": self.algorithm,
            "params": [list(pair) for pair in self.params],
            "engine": resolve_engine(self.engine),
            "capture_colors": self.capture_colors,
        }

    def to_json_dict(self) -> Dict[str, Any]:
        """A JSON-safe document round-trippable through :meth:`from_json_dict`.

        This is the wire format the ``"workdir"`` executor backend uses to
        ship scenarios to spool workers: the :meth:`key` document plus the
        presentation-only ``name``.
        """
        document = self.key()
        document["name"] = self.name
        return document

    @classmethod
    def from_json_dict(cls, document: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from its :meth:`to_json_dict` document."""
        return cls(
            name=str(document.get("name", "")),
            graph=GraphSpec.from_key(document["graph"]),
            algorithm=str(document["algorithm"]),
            params=tuple(
                (str(pair[0]), tuple(pair[1]) if isinstance(pair[1], list) else pair[1])
                for pair in document.get("params") or ()
            ),
            engine=str(document["engine"]),
            capture_colors=bool(document.get("capture_colors", False)),
        )

    def cache_token(self) -> str:
        """The SHA-256 cache address of this scenario's result.

        The package version is folded into the token, so a persistent cache
        can never serve results computed by an older algorithm revision --
        bumping ``repro.__version__`` invalidates every entry.
        """
        import repro

        document = {"scenario": self.key(), "code_version": repro.__version__}
        canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# Algorithm registry
# --------------------------------------------------------------------------- #

#: algorithm name -> runner(network, params, engine, capture_colors) -> payload dict.
ALGORITHMS: Dict[str, Callable[..., Dict[str, Any]]] = {}


def register_algorithm(name: str) -> Callable:
    """Decorator registering an algorithm runner under ``name``."""

    def decorator(runner: Callable[..., Dict[str, Any]]) -> Callable:
        ALGORITHMS[name] = runner
        return runner

    return decorator


def coloring_digest(colors: Mapping[Any, int]) -> str:
    """A stable digest of a coloring, for cache-vs-fresh equivalence checks."""
    items = sorted((repr(node), int(color)) for node, color in colors.items())
    canonical = json.dumps(items, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def payload_digest(payload: Mapping[str, Any]) -> str:
    """The SHA-256 of a result payload's canonical JSON form.

    This is the integrity digest used end to end by the resilience layer:
    workers stamp it on their result envelope (so the parent detects payloads
    corrupted in transit and retries) and :class:`~repro.experiments.cache.
    ResultCache` stores it with every entry (so corrupt or tampered cache
    files are quarantined instead of silently served or endlessly re-missed).
    JSON canonicalization means the digest is stable across the
    pickle-transport and disk round trips the payload actually takes.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def encode_coloring(colors: Mapping[Any, int]) -> list:
    """Encode a coloring as JSON-safe ``[repr(node), color]`` pairs."""
    return sorted([repr(node), int(color)] for node, color in colors.items())


def _metrics_payload(metrics) -> Dict[str, int]:
    return {
        "rounds": metrics.rounds,
        "messages": metrics.messages,
        "total_words": metrics.total_words,
        "max_message_words": metrics.max_message_words,
    }


def _coloring_payload(colors: Mapping[Any, int], capture_colors: bool) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "colors_used": len(set(colors.values())),
        "coloring_digest": coloring_digest(colors),
    }
    if capture_colors:
        payload["coloring"] = encode_coloring(colors)
    return payload


@register_algorithm("legal_coloring")
def _run_legal_coloring(
    network: NetworkLike, params: Dict[str, Any], engine: str, capture_colors: bool
) -> Dict[str, Any]:
    from repro.core import color_vertices
    from repro.verification import assert_legal_vertex_coloring

    result = color_vertices(
        network,
        c=params.get("c", 2),
        quality=params.get("quality", "superlinear"),
        epsilon=params.get("epsilon", 0.75),
        engine=engine,
    )
    # Verify through the color column (masked CSR comparisons) when the run
    # produced one; the mapping form is the audit fallback.
    if result.color_column is not None:
        assert_legal_vertex_coloring(network, result.color_column)
    else:
        assert_legal_vertex_coloring(network, result.colors)
    payload = _metrics_payload(result.metrics)
    payload.update(_coloring_payload(result.colors, capture_colors))
    payload.update(palette=result.palette, levels=result.num_levels, verified=True)
    return payload


@register_algorithm("edge_coloring")
def _run_edge_coloring(
    network: NetworkLike, params: Dict[str, Any], engine: str, capture_colors: bool
) -> Dict[str, Any]:
    from repro.core import color_edges
    from repro.verification import assert_legal_edge_coloring

    result = color_edges(
        network,
        quality=params.get("quality", "superlinear"),
        epsilon=params.get("epsilon", 0.75),
        route=params.get("route", "direct"),
        engine=engine,
    )
    if result.color_column is not None:
        assert_legal_edge_coloring(network, result.color_column)
    else:
        assert_legal_edge_coloring(network, result.edge_colors)
    payload = _metrics_payload(result.metrics)
    payload.update(_coloring_payload(result.edge_colors, capture_colors))
    payload.update(palette=result.palette, verified=True)
    return payload


@register_algorithm("defective_coloring")
def _run_defective_coloring(
    network: NetworkLike, params: Dict[str, Any], engine: str, capture_colors: bool
) -> Dict[str, Any]:
    from repro.core import run_defective_color
    from repro.verification.coloring import coloring_defect

    colors, info, metrics = run_defective_color(
        network,
        b=params.get("b", 1),
        p=params.get("p", 2),
        c=params.get("c", 2),
        mode=params.get("mode", "vertex"),
        engine=engine,
    )
    defect = coloring_defect(network, colors)
    payload = _metrics_payload(metrics)
    payload.update(_coloring_payload(colors, capture_colors))
    payload.update(
        palette=info.p,
        defect=defect,
        defect_bound=info.psi_defect_bound,
        verified=defect <= info.psi_defect_bound,
    )
    return payload


@register_algorithm("tradeoff")
def _run_tradeoff(
    network: NetworkLike, params: Dict[str, Any], engine: str, capture_colors: bool
) -> Dict[str, Any]:
    from repro.core import tradeoff_color_vertices
    from repro.verification import assert_legal_vertex_coloring

    g_name = params.get("g", "sqrt")
    try:
        g = G_FUNCTIONS[g_name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown tradeoff function {g_name!r}; known: {sorted(G_FUNCTIONS)}"
        ) from None
    result = tradeoff_color_vertices(
        network,
        c=params.get("c", 2),
        g=g,
        eta=params.get("eta", 0.5),
        engine=engine,
    )
    if result.color_column is not None:
        assert_legal_vertex_coloring(network, result.color_column)
    else:
        assert_legal_vertex_coloring(network, result.colors)
    payload = _metrics_payload(result.metrics)
    payload.update(_coloring_payload(result.colors, capture_colors))
    payload.update(
        palette=result.palette,
        split_palette=result.split_palette,
        verified=True,
    )
    return payload


@register_algorithm("randomized_coloring")
def _run_randomized(
    network: NetworkLike, params: Dict[str, Any], engine: str, capture_colors: bool
) -> Dict[str, Any]:
    from repro.core import randomized_color_vertices
    from repro.verification import assert_legal_vertex_coloring

    result = randomized_color_vertices(
        network,
        c=params.get("c", 2),
        seed=params.get("seed", 0),
        engine=engine,
    )
    if result.color_column is not None:
        assert_legal_vertex_coloring(network, result.color_column)
    else:
        assert_legal_vertex_coloring(network, result.colors)
    payload = _metrics_payload(result.metrics)
    payload.update(_coloring_payload(result.colors, capture_colors))
    payload.update(palette=result.palette, verified=True)
    return payload


@register_algorithm("panconesi_rizzi")
def _run_panconesi_rizzi(
    network: NetworkLike, params: Dict[str, Any], engine: str, capture_colors: bool
) -> Dict[str, Any]:
    from repro.baselines import panconesi_rizzi_edge_coloring
    from repro.verification import assert_legal_edge_coloring

    result = panconesi_rizzi_edge_coloring(network, engine=engine)
    assert_legal_edge_coloring(network, result.edge_colors)
    payload = _metrics_payload(result.metrics)
    payload.update(_coloring_payload(result.edge_colors, capture_colors))
    payload.update(palette=result.palette, verified=True)
    return payload


@register_algorithm("luby_edge")
def _run_luby_edge(
    network: NetworkLike, params: Dict[str, Any], engine: str, capture_colors: bool
) -> Dict[str, Any]:
    from repro.baselines import luby_edge_coloring
    from repro.verification import assert_legal_edge_coloring

    result = luby_edge_coloring(network, seed=params.get("seed", 0), engine=engine)
    assert_legal_edge_coloring(network, result.edge_colors)
    payload = _metrics_payload(result.metrics)
    payload.update(_coloring_payload(result.edge_colors, capture_colors))
    payload.update(palette=result.palette, verified=True)
    return payload
