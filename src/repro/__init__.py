"""Reproduction of *Distributed Deterministic Edge Coloring using Bounded
Neighborhood Independence* (Barenboim & Elkin, PODC 2011).

The package is organized around a synchronous message-passing simulator
(:mod:`repro.local_model`), graph workloads (:mod:`repro.graphs`), the
classical primitives the paper builds on (:mod:`repro.primitives`), the
paper's algorithms (:mod:`repro.core`), the baselines it compares against
(:mod:`repro.baselines`), and verification / analysis utilities
(:mod:`repro.verification`, :mod:`repro.analysis`).

Quickstart::

    from repro import color_edges, graphs, verification

    network = graphs.random_regular(n=64, degree=8, seed=1)
    result = color_edges(network, quality="superlinear")
    verification.assert_legal_edge_coloring(network, result.edge_colors)
    print(result.colors_used, "colors in", result.metrics.rounds, "rounds")

``color_edges`` / ``color_graph`` at the package root are the auto-tuning
portfolio façade (:mod:`repro.portfolio`): they pick algorithm, engine,
quality preset, and route per instance from a measured cost model, and
every choice has an override kwarg.  The preset-explicit core entry points
stay available as :func:`repro.core.color_edges` /
:func:`repro.core.color_vertices`.
"""

from repro import (
    analysis,
    baselines,
    core,
    dynamic,
    experiments,
    graphs,
    local_model,
    portfolio,
    primitives,
    verification,
)
from repro.core import (
    EdgeColoringResult,
    LegalColoringResult,
    color_vertices,
    randomized_color_vertices,
    run_defective_color,
    run_legal_coloring,
    tradeoff_color_vertices,
)
from repro.portfolio import (
    CostModel,
    PortfolioDecision,
    PortfolioResult,
    color_edges,
    color_graph,
)
from repro.dynamic import DynamicColoring, UpdateReport
from repro.exceptions import (
    ColoringError,
    GraphPropertyError,
    HypergraphError,
    InvalidParameterError,
    ReproError,
    RoundLimitExceeded,
    SimulationError,
)
from repro.local_model import (
    BatchedScheduler,
    FastNetwork,
    Network,
    RunMetrics,
    Scheduler,
    VectorizedScheduler,
    available_engines,
    make_scheduler,
    set_default_engine,
    use_engine,
)

__version__ = "1.8.0"

__all__ = [
    "BatchedScheduler",
    "ColoringError",
    "CostModel",
    "DynamicColoring",
    "EdgeColoringResult",
    "FastNetwork",
    "GraphPropertyError",
    "HypergraphError",
    "InvalidParameterError",
    "LegalColoringResult",
    "Network",
    "PortfolioDecision",
    "PortfolioResult",
    "ReproError",
    "RoundLimitExceeded",
    "RunMetrics",
    "Scheduler",
    "SimulationError",
    "UpdateReport",
    "VectorizedScheduler",
    "__version__",
    "analysis",
    "available_engines",
    "baselines",
    "color_edges",
    "color_graph",
    "color_vertices",
    "core",
    "dynamic",
    "experiments",
    "graphs",
    "local_model",
    "make_scheduler",
    "portfolio",
    "primitives",
    "randomized_color_vertices",
    "run_defective_color",
    "run_legal_coloring",
    "set_default_engine",
    "tradeoff_color_vertices",
    "use_engine",
    "verification",
]
