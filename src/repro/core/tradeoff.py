"""The colors-vs-rounds tradeoff (Section 6.2, Corollary 6.3).

For any monotonic non-decreasing function ``g``, the paper obtains an
``O(Delta^2 / g(Delta))``-coloring in roughly ``O(log g(Delta)) + log* n``
time by (a) computing a ``Delta/p``-defective ``O(p^2)``-coloring with
``p = Delta / q(Delta)`` (the Lemma 2.1(3) black box), which splits the graph
into ``O(p^2)`` subgraphs of maximum degree ``Delta/p = q(Delta)``, and then
(b) coloring every subgraph in parallel with the Theorem 4.8(2) algorithm,
whose running time depends only on the (much smaller) subgraph degree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.local_model.batched import NetworkLike
from repro.local_model.engine import make_scheduler
from repro.local_model.fast_network import fast_view
from repro.local_model.metrics import RunMetrics
from repro.local_model.state_table import StateTable
from repro.core.legal_coloring import LegalColoringResult, run_legal_coloring
from repro.core.parameters import LegalColorParameters, params_for_few_rounds
from repro.primitives.kuhn_defective import defective_coloring_pipeline


@dataclass
class TradeoffColoringResult:
    """Outcome of the Corollary 6.3 tradeoff algorithm.

    Attributes
    ----------
    colors:
        The legal vertex coloring.
    palette:
        The palette bound: (number of split classes) x (per-class palette).
    metrics:
        Measured rounds / messages across both stages.
    split_palette:
        Number of classes of the defective split (the ``O(p^2)`` of the paper).
    split_defect_bound:
        The defect the split guarantees (the per-class degree bound).
    per_class_palette:
        The palette used inside each class.
    """

    colors: Dict[Hashable, int]
    palette: int
    metrics: RunMetrics
    split_palette: int
    split_defect_bound: int
    per_class_palette: int
    #: The coloring as an int64 array in the dense node order of the
    #: network's FastNetwork view (the array-form verification input).
    color_column: Optional[np.ndarray] = field(default=None, repr=False, compare=False)


def tradeoff_color_vertices(
    network: NetworkLike,
    c: int,
    g: Callable[[int], float],
    eta: float = 0.5,
    parameters: Optional[LegalColorParameters] = None,
    engine: Optional[str] = None,
) -> TradeoffColoringResult:
    """Corollary 6.3: an ``O(Delta^2 / g(Delta))``-coloring of ``network``.

    Parameters
    ----------
    network:
        A graph with neighborhood independence at most ``c``.
    c:
        The independence bound.
    g:
        The monotone non-decreasing tradeoff function ``g(Delta)``; larger
        values mean fewer colors and more rounds.
    eta:
        The small constant of the paper's derivation (``q = g^{1/(1-eta)}``).
    parameters:
        Optional explicit Legal-Color parameters for the per-class stage.
    """
    if c < 1:
        raise InvalidParameterError("c must be at least 1")
    if not 0 < eta < 1:
        raise InvalidParameterError("eta must lie in (0, 1)")
    fast = fast_view(network)
    delta = max(1, fast.max_degree)

    g_value = float(g(delta))
    if g_value < 1:
        raise InvalidParameterError("g(Delta) must be at least 1")
    q_value = g_value ** (1.0 / (1.0 - eta))
    p_split = max(1, round(delta / max(1.0, q_value)))
    target_defect = max(1, delta // p_split) if p_split > 1 else delta

    metrics = RunMetrics()
    if p_split > 1:
        pipeline, split_palette = defective_coloring_pipeline(
            n=fast.num_nodes,
            degree_bound=delta,
            target_defect=target_defect,
            output_key="_tradeoff_split",
        )
        table, split_metrics = make_scheduler(fast, engine=engine).run_table(
            pipeline, StateTable(fast.num_nodes)
        )
        metrics.merge(split_metrics)
        split_column = table.get_ints("_tradeoff_split")
        class_network = fast.filtered_by_labels(split_column)
        split_defect_bound = target_defect
    else:
        split_palette = 1
        split_column = np.ones(fast.num_nodes, dtype=np.int64)
        class_network = fast
        split_defect_bound = delta

    class_delta = max(1, class_network.max_degree)
    params = parameters or params_for_few_rounds(class_delta, c)
    per_class: LegalColoringResult = run_legal_coloring(
        class_network, params, c=c, use_auxiliary_coloring=True, engine=engine
    )
    metrics.merge(per_class.metrics)

    per_class_palette = per_class.palette
    # Both columns follow fast.order (class_network shares the parent view's
    # node order), so the Figure 3 palette merge is pure array arithmetic.
    color_column = (split_column - 1) * per_class_palette + per_class.color_column
    colors = dict(zip(fast.order, color_column.tolist()))
    return TradeoffColoringResult(
        colors=colors,
        palette=split_palette * per_class_palette,
        metrics=metrics,
        split_palette=split_palette,
        split_defect_bound=split_defect_bound,
        per_class_palette=per_class_palette,
        color_column=color_column,
    )
