"""The randomized extension (Section 6.1, Theorem 6.1 and Corollary 6.2).

When ``Delta = omega(log n)``, a single round of randomness splits the graph
into ``ceil(Delta / log n)`` classes with maximum intra-class degree
``O(log n)`` with high probability (a Chernoff bound).  Every class is then
colored *deterministically* with the Theorem 4.8(2) algorithm (classes are
vertex-disjoint, so they run in parallel), and the class index becomes the
high-order part of the final color.  The result is an
``O(Delta * min{Delta, log n}^eta)``-coloring in ``O(log log n)``-ish time.

When ``Delta = O(log n)`` the deterministic algorithm alone already achieves
the stated bound, so the random split is skipped (exactly as the paper
argues).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.local_model.batched import NetworkLike
from repro.local_model.fast_network import FastNetwork, fast_view
from repro.local_model.metrics import PhaseMetrics, RunMetrics
from repro.core.legal_coloring import LegalColoringResult, run_legal_coloring
from repro.core.parameters import LegalColorParameters, params_for_few_rounds


@dataclass
class RandomizedColoringResult:
    """Outcome of the Section 6.1 randomized algorithm.

    Attributes
    ----------
    colors:
        The legal vertex coloring.
    palette:
        The palette bound (number of classes times the per-class palette).
    metrics:
        Measured metrics; the random split itself is charged one round (the
        round in which vertices tell their neighbors which class they chose).
    num_classes:
        Number of classes of the random split (1 when the split is skipped).
    split_defect:
        The *measured* maximum intra-class degree -- the quantity the Chernoff
        bound controls; the tests compare it against ``O(log n)``.
    per_class_palette:
        The palette used inside each class.
    used_random_split:
        Whether the random split was applied (``Delta`` large enough).
    """

    colors: Dict[Hashable, int]
    palette: int
    metrics: RunMetrics
    num_classes: int
    split_defect: int
    per_class_palette: int
    used_random_split: bool
    class_assignment: Dict[Hashable, int] = field(default_factory=dict)
    #: The coloring as an int64 array in the dense node order of the
    #: network's FastNetwork view (the array-form verification input).
    color_column: Optional[np.ndarray] = field(default=None, repr=False, compare=False)


def randomized_color_vertices(
    network: NetworkLike,
    c: int,
    seed: int = 0,
    parameters: Optional[LegalColorParameters] = None,
    engine: Optional[str] = None,
) -> RandomizedColoringResult:
    """Randomized ``O(Delta * min{Delta, log n}^eta)``-coloring (Theorem 6.1).

    Parameters
    ----------
    network:
        A graph with neighborhood independence at most ``c``.
    c:
        The independence bound.
    seed:
        Seed of the (per-vertex, identifier-keyed) randomness; runs are
        reproducible given the seed.
    parameters:
        Optional explicit Legal-Color parameters for the per-class coloring.
    """
    if c < 1:
        raise InvalidParameterError("c must be at least 1")
    fast = fast_view(network)
    n = max(2, fast.num_nodes)
    delta = fast.max_degree
    log_n = max(1, math.ceil(math.log2(n)))

    metrics = RunMetrics()
    use_split = delta > log_n and delta >= 2
    if use_split:
        num_classes = max(2, math.ceil(delta / log_n))
        # Per-vertex randomness is keyed by (seed, unique id), so the split
        # is reproducible and engine-independent; the draw itself is the only
        # per-node Python step left in this driver.
        labels = np.fromiter(
            (
                random.Random(f"{seed}:{unique_id}").randint(1, num_classes)
                for unique_id in fast.unique_ids
            ),
            dtype=np.int64,
            count=fast.num_nodes,
        )
        # One round: every vertex announces its class to its neighbors.
        metrics.add_phase(
            PhaseMetrics(
                name="random-split",
                rounds=1,
                messages=2 * fast.num_edges,
                total_words=2 * fast.num_edges,
                max_message_words=1,
            )
        )
        split_defect = _intra_class_defect(fast, labels)
        class_network = fast.filtered_by_labels(labels)
    else:
        num_classes = 1
        labels = np.ones(fast.num_nodes, dtype=np.int64)
        split_defect = delta
        class_network = fast

    class_delta = max(1, class_network.max_degree)
    params = parameters or params_for_few_rounds(class_delta, c)
    per_class: LegalColoringResult = run_legal_coloring(
        class_network, params, c=c, use_auxiliary_coloring=True, engine=engine
    )
    metrics.merge(per_class.metrics)

    per_class_palette = per_class.palette
    # Both columns follow fast.order, so the palette merge is array work.
    color_column = (labels - 1) * per_class_palette + per_class.color_column
    colors = dict(zip(fast.order, color_column.tolist()))
    assignment: Dict[Hashable, int] = dict(zip(fast.order, labels.tolist()))
    return RandomizedColoringResult(
        colors=colors,
        palette=num_classes * per_class_palette,
        metrics=metrics,
        num_classes=num_classes,
        split_defect=split_defect,
        per_class_palette=per_class_palette,
        used_random_split=use_split,
        class_assignment=assignment,
        color_column=color_column,
    )


def _intra_class_defect(fast: FastNetwork, labels: np.ndarray) -> int:
    """The maximum number of same-class neighbors over all vertices."""
    if fast.num_nodes == 0 or len(fast.indices) == 0:
        return 0
    rows, cols = fast.rows_np, fast.indices_np
    same = labels[rows] == labels[cols]
    return int(np.bincount(rows[same], minlength=fast.num_nodes).max())
