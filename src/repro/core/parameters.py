"""Parameter presets for Procedure Legal-Color.

The paper obtains its different trade-offs (Theorems 4.5, 4.6, 4.8 and the
edge-coloring counterparts in Theorem 5.5) by invoking the *same* Procedure
Legal-Color with different settings of the parameters ``b``, ``p`` and the
termination threshold ``lambda``:

* **Linear number of colors** (Theorem 4.5 / 4.8(1) / 5.5(1)):
  ``b = ceil(Delta^{eps/6})``, ``p = ceil(Delta^{eps/3})``,
  ``lambda = ceil(Delta^eps)`` gives an ``O(Delta)``-coloring in
  ``O(Delta^eps) + log* n`` rounds; the recursion depth is a constant
  ``O(1/eps)``.
* **Few rounds** (Theorem 4.6 / 4.8(2) / 5.5(2)): constant ``b``, ``p`` and
  ``lambda`` give an ``O(Delta^{1+eta})``-coloring in ``O(log Delta)``
  recursion levels, each costing ``O(1)`` (plus the additive ``log*`` term).
* **Sub-polynomial rounds** (Theorem 4.8(3) / 5.5(3)):
  ``lambda = ceil(log^eta Delta)`` interpolates between the two.

For finite ``Delta`` the asymptotic choices need clamping (for example the
paper requires ``p > 4c`` and ``2c < lambda``); the presets below perform that
clamping, record the values actually used, and expose the implied exponent of
the color bound so the benchmark harnesses can report measured-vs-predicted
palette sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class LegalColorParameters:
    """A concrete parameter choice for Procedure Legal-Color.

    Attributes
    ----------
    b, p:
        The parameters of Procedure Defective-Color invoked at every
        recursion level (``b`` controls the slack of the first defective
        coloring, ``p`` is the number of ``psi``-colors / subgraphs).
    threshold:
        The termination threshold ``lambda``: once the degree bound drops to
        ``lambda`` or below, the recursion bottoms out and a
        ``(Lambda + 1)``-coloring is computed directly.
    description:
        Which theorem / regime the preset corresponds to.
    """

    b: int
    p: int
    threshold: int
    description: str

    def validate(self, degree_bound: int, c: int) -> None:
        """Check the constraints Procedure Legal-Color assumes.

        The constraints are only meaningful when the recursion actually runs
        (``degree_bound > threshold``); below the threshold the procedure goes
        straight to the bottom-level coloring and ``b``, ``p`` are unused.
        """
        if self.b < 1 or self.p < 1 or self.threshold < 1:
            raise InvalidParameterError("b, p and the threshold must all be positive")
        if degree_bound <= self.threshold:
            return
        if self.b * self.p > degree_bound:
            raise InvalidParameterError(
                f"b * p = {self.b * self.p} must not exceed the degree bound {degree_bound}"
            )
        if self.p <= 2 * c:
            raise InvalidParameterError(
                f"p = {self.p} is too small for neighborhood independence c = {c}; "
                "the recursion would not shrink the degree bound"
            )


def _clamped_power(delta: int, exponent: float, minimum: int) -> int:
    """``max(minimum, ceil(delta ** exponent))`` (with ``delta >= 1``)."""
    return max(minimum, math.ceil(max(1, delta) ** exponent))


def params_for_linear_colors(
    delta: int, c: int, epsilon: float = 0.75
) -> LegalColorParameters:
    """Theorem 4.5 / 4.8(1) preset: ``O(Delta)`` colors in ``O(Delta^eps) + log* n`` time.

    ``b = Delta^{eps/6}``, ``p = Delta^{eps/3}``, ``lambda = Delta^eps``,
    clamped so that the constraints ``p > 2c`` and ``b * p <= Delta`` hold
    whenever the recursion runs.
    """
    if not 0 < epsilon <= 1:
        raise InvalidParameterError("epsilon must lie in (0, 1]")
    if c < 1:
        raise InvalidParameterError("c must be at least 1")
    delta = max(1, delta)

    p = _clamped_power(delta, epsilon / 3, minimum=2 * c + 2)
    b = _clamped_power(delta, epsilon / 6, minimum=1)
    threshold = _clamped_power(delta, epsilon, minimum=max(2 * c + 1, p))
    # Keep b * p within the degree bound whenever the recursion will run.
    if delta > threshold:
        while b > 1 and b * p > delta:
            b -= 1
        while p > 2 * c + 2 and b * p > delta:
            p -= 1
    return LegalColorParameters(
        b=b, p=p, threshold=threshold, description=f"linear-colors(eps={epsilon})"
    )


def params_for_few_rounds(
    delta: int, c: int, p: int | None = None, b: int | None = None
) -> LegalColorParameters:
    """Theorem 4.6 / 4.8(2) preset: ``O(Delta^{1+eta})`` colors, ``O(log Delta)`` levels.

    ``b``, ``p`` and ``lambda`` are constants (independent of ``Delta``), so
    each recursion level costs ``O((b p)^2) = O(1)`` rounds and the recursion
    depth is ``O(log Delta)``.  The exponent ``eta`` of the resulting color
    bound is reported by :func:`implied_color_exponent`.
    """
    if c < 1:
        raise InvalidParameterError("c must be at least 1")
    delta = max(1, delta)
    if p is None:
        p = max(4 * c + 1, 9)
    if b is None:
        b = 2
    threshold = max(2 * c + 1, 2 * p)
    # For small Delta the constant parameters may exceed the degree bound; in
    # that regime the recursion never runs (Delta <= threshold), so no clamping
    # is needed beyond making the threshold at least Delta-independent.
    return LegalColorParameters(
        b=b, p=p, threshold=threshold, description=f"few-rounds(p={p},b={b})"
    )


def params_for_subpolynomial_rounds(
    delta: int, c: int, eta: float = 0.5
) -> LegalColorParameters:
    """Theorem 4.8(3) preset: ``Delta^{1+o(1)}`` colors in ``O((log Delta)^{1+eta})`` time.

    ``lambda = ceil(log^eta Delta)``, ``p = lambda^{1/6}``, ``b = lambda^{1/3}``
    (clamped for small ``Delta``).
    """
    if eta <= 0:
        raise InvalidParameterError("eta must be positive")
    if c < 1:
        raise InvalidParameterError("c must be at least 1")
    delta = max(2, delta)
    log_delta = max(2.0, math.log2(delta))
    threshold = max(2 * c + 1, math.ceil(log_delta**eta) * (2 * c + 2))
    p = max(2 * c + 2, math.ceil(threshold ** (1.0 / 6.0)))
    b = max(1, math.ceil(threshold ** (1.0 / 3.0)))
    if delta > threshold:
        while b > 1 and b * p > delta:
            b -= 1
        while p > 2 * c + 2 and b * p > delta:
            p -= 1
    return LegalColorParameters(
        b=b, p=p, threshold=threshold, description=f"subpolynomial-rounds(eta={eta})"
    )


def implied_color_exponent(params: LegalColorParameters, c: int) -> float:
    """The exponent ``1 + eta`` such that the preset yields ``O(Delta^{1+eta})`` colors.

    Every recursion level multiplies the palette by ``p`` while dividing the
    degree bound by roughly ``f = p / (c * (1 + 1/b))``, so the palette grows
    like ``Delta^{log p / log f}``.  For the linear-colors preset this
    evaluates to a value close to 1 (the extra factor is a constant); for the
    few-rounds preset it quantifies the ``eta`` of Theorem 4.6 for the actual
    constants used.
    """
    if c < 1:
        raise InvalidParameterError("c must be at least 1")
    shrink = params.p / (c * (1.0 + 1.0 / params.b))
    if shrink <= 1.0:
        return float("inf")
    return math.log(params.p) / math.log(shrink)
