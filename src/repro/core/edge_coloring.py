"""Edge coloring of general graphs (Section 5, Theorems 5.3 and 5.5).

For any graph ``G``, the line graph ``L(G)`` has neighborhood independence at
most 2 (Lemma 5.1) and maximum degree at most ``2 (Delta - 1)``, so the
vertex-coloring algorithms of Section 4 apply to it and directly yield edge
colorings of ``G``.  The paper gives two routes, both implemented here:

* **Simulation route (Theorem 5.3).**  Run the vertex-coloring algorithm on
  ``L(G)`` and simulate it on ``G`` via Lemma 5.2.  Rounds double (plus
  ``O(1)``), and message sizes grow by a factor of ``Delta``
  (``O(Delta log n)``-bit messages).
* **Direct route (Theorem 5.5).**  Keep the edge state at both endpoints of
  every edge: the per-level defective coloring ``phi`` is computed with
  Kuhn's ``O(1)``-round defective *edge* coloring (Corollary 5.4), and the
  ``psi``-selection exchange sends the ``p`` counters ``N_{e,u}(k)`` over
  each edge.  No simulation overhead is incurred and -- in the regime of
  Theorem 5.5(2), where ``p = O(1)`` -- the messages stay of size
  ``O(log n)``.

Both routes derive ``L(G)`` with the CSR line-graph builder
(:func:`~repro.local_model.line_csr.build_line_graph_fast`): the line graph
is compiled straight from ``G``'s CSR arrays -- no Python dict-of-set
construction -- and on the vectorized engine the whole pipeline (including
the Corollary 5.4 kernel) executes with zero batched fallbacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.local_model.line_csr import build_line_graph_fast
from repro.local_model.line_graph_sim import (
    SIMULATION_SETUP_ROUNDS,
    apply_lemma_5_2_accounting,
)
from repro.local_model.metrics import PhaseMetrics, RunMetrics
from repro.local_model.network import Network
from repro.core.legal_coloring import LegalColoringResult, LevelTrace, run_legal_coloring
from repro.core.parameters import (
    LegalColorParameters,
    params_for_few_rounds,
    params_for_linear_colors,
    params_for_subpolynomial_rounds,
)

#: The neighborhood independence of a line graph of an ordinary graph.
LINE_GRAPH_INDEPENDENCE = 2

__all__ = [
    "LINE_GRAPH_INDEPENDENCE",
    "SIMULATION_SETUP_ROUNDS",
    "EdgeColoringResult",
    "color_edges",
]


@dataclass
class EdgeColoringResult:
    """The outcome of a distributed edge-coloring computation.

    Attributes
    ----------
    edge_colors:
        Mapping from a canonical edge of ``G`` (a 2-tuple of endpoints) to its
        color.  Lookups in either endpoint order are supported through
        :meth:`color_of`.
    palette:
        The palette bound guaranteed by the run.
    metrics:
        Rounds / messages / bandwidth, already converted to their cost on the
        original network ``G`` (per Lemma 5.2 for the simulation route).
    route:
        ``"simulation"`` or ``"direct"``.
    levels:
        The Legal-Color recursion trace (on ``L(G)``).
    parameters:
        The parameter preset used by Procedure Legal-Color.
    line_graph_max_degree:
        ``Delta(L(G))``, recorded for reporting.
    """

    edge_colors: Dict[Tuple[Hashable, Hashable], int]
    palette: int
    metrics: RunMetrics
    route: str
    levels: List[LevelTrace] = field(default_factory=list)
    parameters: Optional[LegalColorParameters] = None
    line_graph_max_degree: int = 0
    #: The same coloring as ``edge_colors``, as an ``int64`` array over the
    #: canonical edges of ``G`` in unique-id pair order (= the dense node
    #: order of ``L(G)``) -- the array-form input of the vectorized
    #: verification oracles.  ``None`` on the baselines that run through the
    #: legacy line-graph constructor.
    color_column: Optional["np.ndarray"] = field(
        default=None, repr=False, compare=False
    )
    #: Endpoint-order-insensitive lookup index, built lazily on the first
    #: :meth:`color_of` call -- most callers only consume ``edge_colors``.
    _by_endpoints: Optional[Dict[FrozenSet[Hashable], int]] = field(
        default=None, repr=False, compare=False
    )

    def color_of(self, u: Hashable, v: Hashable) -> int:
        """The color of the edge ``{u, v}`` (either endpoint order)."""
        if self._by_endpoints is None:
            self._by_endpoints = {
                frozenset(edge): color for edge, color in self.edge_colors.items()
            }
        return self._by_endpoints[frozenset((u, v))]

    @property
    def colors_used(self) -> int:
        """Number of distinct colors actually used."""
        return len(set(self.edge_colors.values()))


def _select_parameters(
    delta_line: int, quality: str, epsilon: float
) -> LegalColorParameters:
    if quality == "linear":
        return params_for_linear_colors(delta_line, LINE_GRAPH_INDEPENDENCE, epsilon=epsilon)
    if quality == "superlinear":
        return params_for_few_rounds(delta_line, LINE_GRAPH_INDEPENDENCE)
    if quality == "subpolynomial":
        return params_for_subpolynomial_rounds(
            delta_line, LINE_GRAPH_INDEPENDENCE, eta=epsilon
        )
    raise InvalidParameterError(f"unknown quality {quality!r}")


def color_edges(
    network: Network,
    quality: str = "linear",
    epsilon: float = 0.75,
    route: str = "direct",
    parameters: Optional[LegalColorParameters] = None,
    use_auxiliary_coloring: bool = True,
    engine: Optional[str] = None,
) -> EdgeColoringResult:
    """Distributed edge coloring of a general graph (Theorems 5.3 / 5.5).

    Parameters
    ----------
    network:
        The input graph ``G`` (any graph; no independence assumption needed).
    quality:
        ``"linear"`` -- ``O(Delta)`` colors in ``O(Delta^eps) + log* n`` time;
        ``"superlinear"`` -- ``O(Delta^{1+eta})`` colors in
        ``O(log Delta) + log* n`` time;
        ``"subpolynomial"`` -- ``Delta^{1+o(1)}`` colors in
        ``O((log Delta)^{1+eta}) + log* n`` time.
    epsilon:
        Exponent knob for the ``"linear"`` / ``"subpolynomial"`` presets.
    route:
        ``"direct"`` (Theorem 5.5, small messages) or ``"simulation"``
        (Theorem 5.3, Lemma 5.2 simulation with ``O(Delta log n)`` messages).
    parameters:
        Explicit Legal-Color parameters, overriding the ``quality`` preset.
    use_auxiliary_coloring:
        Apply the Section 4.2 auxiliary-coloring improvement.
    engine:
        Execution engine (``"reference"`` / ``"batched"`` / ``"vectorized"`` /
        ``None`` for the process default; see :mod:`repro.local_model.engine`).

    Returns
    -------
    EdgeColoringResult
        A legal edge coloring of ``G`` with the corresponding metrics.
    """
    if route not in ("direct", "simulation"):
        raise InvalidParameterError(f"unknown route {route!r}")

    line_fast = build_line_graph_fast(network)
    delta_line = max(1, line_fast.max_degree)
    params = parameters or _select_parameters(delta_line, quality, epsilon)

    vertex_result: LegalColoringResult = run_legal_coloring(
        line_fast,
        params,
        c=LINE_GRAPH_INDEPENDENCE,
        edge_mode=(route == "direct"),
        use_auxiliary_coloring=use_auxiliary_coloring,
        engine=engine,
    )

    if route == "simulation":
        metrics = apply_lemma_5_2_accounting(network, vertex_result.metrics)
    else:
        metrics = _direct_metrics(params, vertex_result.metrics)

    return EdgeColoringResult(
        edge_colors=dict(vertex_result.colors),
        palette=vertex_result.palette,
        metrics=metrics,
        route=route,
        levels=vertex_result.levels,
        parameters=params,
        line_graph_max_degree=line_fast.max_degree,
        color_column=vertex_result.color_column,
    )


def _direct_metrics(params: LegalColorParameters, raw: RunMetrics) -> RunMetrics:
    """Theorem 5.5 accounting for the direct (both-endpoints) implementation.

    Rounds are unchanged (both endpoints of an edge maintain its state, so no
    relaying is needed), but the ``psi``-selection exchange ships the ``p``
    counters ``N_{e,u}(1..p)`` in one message, so the maximum message size is
    at least ``p`` words.
    """
    adjusted = RunMetrics()
    for phase in raw.phases:
        max_words = phase.max_message_words
        if phase.name.startswith("psi-selection"):
            max_words = max(max_words, params.p)
        adjusted.add_phase(
            PhaseMetrics(
                name=phase.name,
                rounds=phase.rounds,
                messages=phase.messages,
                total_words=phase.total_words,
                max_message_words=max_words,
            )
        )
    # The adjustment must not hide which phases ran on a fallback path, nor
    # drop the measured wall-time breakdown.
    adjusted.fallback_phase_names.extend(raw.fallback_phase_names)
    adjusted.compiled_fallback_phase_names.extend(raw.compiled_fallback_phase_names)
    for name, seconds in raw.phase_seconds.items():
        adjusted.add_phase_seconds(name, seconds)
    return adjusted
