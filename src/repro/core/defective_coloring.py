"""Procedure Defective-Color (Algorithm 1).

This is the paper's main technical contribution: on a graph whose
neighborhood independence is bounded by a constant ``c``, it computes an
``O(Delta/p)``-defective ``p``-coloring -- i.e. the product of the defect and
the number of colors is *linear* in ``Delta``, whereas all previously known
efficient routines had a super-linear product.

The procedure works in two steps (for each vertex ``v``):

1. Compute a ``floor(Lambda/(b p))``-defective ``O((b p)^2)``-coloring
   ``phi`` using a known black box (Lemma 2.1(3) in the vertex setting; the
   ``O(1)``-round routine of Corollary 5.4 in the edge setting).
2. Re-color greedily in the order of the ``phi``-classes: once ``v`` has
   heard the new color ``psi(u)`` of every neighbor ``u`` with
   ``phi(u) < phi(v)``, it picks the ``psi``-color from ``{1, ..., p}`` used
   by the *fewest* of those neighbors, and announces it.

Theorem 3.7 shows the resulting ``psi`` is a
``c * (Lambda/(b p) + Lambda/p + 1)``-defective ``p``-coloring; the argument
combines the acyclic-orientation bound on the chromatic number of each
``psi``-class (Lemmas 3.4, 3.5) with the bounded-neighborhood-independence
assumption (Lemma 3.6).  Its running time is dominated by the number of
``phi``-colors, i.e. ``O((b p)^2)`` rounds, plus the cost of step 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.local_model.algorithm import SILENT, BroadcastPhase, LocalView, PhasePipeline
from repro.local_model.batched import NetworkLike
from repro.local_model.engine import make_scheduler
from repro.local_model.fast_network import fast_view
from repro.local_model.metrics import RunMetrics
from repro.local_model.vectorized import VectorContext
from repro.primitives.kuhn_defective import defective_coloring_pipeline
from repro.primitives.kuhn_defective_edge import KuhnDefectiveEdgeColoringPhase


@dataclass(frozen=True)
class DefectiveColorInfo:
    """Static guarantees of one Defective-Color invocation.

    Attributes
    ----------
    p:
        The number of ``psi``-colors produced.
    phi_palette:
        The number of colors of the auxiliary coloring ``phi`` (bounds the
        number of rounds of the re-coloring loop).
    phi_defect_bound:
        The defect guaranteed for ``phi``.
    psi_defect_bound:
        The Theorem 3.7 defect bound for the output coloring ``psi``:
        ``c * (phi_defect + floor(Lambda/p) + 1)``.
    output_key:
        The node-state key the ``psi``-color is stored under.
    """

    p: int
    phi_palette: int
    phi_defect_bound: int
    psi_defect_bound: int
    output_key: str


class PsiSelectionPhase(BroadcastPhase):
    """The re-coloring loop of Algorithm 1 (lines 2-10).

    Every vertex first exchanges its ``phi``-color with its neighbors (one
    round), then waits for the ``psi``-colors of all neighbors with a smaller
    ``phi``-color, picks the least-loaded ``psi``-color, and announces it.
    The phase takes at most ``phi_palette + 2`` rounds, since a vertex with
    ``phi``-color ``k`` selects no later than ``k`` rounds after the exchange
    (Lemma 3.2).
    """

    def __init__(
        self,
        p: int,
        phi_key: str,
        phi_palette: int,
        output_key: str = "psi_color",
    ) -> None:
        if p < 1:
            raise InvalidParameterError("p must be at least 1")
        self.name = f"psi-selection[p={p}]"
        self.p = p
        self.phi_key = phi_key
        self.phi_palette = phi_palette
        self.output_key = output_key

    # ------------------------------------------------------------------ #

    def initialize(self, view: LocalView, state: Dict[str, Any]) -> None:
        state["_psi_selected"] = None
        state["_psi_announced"] = False
        state["_psi_waiting"] = None  # set of lower-phi neighbors not yet heard from
        state["_psi_counts"] = [0] * self.p

    def broadcast(self, view: LocalView, state: Dict[str, Any], round_index: int) -> Any:
        if round_index == 1:
            return {"phi": state[self.phi_key]}
        if state["_psi_selected"] is not None and not state.get("_psi_announced"):
            state["_psi_announced"] = True
            return {"psi": state["_psi_selected"]}
        return SILENT

    def receive(
        self,
        view: LocalView,
        state: Dict[str, Any],
        inbox: Mapping[Hashable, Any],
        round_index: int,
    ) -> bool:
        if round_index == 1:
            own_phi = state[self.phi_key]
            waiting = {
                neighbor
                for neighbor, payload in inbox.items()
                if payload["phi"] < own_phi
            }
            state["_psi_waiting"] = waiting
            if not waiting:
                self._select(state)
            return False

        waiting = state["_psi_waiting"]
        for neighbor, payload in inbox.items():
            if "psi" not in payload:
                continue
            if neighbor in waiting:
                waiting.discard(neighbor)
                state["_psi_counts"][payload["psi"] - 1] += 1

        if state["_psi_selected"] is None and not waiting:
            self._select(state)
            return False

        if state.get("_psi_announced"):
            state[self.output_key] = state["_psi_selected"]
            return True
        return False

    def max_rounds(self, n: int, max_degree: int) -> int:
        return self.phi_palette + 4

    # ------------------------------------------------------------------ #

    def _select(self, state: Dict[str, Any]) -> None:
        counts = state["_psi_counts"]
        minimum = min(counts)
        state["_psi_selected"] = counts.index(minimum) + 1

    # ------------------------------------------------------------------ #
    # Vectorized execution (see repro.local_model.vectorized)
    # ------------------------------------------------------------------ #

    #: Marker the vectorized scheduler checks to run the numpy kernel.
    supports_vectorized: bool = True

    def vector_run(self, ctx: VectorContext) -> None:
        """The whole phase as array arithmetic; bit-identical to the callbacks.

        The round-by-round loop has a closed form: a vertex selects once all
        neighbors with a smaller ``phi``-color have announced, so processing
        vertices in ascending ``phi`` order replays every selection with its
        exact final counts.  The announcement round of ``v`` is
        ``depth(v) + 2`` where ``depth`` is the longest strictly-decreasing
        ``phi``-chain below ``v``, which yields the exact round count; every
        vertex broadcasts its ``phi`` once (round 1, a 2-word dict) and its
        ``psi`` once (its announcement round, a 2-word dict), which yields
        the exact message metrics.
        """
        fast = ctx.fast
        n = fast.num_nodes
        p = self.p
        phi = ctx.column(self.phi_key)

        depth = np.zeros(n, dtype=np.int64)
        psi = np.zeros(n, dtype=np.int64)
        counts = np.zeros((n, p), dtype=np.int64)
        for value in np.unique(phi):
            batch = np.flatnonzero(phi == value)
            local_rows, neighbors = ctx.gather_neighbors(batch)
            lower = phi[neighbors] < value
            sources = local_rows[lower]
            lower_neighbors = neighbors[lower]
            batch_depth = np.zeros(batch.size, dtype=np.int64)
            np.maximum.at(batch_depth, sources, depth[lower_neighbors] + 1)
            depth[batch] = batch_depth
            batch_counts = np.bincount(
                sources * p + (psi[lower_neighbors] - 1), minlength=batch.size * p
            ).reshape(batch.size, p)
            counts[batch] = batch_counts
            psi[batch] = np.argmin(batch_counts, axis=1) + 1

        nnz = len(fast.indices)
        ctx.charge(
            rounds=int(depth.max()) + 2,
            messages=2 * nnz,
            total_words=4 * nnz,
            max_message_words=2 if nnz else 0,
        )
        ctx.write_column(self.output_key, psi)
        ctx.write_column("_psi_selected", psi)
        ctx.write_value("_psi_announced", True)
        ctx.write_objects("_psi_counts", counts.tolist())
        ctx.write_objects("_psi_waiting", [set() for _ in range(n)])


def defective_color_pipeline(
    n: int,
    b: int,
    p: int,
    Lambda: int,
    c: int,
    mode: str = "vertex",
    auxiliary_key: Optional[str] = None,
    auxiliary_palette: Optional[int] = None,
    class_key: Optional[str] = None,
    output_key: str = "psi_color",
) -> Tuple[PhasePipeline, DefectiveColorInfo]:
    """Build the full Procedure Defective-Color pipeline.

    Parameters
    ----------
    n:
        Number of vertices of the network the pipeline will run on (used as
        the initial identifier palette when no auxiliary coloring is given).
    b, p, Lambda, c:
        The procedure's parameters: slack ``b >= 1``, target color count
        ``p >= 1``, degree bound ``Lambda >= max degree``, and the bound ``c``
        on the neighborhood independence.  Requires ``b * p <= Lambda``.
    mode:
        ``"vertex"`` computes the step-1 coloring ``phi`` with the Lemma
        2.1(3) routine; ``"edge"`` uses Corollary 5.4 (the pipeline must then
        run on a line-graph network whose node ids are edge 2-tuples).
    auxiliary_key, auxiliary_palette:
        Optional pre-computed legal coloring fed to the vertex-mode step 1
        (the Section 4.2 improvement that avoids repeated ``log* n`` terms).
    class_key:
        Optional state key identifying the Legal-Color recursion subgraph
        (edge mode only; see
        :class:`~repro.primitives.kuhn_defective_edge.KuhnDefectiveEdgeColoringPhase`).
    output_key:
        The state key the ``psi``-color ends up in.

    Returns
    -------
    (pipeline, info):
        The runnable pipeline and the static guarantees of the coloring it
        produces.
    """
    if b < 1 or p < 1 or Lambda < 1:
        raise InvalidParameterError("b, p and Lambda must all be at least 1")
    if c < 1:
        raise InvalidParameterError("c must be at least 1")
    if b * p > Lambda:
        raise InvalidParameterError(
            f"Procedure Defective-Color requires b * p <= Lambda (got {b * p} > {Lambda})"
        )
    if mode not in ("vertex", "edge"):
        raise InvalidParameterError(f"unknown mode {mode!r}")

    phi_key = "_dc_phi"
    if mode == "vertex":
        phi_defect_target = Lambda // (b * p)
        phi_pipeline, phi_palette = defective_coloring_pipeline(
            n=n,
            degree_bound=Lambda,
            target_defect=phi_defect_target,
            initial_palette=auxiliary_palette,
            input_key=auxiliary_key,
            output_key=phi_key,
        )
        phases = list(phi_pipeline.phases)
        phi_defect_bound = phi_defect_target
    else:
        edge_phase = KuhnDefectiveEdgeColoringPhase(
            p_prime=b * p,
            degree_bound=Lambda,
            output_key=phi_key,
            class_key=class_key,
        )
        phases = [edge_phase]
        phi_palette = edge_phase.output_palette
        phi_defect_bound = edge_phase.defect_bound

    psi_phase = PsiSelectionPhase(
        p=p, phi_key=phi_key, phi_palette=phi_palette, output_key=output_key
    )
    phases.append(psi_phase)

    psi_defect_bound = c * (phi_defect_bound + Lambda // p + 1)
    info = DefectiveColorInfo(
        p=p,
        phi_palette=phi_palette,
        phi_defect_bound=phi_defect_bound,
        psi_defect_bound=psi_defect_bound,
        output_key=output_key,
    )
    return PhasePipeline(phases, name="defective-color"), info


def run_defective_color(
    network: NetworkLike,
    b: int,
    p: int,
    c: int,
    Lambda: Optional[int] = None,
    mode: str = "vertex",
    engine: Optional[str] = None,
) -> Tuple[Dict[Hashable, int], DefectiveColorInfo, RunMetrics]:
    """Convenience wrapper: run Procedure Defective-Color on a whole network.

    ``network`` may be a :class:`~repro.local_model.network.Network` or a
    (possibly CSR-masked) :class:`~repro.local_model.fast_network.FastNetwork`.
    Returns the ``psi``-coloring (a mapping from node to a color in
    ``{1, ..., p}``), the static guarantees, and the measured metrics.
    ``engine`` selects the execution path (see
    :mod:`repro.local_model.engine`).
    """
    network = fast_view(network)
    if Lambda is None:
        Lambda = max(1, network.max_degree)
    pipeline, info = defective_color_pipeline(
        n=network.num_nodes, b=b, p=p, Lambda=Lambda, c=c, mode=mode
    )
    result = make_scheduler(network, engine=engine).run(pipeline)
    colors = result.extract(info.output_key)
    return colors, info, result.metrics
