"""The paper's primary contribution.

* :mod:`repro.core.defective_coloring` -- Procedure **Defective-Color**
  (Algorithm 1): an ``O(Delta/p)``-defective ``p``-coloring of graphs with
  bounded neighborhood independence, the paper's main technical tool.
* :mod:`repro.core.legal_coloring` -- Procedure **Legal-Color** (Algorithm 2)
  and the Theorem 4.5 / 4.6 / 4.8 vertex-coloring results.
* :mod:`repro.core.edge_coloring` -- the Section 5 edge-coloring algorithms
  for general graphs (Theorems 5.3 and 5.5).
* :mod:`repro.core.randomized` -- the Section 6.1 randomized extension.
* :mod:`repro.core.tradeoff` -- the Section 6.2 colors-vs-rounds tradeoff.
* :mod:`repro.core.parameters` -- parameter presets and validation.
"""

from repro.core.defective_coloring import (
    DefectiveColorInfo,
    PsiSelectionPhase,
    defective_color_pipeline,
    run_defective_color,
)
from repro.core.edge_coloring import EdgeColoringResult, color_edges
from repro.core.legal_coloring import (
    LegalColoringResult,
    LevelTrace,
    color_vertices,
    run_legal_coloring,
)
from repro.core.parameters import (
    LegalColorParameters,
    implied_color_exponent,
    params_for_few_rounds,
    params_for_linear_colors,
    params_for_subpolynomial_rounds,
)
from repro.core.randomized import RandomizedColoringResult, randomized_color_vertices
from repro.core.tradeoff import TradeoffColoringResult, tradeoff_color_vertices

__all__ = [
    "DefectiveColorInfo",
    "EdgeColoringResult",
    "LegalColorParameters",
    "LegalColoringResult",
    "LevelTrace",
    "PsiSelectionPhase",
    "RandomizedColoringResult",
    "TradeoffColoringResult",
    "color_edges",
    "color_vertices",
    "defective_color_pipeline",
    "implied_color_exponent",
    "params_for_few_rounds",
    "params_for_linear_colors",
    "params_for_subpolynomial_rounds",
    "randomized_color_vertices",
    "run_defective_color",
    "run_legal_coloring",
    "tradeoff_color_vertices",
]
