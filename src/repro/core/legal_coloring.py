"""Procedure Legal-Color (Algorithm 2) and the Theorem 4.5 / 4.6 / 4.8 results.

Procedure Legal-Color turns the defective coloring of Algorithm 1 into a
*legal* coloring by recursion: an ``O(Lambda/p)``-defective ``p``-coloring
``psi`` splits the graph into ``p`` vertex-disjoint subgraphs
``G_1, ..., G_p`` of maximum degree ``Lambda' = O(Lambda/p)``; the procedure
recurses on all of them in parallel, and once the degree bound drops to the
threshold ``lambda`` it colors the remaining subgraphs directly with a
``(Lambda + 1)``-coloring.  The per-level colorings are merged by giving the
subgraphs of one level pairwise-disjoint palettes of equal size
(``theta^{(j)} = p * theta^{(j+1)}``, Figure 3), so the final palette has
``theta^{(0)} = p^r * (hat-Lambda + 1)`` colors -- which is ``O(Delta)`` for
the Theorem 4.5 parameters and ``O(Delta^{1+eta})`` for the Theorem 4.6
parameters.

Execution model.  The recursion is *iterative* here: all subgraphs of one
level share the same parameters, so one pass of Procedure Defective-Color on
the union of the subgraphs (with edges between different subgraphs removed)
is exactly the "invoke recursively on each subgraph in parallel" step of the
paper, and the measured rounds of that pass equal the parallel time of the
level.  Every vertex carries its recursion *path* (the sequence of
``psi``-colors it received so far); two vertices are in the same current
subgraph exactly when their paths are equal.

Node state lives in a :class:`~repro.local_model.state_table.StateTable`
throughout: the paths are one interned path-id column (so the per-level
subgraph filtering, the path extension, and the subgraph count are single
array operations), and each level's scheduler pass runs through the engines'
``run_table`` entry points -- natively columnar on the vectorized engine,
through the exact dict view on the batched and reference engines.

The Section 4.2 improvement is applied by default: an auxiliary
``O(Delta^2)``-coloring ``rho`` is computed once (``log* n`` rounds) and fed
to every level's defective-coloring step, so the per-level cost depends only
on ``Delta``, not on ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.local_model.batched import NetworkLike
from repro.local_model.engine import make_scheduler, resolve_engine
from repro.local_model.fast_network import fast_view
from repro.local_model.line_csr import line_meta_for
from repro.local_model.metrics import RunMetrics
from repro.local_model.state_table import StateTable
from repro.core.defective_coloring import defective_color_pipeline
from repro.core.parameters import (
    LegalColorParameters,
    params_for_few_rounds,
    params_for_linear_colors,
    params_for_subpolynomial_rounds,
)
from repro.primitives.color_reduction import delta_plus_one_pipeline
from repro.primitives.linial import LinialColoringPhase


@dataclass(frozen=True)
class LevelTrace:
    """One recursion level of Procedure Legal-Color (one row of Figure 3).

    Attributes
    ----------
    level:
        Recursion depth (0 = the invocation on the whole input graph).
    degree_bound:
        The parameter ``Lambda`` of this level.
    phi_palette:
        Number of colors of the level's auxiliary defective coloring ``phi``
        (bounds the level's round count).
    next_degree_bound:
        The bound ``Lambda'`` passed to the next level (Theorem 3.7).
    num_subgraphs:
        How many non-empty subgraphs exist at this level.
    max_subgraph_degree:
        The *measured* maximum degree over the level's subgraphs (must not
        exceed ``degree_bound``; verified by the tests).
    rounds:
        Communication rounds spent on this level.
    """

    level: int
    degree_bound: int
    phi_palette: int
    next_degree_bound: int
    num_subgraphs: int
    max_subgraph_degree: int
    rounds: int


@dataclass
class LegalColoringResult:
    """The outcome of Procedure Legal-Color.

    Attributes
    ----------
    colors:
        The legal coloring, one color in ``{1, ..., palette}`` per node.
    palette:
        The palette bound ``theta^{(0)}`` guaranteed by the run (the number of
        *distinct* colors actually used may be smaller).
    metrics:
        Rounds / messages / bandwidth of the whole computation.
    levels:
        Per-level trace (the Figure 3 recursion tree, collapsed per level).
    parameters:
        The parameter preset that was used.
    bottom_degree_bound:
        The degree bound ``hat-Lambda`` at which the recursion bottomed out.
    color_column:
        The same coloring as ``colors``, as an ``int64`` array in the dense
        node order of the network's
        :class:`~repro.local_model.fast_network.FastNetwork` view -- callers
        that post-process the coloring (the tradeoff and randomized wrappers)
        merge palettes without a per-node pass.
    """

    colors: Dict[Hashable, int]
    palette: int
    metrics: RunMetrics
    levels: List[LevelTrace] = field(default_factory=list)
    parameters: Optional[LegalColorParameters] = None
    bottom_degree_bound: int = 0
    color_column: Optional[np.ndarray] = field(default=None, repr=False, compare=False)

    @property
    def num_levels(self) -> int:
        """Number of recursion levels executed before the bottom coloring."""
        return len(self.levels)

    @property
    def colors_used(self) -> int:
        """Number of distinct colors actually present in the coloring."""
        return len(set(self.colors.values()))


def run_legal_coloring(
    network: NetworkLike,
    params: LegalColorParameters,
    c: int,
    degree_bound: Optional[int] = None,
    edge_mode: bool = False,
    use_auxiliary_coloring: bool = True,
    engine: Optional[str] = None,
) -> LegalColoringResult:
    """Run Procedure Legal-Color on ``network``.

    Parameters
    ----------
    network:
        The graph to color -- a :class:`~repro.local_model.network.Network`
        or a (possibly CSR-masked)
        :class:`~repro.local_model.fast_network.FastNetwork`.  In
        ``edge_mode`` this must be a line-graph network (node identifiers are
        edge 2-tuples), as produced by
        :func:`repro.graphs.line_graph.build_line_graph_network`.
    params:
        The ``(b, p, lambda)`` preset (see :mod:`repro.core.parameters`).
    c:
        The bound on the neighborhood independence of ``network``
        (``c = 2`` for line graphs of graphs, ``c = r`` for line graphs of
        ``r``-hypergraphs).
    degree_bound:
        The initial ``Lambda`` (defaults to the network's maximum degree).
    edge_mode:
        Use Corollary 5.4 instead of Lemma 2.1(3) for the per-level defective
        coloring ``phi`` -- this is the Theorem 5.5 variant whose messages
        stay small.
    use_auxiliary_coloring:
        Apply the Section 4.2 improvement (compute the auxiliary
        ``O(Delta^2)``-coloring ``rho`` once and reuse it at every level).
    engine:
        Execution engine: ``"reference"`` (the message-at-a-time scheduler),
        ``"batched"`` (the flat-array engine), or ``None`` for the process
        default (see :mod:`repro.local_model.engine`).

    Returns
    -------
    LegalColoringResult
        The legal coloring together with its palette bound, metrics and the
        per-level recursion trace.
    """
    if c < 1:
        raise InvalidParameterError("c must be at least 1")
    if network.num_nodes == 0:
        return LegalColoringResult(
            colors={},
            palette=1,
            metrics=RunMetrics(),
            parameters=params,
            color_column=np.zeros(0, dtype=np.int64),
        )
    fast = fast_view(network)
    if edge_mode and resolve_engine(engine) == "vectorized":
        # Derive (and cache) the dense line-graph incidence encoding up
        # front: every per-level CSR-masked sub-view inherits it, so the
        # Corollary 5.4 kernel never falls back to per-node Python.  Views
        # built by build_line_graph_fast already carry it (free).
        line_meta_for(fast)
    delta = fast.max_degree
    if degree_bound is None:
        degree_bound = max(1, delta)
    if degree_bound < delta:
        raise InvalidParameterError(
            f"degree_bound {degree_bound} is below the actual maximum degree {delta}"
        )
    params.validate(degree_bound, c)

    metrics = RunMetrics()
    # Node state is columnar: one interned path-id column for the recursion
    # paths, plus the int columns the phases produce.  Vertices with equal
    # interned ids are exactly the vertices with equal paths, so each level's
    # subgraph filtering is a single label comparison over the CSR arrays.
    table = StateTable(fast.num_nodes)
    table.fill_path("_path", ())

    # ------------------------------------------------------------------ #
    # Section 4.2: auxiliary O(Delta^2)-coloring rho, computed once.
    # ------------------------------------------------------------------ #
    auxiliary_key: Optional[str] = None
    auxiliary_palette: Optional[int] = None
    if use_auxiliary_coloring:
        aux_phase = LinialColoringPhase(
            degree_bound=max(1, delta),
            initial_palette=fast.num_nodes,
            output_key="_aux_rho",
        )
        table, aux_metrics = make_scheduler(fast, engine=engine).run_table(
            aux_phase, table
        )
        metrics.merge(aux_metrics)
        auxiliary_key = "_aux_rho"
        auxiliary_palette = aux_phase.final_palette

    # ------------------------------------------------------------------ #
    # Recursion levels (executed iteratively; all subgraphs of a level run in
    # parallel on the path-filtered CSR view of the network).
    # ------------------------------------------------------------------ #
    levels: List[LevelTrace] = []
    current_bound = degree_bound
    level = 0
    while current_bound > params.threshold:
        if params.b * params.p > current_bound or params.p < 2:
            break  # Parameters no longer valid at this degree scale; bottom out.

        filtered = fast.filtered_by_labels(table.path_ids("_path"))
        psi_key = f"_psi_{level}"
        pipeline, info = defective_color_pipeline(
            n=fast.num_nodes,
            b=params.b,
            p=params.p,
            Lambda=current_bound,
            c=c,
            mode="edge" if edge_mode else "vertex",
            auxiliary_key=auxiliary_key,
            auxiliary_palette=auxiliary_palette,
            class_key="_path",
            output_key=psi_key,
        )
        table, level_metrics = make_scheduler(filtered, engine=engine).run_table(
            pipeline, table
        )
        metrics.merge(level_metrics)

        table.append_to_paths("_path", table.get_ints(psi_key))

        next_bound = info.psi_defect_bound
        levels.append(
            LevelTrace(
                level=level,
                degree_bound=current_bound,
                phi_palette=info.phi_palette,
                next_degree_bound=next_bound,
                num_subgraphs=table.num_paths("_path"),
                max_subgraph_degree=filtered.max_degree,
                rounds=level_metrics.rounds,
            )
        )

        if next_bound >= current_bound:
            current_bound = next_bound
            break  # No progress with these parameters; bottom out to stay safe.
        current_bound = next_bound
        level += 1

    # ------------------------------------------------------------------ #
    # Bottom level: a legal (Lambda + 1)-coloring of every remaining subgraph.
    # ------------------------------------------------------------------ #
    bottom_filtered = fast.filtered_by_labels(table.path_ids("_path"))
    bottom_bound = max(current_bound, bottom_filtered.max_degree)
    bottom_target = bottom_bound + 1
    bottom_pipeline, _ = delta_plus_one_pipeline(
        n=fast.num_nodes,
        degree_bound=bottom_bound,
        initial_palette=auxiliary_palette,
        input_key=auxiliary_key,
        output_key="_bottom_color",
        target=bottom_target,
    )
    table, bottom_metrics = make_scheduler(bottom_filtered, engine=engine).run_table(
        bottom_pipeline, table
    )
    metrics.merge(bottom_metrics)

    # ------------------------------------------------------------------ #
    # Merge the per-level colorings into disjoint palettes (Figure 3).
    # ------------------------------------------------------------------ #
    num_levels = len(levels)
    theta = [0] * (num_levels + 1)
    theta[num_levels] = bottom_target
    for j in range(num_levels - 1, -1, -1):
        theta[j] = params.p * theta[j + 1]
    palette = theta[0] if num_levels > 0 else bottom_target

    color_column = table.get_ints("_bottom_color")
    for j in range(num_levels):
        color_column += (table.get_ints(f"_psi_{j}") - 1) * theta[j + 1]
    colors: Dict[Hashable, int] = dict(zip(fast.order, color_column.tolist()))

    return LegalColoringResult(
        colors=colors,
        palette=palette,
        metrics=metrics,
        levels=levels,
        parameters=params,
        bottom_degree_bound=bottom_bound,
        color_column=color_column,
    )


def color_vertices(
    network: NetworkLike,
    c: int,
    quality: str = "linear",
    epsilon: float = 0.75,
    edge_mode: bool = False,
    use_auxiliary_coloring: bool = True,
    engine: Optional[str] = None,
) -> LegalColoringResult:
    """High-level entry point for Theorem 4.8.

    Parameters
    ----------
    network:
        A graph with neighborhood independence at most ``c``.
    c:
        The independence bound (e.g. ``2`` for line graphs / claw-free graphs).
    quality:
        ``"linear"`` -- ``O(Delta)`` colors in ``O(Delta^eps) + log* n`` time
        (Theorem 4.8(1));
        ``"superlinear"`` -- ``O(Delta^{1+eta})`` colors in roughly
        ``O(log Delta) + log* n`` time (Theorem 4.8(2));
        ``"subpolynomial"`` -- ``Delta^{1+o(1)}`` colors in
        ``O((log Delta)^{1+eta}) + log* n`` time (Theorem 4.8(3)).
    epsilon:
        The exponent knob for the ``"linear"`` and ``"subpolynomial"``
        presets.
    """
    delta = max(1, network.max_degree)
    if quality == "linear":
        params = params_for_linear_colors(delta, c, epsilon=epsilon)
    elif quality == "superlinear":
        params = params_for_few_rounds(delta, c)
    elif quality == "subpolynomial":
        params = params_for_subpolynomial_rounds(delta, c, eta=epsilon)
    else:
        raise InvalidParameterError(f"unknown quality {quality!r}")
    return run_legal_coloring(
        network,
        params,
        c=c,
        edge_mode=edge_mode,
        use_auxiliary_coloring=use_auxiliary_coloring,
        engine=engine,
    )
