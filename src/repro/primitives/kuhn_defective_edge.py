"""Kuhn's ``O(1)``-round defective *edge* coloring (Corollary 5.4).

For a parameter ``p'``, every vertex ``v`` labels its incident edges with
labels from ``{1, ..., p'}`` so that no label is used more than
``ceil(Delta / p')`` times; the color of an edge ``e = (u, w)`` is the ordered
pair of the two labels its endpoints assigned to it (ordered by the
identifiers of ``u`` and ``w``).  The palette has ``p'^2`` colors and the
defect is at most ``4 * ceil(Delta / p')`` (at each endpoint, at most
``ceil(Delta / p')`` incident edges can repeat either coordinate of the pair).

In this repository the routine runs on the line-graph network: each
line-graph node *is* an edge ``(u, w)`` of ``G`` and can compute both of its
labels locally once it knows which of its incident edges participate (its
line-graph neighbors sharing the endpoint), because every vertex's labeling
rule is the deterministic "sort the incident edges and chunk" rule.  The only
communication needed is one round to learn which neighbors are *active*
(belong to the same subgraph of the Legal-Color recursion); when no class
restriction is supplied the phase still spends that one round, matching the
``O(1)`` cost the paper charges.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.local_model.algorithm import BroadcastPhase, LocalView
from repro.local_model.line_csr import NOT_A_LINE_GRAPH, line_meta_for
from repro.local_model.messages import payload_size_words
from repro.local_model.network import node_sort_key
from repro.local_model.vectorized import VectorContext
from repro.primitives.numbers import ceil_div


class KuhnDefectiveEdgeColoringPhase(BroadcastPhase):
    """Corollary 5.4 as a one-round phase on a line-graph network.

    Parameters
    ----------
    p_prime:
        The label range ``p'`` (the resulting palette is ``p'^2``).
    degree_bound:
        An upper bound on the maximum degree of the *original* graph ``G``
        restricted to the participating edges.
    output_key:
        State key the edge color is written to (an integer in
        ``{1, ..., p'^2}``).
    class_key:
        Optional state key identifying the subgraph (recursion path) the edge
        currently belongs to.  Only incident edges with an equal class value
        are counted when computing label ranks, which is how the routine is
        reused at every level of the Legal-Color recursion.
    """

    def __init__(
        self,
        p_prime: int,
        degree_bound: int,
        output_key: str = "defective_edge_color",
        class_key: Optional[str] = None,
    ) -> None:
        if p_prime < 1:
            raise InvalidParameterError("p_prime must be at least 1")
        if degree_bound < 1:
            raise InvalidParameterError("degree_bound must be at least 1")
        self.name = f"kuhn-defective-edge[p'={p_prime}]"
        self.p_prime = p_prime
        self.degree_bound = degree_bound
        self.output_key = output_key
        self.class_key = class_key
        self.output_palette = p_prime * p_prime
        self.defect_bound = 4 * ceil_div(degree_bound, p_prime)
        self._chunk = max(1, ceil_div(degree_bound, p_prime))

    # ------------------------------------------------------------------ #

    def initialize(self, view: LocalView, state: Dict[str, Any]) -> None:
        node_id = view.node_id
        if not (isinstance(node_id, tuple) and len(node_id) == 2):
            raise InvalidParameterError(NOT_A_LINE_GRAPH)

    def broadcast(self, view: LocalView, state: Dict[str, Any], round_index: int) -> Any:
        own_class = state.get(self.class_key) if self.class_key else None
        return {"class": own_class}

    def receive(
        self,
        view: LocalView,
        state: Dict[str, Any],
        inbox: Mapping[Hashable, Any],
        round_index: int,
    ) -> bool:
        own_class = state.get(self.class_key) if self.class_key else None
        active_neighbors = [
            neighbor
            for neighbor, payload in inbox.items()
            if payload.get("class") == own_class
        ]

        endpoint_a, endpoint_b = view.node_id
        label_a = self._label_at_endpoint(endpoint_a, view.node_id, active_neighbors)
        label_b = self._label_at_endpoint(endpoint_b, view.node_id, active_neighbors)
        state[self.output_key] = (label_a - 1) * self.p_prime + label_b
        return True

    def max_rounds(self, n: int, max_degree: int) -> int:
        return 2

    # ------------------------------------------------------------------ #

    def _label_at_endpoint(
        self,
        endpoint: Hashable,
        own_edge: Tuple[Hashable, Hashable],
        active_neighbors: List[Tuple[Hashable, Hashable]],
    ) -> int:
        """The label the vertex ``endpoint`` assigns to ``own_edge``.

        Every edge incident to ``endpoint`` (within the active class) computes
        the same deterministic ordering of that incidence list, so all of them
        agree on the labeling without any extra communication.
        """
        incident = [own_edge] + [
            neighbor for neighbor in active_neighbors if endpoint in neighbor
        ]
        incident.sort(key=node_sort_key)
        rank = incident.index(own_edge)
        label = rank // self._chunk + 1
        return min(label, self.p_prime)

    # ------------------------------------------------------------------ #
    # Vectorized execution (see repro.local_model.vectorized)
    # ------------------------------------------------------------------ #

    #: Marker the vectorized scheduler checks to run the numpy kernel.
    supports_vectorized: bool = True

    def vector_run(self, ctx: VectorContext) -> None:
        """The whole phase as array arithmetic; bit-identical to the callbacks.

        An edge's label at an endpoint is its rank (in ``node_sort_key``
        order, pre-encoded in the incidence metadata's ``sort_rank`` column)
        among the incident edges of the same class -- that is, the number of
        same-class CSR neighbors that share the endpoint and sort strictly
        before it, which is one masked ``bincount`` over the (possibly
        CSR-masked) line-graph adjacency per endpoint column.
        """
        fast = ctx.fast
        meta = line_meta_for(fast)
        n = fast.num_nodes
        codes, sizes = self._class_column(ctx)

        rows, cols = fast.rows_np, fast.indices_np
        edge_u, edge_v, sort_rank = meta.edge_u, meta.edge_v, meta.sort_rank
        before = sort_rank[cols] < sort_rank[rows]
        if codes is not None:
            before &= codes[rows] == codes[cols]
        neighbor_u, neighbor_v = edge_u[cols], edge_v[cols]
        rank_u = np.bincount(
            rows[before & ((neighbor_u == edge_u[rows]) | (neighbor_v == edge_u[rows]))],
            minlength=n,
        )
        rank_v = np.bincount(
            rows[before & ((neighbor_u == edge_v[rows]) | (neighbor_v == edge_v[rows]))],
            minlength=n,
        )
        label_u = np.minimum(rank_u // self._chunk + 1, self.p_prime)
        label_v = np.minimum(rank_v // self._chunk + 1, self.p_prime)

        # One round: every node broadcasts {"class": value} and halts.
        if sizes is None:
            ctx.charge_uniform_broadcast(1, payload_words=2)
        else:
            nnz = len(fast.indices)
            degrees = fast.degrees_np
            ctx.charge(
                rounds=1,
                messages=nnz,
                total_words=int((degrees * sizes).sum()),
                max_message_words=int(sizes[degrees > 0].max()) if nnz else 0,
            )
        ctx.write_column(self.output_key, (label_u - 1) * self.p_prime + label_v)

    def _class_column(self, ctx: VectorContext):
        """Per-node ``(codes, sizes)`` of the class values.

        ``codes`` is an ``int64`` column whose equality matches Python ``==``
        on the class values (``None`` when no class restriction applies --
        all nodes active together); ``sizes`` is the per-node word size of
        the ``{"class": value}`` broadcast payload (``None`` for the uniform
        2-word scalar case).
        """
        if self.class_key is None:
            return None, None
        table = ctx.table
        if table is not None and self.class_key not in table:
            return None, None  # state.get(class_key) is None on every node
        if table is not None:
            kind = table.kind(self.class_key)
            try:
                if kind == "int":
                    return table.get_ints(self.class_key), None
                if kind == "path":
                    ids = table.path_ids(self.class_key)
                    interned = table.path_interned(self.class_key)
                    words = np.fromiter(
                        (1 + payload_size_words(path) for path in interned),
                        dtype=np.int64,
                        count=len(interned),
                    )
                    return ids, words[ids]
            except KeyError:
                pass  # Partially present column: state.get semantics below.
            values = table.get_values_or_none(self.class_key)
        else:
            values = [state.get(self.class_key) for state in ctx.states]

        codes = np.empty(len(values), dtype=np.int64)
        try:
            lookup: Dict[Any, int] = {}
            for i, value in enumerate(values):
                codes[i] = lookup.setdefault(value, len(lookup))
        except TypeError:  # unhashable class values: equality scan
            seen: List[Any] = []
            for i, value in enumerate(values):
                for code, candidate in enumerate(seen):
                    if candidate == value:
                        codes[i] = code
                        break
                else:
                    codes[i] = len(seen)
                    seen.append(value)
        sizes = np.fromiter(
            (1 + payload_size_words(value) for value in values),
            dtype=np.int64,
            count=len(values),
        )
        return codes, sizes
