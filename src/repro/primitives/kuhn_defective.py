"""Defective vertex coloring with ``defect * colors = O(Delta)`` *per factor*.

This module implements the black box of Lemma 2.1(3) / Theorem 4.7: given a
degree bound ``Delta`` and a defect target ``d``, compute a ``d``-defective
coloring with ``O((Delta / d)^2)`` colors in ``O(log* n)`` rounds (or
``O(log* m)`` rounds when an auxiliary legal ``m``-coloring is already
available, which is how Section 4.2 removes the repeated ``log* n`` terms).

Construction.  Start from a legal coloring (unique identifiers or the
auxiliary coloring), shrink it with Linial's algorithm to ``O(Delta^2)``
colors, and then apply one or two *defective polynomial steps*: a color from
a palette of size ``m`` is read as a polynomial of degree ``t`` over
``GF(q)``; instead of requiring a collision-free evaluation point (Linial),
the vertex picks the point minimizing the number of colliding neighbors.
Averaging over the ``q`` points, the best point has at most
``floor(Delta * t / q)`` collisions with neighbors holding *different*
colors, so choosing ``q >= Delta * t / d`` bounds the newly introduced defect
by ``d`` while shrinking the palette to ``q^2``.  Collisions with neighbors
holding the *same* color are unavoidable (identical polynomials); they are
bounded by the defect of the input coloring, which is why the overall defect
budget is split geometrically across the steps.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.local_model.algorithm import BroadcastPhase, LocalView, PhasePipeline, SynchronousPhase
from repro.local_model.vectorized import (
    VectorContext,
    check_color_range,
    digits_base_q,
    poly_eval_columns,
)
from repro.primitives.linial import LinialColoringPhase
from repro.primitives.numbers import (
    base_q_digits,
    ceil_div,
    next_prime,
    num_base_q_digits,
    poly_eval,
)
from repro.primitives.util_phases import CopyKeyPhase


def defective_step_parameters(
    palette: int, degree_bound: int, defect_budget: int
) -> Tuple[int, int]:
    """The prime ``q`` and digit count for one defective polynomial step.

    Guarantees ``floor(degree_bound * t / q) <= defect_budget`` where
    ``t = digits - 1``; the step's output palette is ``q^2``.
    """
    if palette < 1:
        raise InvalidParameterError("palette must be at least 1")
    if degree_bound < 0:
        raise InvalidParameterError("degree_bound must be non-negative")
    if defect_budget < 1:
        raise InvalidParameterError("defect_budget must be at least 1")

    # The validity condition "q >= degree_bound * (digits - 1) / defect_budget"
    # is monotone in q (larger q never increases the digit count), so the
    # smallest valid prime is found by scanning primes upward.
    q = 2
    while True:
        digits = num_base_q_digits(palette, q)
        required = max(2, ceil_div(degree_bound * (digits - 1), defect_budget))
        if q >= required:
            return q, digits
        q = next_prime(q + 1)


class DefectiveStepPhase(BroadcastPhase):
    """One defective polynomial recoloring step (a single round).

    The vertex broadcasts its current color, reads its neighbors' colors, and
    moves to the evaluation point with the fewest collisions among neighbors
    holding *different* colors.  The new color is the pair
    ``(point, value)`` encoded into ``{1, ..., q^2}``.
    """

    def __init__(
        self,
        palette: int,
        degree_bound: int,
        defect_budget: int,
        input_key: str,
        output_key: str,
    ) -> None:
        self.name = f"defective-step[d<={defect_budget}]"
        self.palette = palette
        self.degree_bound = degree_bound
        self.defect_budget = defect_budget
        self.input_key = input_key
        self.output_key = output_key
        self.q, self.digits = defective_step_parameters(palette, degree_bound, defect_budget)
        self.output_palette = self.q * self.q

    def initialize(self, view: LocalView, state: Dict[str, Any]) -> None:
        color = int(state[self.input_key])
        if not 1 <= color <= self.palette:
            raise InvalidParameterError(
                f"color {color} outside declared palette 1..{self.palette}"
            )

    def broadcast(self, view: LocalView, state: Dict[str, Any], round_index: int) -> Any:
        return state[self.input_key]

    def receive(
        self,
        view: LocalView,
        state: Dict[str, Any],
        inbox: Mapping[Hashable, Any],
        round_index: int,
    ) -> bool:
        q, digits = self.q, self.digits
        own_color = int(state[self.input_key])
        own_coeffs = base_q_digits(own_color - 1, q, digits)
        neighbor_coeffs = [
            base_q_digits(int(color) - 1, q, digits)
            for color in inbox.values()
            if int(color) != own_color
        ]

        best_point = 0
        best_collisions = None
        for point in range(q):
            own_value = poly_eval(own_coeffs, point, q)
            collisions = sum(
                1
                for coeffs in neighbor_coeffs
                if poly_eval(coeffs, point, q) == own_value
            )
            if best_collisions is None or collisions < best_collisions:
                best_point = point
                best_collisions = collisions
                if collisions == 0:
                    break

        state[self.output_key] = (
            best_point * q + poly_eval(own_coeffs, best_point, q) + 1
        )
        return True

    def max_rounds(self, n: int, max_degree: int) -> int:
        return 2

    # ------------------------------------------------------------------ #
    # Vectorized execution (see repro.local_model.vectorized)
    # ------------------------------------------------------------------ #

    #: Marker the vectorized scheduler checks to run the numpy kernel.
    supports_vectorized: bool = True

    def vector_run(self, ctx: VectorContext) -> None:
        """The whole phase as array arithmetic; bit-identical to the callbacks."""
        colors = ctx.column(self.input_key)
        check_color_range(
            colors, self.palette, "color {color} outside declared palette 1..{palette}"
        )

        fast = ctx.fast
        n = fast.num_nodes
        q, digits = self.q, self.digits
        coeffs = digits_base_q(colors - 1, q, digits)
        rows, cols = fast.rows_np, fast.indices_np
        # Neighbors holding the *same* color never count as collisions.
        differing = np.flatnonzero(colors[rows] != colors[cols])
        edge_rows = rows[differing]
        edge_cols = cols[differing]

        best_count = np.zeros(n, dtype=np.int64)
        best_point = np.zeros(n, dtype=np.int64)
        best_value = np.zeros(n, dtype=np.int64)
        for point in range(q):
            values = poly_eval_columns(coeffs, point, q)
            collide = values[edge_rows] == values[edge_cols]
            count = np.bincount(edge_rows[collide], minlength=n)
            if point == 0:
                best_count = count
                best_value = values
            else:
                improve = count < best_count
                best_count = np.where(improve, count, best_count)
                best_point[improve] = point
                best_value[improve] = values[improve]
            if not best_count.any():
                # Strict improvement means later points can never displace a
                # zero-collision choice, exactly like the scalar early break.
                break

        ctx.charge_uniform_broadcast(1)
        ctx.write_column(self.output_key, best_point * q + best_value + 1)


def _split_defect_budget(target_defect: int) -> List[int]:
    """Split the defect target across (at most two) polynomial steps."""
    if target_defect <= 1:
        return [max(1, target_defect)]
    first = target_defect - target_defect // 2
    second = target_defect // 2
    return [budget for budget in (first, second) if budget >= 1]


def defective_coloring_pipeline(
    n: int,
    degree_bound: int,
    target_defect: int,
    initial_palette: Optional[int] = None,
    input_key: Optional[str] = None,
    output_key: str = "defective_color",
) -> Tuple[PhasePipeline, int]:
    """Build the Lemma 2.1(3) pipeline: a ``target_defect``-defective coloring.

    Parameters
    ----------
    n:
        Number of vertices (the initial identifier palette when no auxiliary
        coloring is supplied).
    degree_bound:
        Upper bound on the maximum degree of the (sub)graph being colored.
    target_defect:
        The allowed defect ``d``.  ``d <= 0`` requests a *legal* coloring, in
        which case only Linial's algorithm is applied and the palette stays
        ``O(degree_bound^2)``.
    initial_palette, input_key:
        When given, the pipeline starts from the existing legal coloring in
        ``state[input_key]`` (palette ``initial_palette``) instead of the
        unique identifiers -- this is the Section 4.2 trick that replaces the
        repeated ``log* n`` cost by ``log* Delta``.
    output_key:
        Where the final color is stored.

    Returns
    -------
    (pipeline, palette):
        The pipeline and the size of the palette of the produced coloring,
        which is ``O((degree_bound / max(target_defect, 1))^2)``.
    """
    if initial_palette is None:
        initial_palette = n

    linial = LinialColoringPhase(
        degree_bound=degree_bound,
        initial_palette=initial_palette,
        input_key=input_key,
        output_key="_kuhn_base",
    )
    phases: List[SynchronousPhase] = [linial]
    current_key = "_kuhn_base"
    current_palette = linial.final_palette

    if target_defect > 0 and degree_bound > 0:
        for index, budget in enumerate(_split_defect_budget(target_defect)):
            q, _digits = defective_step_parameters(current_palette, degree_bound, budget)
            if q * q >= current_palette:
                continue  # The step would not shrink the palette; skip it.
            step = DefectiveStepPhase(
                palette=current_palette,
                degree_bound=degree_bound,
                defect_budget=budget,
                input_key=current_key,
                output_key=f"_kuhn_step_{index}",
            )
            phases.append(step)
            current_key = step.output_key
            current_palette = step.output_palette

    phases.append(CopyKeyPhase(current_key, output_key))
    return PhasePipeline(phases, name="kuhn-defective"), current_palette
