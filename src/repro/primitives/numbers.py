"""Arithmetic helpers: primes, base-``q`` expansions, and the iterated log.

Linial's algorithm and the defective-coloring steps encode a color as the
coefficient vector of a polynomial over a prime field ``GF(q)``; this module
provides the small number-theoretic utilities those constructions need, plus
the ``log*`` function that appears throughout the paper's running-time bounds.
"""

from __future__ import annotations

import math
from typing import List

from repro.exceptions import InvalidParameterError


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division (``ceil(numerator / denominator)``)."""
    if denominator <= 0:
        raise InvalidParameterError("denominator must be positive")
    return -(-numerator // denominator)


def is_prime(value: int) -> bool:
    """Deterministic primality test (trial division, adequate for our sizes)."""
    if value < 2:
        return False
    if value < 4:
        return True
    if value % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= value:
        if value % divisor == 0:
            return False
        divisor += 2
    return True


def next_prime(value: int) -> int:
    """The smallest prime greater than or equal to ``value`` (at least 2)."""
    candidate = max(2, value)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def ceil_log(value: int, base: float = 2.0) -> int:
    """``ceil(log_base(value))`` for ``value >= 1`` (0 when ``value == 1``)."""
    if value < 1:
        raise InvalidParameterError("value must be at least 1")
    if base <= 1:
        raise InvalidParameterError("base must exceed 1")
    result = 0
    power = 1.0
    while power < value:
        power *= base
        result += 1
    return result


def log_star(value: float) -> int:
    """The iterated logarithm ``log* value`` (base 2), as defined in Section 2.

    ``log* value = min { i : log^(i) value <= 2 }``.
    """
    if value <= 2:
        return 0
    count = 0
    current = float(value)
    while current > 2:
        current = math.log2(current)
        count += 1
    return count


def base_q_digits(value: int, q: int, num_digits: int) -> List[int]:
    """The ``num_digits`` least-significant base-``q`` digits of ``value``.

    Used to interpret a color as the coefficient vector of a polynomial over
    ``GF(q)``: color ``value`` becomes the polynomial whose ``i``-th
    coefficient is the ``i``-th digit.
    """
    if q < 2:
        raise InvalidParameterError("base q must be at least 2")
    if num_digits < 1:
        raise InvalidParameterError("num_digits must be at least 1")
    if value < 0:
        raise InvalidParameterError("value must be non-negative")
    digits = []
    remaining = value
    for _ in range(num_digits):
        digits.append(remaining % q)
        remaining //= q
    if remaining:
        raise InvalidParameterError(
            f"value {value} does not fit in {num_digits} base-{q} digits"
        )
    return digits


def num_base_q_digits(max_value: int, q: int) -> int:
    """How many base-``q`` digits are needed to represent values ``< max_value``."""
    if max_value < 1:
        raise InvalidParameterError("max_value must be at least 1")
    if q < 2:
        raise InvalidParameterError("base q must be at least 2")
    digits = 1
    capacity = q
    while capacity < max_value:
        capacity *= q
        digits += 1
    return digits


def poly_eval(coefficients: List[int], point: int, q: int) -> int:
    """Evaluate the polynomial with the given coefficients at ``point`` over ``GF(q)``.

    ``coefficients[i]`` is the coefficient of ``x^i``.  Horner's rule, all
    arithmetic modulo ``q``.
    """
    if q < 2:
        raise InvalidParameterError("modulus q must be at least 2")
    result = 0
    for coefficient in reversed(coefficients):
        result = (result * point + coefficient) % q
    return result
