"""Classical distributed-coloring primitives the paper builds on.

These are the black boxes of Lemma 2.1, Theorem 4.7 and Corollary 5.4:

* :mod:`repro.primitives.linial` -- Linial's ``O(Delta^2)``-coloring in
  ``log* n`` rounds (Lemma 2.1(1)),
* :mod:`repro.primitives.color_reduction` -- iterative and
  Kuhn-Wattenhofer-style color reduction, giving the ``(Delta + 1)``-coloring
  used as Lemma 2.1(2),
* :mod:`repro.primitives.kuhn_defective` -- the ``floor(Delta/p)``-defective
  ``O(p^2)``-coloring of Lemma 2.1(3) / Theorem 4.7,
* :mod:`repro.primitives.kuhn_defective_edge` -- Kuhn's ``O(1)``-round
  defective edge coloring of Corollary 5.4,
* :mod:`repro.primitives.numbers` -- primes, base-``q`` digit expansions and
  the iterated logarithm.
"""

from repro.primitives.color_reduction import (
    IterativeColorReductionPhase,
    KuhnWattenhoferReductionPhase,
    delta_plus_one_pipeline,
)
from repro.primitives.kuhn_defective import (
    DefectiveStepPhase,
    defective_coloring_pipeline,
    defective_step_parameters,
)
from repro.primitives.kuhn_defective_edge import KuhnDefectiveEdgeColoringPhase
from repro.primitives.linial import (
    LinialColoringPhase,
    linial_final_palette,
    linial_schedule,
)
from repro.primitives.numbers import (
    base_q_digits,
    ceil_div,
    ceil_log,
    is_prime,
    log_star,
    next_prime,
    poly_eval,
)

__all__ = [
    "DefectiveStepPhase",
    "IterativeColorReductionPhase",
    "KuhnDefectiveEdgeColoringPhase",
    "KuhnWattenhoferReductionPhase",
    "LinialColoringPhase",
    "base_q_digits",
    "ceil_div",
    "ceil_log",
    "defective_coloring_pipeline",
    "defective_step_parameters",
    "delta_plus_one_pipeline",
    "is_prime",
    "linial_final_palette",
    "linial_schedule",
    "log_star",
    "next_prime",
    "poly_eval",
]
