"""Color-reduction phases and the ``(Delta + 1)``-coloring pipeline.

The paper uses, as a black box (Lemma 2.1(2)), an algorithm that computes a
legal ``(Delta + 1)``-vertex-coloring in ``O(Delta) + log* n`` rounds.  That
exact algorithm (Barenboim-Elkin [4] / Kuhn [19]) is only ever invoked on
subgraphs whose maximum degree is bounded by the *constant* (or tiny)
threshold ``lambda`` of Procedure Legal-Color, so its precise dependence on
``Delta`` does not affect any of the paper's asymptotic statements.  We
provide two substitutes and document the substitution in DESIGN.md:

* :class:`IterativeColorReductionPhase` -- the folklore reduction that
  removes one color class per round (``m - k`` rounds from ``m`` colors to
  ``k >= Delta + 1`` colors); simple, used in tests and at tiny palettes.
* :class:`KuhnWattenhoferReductionPhase` -- the Kuhn-Wattenhofer block
  reduction: the palette is split into blocks of ``2k`` colors, every block is
  reduced to ``k`` colors in parallel (legal because distinct blocks keep
  disjoint palettes), and the palette therefore halves every ``k`` rounds.
  From ``O(Delta^2)`` colors this reaches ``Delta + 1`` in
  ``O(Delta log Delta)`` rounds -- within a ``log Delta`` factor of the black
  box the paper cites.

:func:`delta_plus_one_pipeline` composes Linial's algorithm with either
reduction to give the full Lemma 2.1(2) substitute.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError, SimulationError
from repro.local_model.algorithm import SILENT, BroadcastPhase, LocalView, PhasePipeline
from repro.local_model.vectorized import VectorContext, check_color_range, first_free_slot
from repro.primitives.linial import LinialColoringPhase
from repro.primitives.numbers import ceil_div

#: The exact exception text of the scalar ``initialize`` validations.
_PALETTE_TEMPLATE = "color {color} outside declared palette 1..{palette}"


def _validated_colors(ctx: VectorContext, input_key: str, palette: int) -> np.ndarray:
    """Gather the input coloring and apply the scalar ``initialize`` validation."""
    colors = ctx.column(input_key)
    check_color_range(colors, palette, _PALETTE_TEMPLATE)
    return colors


class IterativeColorReductionPhase(BroadcastPhase):
    """Reduce a legal ``palette``-coloring to ``target`` colors, one class per round.

    Requires ``target >= (maximum degree of the subgraph) + 1``: in each round
    the (independent) class holding the currently largest color re-picks a
    free color from ``{1, ..., target}``.
    """

    def __init__(
        self,
        palette: int,
        target: int,
        input_key: str,
        output_key: str = "reduced_color",
    ) -> None:
        if target < 1:
            raise InvalidParameterError("target palette must be at least 1")
        if palette < 1:
            raise InvalidParameterError("palette must be at least 1")
        self.name = f"reduce[{palette}->{target}]"
        self.palette = palette
        self.target = target
        self.input_key = input_key
        self.output_key = output_key
        self.total_rounds = max(0, palette - target)

    def initialize(self, view: LocalView, state: Dict[str, Any]) -> None:
        color = int(state[self.input_key])
        if not 1 <= color <= self.palette:
            raise InvalidParameterError(
                f"color {color} outside declared palette 1..{self.palette}"
            )
        state["_reduce_current"] = color

    def broadcast(self, view: LocalView, state: Dict[str, Any], round_index: int) -> Any:
        if self.total_rounds == 0:
            return SILENT
        return state["_reduce_current"]

    def receive(
        self,
        view: LocalView,
        state: Dict[str, Any],
        inbox: Mapping[Hashable, Any],
        round_index: int,
    ) -> bool:
        if self.total_rounds == 0:
            state[self.output_key] = state["_reduce_current"]
            return True

        active_color = self.palette - round_index + 1
        if state["_reduce_current"] == active_color and active_color > self.target:
            taken = {int(color) for color in inbox.values()}
            replacement = next(
                (c for c in range(1, self.target + 1) if c not in taken), None
            )
            if replacement is None:
                raise SimulationError(
                    "no free color during iterative reduction; the target palette "
                    "is smaller than the subgraph degree + 1"
                )
            state["_reduce_current"] = replacement

        if round_index == self.total_rounds:
            state[self.output_key] = state["_reduce_current"]
            return True
        return False

    def max_rounds(self, n: int, max_degree: int) -> int:
        return self.total_rounds + 2

    # ------------------------------------------------------------------ #
    # Vectorized execution (see repro.local_model.vectorized)
    # ------------------------------------------------------------------ #

    #: Marker the vectorized scheduler checks to run the numpy kernel.
    supports_vectorized: bool = True

    def vector_run(self, ctx: VectorContext) -> None:
        """The whole phase as array arithmetic; bit-identical to the callbacks."""
        colors = _validated_colors(ctx, self.input_key, self.palette)
        if self.total_rounds == 0:
            ctx.charge_silent_round()
            ctx.write_column("_reduce_current", colors)
            ctx.write_column(self.output_key, colors)
            return

        for round_index in range(1, self.total_rounds + 1):
            active_color = self.palette - round_index + 1
            recoloring = np.flatnonzero(colors == active_color)
            if not recoloring.size:
                continue
            local_rows, neighbors = ctx.gather_neighbors(recoloring)
            neighbor_colors = colors[neighbors]
            in_target = neighbor_colors <= self.target
            replacement = first_free_slot(
                recoloring.size,
                self.target,
                local_rows[in_target],
                neighbor_colors[in_target] - 1,
            )
            if (replacement < 0).any():
                raise SimulationError(
                    "no free color during iterative reduction; the target palette "
                    "is smaller than the subgraph degree + 1"
                )
            colors[recoloring] = replacement + 1

        ctx.charge_uniform_broadcast(self.total_rounds)
        ctx.write_column("_reduce_current", colors)
        ctx.write_column(self.output_key, colors)


class KuhnWattenhoferReductionPhase(BroadcastPhase):
    """Kuhn-Wattenhofer block color reduction.

    Repeatedly partitions the palette into blocks of ``2 * target`` colors and
    reduces every block to its first ``target`` colors in parallel.  Distinct
    blocks end up with disjoint palettes, so cross-block edges remain legal;
    within a block, the upper-half classes are eliminated one per round, and a
    recoloring vertex only needs ``target >= degree + 1`` free colors.  The
    palette (roughly) halves every ``target`` rounds, so the total number of
    rounds is ``O(target * log(palette / target))``.
    """

    def __init__(
        self,
        palette: int,
        target: int,
        input_key: str,
        output_key: str = "reduced_color",
    ) -> None:
        if target < 1:
            raise InvalidParameterError("target palette must be at least 1")
        if palette < 1:
            raise InvalidParameterError("palette must be at least 1")
        self.name = f"kw-reduce[{palette}->{target}]"
        self.palette = palette
        self.target = target
        self.input_key = input_key
        self.output_key = output_key

        # Deterministic iteration plan, computed identically by every vertex.
        self.iteration_palettes: List[int] = []
        current = palette
        while current > target:
            self.iteration_palettes.append(current)
            blocks = ceil_div(current, 2 * target)
            current = blocks * target
        self.final_palette = current
        self.total_rounds = len(self.iteration_palettes) * target

    # ------------------------------------------------------------------ #

    def initialize(self, view: LocalView, state: Dict[str, Any]) -> None:
        color = int(state[self.input_key])
        if not 1 <= color <= self.palette:
            raise InvalidParameterError(
                f"color {color} outside declared palette 1..{self.palette}"
            )
        state["_kw_current"] = color

    def broadcast(self, view: LocalView, state: Dict[str, Any], round_index: int) -> Any:
        if self.total_rounds == 0:
            return SILENT
        return state["_kw_current"]

    def receive(
        self,
        view: LocalView,
        state: Dict[str, Any],
        inbox: Mapping[Hashable, Any],
        round_index: int,
    ) -> bool:
        if self.total_rounds == 0:
            state[self.output_key] = state["_kw_current"]
            return True

        k = self.target
        iteration = (round_index - 1) // k
        step = (round_index - 1) % k

        color = state["_kw_current"]
        block = (color - 1) // (2 * k)
        offset = (color - 1) % (2 * k)

        if offset == k + step:
            # Recolor into the lower half of the block, avoiding neighbors
            # currently sitting in this block's lower half.
            taken = set()
            for neighbor_color in inbox.values():
                neighbor_color = int(neighbor_color)
                n_block = (neighbor_color - 1) // (2 * k)
                n_offset = (neighbor_color - 1) % (2 * k)
                if n_block == block and n_offset < k:
                    taken.add(n_offset)
            replacement = next((o for o in range(k) if o not in taken), None)
            if replacement is None:
                raise SimulationError(
                    "no free color during Kuhn-Wattenhofer reduction; the target "
                    "palette is smaller than the subgraph degree + 1"
                )
            state["_kw_current"] = block * 2 * k + replacement + 1

        if step == k - 1:
            # End of the iteration: relabel (block, lower-offset) pairs into a
            # compact palette.  Purely local.
            color = state["_kw_current"]
            block = (color - 1) // (2 * k)
            offset = (color - 1) % (2 * k)
            state["_kw_current"] = block * k + offset + 1

        if round_index == self.total_rounds:
            state[self.output_key] = state["_kw_current"]
            return True
        return False

    def max_rounds(self, n: int, max_degree: int) -> int:
        return self.total_rounds + 2

    # ------------------------------------------------------------------ #
    # Vectorized execution (see repro.local_model.vectorized)
    # ------------------------------------------------------------------ #

    #: Marker the vectorized scheduler checks to run the numpy kernel.
    supports_vectorized: bool = True

    def vector_run(self, ctx: VectorContext) -> None:
        """The whole phase as array arithmetic; bit-identical to the callbacks."""
        colors = _validated_colors(ctx, self.input_key, self.palette)
        if self.total_rounds == 0:
            ctx.charge_silent_round()
            ctx.write_column("_kw_current", colors)
            ctx.write_column(self.output_key, colors)
            return

        k = self.target
        block_width = 2 * k
        for round_index in range(1, self.total_rounds + 1):
            step = (round_index - 1) % k
            blocks = (colors - 1) // block_width
            offsets = (colors - 1) % block_width
            recoloring = np.flatnonzero(offsets == k + step)
            if recoloring.size:
                local_rows, neighbors = ctx.gather_neighbors(recoloring)
                neighbor_colors = colors[neighbors]
                neighbor_blocks = (neighbor_colors - 1) // block_width
                neighbor_offsets = (neighbor_colors - 1) % block_width
                relevant = (neighbor_blocks == blocks[recoloring][local_rows]) & (
                    neighbor_offsets < k
                )
                replacement = first_free_slot(
                    recoloring.size,
                    k,
                    local_rows[relevant],
                    neighbor_offsets[relevant],
                )
                if (replacement < 0).any():
                    raise SimulationError(
                        "no free color during Kuhn-Wattenhofer reduction; the target "
                        "palette is smaller than the subgraph degree + 1"
                    )
                colors[recoloring] = blocks[recoloring] * block_width + replacement + 1
            if step == k - 1:
                # End of the iteration: compact (block, lower-offset) pairs.
                blocks = (colors - 1) // block_width
                offsets = (colors - 1) % block_width
                colors = blocks * k + offsets + 1

        ctx.charge_uniform_broadcast(self.total_rounds)
        ctx.write_column("_kw_current", colors)
        ctx.write_column(self.output_key, colors)


def delta_plus_one_pipeline(
    n: int,
    degree_bound: int,
    initial_palette: Optional[int] = None,
    input_key: Optional[str] = None,
    output_key: str = "legal_color",
    target: Optional[int] = None,
    use_kuhn_wattenhofer: bool = True,
) -> Tuple[PhasePipeline, int]:
    """The Lemma 2.1(2) substitute: a legal ``target``-coloring pipeline.

    Runs Linial's algorithm (starting from unique identifiers, or from an
    existing legal coloring when ``input_key`` is given) and then reduces the
    palette to ``target`` (default ``degree_bound + 1``).

    Returns
    -------
    (pipeline, palette):
        The pipeline and the size of the palette it guarantees (``target``).
    """
    if target is None:
        target = degree_bound + 1
    if target < degree_bound + 1:
        raise InvalidParameterError(
            f"target palette {target} must be at least degree_bound + 1 = {degree_bound + 1}"
        )
    if initial_palette is None:
        initial_palette = n

    linial = LinialColoringPhase(
        degree_bound=degree_bound,
        initial_palette=initial_palette,
        input_key=input_key,
        output_key="_dp1_linial",
    )
    reducer_cls = (
        KuhnWattenhoferReductionPhase if use_kuhn_wattenhofer else IterativeColorReductionPhase
    )
    reducer = reducer_cls(
        palette=linial.final_palette,
        target=target,
        input_key="_dp1_linial",
        output_key=output_key,
    )
    return PhasePipeline([linial, reducer], name="delta-plus-one"), target
