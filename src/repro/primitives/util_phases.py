"""Small reusable zero-round phases.

These are purely local state transformations (the paper charges them zero
rounds): copying a computed color into a differently named slot, assigning a
constant color, or combining per-level colors into a unified palette.

All three declare vectorized kernels, so a pipeline composed of broadcast
color phases and these glue steps runs end-to-end on the vectorized engine
with **zero** batched fallbacks -- on the columnar
:class:`~repro.local_model.state_table.StateTable` backing, a copy is an
array copy and a constant fill is an array fill instead of ``n`` dictionary
writes.  Zero-round phases charge no metrics on any engine, so the kernels
only have to reproduce the state effect of :meth:`compute` exactly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.local_model.algorithm import LocalComputationPhase, LocalView
from repro.local_model.vectorized import VectorContext


class CopyKeyPhase(LocalComputationPhase):
    """Copy ``state[source_key]`` into ``state[target_key]`` (zero rounds)."""

    def __init__(self, source_key: str, target_key: str) -> None:
        self.name = f"copy[{source_key}->{target_key}]"
        self._source_key = source_key
        self._target_key = target_key

    def compute(self, view: LocalView, state: Dict[str, Any]) -> None:
        state[self._target_key] = state[self._source_key]

    #: Marker the vectorized scheduler checks to run the kernel.
    supports_vectorized: bool = True

    def vector_run(self, ctx: VectorContext) -> None:
        ctx.copy_key(self._source_key, self._target_key)


class ConstantColorPhase(LocalComputationPhase):
    """Assign the same constant color to every node (zero rounds).

    Only legal when the (sub)graph being colored has no edges -- e.g. a
    degree-0 bound at the bottom of a recursion.
    """

    def __init__(self, output_key: str, color: int = 1) -> None:
        self.name = f"constant-color[{color}]"
        self._output_key = output_key
        self._color = color

    def compute(self, view: LocalView, state: Dict[str, Any]) -> None:
        state[self._output_key] = self._color

    #: Marker the vectorized scheduler checks to run the kernel.
    supports_vectorized: bool = True

    def vector_run(self, ctx: VectorContext) -> None:
        ctx.write_value(self._output_key, self._color)


class TransformKeyPhase(LocalComputationPhase):
    """Apply a pure function to one state key and store the result in another.

    The function receives ``(view, value)`` so transformations may depend on
    locally available information (e.g. the node's unique identifier), but on
    nothing else -- keeping the zero-round claim honest.

    ``vector_transform``, when given, is the whole-column form used by the
    vectorized engine: it receives ``(ctx, values)`` -- the
    :class:`~repro.local_model.vectorized.VectorContext` and the source
    column as an ``int64`` array -- and must return the transformed column
    (producing exactly ``transform``'s per-node results).  Without it the
    kernel applies ``transform`` node by node, which still avoids the engine
    fallback but not the per-node Python cost.
    """

    def __init__(
        self,
        source_key: str,
        target_key: str,
        transform: Callable[[LocalView, Any], Any],
        name: str = "transform",
        vector_transform: Optional[
            Callable[[VectorContext, np.ndarray], np.ndarray]
        ] = None,
    ) -> None:
        self.name = name
        self._source_key = source_key
        self._target_key = target_key
        self._transform = transform
        self._vector_transform = vector_transform

    def compute(self, view: LocalView, state: Dict[str, Any]) -> None:
        state[self._target_key] = self._transform(view, state[self._source_key])

    #: Marker the vectorized scheduler checks to run the kernel.
    supports_vectorized: bool = True

    def vector_run(self, ctx: VectorContext) -> None:
        if self._vector_transform is not None:
            values = ctx.column(self._source_key)
            ctx.write_column(self._target_key, self._vector_transform(ctx, values))
            return
        transform = self._transform
        views = ctx.views
        ctx.write_values(
            self._target_key,
            [
                transform(views[i], value)
                for i, value in enumerate(ctx.read_values(self._source_key))
            ],
        )
