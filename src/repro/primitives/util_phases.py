"""Small reusable zero-round phases.

These are purely local state transformations (the paper charges them zero
rounds): copying a computed color into a differently named slot, assigning a
constant color, or combining per-level colors into a unified palette.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.local_model.algorithm import LocalComputationPhase, LocalView


class CopyKeyPhase(LocalComputationPhase):
    """Copy ``state[source_key]`` into ``state[target_key]`` (zero rounds)."""

    def __init__(self, source_key: str, target_key: str) -> None:
        self.name = f"copy[{source_key}->{target_key}]"
        self._source_key = source_key
        self._target_key = target_key

    def compute(self, view: LocalView, state: Dict[str, Any]) -> None:
        state[self._target_key] = state[self._source_key]


class ConstantColorPhase(LocalComputationPhase):
    """Assign the same constant color to every node (zero rounds).

    Only legal when the (sub)graph being colored has no edges -- e.g. a
    degree-0 bound at the bottom of a recursion.
    """

    def __init__(self, output_key: str, color: int = 1) -> None:
        self.name = f"constant-color[{color}]"
        self._output_key = output_key
        self._color = color

    def compute(self, view: LocalView, state: Dict[str, Any]) -> None:
        state[self._output_key] = self._color


class TransformKeyPhase(LocalComputationPhase):
    """Apply a pure function to one state key and store the result in another.

    The function receives ``(view, value)`` so transformations may depend on
    locally available information (e.g. the node's unique identifier), but on
    nothing else -- keeping the zero-round claim honest.
    """

    def __init__(
        self,
        source_key: str,
        target_key: str,
        transform: Callable[[LocalView, Any], Any],
        name: str = "transform",
    ) -> None:
        self.name = name
        self._source_key = source_key
        self._target_key = target_key
        self._transform = transform

    def compute(self, view: LocalView, state: Dict[str, Any]) -> None:
        state[self._target_key] = self._transform(view, state[self._source_key])
