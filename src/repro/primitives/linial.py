"""Linial's ``O(Delta^2)``-coloring in ``log* n`` rounds (Lemma 2.1(1)).

The algorithm iteratively shrinks a legal coloring.  In one round, every
vertex learns its neighbors' current colors and recolors itself as follows.
A color ``c`` from a palette of size ``m`` is interpreted as a polynomial of
degree ``t`` over ``GF(q)`` (its base-``q`` digit expansion), where the prime
``q`` is chosen so that ``q > Delta * t``.  Two distinct polynomials of degree
``t`` agree on at most ``t`` points, so among the ``q`` evaluation points
there is at least one point ``a`` at which the vertex's polynomial differs
from the polynomials of *all* of its (at most ``Delta``) neighbors.  The new
color is the pair ``(a, g_v(a))``, drawn from a palette of ``q^2`` colors, and
the new coloring is again legal.  Iterating shrinks the palette from ``n`` to
``O(Delta^2)`` within ``O(log* n)`` rounds.

This is the classical cover-free-family construction of Linial [21] (in the
form popularized by the Erdos-Frankl-Furedi polynomial sets); the paper uses
it as a black box, and so do we.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.local_model.algorithm import SILENT, BroadcastPhase, LocalView
from repro.local_model.vectorized import (
    VectorContext,
    check_color_range,
    digits_base_q,
    poly_eval_at_points,
    poly_eval_columns,
)
from repro.primitives.numbers import (
    base_q_digits,
    next_prime,
    num_base_q_digits,
    poly_eval,
)

#: One Linial recoloring step: (prime q, number of digits, palette before the step).
LinialStep = Tuple[int, int, int]


def _choose_prime_for_step(palette: int, degree_bound: int) -> Tuple[int, int]:
    """The smallest prime ``q`` with ``q > degree_bound * t`` for the induced degree ``t``.

    ``t = (number of base-q digits of the palette) - 1`` is the polynomial
    degree, which itself depends on ``q``; the loop below converges because
    increasing ``q`` never increases ``t``.
    """
    # Validity ("q > degree_bound * t") is monotone in q because increasing q
    # never increases the digit count, so scanning primes upward finds the
    # smallest valid prime (and hence the smallest q^2 output palette).
    q = next_prime(max(2, degree_bound + 1))
    while True:
        digits = num_base_q_digits(palette, q)
        required = max(2, degree_bound + 1, degree_bound * (digits - 1) + 1)
        if q >= required:
            return q, digits
        q = next_prime(q + 1)


def linial_schedule(initial_palette: int, degree_bound: int) -> Tuple[List[LinialStep], int]:
    """The deterministic recoloring schedule and the final palette size.

    Every vertex computes this schedule locally from the globally known
    quantities ``n`` (or, more generally, the initial palette size) and
    ``Delta``, so all vertices agree on the number of rounds -- the standard
    way termination is synchronized in the LOCAL model.

    Returns
    -------
    (schedule, final_palette):
        ``schedule`` lists one ``(q, digits, palette_before)`` entry per
        recoloring round; ``final_palette`` is the palette size after the last
        round (``O(degree_bound^2)``).
    """
    if initial_palette < 1:
        raise InvalidParameterError("initial_palette must be at least 1")
    if degree_bound < 0:
        raise InvalidParameterError("degree_bound must be non-negative")
    if degree_bound == 0:
        return [], 1

    schedule: List[LinialStep] = []
    palette = initial_palette
    while True:
        q, digits = _choose_prime_for_step(palette, degree_bound)
        if q * q >= palette:
            break
        schedule.append((q, digits, palette))
        palette = q * q
    return schedule, palette


def linial_final_palette(initial_palette: int, degree_bound: int) -> int:
    """The palette size Linial's algorithm ends with (``O(degree_bound^2)``)."""
    return linial_schedule(initial_palette, degree_bound)[1]


class LinialColoringPhase(BroadcastPhase):
    """Distributed Linial coloring as a synchronous phase.

    Parameters
    ----------
    degree_bound:
        An upper bound ``Delta`` on the maximum degree of the (sub)graph the
        phase runs on.  Known to all vertices (LOCAL model assumption).
    initial_palette:
        The size of the initial legal coloring's palette.  When ``input_key``
        is ``None`` the initial coloring is the unique-identifier assignment,
        so the initial palette is ``n``.
    input_key:
        Optional state key holding an existing legal coloring (1-based).  Used
        by the Section 4.2 improvement, which feeds the auxiliary ``O(Delta^2)``
        coloring ``rho`` back into Linial's algorithm with a smaller degree
        bound to obtain an ``O(lambda^2)``-coloring in ``O(log* Delta)`` time.
    output_key:
        State key the final color is written to.
    """

    def __init__(
        self,
        degree_bound: int,
        initial_palette: int,
        input_key: Optional[str] = None,
        output_key: str = "linial_color",
    ) -> None:
        self.name = "linial"
        self.degree_bound = degree_bound
        self.initial_palette = initial_palette
        self.input_key = input_key
        self.output_key = output_key
        self.schedule, self.final_palette = linial_schedule(initial_palette, degree_bound)

    # ------------------------------------------------------------------ #

    def initialize(self, view: LocalView, state: Dict[str, Any]) -> None:
        if self.input_key is None:
            color = view.unique_id
        else:
            color = int(state[self.input_key])
        if not 1 <= color <= self.initial_palette:
            raise InvalidParameterError(
                f"initial color {color} outside palette 1..{self.initial_palette}"
            )
        state["_linial_current"] = color

    def broadcast(self, view: LocalView, state: Dict[str, Any], round_index: int) -> Any:
        if not self.schedule or self.degree_bound == 0:
            return SILENT
        return state["_linial_current"]

    def receive(
        self,
        view: LocalView,
        state: Dict[str, Any],
        inbox: Mapping[Hashable, Any],
        round_index: int,
    ) -> bool:
        if self.degree_bound == 0:
            state[self.output_key] = 1
            return True
        if not self.schedule:
            state[self.output_key] = state["_linial_current"]
            return True

        q, digits, _palette_before = self.schedule[round_index - 1]
        own_color = state["_linial_current"]
        own_coeffs = base_q_digits(own_color - 1, q, digits)
        neighbor_coeffs = [
            base_q_digits(int(color) - 1, q, digits)
            for color in inbox.values()
            if int(color) != own_color
        ]

        chosen_point = None
        for point in range(q):
            own_value = poly_eval(own_coeffs, point, q)
            if all(
                poly_eval(coeffs, point, q) != own_value for coeffs in neighbor_coeffs
            ):
                chosen_point = point
                break
        if chosen_point is None:
            # Unreachable for legal inputs (q > Delta * t guarantees a free
            # point); keep the vertex deterministic anyway.
            chosen_point = view.unique_id % q

        state["_linial_current"] = (
            chosen_point * q + poly_eval(own_coeffs, chosen_point, q) + 1
        )

        if round_index == len(self.schedule):
            state[self.output_key] = state["_linial_current"]
            return True
        return False

    def max_rounds(self, n: int, max_degree: int) -> int:
        return len(self.schedule) + 2

    # ------------------------------------------------------------------ #
    # Vectorized execution (see repro.local_model.vectorized)
    # ------------------------------------------------------------------ #

    #: Marker the vectorized scheduler checks to run the numpy kernel.
    supports_vectorized: bool = True

    def vector_run(self, ctx: VectorContext) -> None:
        """The whole phase as array arithmetic; bit-identical to the callbacks."""
        if self.input_key is None:
            colors = ctx.unique_ids().copy()
        else:
            colors = ctx.column(self.input_key)
        check_color_range(
            colors,
            self.initial_palette,
            "initial color {color} outside palette 1..{palette}",
        )

        if self.degree_bound == 0:
            ctx.charge_silent_round()
            ctx.write_column("_linial_current", colors)
            ctx.write_value(self.output_key, 1)
            return
        if not self.schedule:
            ctx.charge_silent_round()
            ctx.write_column("_linial_current", colors)
            ctx.write_column(self.output_key, colors)
            return

        for q, digits, _palette_before in self.schedule:
            colors = _linial_recolor_round(ctx, colors, q, digits)
        ctx.charge_uniform_broadcast(len(self.schedule))
        ctx.write_column("_linial_current", colors)
        ctx.write_column(self.output_key, colors)


def _linial_recolor_round(
    ctx: VectorContext, colors: np.ndarray, q: int, digits: int
) -> np.ndarray:
    """One Linial recoloring round over the whole graph.

    Every vertex moves to ``(a, g_v(a))`` for the smallest evaluation point
    ``a`` at which its polynomial differs from those of all neighbors holding
    a different color -- the vectorized form of
    :meth:`LinialColoringPhase.receive`.
    """
    fast = ctx.fast
    n = fast.num_nodes
    rows, cols = fast.rows_np, fast.indices_np
    coeffs = digits_base_q(colors - 1, q, digits)

    chosen_point = np.full(n, -1, dtype=np.int64)
    chosen_value = np.zeros(n, dtype=np.int64)
    # Only edges whose endpoints hold different colors can ever conflict
    # (identical polynomials are skipped by the scalar code too); edges whose
    # source has already chosen its point are dropped as the loop proceeds.
    active = np.flatnonzero(colors[rows] != colors[cols])
    for point in range(q):
        values = poly_eval_columns(coeffs, point, q)
        conflicted = np.zeros(n, dtype=bool)
        if active.size:
            edge_rows = rows[active]
            collide = values[edge_rows] == values[cols[active]]
            conflicted[edge_rows[collide]] = True
        newly = (chosen_point < 0) & ~conflicted
        chosen_point[newly] = point
        chosen_value[newly] = values[newly]
        if active.size:
            active = active[chosen_point[rows[active]] < 0]
        if not active.size:
            # Every undecided node had a conflict-capable edge; none are left,
            # so every node has chosen its point.
            break

    undecided = chosen_point < 0
    if undecided.any():
        # Unreachable for legal inputs (q > Delta * t guarantees a free
        # point); mirror the scalar fallback to stay deterministic anyway.
        fallback_points = ctx.unique_ids()[undecided] % q
        chosen_point[undecided] = fallback_points
        chosen_value[undecided] = poly_eval_at_points(
            coeffs[undecided], fallback_points, q
        )
    return chosen_point * q + chosen_value + 1
