"""Coloring legality, defect and palette verification.

These oracles are used throughout the tests and benchmark harnesses to check
the outputs of every distributed run against the definitions in Sections 1
and 3 of the paper:

* a *legal* vertex coloring assigns different colors to adjacent vertices;
* a *legal* edge coloring assigns different colors to incident edges;
* the *defect* of a vertex coloring is the maximum, over all vertices, of the
  number of neighbors sharing the vertex's color (and analogously for edges).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Tuple

from repro.exceptions import ColoringError
from repro.local_model.network import Network

EdgeKey = Tuple[Hashable, Hashable]


def palette_size(colors: Mapping[Hashable, int]) -> int:
    """Number of distinct colors used by a coloring."""
    return len(set(colors.values()))


def max_color(colors: Mapping[Hashable, int]) -> int:
    """The largest color value used (0 for an empty coloring)."""
    return max(colors.values(), default=0)


# --------------------------------------------------------------------------- #
# Vertex colorings
# --------------------------------------------------------------------------- #


def is_legal_vertex_coloring(network: Network, colors: Mapping[Hashable, int]) -> bool:
    """Whether ``colors`` is a legal vertex coloring of ``network``."""
    return _find_vertex_violation(network, colors) is None


def assert_legal_vertex_coloring(
    network: Network, colors: Mapping[Hashable, int], context: str = "vertex coloring"
) -> None:
    """Raise :class:`~repro.exceptions.ColoringError` if the coloring is not legal."""
    violation = _find_vertex_violation(network, colors)
    if violation is not None:
        u, v = violation
        raise ColoringError(
            f"{context}: adjacent vertices {u!r} and {v!r} share color {colors[u]}"
        )


def coloring_defect(network: Network, colors: Mapping[Hashable, int]) -> int:
    """The defect of a vertex coloring (0 for a legal coloring)."""
    worst = 0
    for node in network.nodes():
        same = sum(
            1
            for neighbor in network.neighbors(node)
            if colors[neighbor] == colors[node]
        )
        worst = max(worst, same)
    return worst


def _find_vertex_violation(
    network: Network, colors: Mapping[Hashable, int]
) -> Optional[Tuple[Hashable, Hashable]]:
    missing = [node for node in network.nodes() if node not in colors]
    if missing:
        raise ColoringError(f"coloring misses {len(missing)} vertices (e.g. {missing[0]!r})")
    for u, v in network.edges():
        if colors[u] == colors[v]:
            return (u, v)
    return None


# --------------------------------------------------------------------------- #
# Edge colorings
# --------------------------------------------------------------------------- #


def _normalize_edge_colors(
    network: Network, edge_colors: Mapping[EdgeKey, int]
) -> Dict[frozenset, int]:
    normalized: Dict[frozenset, int] = {}
    for (u, v), color in edge_colors.items():
        normalized[frozenset((u, v))] = color
    missing = [edge for edge in network.edges() if frozenset(edge) not in normalized]
    if missing:
        raise ColoringError(
            f"edge coloring misses {len(missing)} edges (e.g. {missing[0]!r})"
        )
    return normalized


def is_legal_edge_coloring(
    network: Network, edge_colors: Mapping[EdgeKey, int]
) -> bool:
    """Whether ``edge_colors`` is a legal edge coloring of ``network``."""
    return _find_edge_violation(network, edge_colors) is None


def assert_legal_edge_coloring(
    network: Network, edge_colors: Mapping[EdgeKey, int], context: str = "edge coloring"
) -> None:
    """Raise :class:`~repro.exceptions.ColoringError` if the edge coloring is not legal."""
    violation = _find_edge_violation(network, edge_colors)
    if violation is not None:
        e1, e2, color = violation
        raise ColoringError(
            f"{context}: incident edges {e1!r} and {e2!r} share color {color}"
        )


def edge_coloring_defect(network: Network, edge_colors: Mapping[EdgeKey, int]) -> int:
    """The defect of an edge coloring (max incident same-colored edges per edge)."""
    normalized = _normalize_edge_colors(network, edge_colors)
    worst = 0
    for u, v in network.edges():
        own = normalized[frozenset((u, v))]
        same = 0
        for endpoint, other in ((u, v), (v, u)):
            for neighbor in network.neighbors(endpoint):
                if neighbor == other:
                    continue
                if normalized[frozenset((endpoint, neighbor))] == own:
                    same += 1
        worst = max(worst, same)
    return worst


def _find_edge_violation(
    network: Network, edge_colors: Mapping[EdgeKey, int]
) -> Optional[Tuple[EdgeKey, EdgeKey, int]]:
    normalized = _normalize_edge_colors(network, edge_colors)
    for node in network.nodes():
        seen: Dict[int, Hashable] = {}
        for neighbor in network.neighbors(node):
            color = normalized[frozenset((node, neighbor))]
            if color in seen:
                return ((node, seen[color]), (node, neighbor), color)
            seen[color] = neighbor
    return None
