"""Coloring legality, defect and palette verification.

These oracles are used throughout the tests and benchmark harnesses to check
the outputs of every distributed run against the definitions in Sections 1
and 3 of the paper:

* a *legal* vertex coloring assigns different colors to adjacent vertices;
* a *legal* edge coloring assigns different colors to incident edges;
* the *defect* of a vertex coloring is the maximum, over all vertices, of the
  number of neighbors sharing the vertex's color (and analogously for edges).

Every oracle accepts two input shapes:

* the **mapping form** -- a legacy :class:`~repro.local_model.network.Network`
  plus a mapping from node (or canonical edge) to color.  This is the
  transparent audit path; it runs the original pure-Python ``O(E)`` scans
  with their exact error messages.
* the **array form** -- a :class:`~repro.local_model.fast_network.FastNetwork`
  and/or a numpy *color column* (``colors[i]`` is the color of dense node
  ``i``; for edge colorings, of the ``i``-th canonical edge in unique-id
  pair order, which is exactly the dense node order of the line graph
  ``L(G)``).  Legality and defect then reduce to masked comparisons over the
  CSR arrays -- no per-node Python -- which is how the benchmark sweeps
  verify million-edge colorings at array speed.  Error messages are
  bit-identical to the mapping form (node identifiers are interned lazily,
  only on the failure path).

A mapping paired with a ``FastNetwork``, or a column paired with a legacy
``Network``, is converted at the boundary; the verdicts and messages are the
same either way (property-tested in ``tests/test_verification.py``).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.exceptions import ColoringError
from repro.local_model.fast_network import FastNetwork, fast_view
from repro.local_model.network import Network

EdgeKey = Tuple[Hashable, Hashable]
#: A coloring: mapping form, or an ``int`` color column in dense order.
ColorsLike = Union[Mapping[Hashable, int], np.ndarray]
NetworkLike = Union[Network, FastNetwork]


def palette_size(colors: ColorsLike) -> int:
    """Number of distinct colors used by a coloring."""
    if isinstance(colors, np.ndarray):
        return int(np.unique(colors).size)
    return len(set(colors.values()))


def max_color(colors: ColorsLike) -> int:
    """The largest color value used (0 for an empty coloring)."""
    if isinstance(colors, np.ndarray):
        return int(colors.max()) if colors.size else 0
    return max(colors.values(), default=0)


def min_color(colors: ColorsLike) -> int:
    """The smallest color value used (1 for an empty coloring)."""
    if isinstance(colors, np.ndarray):
        return int(colors.min()) if colors.size else 1
    return min(colors.values(), default=1)


def _use_arrays(network: NetworkLike, colors: ColorsLike) -> bool:
    """Whether to dispatch to the masked-CSR kernels."""
    return isinstance(network, FastNetwork) or isinstance(colors, np.ndarray)


def _vertex_column(fast: FastNetwork, colors: ColorsLike) -> np.ndarray:
    """``colors`` as an int64 column in dense node order (checked complete)."""
    if isinstance(colors, np.ndarray):
        column = np.ascontiguousarray(colors, dtype=np.int64).ravel()
        if len(column) < fast.num_nodes:
            missing = fast.num_nodes - len(column)
            example = fast.order[len(column)]
            raise ColoringError(
                f"coloring misses {missing} vertices (e.g. {example!r})"
            )
        if len(column) > fast.num_nodes:
            raise ColoringError(
                f"color column has {len(column)} entries for "
                f"{fast.num_nodes} vertices"
            )
        return column
    missing_nodes = [node for node in fast.order if node not in colors]
    if missing_nodes:
        raise ColoringError(
            f"coloring misses {len(missing_nodes)} vertices "
            f"(e.g. {missing_nodes[0]!r})"
        )
    return np.fromiter(
        (colors[node] for node in fast.order), dtype=np.int64, count=fast.num_nodes
    )


# --------------------------------------------------------------------------- #
# Vertex colorings
# --------------------------------------------------------------------------- #


def is_legal_vertex_coloring(network: NetworkLike, colors: ColorsLike) -> bool:
    """Whether ``colors`` is a legal vertex coloring of ``network``."""
    if _use_arrays(network, colors):
        fast = fast_view(network)
        column = _vertex_column(fast, colors)
        rows, cols = fast.rows_np, fast.indices_np
        return not bool((column[rows] == column[cols]).any())
    return _find_vertex_violation(network, colors) is None


def assert_legal_vertex_coloring(
    network: NetworkLike, colors: ColorsLike, context: str = "vertex coloring"
) -> None:
    """Raise :class:`~repro.exceptions.ColoringError` if the coloring is not legal."""
    if _use_arrays(network, colors):
        fast = fast_view(network)
        column = _vertex_column(fast, colors)
        violation = _find_vertex_violation_arrays(fast, column)
        if violation is not None:
            u, v = violation
            raise ColoringError(
                f"{context}: adjacent vertices {u!r} and {v!r} share color "
                f"{int(column[fast.index_of[u]])}"
            )
        return
    violation = _find_vertex_violation(network, colors)
    if violation is not None:
        u, v = violation
        raise ColoringError(
            f"{context}: adjacent vertices {u!r} and {v!r} share color {colors[u]}"
        )


def coloring_defect(network: NetworkLike, colors: ColorsLike) -> int:
    """The defect of a vertex coloring (0 for a legal coloring)."""
    if _use_arrays(network, colors):
        fast = fast_view(network)
        column = _vertex_column(fast, colors)
        if fast.num_nodes == 0 or len(fast.indices) == 0:
            return 0
        rows, cols = fast.rows_np, fast.indices_np
        same = column[rows] == column[cols]
        return int(np.bincount(rows[same], minlength=fast.num_nodes).max())
    worst = 0
    for node in network.nodes():
        same = sum(
            1
            for neighbor in network.neighbors(node)
            if colors[neighbor] == colors[node]
        )
        worst = max(worst, same)
    return worst


def _find_vertex_violation_arrays(
    fast: FastNetwork, column: np.ndarray
) -> Optional[Tuple[Hashable, Hashable]]:
    """First monochromatic edge in canonical order (identifiers interned lazily)."""
    rows, cols = fast.rows_np, fast.indices_np
    conflict = column[rows] == column[cols]
    if not conflict.any():
        return None
    # CSR entries with row < col enumerate the canonical edges in exactly the
    # (unique-id, unique-id) order Network.edges() iterates, so the first
    # forward conflict is the same edge the mapping-based scan reports.
    forward = np.flatnonzero(conflict & (rows < cols))[0]
    order = fast.order
    return (order[int(rows[forward])], order[int(cols[forward])])


def _find_vertex_violation(
    network: Network, colors: Mapping[Hashable, int]
) -> Optional[Tuple[Hashable, Hashable]]:
    missing = [node for node in network.nodes() if node not in colors]
    if missing:
        raise ColoringError(f"coloring misses {len(missing)} vertices (e.g. {missing[0]!r})")
    for u, v in network.edges():
        if colors[u] == colors[v]:
            return (u, v)
    return None


# --------------------------------------------------------------------------- #
# Edge colorings
# --------------------------------------------------------------------------- #


def _canonical_edge_endpoints(fast: FastNetwork) -> Tuple[np.ndarray, np.ndarray]:
    """Dense endpoint indices of the canonical edges, in unique-id pair order."""
    rows, cols = fast.rows_np, fast.indices_np
    forward = rows < cols
    return rows[forward], cols[forward]


def _edge_column(fast: FastNetwork, edge_colors: ColorsLike) -> np.ndarray:
    """``edge_colors`` as an int64 column over the canonical edges."""
    num_edges = fast.num_edges
    if isinstance(edge_colors, np.ndarray):
        column = np.ascontiguousarray(edge_colors, dtype=np.int64).ravel()
        if len(column) < num_edges:
            edge_u, edge_v = _canonical_edge_endpoints(fast)
            order = fast.order
            example = (
                order[int(edge_u[len(column)])],
                order[int(edge_v[len(column)])],
            )
            raise ColoringError(
                f"edge coloring misses {num_edges - len(column)} edges "
                f"(e.g. {example!r})"
            )
        if len(column) > num_edges:
            raise ColoringError(
                f"edge color column has {len(column)} entries for "
                f"{num_edges} edges"
            )
        return column
    normalized: Dict[frozenset, int] = {}
    for (u, v), color in edge_colors.items():
        normalized[frozenset((u, v))] = color
    edge_u, edge_v = _canonical_edge_endpoints(fast)
    order = fast.order
    column = np.empty(num_edges, dtype=np.int64)
    missing: List[EdgeKey] = []
    for i in range(num_edges):
        edge = (order[int(edge_u[i])], order[int(edge_v[i])])
        color = normalized.get(frozenset(edge))
        if color is None:
            missing.append(edge)
        else:
            column[i] = color
    if missing:
        raise ColoringError(
            f"edge coloring misses {len(missing)} edges (e.g. {missing[0]!r})"
        )
    return column


def _entry_edge_ids(fast: FastNetwork) -> np.ndarray:
    """Canonical-edge index of every directed CSR entry."""
    rows, cols = fast.rows_np, fast.indices_np
    n = fast.num_nodes
    forward = rows < cols
    edge_ids = np.empty(len(rows), dtype=np.int64)
    num_edges = int(forward.sum())
    edge_ids[forward] = np.arange(num_edges, dtype=np.int64)
    if num_edges:
        keys = rows[forward] * n + cols[forward]  # ascending by construction
        backward = ~forward
        edge_ids[backward] = np.searchsorted(
            keys, cols[backward] * n + rows[backward]
        )
    return edge_ids


def _normalize_edge_colors(
    network: Network, edge_colors: Mapping[EdgeKey, int]
) -> Dict[frozenset, int]:
    normalized: Dict[frozenset, int] = {}
    for (u, v), color in edge_colors.items():
        normalized[frozenset((u, v))] = color
    missing = [edge for edge in network.edges() if frozenset(edge) not in normalized]
    if missing:
        raise ColoringError(
            f"edge coloring misses {len(missing)} edges (e.g. {missing[0]!r})"
        )
    return normalized


def is_legal_edge_coloring(
    network: NetworkLike, edge_colors: ColorsLike
) -> bool:
    """Whether ``edge_colors`` is a legal edge coloring of ``network``."""
    if _use_arrays(network, edge_colors):
        fast = fast_view(network)
        column = _edge_column(fast, edge_colors)
        edge_u, edge_v = _canonical_edge_endpoints(fast)
        endpoints = np.concatenate([edge_u, edge_v])
        entry_colors = np.concatenate([column, column])
        if not len(endpoints):
            return True
        by_endpoint_color = np.lexsort((entry_colors, endpoints))
        ep = endpoints[by_endpoint_color]
        ec = entry_colors[by_endpoint_color]
        return not bool(((ep[1:] == ep[:-1]) & (ec[1:] == ec[:-1])).any())
    return _find_edge_violation(network, edge_colors) is None


def assert_legal_edge_coloring(
    network: NetworkLike, edge_colors: ColorsLike, context: str = "edge coloring"
) -> None:
    """Raise :class:`~repro.exceptions.ColoringError` if the edge coloring is not legal."""
    if _use_arrays(network, edge_colors):
        fast = fast_view(network)
        column = _edge_column(fast, edge_colors)
        violation = _find_edge_violation_arrays(fast, column)
    else:
        violation = _find_edge_violation(network, edge_colors)
    if violation is not None:
        e1, e2, color = violation
        raise ColoringError(
            f"{context}: incident edges {e1!r} and {e2!r} share color {color}"
        )


def edge_coloring_defect(network: NetworkLike, edge_colors: ColorsLike) -> int:
    """The defect of an edge coloring (max incident same-colored edges per edge)."""
    if _use_arrays(network, edge_colors):
        fast = fast_view(network)
        column = _edge_column(fast, edge_colors)
        num_edges = len(column)
        if num_edges == 0:
            return 0
        edge_u, edge_v = _canonical_edge_endpoints(fast)
        endpoints = np.concatenate([edge_u, edge_v])
        entry_colors = np.concatenate([column, column])
        by_group = np.lexsort((entry_colors, endpoints))
        ep = endpoints[by_group]
        ec = entry_colors[by_group]
        boundary = np.empty(len(ep), dtype=bool)
        boundary[0] = True
        boundary[1:] = (ep[1:] != ep[:-1]) | (ec[1:] != ec[:-1])
        starts = np.flatnonzero(boundary)
        sizes = np.diff(np.append(starts, len(ep)))
        group_size = np.empty(len(ep), dtype=np.int64)
        group_size[by_group] = np.repeat(sizes, sizes)
        # Incident same-colored edges of edge e: its color's multiplicity at
        # each endpoint, minus e itself at each.
        defects = (group_size[:num_edges] - 1) + (group_size[num_edges:] - 1)
        return int(defects.max())
    normalized = _normalize_edge_colors(network, edge_colors)
    worst = 0
    for u, v in network.edges():
        own = normalized[frozenset((u, v))]
        same = 0
        for endpoint, other in ((u, v), (v, u)):
            for neighbor in network.neighbors(endpoint):
                if neighbor == other:
                    continue
                if normalized[frozenset((endpoint, neighbor))] == own:
                    same += 1
        worst = max(worst, same)
    return worst


def _find_edge_violation_arrays(
    fast: FastNetwork, column: np.ndarray
) -> Optional[Tuple[EdgeKey, EdgeKey, int]]:
    """The violation the mapping-based scan reports first, from the arrays.

    The mapping scan walks nodes in dense order and each node's neighbors in
    CSR order, reporting the first incident edge whose color was already seen
    at that node.  Sorting the CSR entries by (row, color) with a stable
    tertiary key on the entry index makes every such "repeat" entry adjacent
    to the first occurrence of its (row, color) group; the scan's answer is
    the repeat entry with the smallest global CSR index.
    """
    rows = fast.rows_np
    if not len(rows):
        return None
    entry_colors = column[_entry_edge_ids(fast)]
    by_row_color = np.lexsort((np.arange(len(rows)), entry_colors, rows))
    r_sorted = rows[by_row_color]
    c_sorted = entry_colors[by_row_color]
    repeat = (r_sorted[1:] == r_sorted[:-1]) & (c_sorted[1:] == c_sorted[:-1])
    if not repeat.any():
        return None
    candidates = np.flatnonzero(repeat) + 1  # positions in the sorted arrays
    winner = int(candidates[np.argmin(by_row_color[candidates])])
    first = winner
    while first > 0 and repeat[first - 1]:
        first -= 1
    order = fast.order
    cols = fast.indices_np
    node = order[int(r_sorted[winner])]
    seen_neighbor = order[int(cols[by_row_color[first]])]
    repeat_neighbor = order[int(cols[by_row_color[winner]])]
    return ((node, seen_neighbor), (node, repeat_neighbor), int(c_sorted[winner]))


def _find_edge_violation(
    network: Network, edge_colors: Mapping[EdgeKey, int]
) -> Optional[Tuple[EdgeKey, EdgeKey, int]]:
    normalized = _normalize_edge_colors(network, edge_colors)
    for node in network.nodes():
        seen: Dict[int, Hashable] = {}
        for neighbor in network.neighbors(node):
            color = normalized[frozenset((node, neighbor))]
            if color in seen:
                return ((node, seen[color]), (node, neighbor), color)
            seen[color] = neighbor
    return None
