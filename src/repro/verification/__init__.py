"""Verification oracles for colorings and for the paper's quantitative bounds."""

from repro.verification.coloring import (
    assert_legal_edge_coloring,
    assert_legal_vertex_coloring,
    coloring_defect,
    edge_coloring_defect,
    is_legal_edge_coloring,
    is_legal_vertex_coloring,
    max_color,
    min_color,
    palette_size,
)
from repro.verification.bounds import (
    assert_defective_coloring,
    theorem_3_7_defect_bound,
    verify_legal_coloring_result,
)

__all__ = [
    "assert_defective_coloring",
    "assert_legal_edge_coloring",
    "assert_legal_vertex_coloring",
    "coloring_defect",
    "edge_coloring_defect",
    "is_legal_edge_coloring",
    "is_legal_vertex_coloring",
    "max_color",
    "min_color",
    "palette_size",
    "theorem_3_7_defect_bound",
    "verify_legal_coloring_result",
]
