"""Per-theorem bound checkers.

These helpers turn the paper's quantitative statements into executable
assertions used by the test-suite and the benchmark harnesses:

* Theorem 3.7 -- the defect bound of Procedure Defective-Color,
* Theorems 4.5 / 4.6 / 4.8 and 5.3 / 5.5 -- the palette bounds of the legal
  colorings (checked through the palette bound carried by the result objects
  plus legality of the coloring itself).
"""

from __future__ import annotations

from repro.exceptions import ColoringError
from repro.verification.coloring import (
    ColorsLike,
    NetworkLike,
    assert_legal_vertex_coloring,
    coloring_defect,
    max_color,
    min_color,
)


def theorem_3_7_defect_bound(Lambda: int, b: int, p: int, c: int) -> int:
    """The Theorem 3.7 defect bound ``c * (Lambda/(b p) + Lambda/p + 1)``.

    Evaluated with integer floors exactly as the implementation guarantees it
    (see :class:`repro.core.defective_coloring.DefectiveColorInfo`).
    """
    return c * (Lambda // (b * p) + Lambda // p + 1)


def assert_defective_coloring(
    network: NetworkLike,
    colors: ColorsLike,
    max_defect: int,
    max_palette: int,
    context: str = "defective coloring",
) -> None:
    """Check a defective coloring against its claimed defect and palette bounds."""
    measured_defect = coloring_defect(network, colors)
    if measured_defect > max_defect:
        raise ColoringError(
            f"{context}: measured defect {measured_defect} exceeds the bound {max_defect}"
        )
    largest = max_color(colors)
    if largest > max_palette:
        raise ColoringError(
            f"{context}: color {largest} exceeds the declared palette {max_palette}"
        )
    smallest = min_color(colors)
    if smallest < 1:
        raise ColoringError(f"{context}: colors must be positive, found {smallest}")


def verify_legal_coloring_result(
    network: NetworkLike,
    colors: ColorsLike,
    palette_bound: int,
    context: str = "legal coloring",
) -> None:
    """Check a legal coloring: legality plus respect of the declared palette."""
    assert_legal_vertex_coloring(network, colors, context=context)
    largest = max_color(colors)
    if largest > palette_bound:
        raise ColoringError(
            f"{context}: color {largest} exceeds the declared palette bound {palette_bound}"
        )
