"""``r``-hypergraphs and their line graphs.

An ``r``-hypergraph is a hypergraph in which every hyperedge contains at most
``r`` vertices.  The paper observes (Section 1.2, Section 5) that the line
graph ``L(H)`` of an ``r``-hypergraph has neighborhood independence at most
``r``, so its vertex-coloring algorithms for bounded-neighborhood-independence
graphs apply directly -- this is the route to hypergraph edge coloring, one of
the paper's motivating applications (resource allocation where a job needs up
to ``r`` resources at once).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Tuple

from repro.exceptions import HypergraphError
from repro.local_model.network import Network


@dataclass
class Hypergraph:
    """A hypergraph with an optional bound ``r`` on the hyperedge size.

    Attributes
    ----------
    rank:
        The bound ``r`` on hyperedge cardinality (``None`` means unbounded).
    """

    rank: int | None = None
    _vertices: set = field(default_factory=set)
    _edges: List[FrozenSet[Hashable]] = field(default_factory=list)

    def add_vertex(self, vertex: Hashable) -> None:
        """Add an isolated vertex (no-op if already present)."""
        self._vertices.add(vertex)

    def add_edge(self, vertices: Iterable[Hashable]) -> int:
        """Add a hyperedge; returns its index.

        Raises
        ------
        HypergraphError
            If the edge is empty, or exceeds the rank bound ``r``.
        """
        edge = frozenset(vertices)
        if not edge:
            raise HypergraphError("a hyperedge must contain at least one vertex")
        if self.rank is not None and len(edge) > self.rank:
            raise HypergraphError(
                f"hyperedge of size {len(edge)} exceeds the rank bound r={self.rank}"
            )
        self._vertices.update(edge)
        self._edges.append(edge)
        return len(self._edges) - 1

    @property
    def vertices(self) -> Tuple[Hashable, ...]:
        """All vertices, in deterministic order."""
        return tuple(sorted(self._vertices, key=repr))

    @property
    def edges(self) -> Tuple[FrozenSet[Hashable], ...]:
        """All hyperedges, in insertion order."""
        return tuple(self._edges)

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        """Number of hyperedges."""
        return len(self._edges)

    def max_edge_size(self) -> int:
        """The largest hyperedge cardinality (0 if there are no edges)."""
        return max((len(edge) for edge in self._edges), default=0)

    def vertex_degree(self, vertex: Hashable) -> int:
        """Number of hyperedges containing ``vertex``."""
        return sum(1 for edge in self._edges if vertex in edge)

    def max_vertex_degree(self) -> int:
        """The maximum vertex degree (0 for an empty hypergraph)."""
        return max((self.vertex_degree(v) for v in self._vertices), default=0)


def hypergraph_line_graph(hypergraph: Hypergraph) -> Network:
    """The line graph ``L(H)``: one vertex per hyperedge, adjacency = sharing.

    The resulting network's node identifiers are the hyperedge indices, so the
    ``i``-th hyperedge of ``H`` corresponds to node ``i`` of ``L(H)``.  By the
    paper's observation, ``I(L(H)) <= r`` when ``H`` is an ``r``-hypergraph.
    """
    edges = hypergraph.edges
    adjacency: Dict[int, List[int]] = {index: [] for index in range(len(edges))}
    for i, j in itertools.combinations(range(len(edges)), 2):
        if edges[i] & edges[j]:
            adjacency[i].append(j)
            adjacency[j].append(i)
    return Network(adjacency)


def random_r_hypergraph(
    num_vertices: int,
    num_edges: int,
    rank: int,
    seed: int = 0,
    exact_size: bool = False,
) -> Hypergraph:
    """A random ``r``-hypergraph on ``num_vertices`` vertices.

    Each hyperedge picks its size uniformly from ``{2, ..., rank}`` (or
    exactly ``rank`` when ``exact_size``) and its vertices uniformly without
    replacement.  Deterministic given ``seed``.
    """
    if rank < 2:
        raise HypergraphError("rank must be at least 2")
    if num_vertices < rank:
        raise HypergraphError("need at least `rank` vertices")
    rng = random.Random(seed)
    hypergraph = Hypergraph(rank=rank)
    for vertex in range(num_vertices):
        hypergraph.add_vertex(vertex)
    seen = set()
    for _ in range(num_edges):
        size = rank if exact_size else rng.randint(2, rank)
        edge = frozenset(rng.sample(range(num_vertices), size))
        if edge in seen:
            continue
        seen.add(edge)
        hypergraph.add_edge(edge)
    return hypergraph
