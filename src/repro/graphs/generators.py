"""Workload graph generators.

These are the graph families the paper motivates or analyses:

* the Figure 1 construction (a clique with pendant vertices) showing that
  bounded neighborhood independence does **not** imply bounded growth,
* line graphs and line graphs of ``r``-hypergraphs (see
  :mod:`repro.graphs.hypergraphs`), the families the edge-coloring results
  reduce to,
* bounded-growth graphs (grids, hypercubes of fixed dimension growth),
* generic benchmark graphs (random regular, Erdos-Renyi, power-law) used by
  the Table 1 / Table 2 sweeps to realize a prescribed maximum degree,
* bipartite regular graphs -- the switch-scheduling / packet-routing
  instances of the paper's introduction.

All generators are deterministic given their ``seed`` argument, so benchmark
runs are reproducible.

Backends
--------
Every generator takes ``backend="legacy"`` (the default) or
``backend="fast"``:

* ``"legacy"`` builds a dict-of-tuples
  :class:`~repro.local_model.network.Network` exactly as previous releases
  did (networkx construction, Python sorting) -- byte-for-byte stable seed
  streams;
* ``"fast"`` builds a CSR
  :class:`~repro.local_model.fast_network.FastNetwork` directly from numpy
  index arithmetic via :meth:`FastNetwork.from_edge_array`, never
  materializing a legacy ``Network`` (``.to_network()`` stays the on-demand
  audit path).

The **deterministic** families (path, cycle, grid, hypercube, complete, star,
clique-with-pendants) are *bit-identical* across backends: same node
identifiers, same unique ids, same CSR arrays (property-tested in
``tests/test_generator_backends.py``).  The **random** families keep one
documented seed stream per backend: the legacy stream is
``random.Random(seed)`` / networkx's generator as before, the fast stream is
``numpy.random.default_rng(seed)`` driving the vectorized samplers below --
``family(n, d, seed, backend="fast")`` is therefore a *different* (equally
distributed) graph than ``backend="legacy"`` with the same seed, but is
reproducible across runs and platforms.  Both backends guarantee the same
exact invariants (exact degrees for the regular families, simplicity
everywhere).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Set, Tuple, Union

import networkx as nx
import numpy as np

from repro.exceptions import InvalidParameterError
from repro.local_model.fast_network import FastNetwork
from repro.local_model.network import Network

#: Return type of every generator: the legacy mapping-based network or the
#: CSR-native view, depending on ``backend``.
GeneratedNetwork = Union[Network, FastNetwork]

_BACKENDS = ("legacy", "fast")

#: Vectorized re-pairing rounds attempted before falling back to the exact
#: switching repair; at benchmark scales (sparse graphs) a couple of rounds
#: suffice, so the fallback only engages on small dense instances.
_MAX_POOL_ROUNDS = 32

#: Random probes tried before scanning for a bipartite repair swap partner.
_SWAP_PROBES = 64


def _check_backend(backend: str) -> str:
    if backend not in _BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; known backends: {_BACKENDS}"
        )
    return backend


def _from_networkx_int_labels(graph: "nx.Graph") -> Network:
    """Relabel nodes to consecutive integers and wrap into a Network."""
    relabeled = nx.convert_node_labels_to_integers(graph, first_label=0, ordering="sorted")
    return Network.from_networkx(relabeled)


def _fast_from_edges(
    u: np.ndarray,
    v: np.ndarray,
    num_nodes: int,
    order=None,
) -> FastNetwork:
    """The shared :meth:`FastNetwork.from_edge_array` entry of the builders."""
    return FastNetwork.from_edge_array(u, v, num_nodes=num_nodes, order=order)


# --------------------------------------------------------------------------- #
# Deterministic families (fast backend bit-identical to legacy)
# --------------------------------------------------------------------------- #


def clique_with_pendants(clique_size: int, backend: str = "legacy") -> GeneratedNetwork:
    """The Figure 1 graph: a clique whose every vertex has one pendant neighbor.

    The graph has ``n = 2 * clique_size`` vertices.  Its neighborhood
    independence is 2 (a clique vertex's neighbors are the rest of the clique,
    pairwise adjacent, plus one pendant), yet every clique vertex has
    ``clique_size - 1 = Omega(Delta)`` independent vertices at distance 2 (the
    other pendants), so the graph is *not* of bounded growth.

    Parameters
    ----------
    clique_size:
        Number of clique vertices (at least 1).
    backend:
        ``"legacy"`` or ``"fast"`` (see the module docstring).
    """
    if clique_size < 1:
        raise InvalidParameterError("clique_size must be at least 1")
    if _check_backend(backend) == "fast":
        k = clique_size
        cu, cv = np.triu_indices(k, k=1)
        pendant_u = np.arange(k, dtype=np.int64)
        u = np.concatenate([cu.astype(np.int64), pendant_u])
        v = np.concatenate([cv.astype(np.int64), pendant_u + k])

        def identifiers() -> Iterable:
            return [("clique", i) for i in range(k)] + [
                ("pendant", i) for i in range(k)
            ]

        return _fast_from_edges(u, v, 2 * k, order=identifiers)
    adjacency = {}
    clique = [("clique", i) for i in range(clique_size)]
    for i, node in enumerate(clique):
        neighbors = [clique[j] for j in range(clique_size) if j != i]
        neighbors.append(("pendant", i))
        adjacency[node] = neighbors
        adjacency[("pendant", i)] = [node]
    return Network(adjacency)


def complete_graph(n: int, backend: str = "legacy") -> GeneratedNetwork:
    """The complete graph ``K_n`` (every pair of vertices adjacent)."""
    if n < 1:
        raise InvalidParameterError("n must be at least 1")
    if _check_backend(backend) == "fast":
        u, v = np.triu_indices(n, k=1)
        return _fast_from_edges(u.astype(np.int64), v.astype(np.int64), n)
    return Network({i: [j for j in range(n) if j != i] for i in range(n)})


def path_graph(n: int, backend: str = "legacy") -> GeneratedNetwork:
    """The path on ``n`` vertices."""
    if n < 1:
        raise InvalidParameterError("n must be at least 1")
    if _check_backend(backend) == "fast":
        u = np.arange(n - 1, dtype=np.int64)
        return _fast_from_edges(u, u + 1, n)
    return Network({i: [j for j in (i - 1, i + 1) if 0 <= j < n] for i in range(n)})


def cycle_graph(n: int, backend: str = "legacy") -> GeneratedNetwork:
    """The cycle on ``n`` vertices (``n >= 3``)."""
    if n < 3:
        raise InvalidParameterError("a cycle needs at least 3 vertices")
    if _check_backend(backend) == "fast":
        u = np.arange(n, dtype=np.int64)
        return _fast_from_edges(u, (u + 1) % n, n)
    return Network({i: [(i - 1) % n, (i + 1) % n] for i in range(n)})


def star_graph(leaves: int, backend: str = "legacy") -> GeneratedNetwork:
    """The star ``K_{1,leaves}``: one center adjacent to ``leaves`` leaves.

    For ``leaves >= 3`` this is the smallest graph that is *not* claw-free and
    has neighborhood independence equal to ``leaves``.
    """
    if leaves < 1:
        raise InvalidParameterError("a star needs at least one leaf")
    if _check_backend(backend) == "fast":
        u = np.zeros(leaves, dtype=np.int64)
        v = np.arange(1, leaves + 1, dtype=np.int64)

        def identifiers() -> Iterable:
            return ["center"] + [("leaf", i) for i in range(leaves)]

        return _fast_from_edges(u, v, leaves + 1, order=identifiers)
    adjacency = {"center": [("leaf", i) for i in range(leaves)]}
    for i in range(leaves):
        adjacency[("leaf", i)] = ["center"]
    return Network(adjacency)


def grid_graph(rows: int, cols: int, backend: str = "legacy") -> GeneratedNetwork:
    """The ``rows x cols`` grid -- a canonical bounded-growth graph."""
    if rows < 1 or cols < 1:
        raise InvalidParameterError("grid dimensions must be positive")
    if _check_backend(backend) == "fast":
        index = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
        u = np.concatenate([index[:, :-1].ravel(), index[:-1, :].ravel()])
        v = np.concatenate([index[:, 1:].ravel(), index[1:, :].ravel()])
        return _fast_from_edges(u, v, rows * cols)
    return _from_networkx_int_labels(nx.grid_2d_graph(rows, cols))


def hypercube_graph(dimension: int, backend: str = "legacy") -> GeneratedNetwork:
    """The ``dimension``-dimensional hypercube (``2^dimension`` vertices)."""
    if dimension < 1:
        raise InvalidParameterError("dimension must be at least 1")
    if _check_backend(backend) == "fast":
        n = 1 << dimension
        nodes = np.arange(n, dtype=np.int64)
        lower = [nodes[(nodes >> bit) & 1 == 0] for bit in range(dimension)]
        u = np.concatenate(lower)
        v = np.concatenate([part | (1 << bit) for bit, part in enumerate(lower)])
        return _fast_from_edges(u, v, n)
    return _from_networkx_int_labels(nx.hypercube_graph(dimension))


# --------------------------------------------------------------------------- #
# Random families (one documented seed stream per backend)
# --------------------------------------------------------------------------- #


def _simple_pairing_repair(
    u: np.ndarray, v: np.ndarray, n: int, rng: np.random.Generator
) -> None:
    """Re-pair configuration-model stubs in place until the graph is simple.

    Two phases.  First, vectorized re-pairing rounds: flag the *bad* pairs
    (self-loops, plus every duplicate of an undirected pair beyond its first
    copy), pool their stubs together with an equal number of randomly chosen
    good pairs, reshuffle the pool and re-pair it -- at benchmark scales
    (``degree << n``) this clears everything in a couple of array passes.
    If bad pairs survive :data:`_MAX_POOL_ROUNDS` (small dense instances,
    where fresh random pairs keep colliding), fall back to
    :func:`_switching_repair`, whose edge switches strictly decrease the
    collision count.  The stub multiset -- hence every node's degree -- is
    invariant throughout.
    """
    for _ in range(_MAX_POOL_ROUNDS):
        low = np.minimum(u, v)
        high = np.maximum(u, v)
        keys = low * n + high
        by_key = np.argsort(keys, kind="stable")
        sorted_keys = keys[by_key]
        duplicate_sorted = np.zeros(len(keys), dtype=bool)
        duplicate_sorted[1:] = sorted_keys[1:] == sorted_keys[:-1]
        bad = np.zeros(len(keys), dtype=bool)
        bad[by_key] = duplicate_sorted
        bad |= u == v
        bad_slots = np.flatnonzero(bad)
        if len(bad_slots) == 0:
            return
        good_slots = np.flatnonzero(~bad)
        mixed_in = min(len(good_slots), len(bad_slots))
        if mixed_in:
            chosen = rng.choice(good_slots, size=mixed_in, replace=False)
            slots = np.concatenate([bad_slots, chosen])
        else:
            slots = bad_slots
        pool = np.concatenate([u[slots], v[slots]])
        pool = pool[rng.permutation(len(pool))]
        u[slots] = pool[: len(slots)]
        v[slots] = pool[len(slots) :]
    _switching_repair(u, v, n, rng)


def _switching_repair(
    u: np.ndarray, v: np.ndarray, n: int, rng: np.random.Generator
) -> None:
    """Make the pairing simple with degree-preserving edge switches.

    For a bad pair ``(a, b)`` (self-loop or duplicate) and a partner pair
    ``(x, y)``, the switch ``(a, b), (x, y) -> (a, y), (x, b)`` preserves all
    four degrees; it is applied only when both replacement pairs are fresh
    non-loops, so the total collision count (self-loops plus excess
    multiplicities) strictly decreases with every switch.  Partners are
    random-probed, then scanned; the dense regime is diverted to the
    complement sampler before this runs (see :func:`random_regular`), so a
    valid switch always exists.
    """

    def key(a: int, b: int) -> int:
        return a * n + b if a < b else b * n + a

    multiplicity: dict = {}
    for a, b in zip(u.tolist(), v.tolist()):
        k = key(a, b)
        multiplicity[k] = multiplicity.get(k, 0) + 1
    pending = [
        slot
        for slot, (a, b) in enumerate(zip(u.tolist(), v.tolist()))
        if a == b or multiplicity[key(a, b)] > 1
    ]
    num_pairs = len(u)

    def try_switch(slot: int, partner: int) -> bool:
        a, b = int(u[slot]), int(v[slot])
        x, y = int(u[partner]), int(v[partner])
        for new_b, new_y in (((a, y), (x, b)), ((a, x), (y, b))):
            (p1a, p1b), (p2a, p2b) = new_b, new_y
            if p1a == p1b or p2a == p2b:
                continue
            k1, k2 = key(p1a, p1b), key(p2a, p2b)
            if k1 == k2 or multiplicity.get(k1) or multiplicity.get(k2):
                continue
            for old in (key(a, b), key(x, y)):
                multiplicity[old] -= 1
                if not multiplicity[old]:
                    del multiplicity[old]
            u[slot], v[slot] = p1a, p1b
            u[partner], v[partner] = p2a, p2b
            multiplicity[k1] = multiplicity.get(k1, 0) + 1
            multiplicity[k2] = multiplicity.get(k2, 0) + 1
            return True
        return False

    while pending:
        slot = pending.pop()
        a, b = int(u[slot]), int(v[slot])
        if a != b and multiplicity[key(a, b)] <= 1:
            continue  # resolved by an earlier switch
        switched = False
        for _ in range(_SWAP_PROBES):
            partner = int(rng.integers(num_pairs))
            if partner != slot and try_switch(slot, partner):
                switched = True
                break
        if not switched:
            for partner in range(num_pairs):
                if partner != slot and try_switch(slot, partner):
                    switched = True
                    break
        if not switched:
            raise InvalidParameterError(
                "configuration-model repair failed to produce a simple "
                f"graph (n={n}); the parameter combination is degenerate"
            )


def random_regular(
    n: int, degree: int, seed: int = 0, backend: str = "legacy"
) -> GeneratedNetwork:
    """A random ``degree``-regular graph on ``n`` vertices.

    Used by the Table 1 / Table 2 sweeps to realize a prescribed maximum
    degree exactly.  ``n * degree`` must be even and ``degree < n``.

    The fast backend draws a configuration-model pairing of the ``n * degree``
    stubs from ``numpy.random.default_rng(seed)`` and repairs collisions by
    re-pairing (see :func:`_simple_pairing_repair`); every vertex keeps degree
    exactly ``degree``.
    """
    if degree < 0 or degree >= n:
        raise InvalidParameterError("need 0 <= degree < n for a regular graph")
    if (n * degree) % 2 != 0:
        raise InvalidParameterError("n * degree must be even")
    if _check_backend(backend) == "fast":
        if degree == 0:
            empty = np.zeros(0, dtype=np.int64)
            return _fast_from_edges(empty, empty, n)
        if degree == n - 1:
            return complete_graph(n, backend="fast")  # the unique such graph
        if degree > (n - 1) // 2:
            # Dense regime: nearly every pair exists, so pairwise repair
            # cannot converge.  Sample the (n - 1 - degree)-regular
            # *complement* instead -- sparse, same machinery -- and invert.
            complement = random_regular(n, n - 1 - degree, seed=seed, backend="fast")
            rows, cols = complement.rows_np, complement.indices_np
            absent = rows[rows < cols] * n + cols[rows < cols]
            all_u, all_v = np.triu_indices(n, k=1)
            all_keys = all_u.astype(np.int64) * n + all_v.astype(np.int64)
            keep = np.ones(len(all_keys), dtype=bool)
            keep[np.searchsorted(all_keys, np.sort(absent))] = False
            return _fast_from_edges(
                all_u.astype(np.int64)[keep], all_v.astype(np.int64)[keep], n
            )
        rng = np.random.default_rng(seed)
        stubs = np.repeat(np.arange(n, dtype=np.int64), degree)
        stubs = stubs[rng.permutation(n * degree)]
        u = stubs[0::2].copy()
        v = stubs[1::2].copy()
        _simple_pairing_repair(u, v, n, rng)
        return _fast_from_edges(u, v, n)
    if degree == 0:
        return Network({i: [] for i in range(n)})
    graph = nx.random_regular_graph(degree, n, seed=seed)
    return _from_networkx_int_labels(graph)


def erdos_renyi(
    n: int, edge_probability: float, seed: int = 0, backend: str = "legacy"
) -> GeneratedNetwork:
    """An Erdos-Renyi random graph ``G(n, p)``.

    The fast backend enumerates the ``n (n - 1) / 2`` vertex pairs implicitly
    and jumps between the selected ones with geometric skip sampling
    (``numpy.random.default_rng(seed)``): the work is ``O(p n^2)`` -- the
    number of *edges* -- instead of ``O(n^2)`` coin flips.
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise InvalidParameterError("edge_probability must lie in [0, 1]")
    if _check_backend(backend) == "fast":
        num_pairs = n * (n - 1) // 2
        if edge_probability <= 0.0 or num_pairs == 0:
            empty = np.zeros(0, dtype=np.int64)
            return _fast_from_edges(empty, empty, n)
        if edge_probability >= 1.0:
            u, v = np.triu_indices(n, k=1)
            return _fast_from_edges(u.astype(np.int64), v.astype(np.int64), n)
        rng = np.random.default_rng(seed)
        taken: List[np.ndarray] = []
        last = -1  # linear index of the previously selected pair
        while True:
            expected_left = (num_pairs - last - 1) * edge_probability
            batch = max(64, int(expected_left * 1.2) + 16)
            gaps = rng.geometric(edge_probability, size=batch).astype(np.int64)
            # For minuscule p a geometric draw overflows int64 (wrapping
            # negative); any such gap provably jumps past the last pair.
            gaps = np.where(gaps <= 0, num_pairs + 1, gaps)
            gaps = np.minimum(gaps, num_pairs + 1)
            positions = last + np.cumsum(gaps)
            inside = positions[positions < num_pairs]
            taken.append(inside)
            if len(inside) < len(positions):
                break
            last = int(positions[-1])
        selected = np.concatenate(taken)
        # Map linear pair indices to (i, j), i < j, in lexicographic order.
        row_starts = np.zeros(n, dtype=np.int64)
        np.cumsum(n - 1 - np.arange(n - 1, dtype=np.int64), out=row_starts[1:])
        u = np.searchsorted(row_starts, selected, side="right") - 1
        v = selected - row_starts[u] + u + 1
        return _fast_from_edges(u, v, n)
    graph = nx.gnp_random_graph(n, edge_probability, seed=seed)
    return _from_networkx_int_labels(graph)


def power_law_graph(
    n: int, attachment_edges: int, seed: int = 0, backend: str = "legacy"
) -> GeneratedNetwork:
    """A Barabasi-Albert preferential-attachment graph (skewed degrees).

    Preferential attachment is inherently sequential, so there is no
    array-native sampler: the fast backend builds the legacy graph and
    compiles it to CSR (identical graph, identical seed stream).
    """
    if attachment_edges < 1 or attachment_edges >= n:
        raise InvalidParameterError("need 1 <= attachment_edges < n")
    graph = nx.barabasi_albert_graph(n, attachment_edges, seed=seed)
    network = _from_networkx_int_labels(graph)
    if _check_backend(backend) == "fast":
        from repro.local_model.fast_network import fast_view

        return fast_view(network)
    return network


def _repair_bipartite_matching(
    permutation: List[int],
    used: Set[Tuple[int, int]],
    rand_index,
    shuffle,
) -> List[int]:
    """Swap entries of ``permutation`` until no pair ``(i, p[i])`` is used.

    ``used`` holds the ``(left, right)`` pairs of the already-accepted
    matchings.  A conflict-free completion always exists while the left
    degree stays at most ``side`` (the complement of a ``k``-regular
    bipartite graph with ``k < side`` contains a perfect matching, Hall's
    theorem); each successful swap removes at least one conflict without
    creating new ones, and when no swap applies the permutation is
    reshuffled, so the search terminates with probability 1.
    """
    side = len(permutation)
    while True:
        colliding = [i for i in range(side) if (i, permutation[i]) in used]
        if not colliding:
            return permutation
        progressed = False
        for i in colliding:
            if (i, permutation[i]) not in used:
                continue  # already fixed by an earlier swap of this pass
            swap_with = -1
            for _ in range(_SWAP_PROBES):
                j = rand_index(side)
                if (
                    j != i
                    and (i, permutation[j]) not in used
                    and (j, permutation[i]) not in used
                ):
                    swap_with = j
                    break
            if swap_with < 0:
                for j in range(side):
                    if (
                        j != i
                        and (i, permutation[j]) not in used
                        and (j, permutation[i]) not in used
                    ):
                        swap_with = j
                        break
            if swap_with >= 0:
                permutation[i], permutation[swap_with] = (
                    permutation[swap_with],
                    permutation[i],
                )
                progressed = True
        if not progressed:
            shuffle(permutation)


def _bipartite_identifiers(side: int):
    def identifiers() -> Iterable:
        return [("left", i) for i in range(side)] + [
            ("right", i) for i in range(side)
        ]

    return identifiers


def _fast_random_bipartite_regular(side: int, degree: int, seed: int) -> FastNetwork:
    """Stacked random permutation matchings with per-edge collision repair."""
    order = _bipartite_identifiers(side)
    if degree == 0:
        empty = np.zeros(0, dtype=np.int64)
        return _fast_from_edges(empty, empty, 2 * side, order=order)
    rng = np.random.default_rng(seed)
    if degree == side:
        # Every left port talks to every right port: the unique such graph.
        left = np.repeat(np.arange(side, dtype=np.int64), side)
        right = np.tile(np.arange(side, dtype=np.int64), side)
        return _fast_from_edges(left, side + right, 2 * side, order=order)
    matchings = np.stack([rng.permutation(side) for _ in range(degree)])
    keys = np.arange(side, dtype=np.int64)[None, :] * side + matchings
    if len(np.unique(keys)) != keys.size:
        # Collisions: repair matching by matching against the accepted set.
        used: Set[Tuple[int, int]] = set()
        rand_index = lambda bound: int(rng.integers(bound))  # noqa: E731

        def shuffle(values: List[int]) -> None:
            values[:] = [values[t] for t in rng.permutation(len(values))]

        for k in range(degree):
            permutation = _repair_bipartite_matching(
                matchings[k].tolist(), used, rand_index, shuffle
            )
            matchings[k] = permutation
            used.update((i, permutation[i]) for i in range(side))
    left = np.tile(np.arange(side, dtype=np.int64), degree)
    right = matchings.astype(np.int64).ravel()
    return _fast_from_edges(left, side + right, 2 * side, order=order)


def random_bipartite_regular(
    side: int, degree: int, seed: int = 0, backend: str = "legacy"
) -> GeneratedNetwork:
    """A random bipartite ``degree``-regular graph on ``2 * side`` vertices.

    Bipartite regular graphs are the classical hard instances for edge
    coloring (switch scheduling / packet routing workloads in the paper's
    introduction): an optimal schedule needs exactly ``degree`` colors.

    Both backends build the union of ``degree`` random perfect matchings and
    *repair* colliding matching edges by swapping permutation entries, so
    every vertex has degree exactly ``degree`` (earlier releases silently
    dropped collisions that survived 200 resampling attempts, returning
    graphs of smaller degree).  The fast backend stacks the permutations as
    one array and draws from ``numpy.random.default_rng(seed)``.
    """
    if degree < 0 or degree > side:
        raise InvalidParameterError("need 0 <= degree <= side")
    if _check_backend(backend) == "fast":
        return _fast_random_bipartite_regular(side, degree, seed)
    rng = random.Random(seed)
    adjacency = {("left", i): [] for i in range(side)}
    adjacency.update({("right", i): [] for i in range(side)})
    # Union of `degree` random perfect matchings; collisions are first
    # resampled away wholesale, then repaired per edge.
    used: Set[Tuple[int, int]] = set()
    for _ in range(degree):
        attempts = 0
        while True:
            attempts += 1
            permutation = list(range(side))
            rng.shuffle(permutation)
            candidate = {(i, permutation[i]) for i in range(side)}
            if not (candidate & used) or attempts > 200:
                break
        if candidate & used:
            permutation = _repair_bipartite_matching(
                permutation, used, rng.randrange, rng.shuffle
            )
        for i in range(side):
            j = permutation[i]
            used.add((i, j))
            adjacency[("left", i)].append(("right", j))
            adjacency[("right", j)].append(("left", i))
    return Network(adjacency)
