"""Workload graph generators.

These are the graph families the paper motivates or analyses:

* the Figure 1 construction (a clique with pendant vertices) showing that
  bounded neighborhood independence does **not** imply bounded growth,
* line graphs and line graphs of ``r``-hypergraphs (see
  :mod:`repro.graphs.hypergraphs`), the families the edge-coloring results
  reduce to,
* bounded-growth graphs (grids, hypercubes of fixed dimension growth),
* generic benchmark graphs (random regular, Erdos-Renyi, power-law) used by
  the Table 1 / Table 2 sweeps to realize a prescribed maximum degree,
* bipartite regular graphs -- the switch-scheduling / packet-routing
  instances of the paper's introduction,
* heavy-tailed and geometric workload families with array-native fast
  samplers (:func:`barabasi_albert`, :func:`planted_degree_sequence` over
  :func:`heavy_tailed_degree_sequence`, :func:`random_geometric`,
  :func:`bipartite_switch`) -- the high-variance-degree and churning shapes
  the dynamic recoloring layer (:mod:`repro.dynamic`) is exercised on.

All generators are deterministic given their ``seed`` argument, so benchmark
runs are reproducible.

Backends
--------
Every generator takes ``backend="legacy"`` (the default) or
``backend="fast"``:

* ``"legacy"`` builds a dict-of-tuples
  :class:`~repro.local_model.network.Network` exactly as previous releases
  did (networkx construction, Python sorting) -- byte-for-byte stable seed
  streams;
* ``"fast"`` builds a CSR
  :class:`~repro.local_model.fast_network.FastNetwork` directly from numpy
  index arithmetic via :meth:`FastNetwork.from_edge_array`, never
  materializing a legacy ``Network`` (``.to_network()`` stays the on-demand
  audit path).

The **deterministic** families (path, cycle, grid, hypercube, complete, star,
clique-with-pendants) are *bit-identical* across backends: same node
identifiers, same unique ids, same CSR arrays (property-tested in
``tests/test_generator_backends.py``).  The **random** families keep one
documented seed stream per backend: the legacy stream is
``random.Random(seed)`` / networkx's generator as before, the fast stream is
``numpy.random.default_rng(seed)`` driving the vectorized samplers below --
``family(n, d, seed, backend="fast")`` is therefore a *different* (equally
distributed) graph than ``backend="legacy"`` with the same seed, but is
reproducible across runs and platforms.  Both backends guarantee the same
exact invariants (exact degrees for the regular families, simplicity
everywhere).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Set, Tuple, Union

import networkx as nx
import numpy as np

from repro.exceptions import InvalidParameterError
from repro.local_model.fast_network import FastNetwork
from repro.local_model.network import Network

#: Return type of every generator: the legacy mapping-based network or the
#: CSR-native view, depending on ``backend``.
GeneratedNetwork = Union[Network, FastNetwork]

_BACKENDS = ("legacy", "fast")

#: Vectorized re-pairing rounds attempted before falling back to the exact
#: switching repair; at benchmark scales (sparse graphs) a couple of rounds
#: suffice, so the fallback only engages on small dense instances.
_MAX_POOL_ROUNDS = 32

#: Random probes tried before scanning for a bipartite repair swap partner.
_SWAP_PROBES = 64


def _check_backend(backend: str) -> str:
    if backend not in _BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; known backends: {_BACKENDS}"
        )
    return backend


def _from_networkx_int_labels(graph: "nx.Graph") -> Network:
    """Relabel nodes to consecutive integers and wrap into a Network."""
    relabeled = nx.convert_node_labels_to_integers(graph, first_label=0, ordering="sorted")
    return Network.from_networkx(relabeled)


def _fast_from_edges(
    u: np.ndarray,
    v: np.ndarray,
    num_nodes: int,
    order=None,
) -> FastNetwork:
    """The shared :meth:`FastNetwork.from_edge_array` entry of the builders."""
    return FastNetwork.from_edge_array(u, v, num_nodes=num_nodes, order=order)


# --------------------------------------------------------------------------- #
# Deterministic families (fast backend bit-identical to legacy)
# --------------------------------------------------------------------------- #


def clique_with_pendants(clique_size: int, backend: str = "legacy") -> GeneratedNetwork:
    """The Figure 1 graph: a clique whose every vertex has one pendant neighbor.

    The graph has ``n = 2 * clique_size`` vertices.  Its neighborhood
    independence is 2 (a clique vertex's neighbors are the rest of the clique,
    pairwise adjacent, plus one pendant), yet every clique vertex has
    ``clique_size - 1 = Omega(Delta)`` independent vertices at distance 2 (the
    other pendants), so the graph is *not* of bounded growth.

    Parameters
    ----------
    clique_size:
        Number of clique vertices (at least 1).
    backend:
        ``"legacy"`` or ``"fast"`` (see the module docstring).
    """
    if clique_size < 1:
        raise InvalidParameterError("clique_size must be at least 1")
    if _check_backend(backend) == "fast":
        k = clique_size
        cu, cv = np.triu_indices(k, k=1)
        pendant_u = np.arange(k, dtype=np.int64)
        u = np.concatenate([cu.astype(np.int64), pendant_u])
        v = np.concatenate([cv.astype(np.int64), pendant_u + k])

        def identifiers() -> Iterable:
            return [("clique", i) for i in range(k)] + [
                ("pendant", i) for i in range(k)
            ]

        return _fast_from_edges(u, v, 2 * k, order=identifiers)
    adjacency = {}
    clique = [("clique", i) for i in range(clique_size)]
    for i, node in enumerate(clique):
        neighbors = [clique[j] for j in range(clique_size) if j != i]
        neighbors.append(("pendant", i))
        adjacency[node] = neighbors
        adjacency[("pendant", i)] = [node]
    return Network(adjacency)


def complete_graph(n: int, backend: str = "legacy") -> GeneratedNetwork:
    """The complete graph ``K_n`` (every pair of vertices adjacent)."""
    if n < 1:
        raise InvalidParameterError("n must be at least 1")
    if _check_backend(backend) == "fast":
        u, v = np.triu_indices(n, k=1)
        return _fast_from_edges(u.astype(np.int64), v.astype(np.int64), n)
    return Network({i: [j for j in range(n) if j != i] for i in range(n)})


def path_graph(n: int, backend: str = "legacy") -> GeneratedNetwork:
    """The path on ``n`` vertices."""
    if n < 1:
        raise InvalidParameterError("n must be at least 1")
    if _check_backend(backend) == "fast":
        u = np.arange(n - 1, dtype=np.int64)
        return _fast_from_edges(u, u + 1, n)
    return Network({i: [j for j in (i - 1, i + 1) if 0 <= j < n] for i in range(n)})


def cycle_graph(n: int, backend: str = "legacy") -> GeneratedNetwork:
    """The cycle on ``n`` vertices (``n >= 3``)."""
    if n < 3:
        raise InvalidParameterError("a cycle needs at least 3 vertices")
    if _check_backend(backend) == "fast":
        u = np.arange(n, dtype=np.int64)
        return _fast_from_edges(u, (u + 1) % n, n)
    return Network({i: [(i - 1) % n, (i + 1) % n] for i in range(n)})


def star_graph(leaves: int, backend: str = "legacy") -> GeneratedNetwork:
    """The star ``K_{1,leaves}``: one center adjacent to ``leaves`` leaves.

    For ``leaves >= 3`` this is the smallest graph that is *not* claw-free and
    has neighborhood independence equal to ``leaves``.
    """
    if leaves < 1:
        raise InvalidParameterError("a star needs at least one leaf")
    if _check_backend(backend) == "fast":
        u = np.zeros(leaves, dtype=np.int64)
        v = np.arange(1, leaves + 1, dtype=np.int64)

        def identifiers() -> Iterable:
            return ["center"] + [("leaf", i) for i in range(leaves)]

        return _fast_from_edges(u, v, leaves + 1, order=identifiers)
    adjacency = {"center": [("leaf", i) for i in range(leaves)]}
    for i in range(leaves):
        adjacency[("leaf", i)] = ["center"]
    return Network(adjacency)


def grid_graph(rows: int, cols: int, backend: str = "legacy") -> GeneratedNetwork:
    """The ``rows x cols`` grid -- a canonical bounded-growth graph."""
    if rows < 1 or cols < 1:
        raise InvalidParameterError("grid dimensions must be positive")
    if _check_backend(backend) == "fast":
        index = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
        u = np.concatenate([index[:, :-1].ravel(), index[:-1, :].ravel()])
        v = np.concatenate([index[:, 1:].ravel(), index[1:, :].ravel()])
        return _fast_from_edges(u, v, rows * cols)
    return _from_networkx_int_labels(nx.grid_2d_graph(rows, cols))


def hypercube_graph(dimension: int, backend: str = "legacy") -> GeneratedNetwork:
    """The ``dimension``-dimensional hypercube (``2^dimension`` vertices)."""
    if dimension < 1:
        raise InvalidParameterError("dimension must be at least 1")
    if _check_backend(backend) == "fast":
        n = 1 << dimension
        nodes = np.arange(n, dtype=np.int64)
        lower = [nodes[(nodes >> bit) & 1 == 0] for bit in range(dimension)]
        u = np.concatenate(lower)
        v = np.concatenate([part | (1 << bit) for bit, part in enumerate(lower)])
        return _fast_from_edges(u, v, n)
    return _from_networkx_int_labels(nx.hypercube_graph(dimension))


# --------------------------------------------------------------------------- #
# Random families (one documented seed stream per backend)
# --------------------------------------------------------------------------- #


def _simple_pairing_repair(
    u: np.ndarray, v: np.ndarray, n: int, rng: np.random.Generator
) -> None:
    """Re-pair configuration-model stubs in place until the graph is simple.

    Two phases.  First, vectorized re-pairing rounds: flag the *bad* pairs
    (self-loops, plus every duplicate of an undirected pair beyond its first
    copy), pool their stubs together with an equal number of randomly chosen
    good pairs, reshuffle the pool and re-pair it -- at benchmark scales
    (``degree << n``) this clears everything in a couple of array passes.
    If bad pairs survive :data:`_MAX_POOL_ROUNDS` (small dense instances,
    where fresh random pairs keep colliding), fall back to
    :func:`_switching_repair`, whose edge switches strictly decrease the
    collision count.  The stub multiset -- hence every node's degree -- is
    invariant throughout.
    """
    for _ in range(_MAX_POOL_ROUNDS):
        low = np.minimum(u, v)
        high = np.maximum(u, v)
        keys = low * n + high
        by_key = np.argsort(keys, kind="stable")
        sorted_keys = keys[by_key]
        duplicate_sorted = np.zeros(len(keys), dtype=bool)
        duplicate_sorted[1:] = sorted_keys[1:] == sorted_keys[:-1]
        bad = np.zeros(len(keys), dtype=bool)
        bad[by_key] = duplicate_sorted
        bad |= u == v
        bad_slots = np.flatnonzero(bad)
        if len(bad_slots) == 0:
            return
        good_slots = np.flatnonzero(~bad)
        mixed_in = min(len(good_slots), len(bad_slots))
        if mixed_in:
            chosen = rng.choice(good_slots, size=mixed_in, replace=False)
            slots = np.concatenate([bad_slots, chosen])
        else:
            slots = bad_slots
        pool = np.concatenate([u[slots], v[slots]])
        pool = pool[rng.permutation(len(pool))]
        u[slots] = pool[: len(slots)]
        v[slots] = pool[len(slots) :]
    _switching_repair(u, v, n, rng)


def _switching_repair(
    u: np.ndarray, v: np.ndarray, n: int, rng: np.random.Generator
) -> None:
    """Make the pairing simple with degree-preserving edge switches.

    For a bad pair ``(a, b)`` (self-loop or duplicate) and a partner pair
    ``(x, y)``, the switch ``(a, b), (x, y) -> (a, y), (x, b)`` preserves all
    four degrees; it is applied only when both replacement pairs are fresh
    non-loops, so the total collision count (self-loops plus excess
    multiplicities) strictly decreases with every switch.  Partners are
    random-probed, then scanned; the dense regime is diverted to the
    complement sampler before this runs (see :func:`random_regular`), so a
    valid switch always exists.
    """

    def key(a: int, b: int) -> int:
        return a * n + b if a < b else b * n + a

    multiplicity: dict = {}
    for a, b in zip(u.tolist(), v.tolist()):
        k = key(a, b)
        multiplicity[k] = multiplicity.get(k, 0) + 1
    pending = [
        slot
        for slot, (a, b) in enumerate(zip(u.tolist(), v.tolist()))
        if a == b or multiplicity[key(a, b)] > 1
    ]
    num_pairs = len(u)

    def try_switch(slot: int, partner: int) -> bool:
        a, b = int(u[slot]), int(v[slot])
        x, y = int(u[partner]), int(v[partner])
        for new_b, new_y in (((a, y), (x, b)), ((a, x), (y, b))):
            (p1a, p1b), (p2a, p2b) = new_b, new_y
            if p1a == p1b or p2a == p2b:
                continue
            k1, k2 = key(p1a, p1b), key(p2a, p2b)
            if k1 == k2 or multiplicity.get(k1) or multiplicity.get(k2):
                continue
            for old in (key(a, b), key(x, y)):
                multiplicity[old] -= 1
                if not multiplicity[old]:
                    del multiplicity[old]
            u[slot], v[slot] = p1a, p1b
            u[partner], v[partner] = p2a, p2b
            multiplicity[k1] = multiplicity.get(k1, 0) + 1
            multiplicity[k2] = multiplicity.get(k2, 0) + 1
            return True
        return False

    while pending:
        slot = pending.pop()
        a, b = int(u[slot]), int(v[slot])
        if a != b and multiplicity[key(a, b)] <= 1:
            continue  # resolved by an earlier switch
        switched = False
        for _ in range(_SWAP_PROBES):
            partner = int(rng.integers(num_pairs))
            if partner != slot and try_switch(slot, partner):
                switched = True
                break
        if not switched:
            for partner in range(num_pairs):
                if partner != slot and try_switch(slot, partner):
                    switched = True
                    break
        if not switched:
            raise InvalidParameterError(
                "configuration-model repair failed to produce a simple "
                f"graph (n={n}); the parameter combination is degenerate"
            )


def random_regular(
    n: int, degree: int, seed: int = 0, backend: str = "legacy"
) -> GeneratedNetwork:
    """A random ``degree``-regular graph on ``n`` vertices.

    Used by the Table 1 / Table 2 sweeps to realize a prescribed maximum
    degree exactly.  ``n * degree`` must be even and ``degree < n``.

    The fast backend draws a configuration-model pairing of the ``n * degree``
    stubs from ``numpy.random.default_rng(seed)`` and repairs collisions by
    re-pairing (see :func:`_simple_pairing_repair`); every vertex keeps degree
    exactly ``degree``.
    """
    if degree < 0 or degree >= n:
        raise InvalidParameterError("need 0 <= degree < n for a regular graph")
    if (n * degree) % 2 != 0:
        raise InvalidParameterError("n * degree must be even")
    if _check_backend(backend) == "fast":
        if degree == 0:
            empty = np.zeros(0, dtype=np.int64)
            return _fast_from_edges(empty, empty, n)
        if degree == n - 1:
            return complete_graph(n, backend="fast")  # the unique such graph
        if degree > (n - 1) // 2:
            # Dense regime: nearly every pair exists, so pairwise repair
            # cannot converge.  Sample the (n - 1 - degree)-regular
            # *complement* instead -- sparse, same machinery -- and invert.
            complement = random_regular(n, n - 1 - degree, seed=seed, backend="fast")
            rows, cols = complement.rows_np, complement.indices_np
            absent = rows[rows < cols] * n + cols[rows < cols]
            all_u, all_v = np.triu_indices(n, k=1)
            all_keys = all_u.astype(np.int64) * n + all_v.astype(np.int64)
            keep = np.ones(len(all_keys), dtype=bool)
            keep[np.searchsorted(all_keys, np.sort(absent))] = False
            return _fast_from_edges(
                all_u.astype(np.int64)[keep], all_v.astype(np.int64)[keep], n
            )
        rng = np.random.default_rng(seed)
        stubs = np.repeat(np.arange(n, dtype=np.int64), degree)
        stubs = stubs[rng.permutation(n * degree)]
        u = stubs[0::2].copy()
        v = stubs[1::2].copy()
        _simple_pairing_repair(u, v, n, rng)
        return _fast_from_edges(u, v, n)
    if degree == 0:
        return Network({i: [] for i in range(n)})
    graph = nx.random_regular_graph(degree, n, seed=seed)
    return _from_networkx_int_labels(graph)


def erdos_renyi(
    n: int, edge_probability: float, seed: int = 0, backend: str = "legacy"
) -> GeneratedNetwork:
    """An Erdos-Renyi random graph ``G(n, p)``.

    The fast backend enumerates the ``n (n - 1) / 2`` vertex pairs implicitly
    and jumps between the selected ones with geometric skip sampling
    (``numpy.random.default_rng(seed)``): the work is ``O(p n^2)`` -- the
    number of *edges* -- instead of ``O(n^2)`` coin flips.
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise InvalidParameterError("edge_probability must lie in [0, 1]")
    if _check_backend(backend) == "fast":
        num_pairs = n * (n - 1) // 2
        if edge_probability <= 0.0 or num_pairs == 0:
            empty = np.zeros(0, dtype=np.int64)
            return _fast_from_edges(empty, empty, n)
        if edge_probability >= 1.0:
            u, v = np.triu_indices(n, k=1)
            return _fast_from_edges(u.astype(np.int64), v.astype(np.int64), n)
        rng = np.random.default_rng(seed)
        taken: List[np.ndarray] = []
        last = -1  # linear index of the previously selected pair
        while True:
            expected_left = (num_pairs - last - 1) * edge_probability
            batch = max(64, int(expected_left * 1.2) + 16)
            gaps = rng.geometric(edge_probability, size=batch).astype(np.int64)
            # For minuscule p a geometric draw overflows int64 (wrapping
            # negative); any such gap provably jumps past the last pair.
            gaps = np.where(gaps <= 0, num_pairs + 1, gaps)
            gaps = np.minimum(gaps, num_pairs + 1)
            positions = last + np.cumsum(gaps)
            inside = positions[positions < num_pairs]
            taken.append(inside)
            if len(inside) < len(positions):
                break
            last = int(positions[-1])
        selected = np.concatenate(taken)
        # Map linear pair indices to (i, j), i < j, in lexicographic order.
        row_starts = np.zeros(n, dtype=np.int64)
        np.cumsum(n - 1 - np.arange(n - 1, dtype=np.int64), out=row_starts[1:])
        u = np.searchsorted(row_starts, selected, side="right") - 1
        v = selected - row_starts[u] + u + 1
        return _fast_from_edges(u, v, n)
    graph = nx.gnp_random_graph(n, edge_probability, seed=seed)
    return _from_networkx_int_labels(graph)


def power_law_graph(
    n: int, attachment_edges: int, seed: int = 0, backend: str = "legacy"
) -> GeneratedNetwork:
    """A Barabasi-Albert preferential-attachment graph (skewed degrees).

    Preferential attachment is inherently sequential, so there is no
    array-native sampler: the fast backend builds the legacy graph and
    compiles it to CSR (identical graph, identical seed stream).
    """
    if attachment_edges < 1 or attachment_edges >= n:
        raise InvalidParameterError("need 1 <= attachment_edges < n")
    graph = nx.barabasi_albert_graph(n, attachment_edges, seed=seed)
    network = _from_networkx_int_labels(graph)
    if _check_backend(backend) == "fast":
        from repro.local_model.fast_network import fast_view

        return fast_view(network)
    return network


def _repair_bipartite_matching(
    permutation: List[int],
    used: Set[Tuple[int, int]],
    rand_index,
    shuffle,
) -> List[int]:
    """Swap entries of ``permutation`` until no pair ``(i, p[i])`` is used.

    ``used`` holds the ``(left, right)`` pairs of the already-accepted
    matchings.  A conflict-free completion always exists while the left
    degree stays at most ``side`` (the complement of a ``k``-regular
    bipartite graph with ``k < side`` contains a perfect matching, Hall's
    theorem); each successful swap removes at least one conflict without
    creating new ones, and when no swap applies the permutation is
    reshuffled, so the search terminates with probability 1.
    """
    side = len(permutation)
    while True:
        colliding = [i for i in range(side) if (i, permutation[i]) in used]
        if not colliding:
            return permutation
        progressed = False
        for i in colliding:
            if (i, permutation[i]) not in used:
                continue  # already fixed by an earlier swap of this pass
            swap_with = -1
            for _ in range(_SWAP_PROBES):
                j = rand_index(side)
                if (
                    j != i
                    and (i, permutation[j]) not in used
                    and (j, permutation[i]) not in used
                ):
                    swap_with = j
                    break
            if swap_with < 0:
                for j in range(side):
                    if (
                        j != i
                        and (i, permutation[j]) not in used
                        and (j, permutation[i]) not in used
                    ):
                        swap_with = j
                        break
            if swap_with >= 0:
                permutation[i], permutation[swap_with] = (
                    permutation[swap_with],
                    permutation[i],
                )
                progressed = True
        if not progressed:
            shuffle(permutation)


def _bipartite_identifiers(side: int):
    def identifiers() -> Iterable:
        return [("left", i) for i in range(side)] + [
            ("right", i) for i in range(side)
        ]

    return identifiers


def _membership_in_sorted(sorted_keys: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Boolean mask: which ``values`` occur in the sorted int64 ``sorted_keys``."""
    slots = np.searchsorted(sorted_keys, values)
    inside = slots < len(sorted_keys)
    out = np.zeros(len(values), dtype=bool)
    out[inside] = sorted_keys[slots[inside]] == values[inside]
    return out


def _repair_matching_sorted(
    row: np.ndarray, accepted: np.ndarray, side: int, rng: np.random.Generator
) -> np.ndarray:
    """Swap entries of ``row`` until no pair ``(i, row[i])`` is accepted.

    Array twin of :func:`_repair_bipartite_matching`: membership in the
    accepted-edge set is a ``searchsorted`` probe into one sorted int64
    pair-key array instead of a Python set of tuples.  Same existence
    argument (Hall's theorem on the complement), same
    probe-then-scan-then-reshuffle search.
    """
    row = row.copy()
    lanes = np.arange(side, dtype=np.int64)

    def used(i: int, j: int) -> bool:
        key = i * side + j
        slot = int(np.searchsorted(accepted, key))
        return slot < len(accepted) and accepted[slot] == key

    while True:
        colliding = np.flatnonzero(_membership_in_sorted(accepted, lanes * side + row))
        if len(colliding) == 0:
            return row
        progressed = False
        for i in colliding.tolist():
            if not used(i, int(row[i])):
                continue  # already fixed by an earlier swap of this pass
            swap_with = -1
            for _ in range(_SWAP_PROBES):
                j = int(rng.integers(side))
                if j != i and not used(i, int(row[j])) and not used(j, int(row[i])):
                    swap_with = j
                    break
            if swap_with < 0:
                for j in range(side):
                    if j != i and not used(i, int(row[j])) and not used(j, int(row[i])):
                        swap_with = j
                        break
            if swap_with >= 0:
                row[i], row[swap_with] = row[swap_with], row[i]
                progressed = True
        if not progressed:
            row = row[rng.permutation(side)]


def _random_biregular_matchings(
    side: int, degree: int, rng: np.random.Generator
) -> np.ndarray:
    """``degree`` pairwise edge-disjoint random permutations of ``0..side-1``.

    Row ``k`` maps left port ``i`` to right port ``matchings[k, i]``; the
    union of the rows is a simple bipartite ``degree``-regular graph.
    Collisions between rows are cleared with the same two-phase scheme as
    :func:`_simple_pairing_repair`: vectorized pooled re-permutation rounds
    first (collision detection is one sorted pair-key pass over all
    ``side * degree`` edges -- no Python edge set), then an exact
    per-matching swap repair for the small dense instances that keep
    colliding, probing the accepted keys with :func:`_membership_in_sorted`.
    """
    matchings = np.stack([rng.permutation(side) for _ in range(degree)]).astype(
        np.int64
    )
    if degree <= 1:
        return matchings
    lanes = np.arange(side, dtype=np.int64)
    for _ in range(_MAX_POOL_ROUNDS):
        keys = (lanes[None, :] * side + matchings).ravel()
        by_key = np.argsort(keys, kind="stable")
        sorted_keys = keys[by_key]
        duplicate_sorted = np.zeros(len(keys), dtype=bool)
        duplicate_sorted[1:] = sorted_keys[1:] == sorted_keys[:-1]
        duplicate = np.zeros(len(keys), dtype=bool)
        duplicate[by_key] = duplicate_sorted
        colliding = duplicate.reshape(degree, side)
        if not colliding.any():
            return matchings
        # Reshuffle each colliding row's bad lanes (mixed with an equal
        # number of good lanes) among themselves: stays a permutation,
        # re-randomizes every collision.
        for k in np.flatnonzero(colliding.any(axis=1)):
            bad = np.flatnonzero(colliding[k])
            good = np.flatnonzero(~colliding[k])
            mixed_in = min(len(good), len(bad))
            if mixed_in:
                chosen = rng.choice(good, size=mixed_in, replace=False)
                slots = np.concatenate([bad, chosen])
            else:
                slots = bad
            matchings[k, slots] = matchings[k, slots[rng.permutation(len(slots))]]
    # Exact fallback: accept matchings one by one, swapping conflicted
    # entries against the sorted pair keys of everything accepted so far.
    accepted = np.zeros(0, dtype=np.int64)
    for k in range(degree):
        repaired = _repair_matching_sorted(matchings[k], accepted, side, rng)
        matchings[k] = repaired
        accepted = np.sort(np.concatenate([accepted, lanes * side + repaired]))
    return matchings


def _fast_random_bipartite_regular(
    side: int, degree: int, seed: int, order=None
) -> FastNetwork:
    """Stacked random permutation matchings, repaired with array passes.

    Dense instances (``2 * degree > side``) sample the
    ``(side - degree)``-regular bipartite *complement* and invert it -- the
    same diversion :func:`random_regular` uses -- so the repair only ever
    runs in the regime where fresh permutations rarely collide.
    """
    order = order or _bipartite_identifiers(side)
    if degree == 0:
        empty = np.zeros(0, dtype=np.int64)
        return _fast_from_edges(empty, empty, 2 * side, order=order)
    rng = np.random.default_rng(seed)
    if degree == side:
        # Every left port talks to every right port: the unique such graph.
        left = np.repeat(np.arange(side, dtype=np.int64), side)
        right = np.tile(np.arange(side, dtype=np.int64), side)
        return _fast_from_edges(left, side + right, 2 * side, order=order)
    if 2 * degree > side:
        complement = _random_biregular_matchings(side, side - degree, rng)
        lanes = np.tile(np.arange(side, dtype=np.int64), side - degree)
        absent = np.sort(lanes * side + complement.ravel())
        keep = np.ones(side * side, dtype=bool)
        keep[absent] = False
        keys = np.flatnonzero(keep).astype(np.int64)
        return _fast_from_edges(
            keys // side, side + keys % side, 2 * side, order=order
        )
    matchings = _random_biregular_matchings(side, degree, rng)
    left = np.tile(np.arange(side, dtype=np.int64), degree)
    right = matchings.ravel()
    return _fast_from_edges(left, side + right, 2 * side, order=order)


def random_bipartite_regular(
    side: int, degree: int, seed: int = 0, backend: str = "legacy"
) -> GeneratedNetwork:
    """A random bipartite ``degree``-regular graph on ``2 * side`` vertices.

    Bipartite regular graphs are the classical hard instances for edge
    coloring (switch scheduling / packet routing workloads in the paper's
    introduction): an optimal schedule needs exactly ``degree`` colors.

    Both backends build the union of ``degree`` random perfect matchings and
    *repair* colliding matching edges by swapping permutation entries, so
    every vertex has degree exactly ``degree`` (earlier releases silently
    dropped collisions that survived 200 resampling attempts, returning
    graphs of smaller degree).  The fast backend stacks the permutations as
    one array, draws from ``numpy.random.default_rng(seed)``, detects and
    repairs collisions with sorted pair-key ``searchsorted`` passes (no
    Python edge set), and diverts dense instances (``2 * degree > side``) to
    complement sampling.
    """
    if degree < 0 or degree > side:
        raise InvalidParameterError("need 0 <= degree <= side")
    if _check_backend(backend) == "fast":
        return _fast_random_bipartite_regular(side, degree, seed)
    rng = random.Random(seed)
    adjacency = {("left", i): [] for i in range(side)}
    adjacency.update({("right", i): [] for i in range(side)})
    # Union of `degree` random perfect matchings; collisions are first
    # resampled away wholesale, then repaired per edge.
    used: Set[Tuple[int, int]] = set()
    for _ in range(degree):
        attempts = 0
        while True:
            attempts += 1
            permutation = list(range(side))
            rng.shuffle(permutation)
            candidate = {(i, permutation[i]) for i in range(side)}
            if not (candidate & used) or attempts > 200:
                break
        if candidate & used:
            permutation = _repair_bipartite_matching(
                permutation, used, rng.randrange, rng.shuffle
            )
        for i in range(side):
            j = permutation[i]
            used.add((i, j))
            adjacency[("left", i)].append(("right", j))
            adjacency[("right", j)].append(("left", i))
    return Network(adjacency)


# --------------------------------------------------------------------------- #
# Heavy-tailed / geometric workload families (array-native fast samplers)
# --------------------------------------------------------------------------- #


def barabasi_albert(
    n: int, attachment_edges: int, seed: int = 0, backend: str = "legacy"
) -> GeneratedNetwork:
    """A Barabasi-Albert graph with an array-native fast sampler.

    Unlike :func:`power_law_graph` (whose fast backend compiles the legacy
    networkx graph bit-for-bit), this family gives the fast backend its own
    documented stream so large instances never touch networkx: the
    repeated-nodes sampler (Batagelj-Brandes) draws each new vertex's
    ``attachment_edges`` distinct targets uniformly from the running
    edge-endpoint multiset via ``numpy.random.default_rng(seed)`` -- a
    uniform draw from that multiset *is* a degree-proportional draw over the
    vertices.  Invariants on both backends: simple,
    ``attachment_edges * (n - attachment_edges)`` edges, and every vertex of
    index ``>= attachment_edges`` has degree at least ``attachment_edges``.
    """
    if attachment_edges < 1 or attachment_edges >= n:
        raise InvalidParameterError("need 1 <= attachment_edges < n")
    if _check_backend(backend) == "fast":
        m = attachment_edges
        rng = np.random.default_rng(seed)
        u = np.repeat(np.arange(m, n, dtype=np.int64), m)
        v = np.empty(m * (n - m), dtype=np.int64)
        endpoints = np.empty(2 * m * (n - m), dtype=np.int64)
        filled = 0
        targets = np.arange(m, dtype=np.int64)  # vertex m adopts all seeds
        for vertex in range(m, n):
            base = (vertex - m) * m
            v[base : base + m] = targets
            endpoints[filled : filled + m] = targets
            endpoints[filled + m : filled + 2 * m] = vertex
            filled += 2 * m
            if vertex == n - 1:
                break
            fresh: List[int] = []
            seen: Set[int] = set()
            while len(fresh) < m:
                draws = endpoints[rng.integers(0, filled, size=m - len(fresh))]
                for target in draws.tolist():
                    if target not in seen:
                        seen.add(target)
                        fresh.append(target)
            targets = np.array(fresh, dtype=np.int64)
        return _fast_from_edges(u, v, n)
    return _from_networkx_int_labels(
        nx.barabasi_albert_graph(n, attachment_edges, seed=seed)
    )


def heavy_tailed_degree_sequence(
    n: int,
    exponent: float = 2.5,
    min_degree: int = 1,
    max_degree: int = None,
    seed: int = 0,
) -> np.ndarray:
    """A power-law degree sequence for :func:`planted_degree_sequence`.

    Samples ``n`` degrees from the discrete distribution
    ``P(d) proportional to d ** -exponent`` on ``[min_degree, max_degree]``
    (default cap ``~sqrt(n)``, which keeps the sequence graphical by
    Erdos-Gallai at these sizes) and fixes the parity of the sum by bumping
    one vertex.  Module-level so :class:`~repro.experiments.scenarios.GraphSpec`
    builders can reference it picklably.
    """
    if n < 2:
        raise InvalidParameterError("n must be at least 2")
    if min_degree < 0:
        raise InvalidParameterError("min_degree must be non-negative")
    if max_degree is None:
        max_degree = max(min_degree, min(n - 1, int(round(n**0.5))))
    if not min_degree <= max_degree <= n - 1:
        raise InvalidParameterError("need min_degree <= max_degree <= n - 1")
    if exponent <= 0:
        raise InvalidParameterError("exponent must be positive")
    rng = np.random.default_rng(seed)
    support = np.arange(min_degree, max_degree + 1, dtype=np.int64)
    weights = np.maximum(support, 1).astype(np.float64) ** -float(exponent)
    degrees = rng.choice(support, size=n, p=weights / weights.sum()).astype(np.int64)
    if int(degrees.sum()) % 2:
        below_cap = degrees < max_degree
        if below_cap.any():
            degrees[int(np.argmax(below_cap))] += 1
        else:
            degrees[0] -= 1
    return degrees


def planted_degree_sequence(
    degrees, seed: int = 0, backend: str = "legacy"
) -> GeneratedNetwork:
    """A random simple graph realizing a *planted* per-vertex degree array.

    Configuration-model pairing over the given degrees (sum must be even),
    repaired to a simple graph by :func:`_simple_pairing_repair` -- every
    vertex ends with exactly its planted degree.  No networkx twin offers
    this exactness guarantee, so both backends share the single fast stream
    (``numpy.random.default_rng(seed)``); ``backend="legacy"`` materializes
    the result via ``to_network()``.  Raises
    :class:`~repro.exceptions.InvalidParameterError` for degenerate
    (non-graphical) sequences that no repair can make simple.
    """
    degrees = np.ascontiguousarray(degrees, dtype=np.int64).ravel()
    n = int(len(degrees))
    if n < 1:
        raise InvalidParameterError("the degree sequence must be non-empty")
    if degrees.min(initial=0) < 0 or degrees.max(initial=0) >= max(n, 1):
        raise InvalidParameterError("need 0 <= degree < n for every vertex")
    if int(degrees.sum()) % 2:
        raise InvalidParameterError("the degree sum must be even")
    _check_backend(backend)
    rng = np.random.default_rng(seed)
    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    stubs = stubs[rng.permutation(len(stubs))]
    u = stubs[0::2].copy()
    v = stubs[1::2].copy()
    _simple_pairing_repair(u, v, n, rng)
    fast = _fast_from_edges(u, v, n)
    return fast if backend == "fast" else fast.to_network()


def _geometric_edges(
    points: np.ndarray, radius: float
) -> Tuple[np.ndarray, np.ndarray]:
    """All point pairs within ``radius``: a forward half-neighborhood cell sweep.

    Points are bucketed into a grid of squares with side ``>= radius``, so
    every close pair lies in the same or in 8-adjacent cells; enumerating
    only the 5 *forward* cell offsets ``(0,0), (0,1), (1,-1), (1,0), (1,1)``
    (and ``i < j`` within a cell) yields each unordered pair exactly once.
    """
    n = len(points)
    if n <= 1:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    cells = max(1, int(np.floor(1.0 / radius))) if radius < 1.0 else 1
    cell_x = np.minimum((points[:, 0] * cells).astype(np.int64), cells - 1)
    cell_y = np.minimum((points[:, 1] * cells).astype(np.int64), cells - 1)
    by_cell = np.argsort(cell_x * cells + cell_y, kind="stable")
    occupied, starts, counts = np.unique(
        (cell_x * cells + cell_y)[by_cell], return_index=True, return_counts=True
    )
    occ_x = occupied // cells
    occ_y = occupied % cells
    radius_sq = radius * radius
    parts_u: List[np.ndarray] = []
    parts_v: List[np.ndarray] = []
    for dx, dy in ((0, 0), (0, 1), (1, -1), (1, 0), (1, 1)):
        if dx == 0 and dy == 0:
            src = np.arange(len(occupied))
            dst = src
        else:
            tx = occ_x + dx
            ty = occ_y + dy
            inside = (tx >= 0) & (tx < cells) & (ty >= 0) & (ty < cells)
            target = tx * cells + ty
            slot = np.searchsorted(occupied, target)
            hit = inside & (slot < len(occupied))
            hit[hit] = occupied[slot[hit]] == target[hit]
            src = np.flatnonzero(hit)
            dst = slot[hit]
        pair_counts = counts[src] * counts[dst]
        total = int(pair_counts.sum())
        if total == 0:
            continue
        match = np.repeat(np.arange(len(src)), pair_counts)
        local = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(pair_counts) - pair_counts, pair_counts
        )
        width = np.repeat(counts[dst], pair_counts)
        left_local = local // width
        right_local = local % width
        gu = by_cell[starts[src][match] + left_local]
        gv = by_cell[starts[dst][match] + right_local]
        if dx == 0 and dy == 0:
            forward = left_local < right_local
            gu = gu[forward]
            gv = gv[forward]
        close = ((points[gu] - points[gv]) ** 2).sum(axis=1) <= radius_sq
        parts_u.append(gu[close])
        parts_v.append(gv[close])
    if not parts_u:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(parts_u), np.concatenate(parts_v)


def random_geometric(
    n: int, radius: float, seed: int = 0, backend: str = "legacy"
) -> GeneratedNetwork:
    """A random geometric graph on the unit square (wireless-mesh shape).

    ``n`` points uniform in ``[0, 1)^2``; vertices at Euclidean distance at
    most ``radius`` are adjacent.  The legacy backend is networkx's
    ``random_geometric_graph``.  The fast backend draws the points as
    ``numpy.random.default_rng(seed).random((n, 2))`` -- its first draws, so
    tests can regenerate them -- and finds the close pairs with the cell-grid
    sweep of :func:`_geometric_edges`: ``O(n + candidate pairs)`` instead of
    the ``O(n^2)`` all-pairs check.
    """
    if n < 1:
        raise InvalidParameterError("n must be at least 1")
    if not radius > 0:
        raise InvalidParameterError("radius must be positive")
    if _check_backend(backend) == "fast":
        rng = np.random.default_rng(seed)
        points = rng.random((n, 2))
        u, v = _geometric_edges(points, float(radius))
        return _fast_from_edges(u, v, n)
    return _from_networkx_int_labels(nx.random_geometric_graph(n, radius, seed=seed))


def bipartite_switch(
    ports: int, demand_degree: int, seed: int = 0, backend: str = "legacy"
) -> GeneratedNetwork:
    """A switch-fabric demand instance: random bipartite biregular graph.

    The switch-scheduling workload of the paper's introduction: ``ports``
    input ports, ``ports`` output ports, every port on exactly
    ``demand_degree`` demands.  Structurally :func:`random_bipartite_regular`
    with switch-flavored node identifiers (``("in", i)`` / ``("out", j)``)
    and the same array-native sampler end to end, so million-port instances
    are practical.  Both backends share the single fast stream
    (``numpy.random.default_rng(seed)``); ``backend="legacy"`` materializes
    via ``to_network()``.
    """
    if ports < 1:
        raise InvalidParameterError("ports must be at least 1")
    if demand_degree < 0 or demand_degree > ports:
        raise InvalidParameterError("need 0 <= demand_degree <= ports")
    _check_backend(backend)

    def identifiers() -> Iterable:
        return [("in", i) for i in range(ports)] + [
            ("out", i) for i in range(ports)
        ]

    fast = _fast_random_bipartite_regular(ports, demand_degree, seed, order=identifiers)
    return fast if backend == "fast" else fast.to_network()
