"""Workload graph generators.

These are the graph families the paper motivates or analyses:

* the Figure 1 construction (a clique with pendant vertices) showing that
  bounded neighborhood independence does **not** imply bounded growth,
* line graphs and line graphs of ``r``-hypergraphs (see
  :mod:`repro.graphs.hypergraphs`), the families the edge-coloring results
  reduce to,
* bounded-growth graphs (grids, hypercubes of fixed dimension growth),
* generic benchmark graphs (random regular, Erdos-Renyi, power-law) used by
  the Table 1 / Table 2 sweeps to realize a prescribed maximum degree.

All generators are deterministic given their ``seed`` argument, so benchmark
runs are reproducible.
"""

from __future__ import annotations

import random

import networkx as nx

from repro.exceptions import InvalidParameterError
from repro.local_model.network import Network


def _from_networkx_int_labels(graph: "nx.Graph") -> Network:
    """Relabel nodes to consecutive integers and wrap into a Network."""
    relabeled = nx.convert_node_labels_to_integers(graph, first_label=0, ordering="sorted")
    return Network.from_networkx(relabeled)


def clique_with_pendants(clique_size: int) -> Network:
    """The Figure 1 graph: a clique whose every vertex has one pendant neighbor.

    The graph has ``n = 2 * clique_size`` vertices.  Its neighborhood
    independence is 2 (a clique vertex's neighbors are the rest of the clique,
    pairwise adjacent, plus one pendant), yet every clique vertex has
    ``clique_size - 1 = Omega(Delta)`` independent vertices at distance 2 (the
    other pendants), so the graph is *not* of bounded growth.

    Parameters
    ----------
    clique_size:
        Number of clique vertices (at least 1).
    """
    if clique_size < 1:
        raise InvalidParameterError("clique_size must be at least 1")
    adjacency = {}
    clique = [("clique", i) for i in range(clique_size)]
    for i, node in enumerate(clique):
        neighbors = [clique[j] for j in range(clique_size) if j != i]
        neighbors.append(("pendant", i))
        adjacency[node] = neighbors
        adjacency[("pendant", i)] = [node]
    return Network(adjacency)


def complete_graph(n: int) -> Network:
    """The complete graph ``K_n`` (every pair of vertices adjacent)."""
    if n < 1:
        raise InvalidParameterError("n must be at least 1")
    return Network({i: [j for j in range(n) if j != i] for i in range(n)})


def path_graph(n: int) -> Network:
    """The path on ``n`` vertices."""
    if n < 1:
        raise InvalidParameterError("n must be at least 1")
    return Network({i: [j for j in (i - 1, i + 1) if 0 <= j < n] for i in range(n)})


def cycle_graph(n: int) -> Network:
    """The cycle on ``n`` vertices (``n >= 3``)."""
    if n < 3:
        raise InvalidParameterError("a cycle needs at least 3 vertices")
    return Network({i: [(i - 1) % n, (i + 1) % n] for i in range(n)})


def star_graph(leaves: int) -> Network:
    """The star ``K_{1,leaves}``: one center adjacent to ``leaves`` leaves.

    For ``leaves >= 3`` this is the smallest graph that is *not* claw-free and
    has neighborhood independence equal to ``leaves``.
    """
    if leaves < 1:
        raise InvalidParameterError("a star needs at least one leaf")
    adjacency = {"center": [("leaf", i) for i in range(leaves)]}
    for i in range(leaves):
        adjacency[("leaf", i)] = ["center"]
    return Network(adjacency)


def grid_graph(rows: int, cols: int) -> Network:
    """The ``rows x cols`` grid -- a canonical bounded-growth graph."""
    if rows < 1 or cols < 1:
        raise InvalidParameterError("grid dimensions must be positive")
    return _from_networkx_int_labels(nx.grid_2d_graph(rows, cols))


def hypercube_graph(dimension: int) -> Network:
    """The ``dimension``-dimensional hypercube (``2^dimension`` vertices)."""
    if dimension < 1:
        raise InvalidParameterError("dimension must be at least 1")
    return _from_networkx_int_labels(nx.hypercube_graph(dimension))


def random_regular(n: int, degree: int, seed: int = 0) -> Network:
    """A random ``degree``-regular graph on ``n`` vertices.

    Used by the Table 1 / Table 2 sweeps to realize a prescribed maximum
    degree exactly.  ``n * degree`` must be even and ``degree < n``.
    """
    if degree < 0 or degree >= n:
        raise InvalidParameterError("need 0 <= degree < n for a regular graph")
    if (n * degree) % 2 != 0:
        raise InvalidParameterError("n * degree must be even")
    if degree == 0:
        return Network({i: [] for i in range(n)})
    graph = nx.random_regular_graph(degree, n, seed=seed)
    return _from_networkx_int_labels(graph)


def erdos_renyi(n: int, edge_probability: float, seed: int = 0) -> Network:
    """An Erdos-Renyi random graph ``G(n, p)``."""
    if not 0.0 <= edge_probability <= 1.0:
        raise InvalidParameterError("edge_probability must lie in [0, 1]")
    graph = nx.gnp_random_graph(n, edge_probability, seed=seed)
    return _from_networkx_int_labels(graph)


def power_law_graph(n: int, attachment_edges: int, seed: int = 0) -> Network:
    """A Barabasi-Albert preferential-attachment graph (skewed degrees)."""
    if attachment_edges < 1 or attachment_edges >= n:
        raise InvalidParameterError("need 1 <= attachment_edges < n")
    graph = nx.barabasi_albert_graph(n, attachment_edges, seed=seed)
    return _from_networkx_int_labels(graph)


def random_bipartite_regular(side: int, degree: int, seed: int = 0) -> Network:
    """A random bipartite ``degree``-regular graph on ``2 * side`` vertices.

    Bipartite regular graphs are the classical hard instances for edge
    coloring (switch scheduling / packet routing workloads in the paper's
    introduction): an optimal schedule needs exactly ``degree`` colors.
    """
    if degree < 0 or degree > side:
        raise InvalidParameterError("need 0 <= degree <= side")
    rng = random.Random(seed)
    adjacency = {("left", i): [] for i in range(side)}
    adjacency.update({("right", i): [] for i in range(side)})
    # Union of `degree` random perfect matchings, resampled on collisions.
    used = set()
    for _ in range(degree):
        attempts = 0
        while True:
            attempts += 1
            permutation = list(range(side))
            rng.shuffle(permutation)
            candidate = {(i, permutation[i]) for i in range(side)}
            if not (candidate & used) or attempts > 200:
                break
        for i, j in candidate:
            if (i, j) in used:
                continue
            used.add((i, j))
            adjacency[("left", i)].append(("right", j))
            adjacency[("right", j)].append(("left", i))
    return Network(adjacency)
