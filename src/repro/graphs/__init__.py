"""Graph workloads and structural utilities.

This package provides the graph families the paper's analysis and motivation
refer to (line graphs, line graphs of ``r``-hypergraphs, bounded-growth
graphs, claw-free graphs, the Figure 1 construction), together with the
structural property checkers used by the test-suite and the benchmark
harnesses (neighborhood independence, growth, claws, acyclic orientations).
"""

from repro.graphs.generators import (
    barabasi_albert,
    bipartite_switch,
    clique_with_pendants,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    heavy_tailed_degree_sequence,
    hypercube_graph,
    path_graph,
    planted_degree_sequence,
    power_law_graph,
    random_bipartite_regular,
    random_geometric,
    random_regular,
    star_graph,
)
from repro.graphs.hypergraphs import Hypergraph, hypergraph_line_graph, random_r_hypergraph
from repro.graphs.line_graph import (
    build_line_graph_fast,
    build_line_graph_network,
    line_graph_network,
)
from repro.graphs.orientation import (
    acyclic_orientation_from_coloring,
    is_acyclic_orientation,
    longest_directed_path_length,
    max_out_degree,
)
from repro.graphs.properties import (
    degree_statistics,
    growth_function,
    has_neighborhood_independence_at_most,
    is_claw_free,
    neighborhood_independence,
)

__all__ = [
    "Hypergraph",
    "acyclic_orientation_from_coloring",
    "barabasi_albert",
    "bipartite_switch",
    "build_line_graph_fast",
    "build_line_graph_network",
    "clique_with_pendants",
    "complete_graph",
    "cycle_graph",
    "degree_statistics",
    "erdos_renyi",
    "grid_graph",
    "growth_function",
    "has_neighborhood_independence_at_most",
    "heavy_tailed_degree_sequence",
    "hypercube_graph",
    "hypergraph_line_graph",
    "is_acyclic_orientation",
    "is_claw_free",
    "line_graph_network",
    "longest_directed_path_length",
    "max_out_degree",
    "neighborhood_independence",
    "path_graph",
    "planted_degree_sequence",
    "power_law_graph",
    "random_bipartite_regular",
    "random_geometric",
    "random_regular",
    "star_graph",
]
