"""Structural property checkers.

These implement the definitions of Section 1.2 and Section 3 of the paper:

* the neighborhood independence ``I(G)`` (Definition 3.1) -- the maximum size
  of an independent subset of a single vertex's neighborhood,
* bounded growth -- the number of independent vertices within distance ``r``
  of a vertex,
* claw-freeness -- excluding ``K_{1,3}`` as an induced subgraph, which is
  exactly neighborhood independence at most 2.

Exact neighborhood-independence computation is NP-hard in general, but the
neighborhoods arising in the test workloads are small, and the bounded check
:func:`has_neighborhood_independence_at_most` only needs to search for an
independent set of size ``c + 1``, which is polynomial for constant ``c``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterable, List, Tuple

from repro.local_model.network import Network


def _is_independent(network: Network, vertices: Iterable[Hashable]) -> bool:
    """Whether the given vertices are pairwise non-adjacent."""
    vertex_list = list(vertices)
    for i, u in enumerate(vertex_list):
        for v in vertex_list[i + 1 :]:
            if network.has_edge(u, v):
                return False
    return True


def _max_independent_subset_size(network: Network, candidates: Tuple[Hashable, ...]) -> int:
    """Exact maximum independent set size within ``candidates``.

    Uses a simple branch-and-bound over the candidate set; intended for
    neighborhoods (size ``<= Delta``), not whole graphs.
    """
    candidates = tuple(candidates)
    if not candidates:
        return 0

    adjacency = {
        u: {v for v in candidates if network.has_edge(u, v)} for u in candidates
    }

    best = 0

    def branch(remaining: List[Hashable], chosen: int) -> None:
        nonlocal best
        if chosen > best:
            best = chosen
        if not remaining or chosen + len(remaining) <= best:
            return
        vertex = remaining[0]
        rest = remaining[1:]
        # Branch 1: include `vertex`.
        branch([v for v in rest if v not in adjacency[vertex]], chosen + 1)
        # Branch 2: exclude `vertex`.
        branch(rest, chosen)

    branch(list(candidates), 0)
    return best


def neighborhood_independence(network: Network) -> int:
    """The neighborhood independence ``I(G)`` (Definition 3.1).

    Returns 0 for a graph with no edges (every neighborhood is empty).
    """
    best = 0
    for vertex in network.nodes():
        neighborhood = network.neighbors(vertex)
        if len(neighborhood) <= best:
            continue
        best = max(best, _max_independent_subset_size(network, neighborhood))
    return best


def has_neighborhood_independence_at_most(network: Network, c: int) -> bool:
    """Whether ``I(G) <= c``.

    Cheaper than computing ``I(G)`` exactly: it only searches each
    neighborhood for an independent set of ``c + 1`` vertices and stops at the
    first witness.
    """
    if c < 0:
        return network.max_degree == 0
    for vertex in network.nodes():
        neighborhood = network.neighbors(vertex)
        if len(neighborhood) <= c:
            continue
        for subset in itertools.combinations(neighborhood, c + 1):
            if _is_independent(network, subset):
                return False
    return True


def is_claw_free(network: Network) -> bool:
    """Whether the graph excludes ``K_{1,3}`` as an induced subgraph.

    A graph is claw-free exactly when its neighborhood independence is at
    most 2 (the paper notes the general correspondence between excluding
    ``K_{1,r+1}`` and independence at most ``r``).
    """
    return has_neighborhood_independence_at_most(network, 2)


def growth_function(network: Network, vertex: Hashable, radius: int) -> int:
    """The number of independent vertices within distance ``radius`` of ``vertex``.

    A family of graphs is of bounded growth when this quantity is bounded by a
    function of ``radius`` only; Figure 1's graph violates this at radius 2
    despite having neighborhood independence 2.

    The returned value is the size of a maximal (greedy) independent set among
    the vertices at distance at most ``radius``, which lower-bounds the true
    maximum and is sufficient to certify *unbounded* growth.
    """
    # Breadth-first search up to the radius.
    frontier = {vertex}
    reached = {vertex}
    for _ in range(radius):
        next_frontier = set()
        for node in frontier:
            for neighbor in network.neighbors(node):
                if neighbor not in reached:
                    reached.add(neighbor)
                    next_frontier.add(neighbor)
        frontier = next_frontier
    ball = sorted(reached - {vertex}, key=repr)

    independent: List[Hashable] = []
    for candidate in ball:
        if all(not network.has_edge(candidate, chosen) for chosen in independent):
            independent.append(candidate)
    return len(independent)


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary statistics of a network's degree sequence."""

    num_nodes: int
    num_edges: int
    max_degree: int
    min_degree: int
    average_degree: float


def degree_statistics(network: Network) -> DegreeStatistics:
    """Compute basic degree statistics (used by the benchmark reports)."""
    degrees = [network.degree(node) for node in network.nodes()]
    if not degrees:
        return DegreeStatistics(0, 0, 0, 0, 0.0)
    return DegreeStatistics(
        num_nodes=network.num_nodes,
        num_edges=network.num_edges,
        max_degree=max(degrees),
        min_degree=min(degrees),
        average_degree=sum(degrees) / len(degrees),
    )
