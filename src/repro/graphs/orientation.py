"""Edge orientations.

Section 3 of the paper uses *acyclic orientations of bounded out-degree*: an
orientation assigns a direction to every edge, and Lemma 3.4 shows that a
graph admitting an acyclic orientation with out-degree ``d`` is legally
``(d + 1)``-colorable (and such a coloring is computable distributively by
letting every vertex wait for its out-neighbors, Figure 2).  Lemma 3.5 builds
such an orientation for each color class ``G_i`` of the defective coloring by
orienting every edge towards the endpoint with the smaller ``phi``-color
(ties broken by identifier).

An orientation is represented as a mapping from canonical edges ``(u, v)`` to
the head vertex (the endpoint the edge points *towards*).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Tuple

from repro.exceptions import InvalidParameterError
from repro.local_model.network import Network

#: An orientation: canonical edge -> head (the vertex the edge points to).
Orientation = Dict[Tuple[Hashable, Hashable], Hashable]


def acyclic_orientation_from_coloring(
    network: Network, colors: Mapping[Hashable, int]
) -> Orientation:
    """Orient every edge towards the endpoint with the smaller color.

    Ties are broken towards the endpoint with the smaller unique identifier,
    exactly as in the proof of Lemma 3.5.  The resulting orientation is always
    acyclic, regardless of whether ``colors`` is a legal coloring.
    """
    orientation: Orientation = {}
    for u, v in network.edges():
        cu, cv = colors[u], colors[v]
        if (cu, network.unique_id(u)) < (cv, network.unique_id(v)):
            head = u
        else:
            head = v
        orientation[(u, v)] = head
    return orientation


def out_neighbors(
    network: Network, orientation: Orientation, vertex: Hashable
) -> Tuple[Hashable, ...]:
    """Vertices reached by edges oriented *out of* ``vertex``."""
    result = []
    for u, v in network.edges():
        if vertex not in (u, v):
            continue
        head = orientation[(u, v)]
        if head != vertex:
            result.append(head)
    return tuple(result)


def max_out_degree(network: Network, orientation: Orientation) -> int:
    """The out-degree of the orientation (maximum over all vertices)."""
    out_degree: Dict[Hashable, int] = {node: 0 for node in network.nodes()}
    for edge, head in orientation.items():
        u, v = edge
        tail = v if head == u else u
        out_degree[tail] += 1
    return max(out_degree.values(), default=0)


def is_acyclic_orientation(network: Network, orientation: Orientation) -> bool:
    """Whether the orientation contains no directed cycle."""
    _validate_orientation(network, orientation)
    # Kahn's algorithm on the directed graph defined by the orientation.
    in_degree: Dict[Hashable, int] = {node: 0 for node in network.nodes()}
    successors: Dict[Hashable, list] = {node: [] for node in network.nodes()}
    for edge, head in orientation.items():
        u, v = edge
        tail = v if head == u else u
        successors[tail].append(head)
        in_degree[head] += 1

    queue = [node for node, deg in in_degree.items() if deg == 0]
    visited = 0
    while queue:
        node = queue.pop()
        visited += 1
        for successor in successors[node]:
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                queue.append(successor)
    return visited == network.num_nodes


def longest_directed_path_length(network: Network, orientation: Orientation) -> int:
    """The number of edges on the longest directed path of an acyclic orientation.

    This is the round complexity of the Lemma 3.4 coloring procedure (every
    vertex waits for its out-neighbors before choosing a color).
    """
    if not is_acyclic_orientation(network, orientation):
        raise InvalidParameterError("longest path is only defined for acyclic orientations")

    successors: Dict[Hashable, list] = {node: [] for node in network.nodes()}
    for edge, head in orientation.items():
        u, v = edge
        tail = v if head == u else u
        successors[tail].append(head)

    memo: Dict[Hashable, int] = {}

    def depth(node: Hashable) -> int:
        if node in memo:
            return memo[node]
        memo[node] = 0  # placeholder (graph is acyclic, so no real cycles)
        best = 0
        for successor in successors[node]:
            best = max(best, 1 + depth(successor))
        memo[node] = best
        return best

    return max((depth(node) for node in network.nodes()), default=0)


def _validate_orientation(network: Network, orientation: Orientation) -> None:
    """Check that the orientation covers exactly the network's edges."""
    edges = set(network.edges())
    given = set(orientation.keys())
    if edges != given:
        missing = edges - given
        extra = given - edges
        raise InvalidParameterError(
            f"orientation does not match edge set (missing={len(missing)}, extra={len(extra)})"
        )
    for edge, head in orientation.items():
        if head not in edge:
            raise InvalidParameterError(f"head {head!r} is not an endpoint of edge {edge!r}")
