"""Line-graph construction with explicit edge <-> vertex correspondence.

The line graph ``L(G) = (V'', E'')`` of a graph ``G = (V, E)`` contains a
vertex ``v_e`` for each edge ``e`` of ``G`` and an edge ``(v_e, v_{e'})``
whenever ``e`` and ``e'`` share an endpoint.  The paper's edge-coloring
results are obtained by vertex-coloring ``L(G)``; the key structural facts it
relies on are

* ``I(L(G)) <= 2`` (Lemma 5.1) and more generally ``I(L(H)) <= r`` for an
  ``r``-hypergraph ``H``,
* ``Delta(L(G)) <= 2 (Delta(G) - 1)``,
* the identifier of ``v_e`` for ``e = (u, v)`` with ``Id(u) < Id(v)`` is the
  ordered pair ``(Id(u), Id(v))`` (Lemma 5.2), which keeps identifiers unique.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from repro.local_model.fast_network import as_network
from repro.local_model.line_csr import (  # noqa: F401  (re-exported API)
    LineGraphMeta,
    build_line_graph_fast,
    line_meta_for,
)
from repro.local_model.network import Network

#: The identifier type of a line-graph vertex: the canonical edge of ``G``.
EdgeId = Tuple[Hashable, Hashable]


def canonical_edge(network: Network, u: Hashable, v: Hashable) -> EdgeId:
    """Return the edge ``(u, v)`` ordered by the endpoints' unique identifiers."""
    if network.unique_id(u) <= network.unique_id(v):
        return (u, v)
    return (v, u)


def build_line_graph_network(network: Network) -> Tuple[Network, Dict[EdgeId, int]]:
    """Construct ``L(G)`` as a :class:`~repro.local_model.network.Network`.

    This is the transparent pure-Python constructor, kept as the audit
    reference: the CSR builder
    (:func:`~repro.local_model.line_csr.build_line_graph_fast`, the one the
    edge-coloring pipeline runs on) is property-tested to materialize exactly
    this network.  The returned network's node identifiers are the canonical
    edges of ``G`` (ordered by endpoint unique id).  Unique identifiers of
    the line-graph vertices are assigned by sorting the pairs
    ``(Id(u), Id(v))`` lexicographically, which matches the pair-identifier
    scheme of Lemma 5.2 up to renumbering into ``{1, ..., |E|}``.

    Returns
    -------
    (line_network, edge_ids):
        ``line_network`` is ``L(G)``; ``edge_ids`` maps each canonical edge of
        ``G`` to the unique id of its line-graph vertex.
    """
    network = as_network(network)  # array-built workloads audit through here
    edges = [canonical_edge(network, u, v) for u, v in network.edges()]
    pair_key = {
        edge: (network.unique_id(edge[0]), network.unique_id(edge[1])) for edge in edges
    }
    ordered = sorted(edges, key=lambda edge: pair_key[edge])
    unique_ids = {edge: index + 1 for index, edge in enumerate(ordered)}

    # Two edges of G are adjacent in L(G) iff they share an endpoint.  Build
    # adjacency by grouping edges per endpoint.
    incident: Dict[Hashable, list] = {node: [] for node in network.nodes()}
    for edge in edges:
        incident[edge[0]].append(edge)
        incident[edge[1]].append(edge)

    adjacency: Dict[EdgeId, set] = {edge: set() for edge in edges}
    for node_edges in incident.values():
        for i, e1 in enumerate(node_edges):
            for e2 in node_edges[i + 1 :]:
                adjacency[e1].add(e2)
                adjacency[e2].add(e1)

    line_network = Network(
        {edge: sorted(neigh, key=lambda e: pair_key[e]) for edge, neigh in adjacency.items()},
        unique_ids=unique_ids,
    )
    return line_network, unique_ids


def line_graph_network(network: Network) -> Network:
    """Convenience wrapper returning only the line-graph network."""
    line_network, _ = build_line_graph_network(network)
    return line_network
