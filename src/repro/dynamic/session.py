"""Dynamic recoloring sessions: incremental repair under edge churn.

A :class:`DynamicColoring` wraps a CSR
:class:`~repro.local_model.fast_network.FastNetwork` together with a legal
color column and keeps the coloring legal while the edge set churns.  Updates
arrive as batched raw ``int64`` edge arrays
(:meth:`DynamicColoring.apply_updates`); each batch is processed in three
array-native steps:

1. **CSR patch** -- :meth:`FastNetwork.with_edge_updates` delta-merges the
   removal/insertion keys into the existing (sorted) directed-entry keys and
   rebuilds the CSR with one bincount/cumsum pass; no full symmetrize-lexsort
   of the edge set, no legacy ``Network``.
2. **Conflict detection** -- deletions never create conflicts and the
   pre-state is legal, so every monochromatic edge of the patched graph is a
   freshly inserted one: the batch's canonical insertion pairs are checked
   directly (``colors[u] == colors[v]``), an ``O(|batch|)`` probe instead of
   an ``O(|E|)`` scan over the CSR.
3. **Local repair** -- the *conflict ball* (conflicted vertices plus
   ``ball_radius`` hops of neighborhood; the default radius 0 repairs
   exactly the conflicted vertices, whose induced subgraph is a
   near-matching of the conflict edges) is extracted as a **compact**
   induced sub-view (:meth:`FastNetwork.induced`, ``k`` nodes instead of
   ``n``), the existing vectorized Legal-Color pipeline
   (:func:`repro.core.color_vertices`) recolors it, and the ball-run's color
   classes -- independent sets of the *full* graph, because every edge
   between ball vertices is inside the induced sub-view -- are folded back
   into the global palette class by class: each vertex takes the smallest
   color unused by any of its (frozen or already-realigned) neighbors, a
   single lexsort-and-scan kernel per class.  A repaired vertex therefore
   never exceeds ``deg(v) + 1 <= Delta + 1`` colors, which keeps the
   session's palette bound within every from-scratch bound.

The ``strategy="recompute"`` reference mode applies the identical CSR patch
and then re-colors the whole graph from scratch, so the incremental mode is
*differentially testable* against it on every step: both must be legal, and
the incremental session's palette bound is dominated by the running maximum
of the recompute bounds (``tests/test_dynamic_coloring.py`` locks both down
under hypothesis-driven churn schedules).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.legal_coloring import color_vertices
from repro.exceptions import InvalidParameterError
from repro.local_model.fast_network import FastNetwork, fast_view
from repro.local_model.metrics import RunMetrics
from repro.verification.coloring import assert_legal_vertex_coloring

#: Accepted batch shapes: an ``(k, 2)`` array, a ``(u, v)`` array pair, a
#: sequence of 2-tuples, or ``None`` / empty for "no edges".
EdgeBatch = Union[None, np.ndarray, Tuple[np.ndarray, np.ndarray], Sequence]

_STRATEGIES = ("incremental", "recompute")


def _as_endpoint_arrays(batch: EdgeBatch) -> Tuple[np.ndarray, np.ndarray]:
    """Normalize an update batch to two flat ``int64`` endpoint arrays."""
    if batch is None:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    if isinstance(batch, tuple) and len(batch) == 2:
        u = np.ascontiguousarray(batch[0], dtype=np.int64).ravel()
        v = np.ascontiguousarray(batch[1], dtype=np.int64).ravel()
        if u.shape != v.shape:
            raise InvalidParameterError(
                f"endpoint arrays disagree in length: {len(u)} vs {len(v)}"
            )
        return u, v
    edges = np.ascontiguousarray(batch, dtype=np.int64)
    if edges.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise InvalidParameterError(
            f"an edge batch must have shape (k, 2), got {edges.shape}"
        )
    return edges[:, 0].copy(), edges[:, 1].copy()


@dataclass(frozen=True)
class UpdateReport:
    """What one :meth:`DynamicColoring.apply_updates` batch did.

    Attributes
    ----------
    step:
        1-based index of the batch within the session.
    edges_added, edges_removed:
        Canonical edges actually inserted / actually deleted (duplicates and
        no-ops within the batch excluded).
    conflicts:
        Monochromatic edges detected after the CSR patch.
    repaired_nodes:
        Vertices whose color was reassigned (the conflict ball; 0 when the
        batch created no conflicts, and ``n`` under ``strategy="recompute"``
        whenever the graph was re-colored).
    strategy:
        ``"incremental"`` or ``"recompute"``.
    palette_bound:
        The session's palette guarantee after this batch (monotone).
    fallback_phases:
        Vectorized-engine batched-fallback phase names of the repair run
        (empty on fully vectorized repairs, and for the other engines).
    """

    step: int
    edges_added: int
    edges_removed: int
    conflicts: int
    repaired_nodes: int
    strategy: str
    palette_bound: int
    fallback_phases: Tuple[str, ...] = ()


class DynamicColoring:
    """A long-lived vertex-coloring session over a churning edge set.

    Parameters
    ----------
    network:
        The initial graph -- a :class:`FastNetwork` (array-built or
        compiled) or a legacy :class:`~repro.local_model.network.Network`.
        The node set is fixed for the lifetime of the session; only edges
        churn.
    c:
        Neighborhood-independence bound handed to Procedure Legal-Color
        (conservatively kept valid under churn: inserting edges can only
        be colored against, not analyzed structurally, so pass the bound of
        the workload family).
    quality, epsilon:
        The Theorem 4.8 preset of the underlying Legal-Color runs.
    strategy:
        ``"incremental"`` (default): patch + conflict-ball repair.
        ``"recompute"``: patch + full from-scratch re-coloring -- the
        differential reference mode.
    engine:
        Execution engine of every underlying run (``None`` = process
        default).  The session is deterministic, and engine-equivalent runs
        produce identical columns (golden-locked in
        ``tests/data/dynamic_churn_regular32x8.json``).
    ball_radius:
        How many hops around a conflicted vertex are recolored (>= 0).
        The default 0 recolors exactly the conflicted vertices -- the
        fold-back kernel guarantees legality for any recolored set, so a
        wider ball only trades repair cost for more context in the ball
        run, never correctness.
    """

    def __init__(
        self,
        network,
        *,
        c: int,
        quality: str = "superlinear",
        epsilon: float = 0.75,
        strategy: str = "incremental",
        engine: Optional[str] = None,
        ball_radius: int = 0,
    ) -> None:
        if strategy not in _STRATEGIES:
            raise InvalidParameterError(
                f"unknown strategy {strategy!r}; known strategies: {_STRATEGIES}"
            )
        if ball_radius < 0:
            raise InvalidParameterError("ball_radius must not be negative")
        self.strategy = strategy
        self.ball_radius = ball_radius
        self._c = c
        self._quality = quality
        self._epsilon = epsilon
        self._engine = engine
        self._fast = fast_view(network)
        self._step = 0
        self.metrics = RunMetrics()
        self.reports: List[UpdateReport] = []
        self._fallbacks: List[str] = []
        self._column, self.palette_bound = self._full_recolor(self._fast)

    # ------------------------------------------------------------------ #
    # State accessors
    # ------------------------------------------------------------------ #

    @property
    def network(self) -> FastNetwork:
        """The current (patched) CSR view."""
        return self._fast

    @property
    def color_column(self) -> np.ndarray:
        """The current legal coloring as an ``int64`` column (a copy)."""
        return self._column.copy()

    @property
    def colors(self) -> Dict[Hashable, int]:
        """The current coloring as a node-identifier mapping."""
        return dict(zip(self._fast.order, self._column.tolist()))

    @property
    def fallback_phase_names(self) -> List[str]:
        """All batched-fallback phase names seen by the session's runs."""
        return list(self._fallbacks)

    def verify(self) -> None:
        """Assert the current coloring is legal (vectorized oracle)."""
        assert_legal_vertex_coloring(self._fast, self._column)

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def apply_updates(
        self, added: EdgeBatch = None, removed: EdgeBatch = None
    ) -> UpdateReport:
        """Apply one batch of edge insertions/deletions and repair.

        ``added`` / ``removed`` hold raw ``int64`` endpoint pairs over the
        session's fixed dense node indices.  Duplicate entries, insertions of
        present edges and removals of absent edges are no-ops; removals apply
        before insertions; empty (or ``None``) batches are legal and cheap.
        Returns the batch's :class:`UpdateReport` (also appended to
        :attr:`reports`).
        """
        add_u, add_v = _as_endpoint_arrays(added)
        rem_u, rem_v = _as_endpoint_arrays(removed)
        before_edges = self._fast.num_edges
        if len(add_u) or len(rem_u):
            patched = self._fast.with_edge_updates(add_u, add_v, rem_u, rem_v)
        else:
            patched = self._fast
        removed_count = self._count_removed(self._fast, rem_u, rem_v)
        added_count = patched.num_edges - before_edges + removed_count
        self._fast = patched
        self._step += 1

        if self.strategy == "recompute":
            self._column, bound = self._full_recolor(patched)
            self.palette_bound = max(self.palette_bound, bound)
            report = UpdateReport(
                step=self._step,
                edges_added=added_count,
                edges_removed=removed_count,
                conflicts=0,
                repaired_nodes=patched.num_nodes,
                strategy=self.strategy,
                palette_bound=self.palette_bound,
            )
            self.reports.append(report)
            return report

        # Only freshly inserted edges can be monochromatic (the pre-state is
        # legal and deletions never create conflicts), so probing the batch's
        # canonical insertion pairs is both exhaustive and O(|batch|).
        if len(add_u):
            n = patched.num_nodes
            low = np.minimum(add_u, add_v)
            high = np.maximum(add_u, add_v)
            candidates = np.unique(low * n + high)
            cand_u, cand_v = candidates // n, candidates % n
            mono = self._column[cand_u] == self._column[cand_v]
            conflict_u, conflict_v = cand_u[mono], cand_v[mono]
        else:
            conflict_u = conflict_v = np.zeros(0, dtype=np.int64)
        num_conflicts = len(conflict_u)
        repaired = 0
        fallback: Tuple[str, ...] = ()
        if num_conflicts:
            repaired, fallback = self._repair(conflict_u, conflict_v)
        report = UpdateReport(
            step=self._step,
            edges_added=added_count,
            edges_removed=removed_count,
            conflicts=num_conflicts,
            repaired_nodes=repaired,
            strategy=self.strategy,
            palette_bound=self.palette_bound,
            fallback_phases=fallback,
        )
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    @staticmethod
    def _count_removed(
        before: FastNetwork, rem_u: np.ndarray, rem_v: np.ndarray
    ) -> int:
        """How many of the removal pairs actually existed before the patch."""
        if not len(rem_u):
            return 0
        n = before.num_nodes
        keys = before.edge_keys_np
        low = np.minimum(rem_u, rem_v)
        high = np.maximum(rem_u, rem_v)
        asked = np.unique(low * n + high)
        slots = np.searchsorted(keys, asked)
        inside = slots < len(keys)
        return int((keys[slots[inside]] == asked[inside]).sum())

    def _full_recolor(self, fast: FastNetwork) -> Tuple[np.ndarray, int]:
        """From-scratch Legal-Color over the whole current graph."""
        result = color_vertices(
            fast,
            c=self._c,
            quality=self._quality,
            epsilon=self._epsilon,
            engine=self._engine,
        )
        self.metrics.merge(result.metrics)
        self._fallbacks.extend(result.metrics.fallback_phase_names)
        column = result.color_column
        if column is None:  # pragma: no cover - every driver emits a column
            column = np.fromiter(
                (result.colors[node] for node in fast.order),
                dtype=np.int64,
                count=fast.num_nodes,
            )
        return np.ascontiguousarray(column, dtype=np.int64), result.palette

    def _repair(
        self, conflict_u: np.ndarray, conflict_v: np.ndarray
    ) -> Tuple[int, Tuple[str, ...]]:
        """Recolor the conflict ball; returns (#recolored, fallback phases)."""
        fast = self._fast
        indptr, indices, degrees = fast.indptr_np, fast.indices_np, fast.degrees_np
        ball = np.zeros(fast.num_nodes, dtype=bool)
        ball[conflict_u] = True
        ball[conflict_v] = True
        # Grow by gathering the ball members' adjacency slices -- O(volume
        # of the ball) per hop, never an O(|E|) scan of the whole CSR.
        for _ in range(self.ball_radius):
            seeds = np.flatnonzero(ball)
            counts = degrees[seeds]
            total = int(counts.sum())
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            ball[indices[np.repeat(indptr[seeds], counts) + offsets]] = True

        sub, nodes = fast.induced(ball)
        result = color_vertices(
            sub,
            c=self._c,
            quality=self._quality,
            epsilon=self._epsilon,
            engine=self._engine,
        )
        self.metrics.merge(result.metrics)
        fallback = tuple(result.metrics.fallback_phase_names)
        self._fallbacks.extend(fallback)
        ball_colors = result.color_column

        # Fold the ball coloring into the global palette class by class.
        # Each ball color class is an independent set of the full graph
        # (every G-edge between ball vertices is inside the induced view),
        # so its members can be realigned simultaneously: each takes the
        # smallest color missing from its current neighbor colors, which is
        # at most deg(v) + 1 and never collides within the class.
        for klass in np.unique(ball_colors):
            members = nodes[ball_colors == klass]
            self._column[members] = self._smallest_missing(members)
        self.palette_bound = max(self.palette_bound, fast.max_degree + 1)
        return len(nodes), fallback

    def _smallest_missing(self, members: np.ndarray) -> np.ndarray:
        """Per-member smallest positive color unused by its neighbors."""
        fast = self._fast
        indptr, indices = fast.indptr_np, fast.indices_np
        counts = fast.degrees_np[members]
        total = int(counts.sum())
        if total == 0:
            return np.ones(len(members), dtype=np.int64)
        owner = np.repeat(np.arange(len(members), dtype=np.int64), counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        entries = np.repeat(indptr[members], counts) + offsets
        neighbor_colors = self._column[indices[entries]]

        by_owner_color = np.lexsort((neighbor_colors, owner))
        oc = owner[by_owner_color]
        cc = neighbor_colors[by_owner_color]
        distinct = np.empty(len(oc), dtype=bool)
        distinct[0] = True
        distinct[1:] = (oc[1:] != oc[:-1]) | (cc[1:] != cc[:-1])
        oc, cc = oc[distinct], cc[distinct]
        group_sizes = np.bincount(oc, minlength=len(members))
        starts = np.cumsum(group_sizes) - group_sizes
        rank = np.arange(len(oc), dtype=np.int64) - starts[oc]
        candidate = rank + 1
        # Default: all of 1..k are taken, so the answer is k + 1; a gap at
        # rank r means color r + 1 is free -- take the first such gap.
        chosen = group_sizes + 1
        gap = cc != candidate
        np.minimum.at(chosen, oc[gap], candidate[gap])
        return chosen.astype(np.int64)
