"""Dynamic recoloring under edge churn (incremental repair vs. recompute).

See :mod:`repro.dynamic.session` for the full execution model.  Quickstart::

    from repro import graphs
    from repro.dynamic import DynamicColoring

    fast = graphs.random_regular(1024, 8, seed=1, backend="fast")
    session = DynamicColoring(fast, c=8, engine="vectorized")
    report = session.apply_updates(added=[[0, 5], [3, 9]], removed=[[0, 1]])
    session.verify()  # masked-CSR legality oracle
"""

from repro.dynamic.session import DynamicColoring, UpdateReport

__all__ = ["DynamicColoring", "UpdateReport"]
