"""The reliability substrate: fault injection + graceful engine degradation.

The paper's LOCAL-model algorithms are designed for unreliable distributed
settings; this package gives the *execution layer* the same discipline, on
one machine first, where every failure mode is deterministic and testable:

* :mod:`repro.resilience.faults` -- a seedable :class:`FaultPlan` /
  :class:`FaultInjector` pair that makes scenario workers crash, hang, raise,
  corrupt their payloads, or lose their compiled-kernel backend at chosen
  sweep positions and attempts, env-propagated so process-pool runs are
  injectable;
* :mod:`repro.resilience.degrade` -- the engine degradation chain
  (compiled -> vectorized -> batched -> reference) that re-runs work on the
  next bit-identical engine when one fails as infrastructure.

The hardened :class:`~repro.experiments.ExperimentRunner` (retries, soft
timeouts, broken-pool recovery, write-through checkpointing) consumes both;
the distributed runner and the serving loop on the roadmap reuse the same
pieces.
"""

from repro.resilience.degrade import (
    DEGRADE_CHAIN,
    DegradedRun,
    degrade_path,
    run_with_degradation,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FAULT_PLAN_ENV,
    WORKER_FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
)

__all__ = [
    "DEGRADE_CHAIN",
    "DegradedRun",
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "WORKER_FAULT_KINDS",
    "degrade_path",
    "run_with_degradation",
]
