"""Deterministic, seedable fault injection for experiment sweeps.

A :class:`FaultPlan` is plain data -- a tuple of :class:`FaultSpec` entries,
each naming a sweep position (the scenario's index in the ``run`` call), a
fault kind, and how many execution attempts it should sabotage.  Plans are
JSON round-trippable so the :class:`~repro.experiments.ExperimentRunner` can
propagate them into process-pool workers through the ``REPRO_FAULT_PLAN``
environment variable: a worker rebuilds the injector with
:meth:`FaultInjector.from_env` and consults it around each scenario
execution.  Because the plan addresses ``(index, attempt)`` pairs and every
kind is deterministic, a faulted sweep is exactly reproducible -- the
foundation of the fault-matrix test suite.

Fault kinds
-----------

``"crash"``
    Kill the worker process with ``os._exit`` (breaking the process pool);
    in-process execution raises :class:`InjectedFaultError` instead, since
    exiting the caller's interpreter is never acceptable there.
``"hang"``
    Sleep for ``hang_seconds`` before completing normally -- long enough to
    trip the runner's soft timeout when one is configured.
``"error"``
    Raise :class:`InjectedFaultError` (a clean, picklable worker exception).
``"corrupt"``
    Complete normally but mutate the result payload *after* its integrity
    digest was computed, so the parent detects the corruption and retries.
``"lose_backend"``
    Install a poisoned compiled-kernel backend whose every kernel raises
    :class:`~repro.exceptions.EngineFailure`, simulating a backend that
    disappears mid-run; the engine degradation chain then re-runs the
    scenario on the next engine down.

Worker-level kinds (:data:`WORKER_FAULT_KINDS`) target the ``"workdir"``
distributed backend's whole-worker failure modes; they are fired by
:meth:`FaultInjector.worker_fault` in :mod:`repro.experiments.worker` and
are inert everywhere else (``fire_before_run`` ignores them):

``"worker_die"``
    Kill the worker process with ``os._exit`` *while it holds a lease*, so
    the coordinator must detect the death (expired lease + stale heartbeat)
    and reassign the task.
``"worker_stall"``
    Suppress the worker's heartbeat for ``hang_seconds`` before completing
    normally -- the coordinator reaps the lease as a partition, then a late
    duplicate completion arrives and must be ignored idempotently.
``"lease_steal"``
    Drop the lease before executing (a revoked-but-still-computing worker);
    a second worker can then claim and complete the same task.
``"envelope_corrupt"``
    Complete normally but corrupt the result envelope's payload *after* its
    integrity digest was stamped (and after the verified payload was cached),
    so the coordinator quarantines the envelope and reassigns.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.exceptions import EngineFailure, ReproError

#: Environment variable carrying a JSON fault plan into pool workers.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: The recognized fault kinds, in the order :meth:`FaultPlan.seeded` rolls them.
FAULT_KINDS = (
    "crash",
    "hang",
    "error",
    "corrupt",
    "lose_backend",
    "worker_die",
    "worker_stall",
    "lease_steal",
    "envelope_corrupt",
)

#: The kinds that model whole-worker failures in the distributed backend;
#: :meth:`FaultInjector.fire_before_run` treats them as inert.
WORKER_FAULT_KINDS = ("worker_die", "worker_stall", "lease_steal", "envelope_corrupt")


class InjectedFaultError(ReproError, RuntimeError):
    """An error deliberately raised by the fault injector (always retryable)."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``index`` is the scenario's position in the sweep; the fault fires while
    the runner-side ``attempt`` counter is below ``attempts`` (so with the
    default ``attempts=1`` only the first execution is sabotaged and the
    first retry succeeds).  ``hang_seconds`` applies to ``"hang"`` only.
    """

    index: int
    kind: str
    attempts: int = 1
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known kinds: {FAULT_KINDS}"
            )
        if self.attempts < 1:
            raise ValueError("FaultSpec.attempts must be >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of planned faults, addressable by (index, attempt)."""

    specs: Tuple[FaultSpec, ...] = ()

    def spec_for(self, index: int, attempt: int) -> Optional[FaultSpec]:
        """The fault to fire for this execution, or ``None``."""
        for spec in self.specs:
            if spec.index == index and attempt < spec.attempts:
                return spec
        return None

    def __len__(self) -> int:
        return len(self.specs)

    def to_json(self) -> str:
        """A canonical JSON encoding (the env-propagation wire format)."""
        return json.dumps(
            [
                {
                    "index": spec.index,
                    "kind": spec.kind,
                    "attempts": spec.attempts,
                    "hang_seconds": spec.hang_seconds,
                }
                for spec in self.specs
            ],
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls(
            specs=tuple(
                FaultSpec(
                    index=int(entry["index"]),
                    kind=str(entry["kind"]),
                    attempts=int(entry.get("attempts", 1)),
                    hang_seconds=float(entry.get("hang_seconds", 30.0)),
                )
                for entry in json.loads(text)
            )
        )

    @classmethod
    def seeded(
        cls,
        seed: int,
        num_scenarios: int,
        crash_rate: float = 0.0,
        hang_rate: float = 0.0,
        error_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        lose_backend_rate: float = 0.0,
        worker_die_rate: float = 0.0,
        worker_stall_rate: float = 0.0,
        lease_steal_rate: float = 0.0,
        envelope_corrupt_rate: float = 0.0,
        attempts: int = 1,
        hang_seconds: float = 30.0,
    ) -> "FaultPlan":
        """A reproducible random plan: at most one fault per scenario index.

        Each index rolls one uniform draw against the cumulative rates (in
        :data:`FAULT_KINDS` order), so the same ``seed`` always yields the
        same plan regardless of which rates are zero.
        """
        rates = (
            crash_rate,
            hang_rate,
            error_rate,
            corrupt_rate,
            lose_backend_rate,
            worker_die_rate,
            worker_stall_rate,
            lease_steal_rate,
            envelope_corrupt_rate,
        )
        if sum(rates) > 1.0:
            raise ValueError("fault rates must sum to at most 1.0")
        rng = random.Random(seed)
        specs = []
        for index in range(num_scenarios):
            roll = rng.random()
            cumulative = 0.0
            for kind, rate in zip(FAULT_KINDS, rates):
                cumulative += rate
                if roll < cumulative:
                    specs.append(
                        FaultSpec(
                            index=index,
                            kind=kind,
                            attempts=attempts,
                            hang_seconds=hang_seconds,
                        )
                    )
                    break
        return cls(specs=tuple(specs))


class _LostKernelBackend:
    """A poisoned kernel backend: every kernel access raises EngineFailure."""

    name = "injected-lost-backend"

    def max_threads(self) -> int:
        return 1

    def set_threads(self, count: int) -> None:
        pass

    def __getattr__(self, name: str):
        raise EngineFailure(
            f"injected kernel backend loss (attribute {name!r} is gone)"
        )


class FaultInjector:
    """Activates a :class:`FaultPlan` around scenario executions.

    Pool workers build one with :meth:`from_env` (crashes are real
    ``os._exit`` process deaths there); the serial in-process path passes
    the plan directly, where a crash degrades to a raised
    :class:`InjectedFaultError` so the caller's interpreter survives.
    """

    def __init__(self, plan: FaultPlan, allow_process_exit: bool = False) -> None:
        self.plan = plan
        self.allow_process_exit = allow_process_exit

    @classmethod
    def from_env(cls) -> Optional["FaultInjector"]:
        """The injector described by ``$REPRO_FAULT_PLAN``, or ``None``."""
        raw = os.environ.get(FAULT_PLAN_ENV)
        if not raw:
            return None
        return cls(FaultPlan.from_json(raw), allow_process_exit=True)

    def fire_before_run(self, index: int, attempt: int) -> Optional[Callable[[], None]]:
        """Trigger any pre-execution fault for ``(index, attempt)``.

        Returns a restore callable when the fault installed process-global
        state (the poisoned kernel backend) that must be undone after the
        scenario -- pool workers are reused, so leaking it would sabotage
        innocent scenarios.
        """
        spec = self.plan.spec_for(index, attempt)
        if spec is None:
            return None
        if spec.kind == "crash":
            if self.allow_process_exit:
                os._exit(13)
            raise InjectedFaultError(
                f"injected worker crash at scenario {index}, attempt {attempt}"
            )
        if spec.kind == "hang":
            time.sleep(spec.hang_seconds)
            return None
        if spec.kind == "error":
            raise InjectedFaultError(
                f"injected worker error at scenario {index}, attempt {attempt}"
            )
        if spec.kind == "lose_backend":
            from repro.local_model import kernels

            return kernels.force_backend(
                _LostKernelBackend(), reason="injected backend loss"
            )
        # "corrupt" fires after the run (corrupt_payload); worker-level kinds
        # are handled by the workdir worker around the claim (worker_fault)
        # and are deliberately inert here.
        return None

    def worker_fault(self, index: int, attempt: int) -> Optional[FaultSpec]:
        """The worker-level fault planned for ``(index, attempt)``, if any.

        Consulted by :class:`~repro.experiments.worker.SpoolWorker` after it
        claims a task; kinds outside :data:`WORKER_FAULT_KINDS` stay with
        :meth:`fire_before_run` / :meth:`corrupt_payload`.
        """
        spec = self.plan.spec_for(index, attempt)
        if spec is None or spec.kind not in WORKER_FAULT_KINDS:
            return None
        return spec

    def corrupt_envelope(self, index: int, attempt: int, payload: Dict) -> bool:
        """Mutate ``payload`` for an ``"envelope_corrupt"`` fault; True if fired.

        The workdir analogue of :meth:`corrupt_payload`: called after the
        worker stamped the envelope's integrity digest (and after the good
        payload was written through to the cache), so the coordinator
        detects the corruption, quarantines the envelope, and reassigns.
        """
        spec = self.plan.spec_for(index, attempt)
        if spec is None or spec.kind != "envelope_corrupt":
            return False
        payload["_injected_envelope_corruption"] = f"scenario {index}, attempt {attempt}"
        if "coloring_digest" in payload:
            payload["coloring_digest"] = "f" * 64
        return True

    def corrupt_payload(self, index: int, attempt: int, payload: Dict) -> bool:
        """Mutate ``payload`` in place for a ``"corrupt"`` fault; True if fired.

        Called *after* the worker computed the payload's integrity digest, so
        the mutation is detectable (and retried) by the parent.
        """
        spec = self.plan.spec_for(index, attempt)
        if spec is None or spec.kind != "corrupt":
            return False
        payload["_injected_corruption"] = f"scenario {index}, attempt {attempt}"
        if "coloring_digest" in payload:
            payload["coloring_digest"] = "0" * 64
        return True
