"""Graceful engine degradation: compiled -> vectorized -> batched -> reference.

All four execution engines are bit-identical by contract (enforced by the
engine-equivalence suite), so when one of them breaks as *infrastructure* --
a kernel backend whose shared library vanished, a poisoned ctypes handle, an
injected fault -- the correct recovery is simply to re-run the same work on
the next engine down the chain instead of failing the caller.  The chain is
ordered fastest-first, so a degraded run pays a performance price, never a
correctness one.

:func:`run_with_degradation` is the single wrapper implementing this policy.
It recovers only from :class:`~repro.exceptions.EngineFailure` (the marker
class for infrastructure breakage); algorithmic errors propagate unchanged,
because re-running an invalid parameterization on a slower engine cannot fix
it.  Every abandoned engine is recorded on the returned :class:`DegradedRun`
so callers can surface the degradation in ``RunMetrics`` (the
``degraded_engine_names`` field) and in ``PortfolioDecision.degraded_from``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Tuple, Type

from repro.exceptions import EngineFailure

#: Fastest-first fallback order.  ``"reference"`` is the end of the line: it
#: has no kernels, no numpy fast paths, and no backend to lose.
DEGRADE_CHAIN: Tuple[str, ...] = ("compiled", "vectorized", "batched", "reference")


def degrade_path(engine: str, chain: Tuple[str, ...] = DEGRADE_CHAIN) -> Tuple[str, ...]:
    """The engines to try for ``engine``, in order: itself, then its fallbacks.

    An engine outside ``chain`` gets no fallback -- it is tried alone, so
    custom engines never silently produce results on a different path.
    """
    if engine in chain:
        return chain[chain.index(engine):]
    return (engine,)


@dataclass(frozen=True)
class DegradedRun:
    """The outcome of a possibly-degraded execution.

    ``result`` is whatever the wrapped callable returned; ``engine`` is the
    engine that actually produced it; ``failures`` records each abandoned
    engine with a one-line account of why it failed, in degradation order.
    """

    result: Any
    engine: str
    failures: Tuple[Tuple[str, str], ...] = ()

    @property
    def degraded(self) -> bool:
        return bool(self.failures)

    @property
    def degraded_from(self) -> Tuple[str, ...]:
        """The abandoned engine names, fastest first."""
        return tuple(name for name, _ in self.failures)

    def record_on_metrics(self, metrics) -> None:
        """Append the abandoned engines to ``metrics.degraded_engine_names``."""
        if self.failures:
            metrics.degraded_engine_names.extend(self.degraded_from)


def run_with_degradation(
    invoke: Callable[[str], Any],
    engine: str,
    chain: Tuple[str, ...] = DEGRADE_CHAIN,
    recoverable: Tuple[Type[BaseException], ...] = (EngineFailure,),
) -> DegradedRun:
    """Run ``invoke(engine_name)``, degrading down ``chain`` on engine failure.

    ``invoke`` must be restartable from scratch (every engine run recomputes
    the full result; there is no partial-state handoff between engines --
    bit-identical outputs make that unnecessary).  Only ``recoverable``
    exceptions trigger degradation; when the last engine in the path fails
    too, an :class:`EngineFailure` chaining the final cause is raised with
    the full failure history in its message.
    """
    path = degrade_path(engine, chain)
    failures = []
    for position, name in enumerate(path):
        try:
            return DegradedRun(
                result=invoke(name), engine=name, failures=tuple(failures)
            )
        except recoverable as error:
            failures.append((name, f"{type(error).__name__}: {error}"))
            if position == len(path) - 1:
                raise EngineFailure(
                    "every engine in the degrade chain failed: "
                    + "; ".join(f"{n}: {reason}" for n, reason in failures)
                ) from error
    raise AssertionError("unreachable: degrade path is never empty")
