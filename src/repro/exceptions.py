"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses are raised by the
simulator, the graph utilities, and the coloring verifiers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class InvalidParameterError(ReproError, ValueError):
    """An algorithm was invoked with parameters outside its documented domain.

    For example, Procedure Defective-Color requires ``b >= 1`` and
    ``b * p <= Lambda``; violating either constraint raises this error.
    """


class SimulationError(ReproError, RuntimeError):
    """The synchronous round simulator detected an inconsistency.

    Typical causes are a node attempting to message a non-neighbor, or a
    phase returning malformed messages.
    """


class RoundLimitExceeded(SimulationError):
    """A phase did not terminate within its declared round budget.

    Every :class:`~repro.local_model.algorithm.SynchronousPhase` declares a
    safety bound on the number of rounds it may take.  Exceeding the bound
    almost always indicates a bug in the phase implementation (for instance,
    a deadlock in a wait-for-neighbors protocol), so the scheduler aborts
    instead of looping forever.
    """


class EngineFailure(ReproError, RuntimeError):
    """An execution engine or kernel backend failed as *infrastructure*.

    Raised when a scheduler or compiled-kernel backend breaks at construction
    or mid-run for reasons unrelated to the algorithm itself (a lost shared
    library, a poisoned ctypes handle, an injected fault).  This is the
    exception class the resilience layer's engine degradation chain
    (:func:`repro.resilience.run_with_degradation`) recovers from by re-running
    the work on the next engine down the chain; algorithmic errors
    (:class:`InvalidParameterError`, :class:`SimulationError`, ...) are *not*
    recoverable this way and propagate unchanged.
    """


class ColoringError(ReproError):
    """A produced coloring violates a property it was required to satisfy.

    Raised by the verification oracles in :mod:`repro.verification` when a
    coloring is not legal, exceeds its palette, or exceeds its defect bound.
    """


class GraphPropertyError(ReproError, ValueError):
    """An input graph does not satisfy a structural precondition.

    For example, algorithms that assume neighborhood independence at most
    ``c`` raise this error when verification is requested and the input graph
    violates the assumption.
    """


class HypergraphError(ReproError, ValueError):
    """An invalid hypergraph construction was attempted.

    For example, adding a hyperedge with more than ``r`` vertices to an
    ``r``-bounded hypergraph.
    """
