"""Luby-style randomized coloring: the randomized baseline of Table 2.

Every still-uncolored vertex picks a uniformly random candidate color from
the part of its palette not yet taken by finished neighbors and keeps it if
no *competing* (still-uncolored) neighbor picked the same candidate in the
same round.  With a palette of ``Delta + 1`` colors the algorithm terminates
in ``O(log n)`` rounds with high probability; it stands in for the randomized
``(2 Delta - 1)``-edge-coloring / ``(Delta + 1)``-vertex-coloring baselines
([29], [18]) the paper compares against in Table 2.

The randomness is derived from ``(seed, unique_id, round)``, so runs are
reproducible and still independent across vertices.  The phase carries a
``vector_run`` kernel (engine ``"vectorized"``): one taken-color bitmask per
node, conflict detection as CSR scatter ops, and the per-node draws batched
through :class:`~repro.local_model.rng_kernel.StringSeededDraws` -- the
bit-exact replication of ``random.Random(key).choice``.  The three engines
produce identical colorings, states and metrics (the equivalence suite and
golden fixtures lock this down).
"""

from __future__ import annotations

import random
import warnings
from bisect import bisect_left
from typing import Any, Dict, Hashable, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.local_model.algorithm import BroadcastPhase, LocalView
from repro.local_model.engine import make_scheduler
from repro.local_model.fast_network import fast_view
from repro.verification.coloring import NetworkLike
from repro.local_model.line_csr import build_line_graph_fast
from repro.local_model.rng_kernel import StringSeededDraws
from repro.local_model.state_table import StateTable
from repro.core.edge_coloring import EdgeColoringResult
from repro.core.legal_coloring import LegalColoringResult
from repro.local_model.line_graph_sim import apply_lemma_5_2_accounting
from repro.local_model.metrics import RunMetrics


class LubyRandomColoringPhase(BroadcastPhase):
    """One phase implementing the trial-and-keep randomized coloring."""

    supports_vectorized = True

    def __init__(
        self, palette: int, seed: int = 0, output_key: str = "luby_color"
    ) -> None:
        if palette < 1:
            raise InvalidParameterError("palette must be at least 1")
        self.name = f"luby[{palette}]"
        self.palette = palette
        self.seed = seed
        self.output_key = output_key

    def initialize(self, view: LocalView, state: Dict[str, Any]) -> None:
        state["_luby_final"] = None
        state["_luby_taken"] = set()
        # The complement of _luby_taken within {1..palette}, kept sorted and
        # maintained *incrementally* as neighbor finals arrive: rebuilding it
        # every round per node would make big line-graph runs quadratic in
        # the palette.  Same contents and order as the rebuilt list, so the
        # rng.choice draws -- hence the whole run -- are bit-identical.
        state["_luby_available"] = list(range(1, self.palette + 1))

    def broadcast(self, view: LocalView, state: Dict[str, Any], round_index: int) -> Any:
        if state["_luby_final"] is not None:
            # Announce the final color one last time, then halt.
            return {"final": state["_luby_final"]}
        available = state["_luby_available"]
        rng = random.Random(f"{self.seed}:{view.unique_id}:{round_index}")
        state["_luby_candidate"] = rng.choice(available) if available else None
        return {"candidate": state["_luby_candidate"]}

    def receive(
        self,
        view: LocalView,
        state: Dict[str, Any],
        inbox: Mapping[Hashable, Any],
        round_index: int,
    ) -> bool:
        if state["_luby_final"] is not None:
            state[self.output_key] = state["_luby_final"]
            # Drop the per-round scratch state at halt: on big palettes the
            # taken/available structures dominate the final table otherwise.
            state.pop("_luby_taken", None)
            state.pop("_luby_available", None)
            state.pop("_luby_candidate", None)
            return True

        candidate = state.get("_luby_candidate")
        taken = state["_luby_taken"]
        available = state["_luby_available"]
        for payload in inbox.values():
            final = payload.get("final")
            if final is not None and final not in taken:
                taken.add(final)
                at = bisect_left(available, final)
                if at < len(available) and available[at] == final:
                    available.pop(at)

        conflict = candidate is None or any(
            payload.get("candidate") == candidate for payload in inbox.values()
        )
        if not conflict and candidate not in taken:
            state["_luby_final"] = candidate
        return False

    def max_rounds(self, n: int, max_degree: int) -> int:
        # O(log n) w.h.p.; the generous bound below keeps the safety margin.
        return 64 + 16 * max(1, n).bit_length()

    # ------------------------------------------------------------------ #
    # Vectorized kernel
    # ------------------------------------------------------------------ #

    def vector_run(self, ctx) -> None:
        """The whole trial-and-keep loop as array ops over the CSR.

        Mirrors the scalar schedule exactly: a node that keeps its candidate
        in round ``r`` announces ``{"final": c}`` in round ``r + 1`` and
        halts in that round's receive *without* reading its inbox -- so its
        taken set freezes at the end of round ``r``, which the kernel
        realizes by only ever updating rows of still-undecided nodes.  The
        draws delegate to :class:`StringSeededDraws`, whose outputs equal
        ``random.Random(f"{seed}:{uid}:{round}").choice(available)`` with
        ``available`` the ascending list of untaken palette colors.
        """
        fast = ctx.fast
        n = fast.num_nodes
        palette = self.palette
        degrees = fast.degrees_np
        draws = StringSeededDraws(self.seed, ctx.unique_ids())

        taken = np.zeros((n, palette), dtype=bool)
        final = np.zeros(n, dtype=np.int64)
        candidate = np.zeros(n, dtype=np.int64)  # 0 encodes "no candidate"
        undecided = np.arange(n, dtype=np.int64)
        undecided_mask = np.ones(n, dtype=bool)
        announce = np.zeros(0, dtype=np.int64)

        messages = 0
        round_index = 0
        while len(undecided) or len(announce):
            round_index += 1
            ctx.check_round_budget(round_index)
            # Every live node (undecided + announcing) broadcasts one
            # two-word payload to each neighbor this round.
            messages += int(degrees[undecided].sum()) + int(degrees[announce].sum())

            # --- broadcast: undecided nodes draw from their free colors --- #
            free = ~taken[undecided]
            free_counts = free.sum(axis=1)
            candidate[undecided] = 0
            drawing = free_counts > 0
            lanes = undecided[drawing]
            if len(lanes):
                picks = draws.draw(lanes, free_counts[drawing], round_index)
                free_rows = free[drawing]
                ranks = np.cumsum(free_rows, axis=1)
                hits = free_rows & (ranks == (picks + 1)[:, None])
                candidate[lanes] = np.argmax(hits, axis=1) + 1

            # --- receive: neighbor finals first (undecided rows only) --- #
            if len(announce):
                local, neighbors = ctx.gather_neighbors(announce)
                hit = undecided_mask[neighbors]
                taken[neighbors[hit], final[announce[local[hit]]] - 1] = True

            # --- conflicts: equal candidates among competing neighbors --- #
            local, neighbors = ctx.gather_neighbors(undecided)
            mine = candidate[undecided[local]]
            clash = (mine != 0) & (candidate[neighbors] == mine)
            conflict = np.zeros(len(undecided), dtype=bool)
            conflict[local[clash]] = True

            mine = candidate[undecided]
            keep = (mine != 0) & ~conflict
            keep &= ~taken[undecided, np.maximum(mine - 1, 0)]
            deciders = undecided[keep]
            final[deciders] = mine[keep]
            # Decided nodes announce {"final": c} next round: their payload
            # has no "candidate" entry, so they stop clashing immediately.
            candidate[deciders] = 0
            undecided_mask[deciders] = False
            announce = deciders
            undecided = undecided[~keep]

        ctx.charge(
            round_index, messages, 2 * messages, 2 if messages else 0
        )

        # --- final per-node states, bit-identical to the scalar engines --- #
        # The scalar receive pops the taken/available/candidate scratch keys
        # at halt, so the terminal state is exactly these two columns.
        ctx.write_column(self.output_key, final)
        ctx.write_column("_luby_final", final)


def _run_phase(
    network: NetworkLike, phase: LubyRandomColoringPhase, engine: Optional[str]
) -> Tuple[np.ndarray, RunMetrics, Any]:
    """Run the phase table-native and return (color column, metrics, fast)."""
    fast = fast_view(network)
    scheduler = make_scheduler(fast, engine=engine)
    table, metrics = scheduler.run_table(phase, StateTable(fast.num_nodes))
    if fast.num_nodes == 0:
        return np.zeros(0, dtype=np.int64), metrics, fast
    return table.get_ints(phase.output_key), metrics, fast


def luby_vertex_coloring(
    network: NetworkLike,
    palette: int | None = None,
    seed: int = 0,
    engine: Optional[str] = None,
) -> LegalColoringResult:
    """Randomized ``(Delta + 1)``-vertex-coloring of ``network``.

    Accepts a :class:`~repro.local_model.network.Network` or a
    :class:`~repro.local_model.fast_network.FastNetwork` and returns a
    :class:`~repro.core.legal_coloring.LegalColoringResult` -- the same
    result shape as :func:`repro.core.legal_coloring.color_vertices`, with
    ``color_column`` in dense node order.  The default palette is
    ``Delta + 1`` with ``Delta`` read off the CSR degree column (no Python
    pass over the adjacency).
    """
    fast = fast_view(network)
    if palette is None:
        palette = fast.max_degree + 1
    phase = LubyRandomColoringPhase(palette=palette, seed=seed)
    column, metrics, fast = _run_phase(fast, phase, engine)
    return LegalColoringResult(
        colors=dict(zip(fast.order, column.tolist())),
        palette=palette,
        metrics=metrics,
        color_column=column,
    )


def luby_vertex_coloring_dict(
    network: NetworkLike,
    palette: int | None = None,
    seed: int = 0,
    engine: Optional[str] = None,
) -> Tuple[Dict[Hashable, int], RunMetrics]:
    """Deprecated pre-1.5 shape of :func:`luby_vertex_coloring`.

    Returns the old ``(colors, metrics)`` tuple; use the result object's
    ``.colors`` / ``.metrics`` instead.
    """
    warnings.warn(
        "luby_vertex_coloring_dict is deprecated; luby_vertex_coloring now "
        "returns a LegalColoringResult with .colors and .metrics",
        DeprecationWarning,
        stacklevel=2,
    )
    result = luby_vertex_coloring(network, palette=palette, seed=seed, engine=engine)
    return result.colors, result.metrics


def luby_edge_coloring(
    network: NetworkLike,
    palette: int | None = None,
    seed: int = 0,
    engine: Optional[str] = None,
) -> EdgeColoringResult:
    """Randomized ``(2 Delta - 1)``-edge-coloring via the line graph.

    Accepts ``Network | FastNetwork``; the line graph is derived CSR-native
    (:func:`~repro.local_model.line_csr.build_line_graph_fast`) and the
    result carries ``color_column`` in the line graph's dense edge order.
    """
    line_fast = build_line_graph_fast(network)
    if palette is None:
        palette = max(1, line_fast.max_degree + 1)
    phase = LubyRandomColoringPhase(palette=palette, seed=seed)
    column, raw_metrics, line_fast = _run_phase(line_fast, phase, engine)
    metrics = apply_lemma_5_2_accounting(network, raw_metrics)
    return EdgeColoringResult(
        edge_colors=dict(zip(line_fast.order, column.tolist())),
        palette=palette,
        metrics=metrics,
        route="baseline-luby",
        line_graph_max_degree=line_fast.max_degree,
        color_column=column,
    )
