"""Luby-style randomized coloring: the randomized baseline of Table 2.

Every still-uncolored vertex picks a uniformly random candidate color from
the part of its palette not yet taken by finished neighbors and keeps it if
no *competing* (still-uncolored) neighbor picked the same candidate in the
same round.  With a palette of ``Delta + 1`` colors the algorithm terminates
in ``O(log n)`` rounds with high probability; it stands in for the randomized
``(2 Delta - 1)``-edge-coloring / ``(Delta + 1)``-vertex-coloring baselines
([29], [18]) the paper compares against in Table 2.

The randomness is derived from ``(seed, unique_id, round)``, so runs are
reproducible and still independent across vertices.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Any, Dict, Hashable, Mapping, Optional, Tuple

from repro.exceptions import InvalidParameterError
from repro.local_model.algorithm import BroadcastPhase, LocalView
from repro.local_model.engine import make_scheduler
from repro.local_model.network import Network
from repro.graphs.line_graph import build_line_graph_network
from repro.core.edge_coloring import EdgeColoringResult
from repro.local_model.line_graph_sim import apply_lemma_5_2_accounting
from repro.local_model.metrics import RunMetrics


class LubyRandomColoringPhase(BroadcastPhase):
    """One phase implementing the trial-and-keep randomized coloring."""

    def __init__(
        self, palette: int, seed: int = 0, output_key: str = "luby_color"
    ) -> None:
        if palette < 1:
            raise InvalidParameterError("palette must be at least 1")
        self.name = f"luby[{palette}]"
        self.palette = palette
        self.seed = seed
        self.output_key = output_key

    def initialize(self, view: LocalView, state: Dict[str, Any]) -> None:
        state["_luby_final"] = None
        state["_luby_taken"] = set()
        # The complement of _luby_taken within {1..palette}, kept sorted and
        # maintained *incrementally* as neighbor finals arrive: rebuilding it
        # every round per node would make big line-graph runs quadratic in
        # the palette.  Same contents and order as the rebuilt list, so the
        # rng.choice draws -- hence the whole run -- are bit-identical.
        state["_luby_available"] = list(range(1, self.palette + 1))

    def broadcast(self, view: LocalView, state: Dict[str, Any], round_index: int) -> Any:
        if state["_luby_final"] is not None:
            # Announce the final color one last time, then halt.
            return {"final": state["_luby_final"]}
        available = state["_luby_available"]
        rng = random.Random(f"{self.seed}:{view.unique_id}:{round_index}")
        state["_luby_candidate"] = rng.choice(available) if available else None
        return {"candidate": state["_luby_candidate"]}

    def receive(
        self,
        view: LocalView,
        state: Dict[str, Any],
        inbox: Mapping[Hashable, Any],
        round_index: int,
    ) -> bool:
        if state["_luby_final"] is not None:
            state[self.output_key] = state["_luby_final"]
            return True

        candidate = state.get("_luby_candidate")
        taken = state["_luby_taken"]
        available = state["_luby_available"]
        for payload in inbox.values():
            final = payload.get("final")
            if final is not None and final not in taken:
                taken.add(final)
                at = bisect_left(available, final)
                if at < len(available) and available[at] == final:
                    available.pop(at)

        conflict = candidate is None or any(
            payload.get("candidate") == candidate for payload in inbox.values()
        )
        if not conflict and candidate not in taken:
            state["_luby_final"] = candidate
        return False

    def max_rounds(self, n: int, max_degree: int) -> int:
        # O(log n) w.h.p.; the generous bound below keeps the safety margin.
        return 64 + 16 * max(1, n).bit_length()


def luby_vertex_coloring(
    network: Network,
    palette: int | None = None,
    seed: int = 0,
    engine: Optional[str] = None,
) -> Tuple[Dict[Hashable, int], RunMetrics]:
    """Randomized ``(Delta + 1)``-vertex-coloring; returns (colors, metrics)."""
    if palette is None:
        palette = network.max_degree + 1
    phase = LubyRandomColoringPhase(palette=palette, seed=seed)
    result = make_scheduler(network, engine=engine).run(phase)
    return result.extract(phase.output_key), result.metrics


def luby_edge_coloring(
    network: Network,
    palette: int | None = None,
    seed: int = 0,
    engine: Optional[str] = None,
) -> EdgeColoringResult:
    """Randomized ``(2 Delta - 1)``-edge-coloring via the line graph."""
    line_network, _ = build_line_graph_network(network)
    if palette is None:
        palette = max(1, line_network.max_degree + 1)
    phase = LubyRandomColoringPhase(palette=palette, seed=seed)
    result = make_scheduler(line_network, engine=engine).run(phase)
    metrics = apply_lemma_5_2_accounting(network, result.metrics)
    return EdgeColoringResult(
        edge_colors=result.extract(phase.output_key),
        palette=palette,
        metrics=metrics,
        route="baseline-luby",
        line_graph_max_degree=line_network.max_degree,
    )
