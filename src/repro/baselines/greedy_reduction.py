"""The folklore class-by-class edge-coloring baseline (``O(Delta^2)`` rounds).

Vertex-color the line graph with Linial's algorithm and then remove one color
class per round until ``Delta(L(G)) + 1`` colors remain.  This is the
simplest correct deterministic edge-coloring algorithm; it is dominated by
the Panconesi-Rizzi-style baseline and by the paper's algorithms, and serves
as a sanity yardstick in the benchmark reports.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines._line_pipeline import run_line_graph_delta_plus_one
from repro.core.edge_coloring import EdgeColoringResult
from repro.verification.coloring import NetworkLike


def greedy_reduction_edge_coloring(
    network: NetworkLike, engine: Optional[str] = None
) -> EdgeColoringResult:
    """A legal ``(2 Delta - 1)``-edge-coloring via one-class-per-round reduction.

    Accepts ``Network | FastNetwork``; ``Delta(L(G))`` comes from the CSR
    degree column of the array-built line graph, and the result carries
    ``color_column`` over the canonical edges in pair-key order.
    """
    return run_line_graph_delta_plus_one(
        network,
        output_key="_greedy_color",
        use_kuhn_wattenhofer=False,
        route="baseline-greedy-reduction",
        engine=engine,
    )
