"""The folklore class-by-class edge-coloring baseline (``O(Delta^2)`` rounds).

Vertex-color the line graph with Linial's algorithm and then remove one color
class per round until ``Delta(L(G)) + 1`` colors remain.  This is the
simplest correct deterministic edge-coloring algorithm; it is dominated by
the Panconesi-Rizzi-style baseline and by the paper's algorithms, and serves
as a sanity yardstick in the benchmark reports.
"""

from __future__ import annotations

from typing import Optional

from repro.local_model.network import Network
from repro.graphs.line_graph import build_line_graph_network
from repro.core.edge_coloring import EdgeColoringResult
from repro.local_model.line_graph_sim import apply_lemma_5_2_accounting
from repro.local_model.engine import make_scheduler
from repro.primitives.color_reduction import delta_plus_one_pipeline


def greedy_reduction_edge_coloring(
    network: Network, engine: Optional[str] = None
) -> EdgeColoringResult:
    """A legal ``(2 Delta - 1)``-edge-coloring via one-class-per-round reduction."""
    line_network, _ = build_line_graph_network(network)
    delta_line = max(1, line_network.max_degree)
    pipeline, palette = delta_plus_one_pipeline(
        n=line_network.num_nodes,
        degree_bound=delta_line,
        output_key="_greedy_color",
        use_kuhn_wattenhofer=False,
    )
    result = make_scheduler(line_network, engine=engine).run(pipeline)
    metrics = apply_lemma_5_2_accounting(network, result.metrics)
    return EdgeColoringResult(
        edge_colors=result.extract("_greedy_color"),
        palette=palette,
        metrics=metrics,
        route="baseline-greedy-reduction",
        line_graph_max_degree=line_network.max_degree,
    )
