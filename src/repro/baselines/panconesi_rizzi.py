"""The deterministic ``(2 Delta - 1)``-edge-coloring baseline ([24] in the paper).

Panconesi and Rizzi obtain a ``(2 Delta - 1)``-edge-coloring in
``O(Delta) + log* n`` rounds.  Our reproduction of the baseline keeps the
color guarantee exactly and the round growth *linear-in-``Delta``-times-log*:
it vertex-colors the line graph ``L(G)`` with Linial's algorithm
(``O(Delta^2)`` colors, ``log* n`` rounds) and then reduces the palette to
``Delta(L(G)) + 1 <= 2 Delta - 1`` with the Kuhn-Wattenhofer block reduction
(``O(Delta log Delta)`` rounds).  The Lemma 5.2 simulation accounting is then
applied so the reported cost is the cost on ``G``.

The benchmark harnesses additionally plot the *analytic* ``O(Delta) + log* n``
curve of the original algorithm (see
:func:`repro.analysis.complexity.rounds_panconesi_rizzi`), so Table 1 / 2 can
be compared against both the measured and the idealized baseline.  This
substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from typing import Optional

from repro.local_model.network import Network
from repro.graphs.line_graph import build_line_graph_network
from repro.core.edge_coloring import EdgeColoringResult
from repro.local_model.line_graph_sim import apply_lemma_5_2_accounting
from repro.local_model.engine import make_scheduler
from repro.primitives.color_reduction import delta_plus_one_pipeline


def panconesi_rizzi_edge_coloring(
    network: Network, engine: Optional[str] = None
) -> EdgeColoringResult:
    """A legal ``(2 Delta - 1)``-edge-coloring of ``network``.

    Returns an :class:`~repro.core.edge_coloring.EdgeColoringResult` whose
    ``route`` is ``"baseline-pr"``; the palette bound is
    ``Delta(L(G)) + 1 <= 2 Delta(G) - 1``.
    """
    line_network, _ = build_line_graph_network(network)
    delta_line = max(1, line_network.max_degree)
    pipeline, palette = delta_plus_one_pipeline(
        n=line_network.num_nodes,
        degree_bound=delta_line,
        output_key="_pr_color",
        use_kuhn_wattenhofer=True,
    )
    result = make_scheduler(line_network, engine=engine).run(pipeline)
    metrics = apply_lemma_5_2_accounting(network, result.metrics)
    return EdgeColoringResult(
        edge_colors=result.extract("_pr_color"),
        palette=palette,
        metrics=metrics,
        route="baseline-pr",
        line_graph_max_degree=line_network.max_degree,
    )
