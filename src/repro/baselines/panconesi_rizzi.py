"""The deterministic ``(2 Delta - 1)``-edge-coloring baseline ([24] in the paper).

Panconesi and Rizzi obtain a ``(2 Delta - 1)``-edge-coloring in
``O(Delta) + log* n`` rounds.  Our reproduction of the baseline keeps the
color guarantee exactly and the round growth *linear-in-``Delta``-times-log*:
it vertex-colors the line graph ``L(G)`` with Linial's algorithm
(``O(Delta^2)`` colors, ``log* n`` rounds) and then reduces the palette to
``Delta(L(G)) + 1 <= 2 Delta - 1`` with the Kuhn-Wattenhofer block reduction
(``O(Delta log Delta)`` rounds).  The Lemma 5.2 simulation accounting is then
applied so the reported cost is the cost on ``G``.

The benchmark harnesses additionally plot the *analytic* ``O(Delta) + log* n``
curve of the original algorithm (see
:func:`repro.analysis.complexity.rounds_panconesi_rizzi`), so Table 1 / 2 can
be compared against both the measured and the idealized baseline.  This
substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines._line_pipeline import run_line_graph_delta_plus_one
from repro.core.edge_coloring import EdgeColoringResult
from repro.verification.coloring import NetworkLike


def panconesi_rizzi_edge_coloring(
    network: NetworkLike, engine: Optional[str] = None
) -> EdgeColoringResult:
    """A legal ``(2 Delta - 1)``-edge-coloring of ``network``.

    Accepts a :class:`~repro.local_model.network.Network` or a
    :class:`~repro.local_model.fast_network.FastNetwork` and returns an
    :class:`~repro.core.edge_coloring.EdgeColoringResult` whose ``route`` is
    ``"baseline-pr"`` and whose ``color_column`` covers the canonical edges
    in pair-key order; the palette bound is
    ``Delta(L(G)) + 1 <= 2 Delta(G) - 1``.
    """
    return run_line_graph_delta_plus_one(
        network,
        output_key="_pr_color",
        use_kuhn_wattenhofer=True,
        route="baseline-pr",
        engine=engine,
    )
