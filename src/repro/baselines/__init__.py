"""Baseline algorithms: the "previous" rows of Tables 1 and 2.

* :mod:`repro.baselines.panconesi_rizzi` -- a ``(2 Delta - 1)``-edge-coloring
  whose round count grows (at least) linearly with ``Delta`` after a
  ``log* n`` additive term; the deterministic baseline of Table 1.
* :mod:`repro.baselines.greedy_reduction` -- the folklore class-by-class
  reduction (``O(Delta^2)`` rounds); a second, slower deterministic baseline.
* :mod:`repro.baselines.luby_random` -- a Luby-style randomized coloring
  (``O(log n)`` rounds w.h.p.); the randomized baseline of Table 2.
* :mod:`repro.baselines.sequential` -- centralized greedy colorings used as
  correctness oracles and palette yardsticks.
"""

from repro.baselines.greedy_reduction import greedy_reduction_edge_coloring
from repro.baselines.luby_random import (
    LubyRandomColoringPhase,
    luby_edge_coloring,
    luby_vertex_coloring,
    luby_vertex_coloring_dict,
)
from repro.baselines.panconesi_rizzi import panconesi_rizzi_edge_coloring
from repro.baselines.sequential import (
    greedy_sequential_edge_coloring,
    greedy_sequential_vertex_coloring,
)

__all__ = [
    "LubyRandomColoringPhase",
    "greedy_reduction_edge_coloring",
    "greedy_sequential_edge_coloring",
    "greedy_sequential_vertex_coloring",
    "luby_edge_coloring",
    "luby_vertex_coloring",
    "luby_vertex_coloring_dict",
    "panconesi_rizzi_edge_coloring",
]
