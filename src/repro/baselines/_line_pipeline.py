"""Shared CSR-native driver for the line-graph ``Delta + 1`` baselines.

Panconesi–Rizzi and the greedy class-by-class reduction are the same shape:
derive ``L(G)``, run the :func:`delta_plus_one_pipeline` vertex-coloring
pipeline on it, apply Lemma 5.2 accounting.  This helper runs that shape
array-native — :func:`build_line_graph_fast` for the line graph (no legacy
``Network`` construction) and ``run_table`` over a :class:`StateTable`, so
the vectorized engine executes the whole pipeline with zero per-node
fallbacks — and returns the normalized result with ``color_column`` in the
line graph's dense edge order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.edge_coloring import EdgeColoringResult
from repro.local_model.engine import make_scheduler
from repro.local_model.line_csr import build_line_graph_fast
from repro.local_model.line_graph_sim import apply_lemma_5_2_accounting
from repro.local_model.state_table import StateTable
from repro.primitives.color_reduction import delta_plus_one_pipeline
from repro.verification.coloring import NetworkLike


def run_line_graph_delta_plus_one(
    network: NetworkLike,
    *,
    output_key: str,
    use_kuhn_wattenhofer: bool,
    route: str,
    engine: Optional[str] = None,
) -> EdgeColoringResult:
    """Edge-color ``network`` by ``Delta(L) + 1``-vertex-coloring ``L(G)``."""
    line_fast = build_line_graph_fast(network)
    delta_line = max(1, line_fast.max_degree)
    pipeline, palette = delta_plus_one_pipeline(
        n=line_fast.num_nodes,
        degree_bound=delta_line,
        output_key=output_key,
        use_kuhn_wattenhofer=use_kuhn_wattenhofer,
    )
    scheduler = make_scheduler(line_fast, engine=engine)
    table, raw_metrics = scheduler.run_table(pipeline, StateTable(line_fast.num_nodes))
    metrics = apply_lemma_5_2_accounting(network, raw_metrics)
    if line_fast.num_nodes:
        column = table.get_ints(output_key)
        edge_colors = dict(zip(line_fast.order, column.tolist()))
    else:
        column = np.zeros(0, dtype=np.int64)
        edge_colors = {}
    return EdgeColoringResult(
        edge_colors=edge_colors,
        palette=palette,
        metrics=metrics,
        route=route,
        line_graph_max_degree=line_fast.max_degree,
        color_column=column,
    )
