"""Centralized (sequential) colorings used as correctness oracles.

These are *not* distributed algorithms; they provide reference palettes for
the benchmark reports (a greedy sequential vertex coloring uses at most
``Delta + 1`` colors, a greedy sequential edge coloring at most
``2 Delta - 1``), and quick independent checks that a graph is colorable with
the palette a distributed run claims.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from repro.local_model.fast_network import as_network
from repro.local_model.network import Network


def greedy_sequential_vertex_coloring(network: Network) -> Dict[Hashable, int]:
    """Greedy vertex coloring in identifier order (at most ``Delta + 1`` colors)."""
    network = as_network(network)
    colors: Dict[Hashable, int] = {}
    for node in sorted(network.nodes(), key=network.unique_id):
        taken = {
            colors[neighbor]
            for neighbor in network.neighbors(node)
            if neighbor in colors
        }
        color = 1
        while color in taken:
            color += 1
        colors[node] = color
    return colors


def greedy_sequential_edge_coloring(
    network: Network,
) -> Dict[Tuple[Hashable, Hashable], int]:
    """Greedy edge coloring (at most ``2 Delta - 1`` colors).

    Edges are processed in the deterministic order of
    :meth:`~repro.local_model.network.Network.edges`; each edge takes the
    smallest color unused by the already-colored edges sharing an endpoint.
    """
    network = as_network(network)
    edge_colors: Dict[Tuple[Hashable, Hashable], int] = {}
    incident: Dict[Hashable, set] = {node: set() for node in network.nodes()}
    for edge in network.edges():
        u, v = edge
        taken = incident[u] | incident[v]
        color = 1
        while color in taken:
            color += 1
        edge_colors[edge] = color
        incident[u].add(color)
        incident[v].add(color)
    return edge_colors
