"""Plain-text tables and series helpers used by the benchmark harnesses.

The benchmark suite regenerates the paper's comparison tables as aligned
plain-text tables printed to stdout (so ``pytest benchmarks/`` leaves the
reproduced artifacts in the captured output and in ``bench_output.txt``), and
uses :func:`crossover_point` to report where one algorithm starts beating
another along a parameter sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render an aligned plain-text table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Row values; every cell is rendered with ``str`` (floats are rounded to
        two decimals).
    title:
        Optional title printed above the table.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    rendered_rows = [[render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("-+-".join("-" * width for width in widths))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


@dataclass
class Series:
    """A named measurement series over a swept parameter (e.g. rounds vs Delta)."""

    name: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one measurement."""
        self.xs.append(float(x))
        self.ys.append(float(y))

    def as_rows(self) -> List[Tuple[float, float]]:
        """The series as (x, y) rows."""
        return list(zip(self.xs, self.ys))


def crossover_point(first: Series, second: Series) -> Optional[float]:
    """The smallest shared x at which ``first`` becomes no larger than ``second``.

    Returns ``None`` when the two series never cross on their common support.
    Used to report where the new algorithm overtakes a baseline along the
    ``Delta`` sweep.
    """
    second_lookup = dict(zip(second.xs, second.ys))
    shared = [x for x in first.xs if x in second_lookup]
    for x in sorted(shared):
        first_y = first.ys[first.xs.index(x)]
        if first_y <= second_lookup[x]:
            return x
    return None
