"""Analytic round/color curves for every row of Tables 1 and 2.

The paper's evaluation artifacts (Tables 1 and 2) compare asymptotic running
times; this module turns each row into a concrete curve (with unit constants)
so the benchmark harnesses can plot measured rounds against the idealized
shapes and report who wins, by what factor, and where the crossovers fall.

References, using the paper's citation numbers:

* [24] Panconesi-Rizzi: ``(2 Delta - 1)`` colors, ``O(Delta) + log* n`` time.
* [5]  Barenboim-Elkin (PODC'10): ``O(Delta)`` colors in
  ``O(Delta^eps log n)`` time, ``O(Delta^{1+eps})`` colors in
  ``O(log Delta log n)`` time.
* [29] Schneider-Wattenhofer: randomized ``(2 Delta - 1)`` colors in
  ``O(sqrt(log n))`` time.
* [18] Kothapalli et al.: randomized ``O(Delta)`` colors in
  ``O(sqrt(log n))`` bit rounds.
* **New** (this paper): ``O(Delta)`` colors in ``O(Delta^eps) + log* n`` time
  and ``O(Delta^{1+eps})`` colors in ``O(log Delta) + log* n`` time.
"""

from __future__ import annotations

import math

from repro.primitives.numbers import log_star

__all__ = [
    "log_star",
    "rounds_panconesi_rizzi",
    "rounds_be10_linear",
    "rounds_be10_superlinear",
    "rounds_new_linear",
    "rounds_new_superlinear",
    "rounds_schneider_wattenhofer",
    "rounds_kothapalli",
    "colors_panconesi_rizzi",
    "colors_new_linear",
    "colors_new_superlinear",
]


def rounds_panconesi_rizzi(delta: int, n: int) -> float:
    """[24]: ``Delta + log* n`` (deterministic, ``2 Delta - 1`` colors)."""
    return float(delta + log_star(n))


def rounds_be10_linear(delta: int, n: int, epsilon: float = 0.75) -> float:
    """[5]: ``Delta^eps * log n`` (deterministic, ``O(Delta)`` colors)."""
    return float(max(1, delta) ** epsilon * math.log2(max(2, n)))


def rounds_be10_superlinear(delta: int, n: int) -> float:
    """[5]: ``log Delta * log n`` (deterministic, ``O(Delta^{1+eps})`` colors)."""
    return float(math.log2(max(2, delta)) * math.log2(max(2, n)))


def rounds_new_linear(delta: int, n: int, epsilon: float = 0.75) -> float:
    """This paper: ``Delta^eps + log* n`` (deterministic, ``O(Delta)`` colors)."""
    return float(max(1, delta) ** epsilon + log_star(n))


def rounds_new_superlinear(delta: int, n: int) -> float:
    """This paper: ``log Delta + log* n`` (deterministic, ``O(Delta^{1+eps})`` colors)."""
    return float(math.log2(max(2, delta)) + log_star(n))


def rounds_schneider_wattenhofer(delta: int, n: int) -> float:
    """[29]: ``sqrt(log n)`` (randomized, ``2 Delta - 1`` colors)."""
    return float(math.sqrt(math.log2(max(2, n))))


def rounds_kothapalli(delta: int, n: int) -> float:
    """[18]: ``sqrt(log n)`` bit rounds (randomized, ``O(Delta)`` colors)."""
    return float(math.sqrt(math.log2(max(2, n))))


def colors_panconesi_rizzi(delta: int) -> int:
    """[24]: exactly ``2 Delta - 1`` colors."""
    return max(1, 2 * delta - 1)


def colors_new_linear(delta: int, constant: float = 4.0) -> float:
    """This paper, linear variant: ``O(Delta)`` colors (unit-constant curve)."""
    return constant * max(1, delta)


def colors_new_superlinear(delta: int, eta: float = 0.5) -> float:
    """This paper, fast variant: ``O(Delta^{1+eta})`` colors (unit-constant curve)."""
    return float(max(1, delta) ** (1.0 + eta))
