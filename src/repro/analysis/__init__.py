"""Analytic complexity curves and report formatting for the benchmark harnesses."""

from repro.analysis.complexity import (
    colors_new_linear,
    colors_new_superlinear,
    colors_panconesi_rizzi,
    log_star,
    rounds_be10_linear,
    rounds_be10_superlinear,
    rounds_kothapalli,
    rounds_new_linear,
    rounds_new_superlinear,
    rounds_panconesi_rizzi,
    rounds_schneider_wattenhofer,
)
from repro.analysis.reporting import Series, crossover_point, format_table

__all__ = [
    "Series",
    "colors_new_linear",
    "colors_new_superlinear",
    "colors_panconesi_rizzi",
    "crossover_point",
    "format_table",
    "log_star",
    "rounds_be10_linear",
    "rounds_be10_superlinear",
    "rounds_kothapalli",
    "rounds_new_linear",
    "rounds_new_superlinear",
    "rounds_panconesi_rizzi",
    "rounds_schneider_wattenhofer",
]
